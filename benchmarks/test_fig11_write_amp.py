"""Figure 11: write amplification vs dataset size.

Paper: MioDB's WA stays ~2.9x (theoretical bound 3: WAL + one-piece flush
+ lazy copy) while NoveLSM and MatrixKV grow with the dataset, reaching
up to 5x / 4.9x higher WA than MioDB at 200 GB.
"""

from conftest import deep_scale, run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random

MB = 1 << 20
DATASETS = [8 * MB, 16 * MB, 24 * MB, 32 * MB, 40 * MB]
STORES = ("miodb", "matrixkv", "novelsm")


def run_wa_sweep(scale):
    scale = deep_scale(scale)
    rows = []
    for dataset in DATASETS:
        n = dataset // scale.value_size
        entry = [dataset // MB]
        for name in STORES:
            store, system = make_store(name, scale)
            fill_random(store, n, scale.value_size)
            store.quiesce()
            entry.append(system.write_amplification())
        rows.append(entry)
    return rows


def test_fig11_write_amp(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_wa_sweep(scale))
    text = format_table(["dataset_MB"] + [f"{s}_WA" for s in STORES], rows)
    emit("fig11_write_amp", text)

    for __, mio, matrix, novel in rows:
        # MioDB lowest (ties allowed at the smallest dataset, where the
        # lazy copy has barely engaged for anyone), and never above its
        # theoretical bound of 3 (plus node-metadata slack)
        assert mio <= matrix + 0.1
        assert mio < novel
        assert mio <= 3.2
    # baselines' WA grows with the dataset; MioDB's stays flat-ish
    assert rows[-1][2] > rows[0][2]  # matrixkv grows
    assert rows[-1][3] > rows[0][3]  # novelsm grows
    assert rows[-1][1] - rows[0][1] < 1.2
