"""Figure 10: random read/write performance vs dataset size.

Paper: growing the dataset 40 GB -> 200 GB degrades NoveLSM and MatrixKV
substantially (more stalls, more WA), while MioDB's write throughput dips
only slightly and its read throughput drops ~33.5% over a 5x growth.
"""

from conftest import deep_scale, run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random

MB = 1 << 20
#: scaled stand-ins for the paper's 40/80/120/160/200 GB
DATASETS = [8 * MB, 16 * MB, 24 * MB, 32 * MB, 40 * MB]
STORES = ("miodb", "matrixkv", "novelsm")


def run_dataset_sweep(scale):
    scale = deep_scale(scale)
    rows = []
    for dataset in DATASETS:
        n = dataset // scale.value_size
        for name in STORES:
            store, system = make_store(name, scale)
            write = fill_random(store, n, scale.value_size)
            store.quiesce()  # reads are measured on a settled store
            read = read_random(store, min(scale.rw_ops, n), n)
            rows.append([dataset // MB, name, write.kiops, read.kiops])
    return rows


def degradation(rows, name, column):
    series = [r[column] for r in rows if r[1] == name]
    return series[-1] / series[0]


def test_fig10_dataset_size(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_dataset_sweep(scale))
    text = format_table(["dataset_MB", "store", "write_KIOPS", "read_KIOPS"], rows)
    retained = {name: degradation(rows, name, 2) for name in STORES}
    text += "\n\nwrite throughput retained at 5x dataset: " + ", ".join(
        f"{k}={v:.2f}" for k, v in retained.items()
    )
    emit("fig10_dataset_size", text)

    # MioDB degrades the least in write throughput as data grows
    assert retained["miodb"] > retained["matrixkv"]
    assert retained["miodb"] > retained["novelsm"]
    assert retained["miodb"] > 0.6  # only a slight slowdown (paper)
    # and it stays the fastest at every size, for writes and reads
    for dataset in DATASETS:
        size_rows = {r[1]: r for r in rows if r[0] == dataset // MB}
        assert size_rows["miodb"][2] > size_rows["matrixkv"][2]
        assert size_rows["miodb"][2] > size_rows["novelsm"][2]
        assert size_rows["miodb"][3] > size_rows["matrixkv"][3]
