"""Figure 14: throughput vs NVM buffer size (DRAM-NVM-SSD hierarchy).

The paper grows NoveLSM's NVM MemTables and MatrixKV's matrix container
from 8 to 64 GB.  MioDB's elastic buffer has no fixed size; the paper
runs it once with a 64 GB *maximum* that it never needs (peak usage
39.1 GB, average 19.5 GB on the 80 GB dataset).  Headlines at the
largest baseline buffers: MioDB's random write is 2.3x MatrixKV and
4.9x NoveLSM; random read 11.4x MatrixKV and ~= NoveLSM.
"""

from conftest import deep_scale, run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random

MB = 1 << 20
#: scaled stand-ins for 8/16/32/64 GB baseline buffers
BUFFER_SIZES = [4 * MB, 8 * MB, 16 * MB, 32 * MB]
#: MioDB's configured maximum (the paper's 64 GB): generous, not sizing
MIODB_CAP = 64 * MB


def run_buffer_sweep(scale):
    # deep ratio: data must actually flow through the buffer to the SSD
    # for the buffer-size comparison to mean what it means in the paper
    scale = deep_scale(scale)
    n = scale.n_records
    rows = []
    for buffer_bytes in BUFFER_SIZES:
        for name in ("matrixkv", "novelsm"):
            store, system = build(name, scale, buffer_bytes)
            write = fill_random(store, n, scale.value_size)
            read = read_random(store, min(scale.rw_ops, n), n)
            rows.append(
                [buffer_bytes // MB, name, write.kiops, read.kiops,
                 system.nvm.peak_bytes_in_use / MB,
                 system.nvm.average_usage(system.now) / MB]
            )
    store, system = make_store(
        "miodb", scale, ssd=True, max_nvm_buffer_bytes=MIODB_CAP
    )
    write = fill_random(store, n, scale.value_size)
    read = read_random(store, min(scale.rw_ops, n), n)
    mio_row = [
        MIODB_CAP // MB, "miodb (elastic)", write.kiops, read.kiops,
        system.nvm.peak_bytes_in_use / MB,
        system.nvm.average_usage(system.now) / MB,
    ]
    return rows, mio_row


def build(name, scale, buffer_bytes):
    if name == "matrixkv":
        return make_store(
            "matrixkv",
            scale,
            ssd=True,
            container_bytes=buffer_bytes,
            column_target_bytes=max(scale.memtable_bytes, buffer_bytes // 4),
        )
    return make_store(
        "novelsm", scale, ssd=True, nvm_memtable_bytes=buffer_bytes // 2
    )


def test_fig14_nvm_buffer(benchmark, scale, emit):
    rows, mio_row = run_once(benchmark, lambda: run_buffer_sweep(scale))
    text = format_table(
        ["buffer_MB", "store", "write_KIOPS", "read_KIOPS",
         "nvm_peak_MB", "nvm_avg_MB"],
        rows + [mio_row],
    )
    emit("fig14_nvm_buffer", text)

    # MioDB (one elastic config) vs each baseline's BEST buffer size
    best_matrix_w = max(r[2] for r in rows if r[1] == "matrixkv")
    best_novel_w = max(r[2] for r in rows if r[1] == "novelsm")
    best_matrix_r = max(r[3] for r in rows if r[1] == "matrixkv")
    assert mio_row[2] > 1.5 * best_matrix_w  # paper: 2.3x
    assert mio_row[2] > 2.0 * best_novel_w  # paper: 4.9x
    assert mio_row[3] > best_matrix_r  # paper: 11.4x
    # the elastic buffer never needs anywhere near its configured cap
    assert mio_row[5] < 0.75 * (MIODB_CAP // MB)
    # a bigger buffer helps MatrixKV writes (the paper's trend)...
    matrix_w = [r[2] for r in rows if r[1] == "matrixkv"]
    assert matrix_w[-1] >= matrix_w[0]
