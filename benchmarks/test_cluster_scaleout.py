"""Cluster scale-out and skew benchmarks (extension; not a paper artifact).

The paper evaluates one store on one machine.  These benchmarks put N
full store instances behind the ``repro.cluster`` router on one shared
clock and measure the two serving-layer questions the paper leaves open:

- **Scale-out**: aggregate closed-loop throughput versus shard count for
  MioDB and LevelDB.  Foreground requests serialize on the shared clock
  while every shard's background work overlaps, so throughput grows with
  shard count only while per-shard work gets cheaper -- LevelDB (whose
  stalls shrink dramatically with per-shard load) gains the most, and
  both curves flatten toward the shared-clock serial floor.
- **Skew**: response-time tails under Zipfian load on a deliberately
  lumpy hash ring (few virtual nodes), with and without hot-shard
  rebalancing.  Bounded admission queues concentrate defer penalties on
  the hot shard; moving its busiest arcs to the coldest shard evens the
  load and visibly cuts the tail at moderate utilisation.
"""

import math

from conftest import run_once

from repro.bench import format_table
from repro.bench.config import BenchScale
from repro.cluster import (
    AdmissionControl,
    ClientSpec,
    Cluster,
    ShardRouter,
    maybe_rebalance,
    run_cluster,
)
from repro.kvstore.values import SizedValue
from repro.workloads.keys import key_for

KB = 1 << 10
CLUSTER_SCALE = BenchScale(
    memtable_bytes=32 * KB, dataset_bytes=4 << 20, value_size=1024
)
KEY_SPACE = 4096
N_CLIENTS = 4


def build_router(store_name, n_shards, vnodes=32, key_space=KEY_SPACE):
    cluster = Cluster(store_name, n_shards=n_shards, scale=CLUSTER_SCALE)
    router = ShardRouter(cluster, vnodes_per_shard=vnodes)
    for i in range(key_space):
        router.put(key_for(i), SizedValue(("seed", i), CLUSTER_SCALE.value_size))
    router.quiesce()
    router.reset_window()
    return router


def client_specs(n_ops, rate, theta=None, read_fraction=0.5, seed0=10,
                 key_space=KEY_SPACE):
    return [
        ClientSpec(
            n_ops=n_ops,
            rate_per_s=rate,
            key_space=key_space,
            read_fraction=read_fraction,
            theta=theta,
            value_size=CLUSTER_SCALE.value_size,
            seed=seed0 + i,
        )
        for i in range(N_CLIENTS)
    ]


# ---------------------------------------------------- throughput vs shards


SHARD_COUNTS = (1, 2, 4, 8)
SCALEOUT_STORES = ("miodb", "leveldb")
#: The scale-out curve uses a 6x larger working set than the skew
#: benchmark (affordable since the driver's queue-drain batching and the
#: stores' multi_* paths cut the wall-clock per simulated op --
#: docs/performance.md).  The deeper per-shard structures at low shard
#: counts push the 4->8 step ratio up for both stores: halving a big
#: shard's dataset still buys real work, where the old 4096-key set had
#: already flattened onto the shared-clock serial floor.
SCALEOUT_KEY_SPACE = 24576
SCALEOUT_OPS = 2000


def run_scaleout():
    rows = []
    kiops = {}
    for store in SCALEOUT_STORES:
        base = None
        for shards in SHARD_COUNTS:
            router = build_router(
                store, shards, key_space=SCALEOUT_KEY_SPACE
            )
            result = run_cluster(
                router,
                client_specs(
                    SCALEOUT_OPS, math.inf, key_space=SCALEOUT_KEY_SPACE
                ),
            )
            kiops[(store, shards)] = result.throughput_kiops
            if base is None:
                base = result.throughput_kiops
            rows.append(
                [
                    store,
                    shards,
                    result.throughput_kiops,
                    result.throughput_kiops / base,
                    result.response.p50 * 1e6,
                    result.response.p99 * 1e6,
                ]
            )
    return rows, kiops


def test_cluster_scaleout(benchmark, emit):
    rows, kiops = run_once(benchmark, run_scaleout)
    emit(
        "cluster_scaleout",
        format_table(
            ["store", "shards", "KIOPS", "speedup", "p50_us", "p99_us"], rows
        ),
    )
    for store in SCALEOUT_STORES:
        # throughput grows with shard count...
        for lo, hi in zip(SHARD_COUNTS, SHARD_COUNTS[1:]):
            assert kiops[(store, hi)] > kiops[(store, lo)], (store, hi)
        # MioDB beats LevelDB at every shard count
    for shards in SHARD_COUNTS:
        assert kiops[("miodb", shards)] > kiops[("leveldb", shards)]
    # ...but saturates toward the shared-clock serial floor: LevelDB's
    # 4->8 gain is a fraction of its 1->2 gain
    gain_12 = kiops[("leveldb", 2)] / kiops[("leveldb", 1)]
    gain_48 = kiops[("leveldb", 8)] / kiops[("leveldb", 4)]
    assert gain_48 < 1.6 < gain_12
    # The enlarged working set keeps the 4->8 step meaningful for both
    # stores (the old 4096-key run measured 1.042 / 1.117).
    assert gain_48 > 1.3
    assert kiops[("miodb", 8)] / kiops[("miodb", 4)] > 1.15


# --------------------------------------------------------- p99 vs skew


THETAS = (0.2, 0.6, 0.99)
SKEW_STORES = ("miodb", "leveldb")
SKEW_UTILISATION = 0.85  # offered rate as a fraction of measured capacity
SKEW_ADMISSION = dict(
    max_queue_depth=4, policy="defer", max_retries=6, defer_s=1e-4
)


def run_skew_point(store, theta, rebalance):
    """One (store, theta) measurement; returns the fresh-phase result.

    Phase A drives a short skewed burst to populate the router's traffic
    window, optionally rebalances on it, then phase B measures response
    times with the migration cost settled -- the comparison isolates the
    ownership map's effect from the one-off cost of moving keys.
    """
    router = build_router(store, 4, vnodes=4)  # lumpy ring: a hot shard
    # capacity probe: short closed-loop burst at this skew
    probe = run_cluster(
        router, client_specs(300, math.inf, theta=theta, read_fraction=1.0)
    )
    rate = probe.throughput_kiops * 1e3 * SKEW_UTILISATION / N_CLIENTS
    router.quiesce()
    router.reset_window()
    admission = AdmissionControl(**SKEW_ADMISSION)
    run_cluster(
        router,
        client_specs(400, rate, theta=theta, read_fraction=1.0, seed0=50),
        admission=admission,
    )
    moved = maybe_rebalance(router, factor=1.2) if rebalance else None
    router.quiesce()
    router.reset_window()
    result = run_cluster(
        router,
        client_specs(1500, rate, theta=theta, read_fraction=1.0),
        admission=admission,
    )
    return result, moved


def run_skew():
    rows = []
    stats = {}
    for store in SKEW_STORES:
        for theta in THETAS:
            for rebalance in (False, True):
                result, moved = run_skew_point(store, theta, rebalance)
                hot_share = max(d["ops"] for d in result.per_shard) / max(
                    1, result.completed
                )
                hot_p99 = max(d["p99_us"] for d in result.per_shard)
                stats[(store, theta, rebalance)] = {
                    "p99_us": result.response.p99 * 1e6,
                    "hot_share": hot_share,
                    "hot_p99_us": hot_p99,
                    "moved": moved is not None,
                }
                rows.append(
                    [
                        store,
                        theta,
                        "yes" if rebalance else "no",
                        hot_share,
                        result.response.p99 * 1e6,
                        hot_p99,
                        result.dropped,
                    ]
                )
    return rows, stats


def test_cluster_skew(benchmark, emit):
    rows, stats = run_once(benchmark, run_skew)
    emit(
        "cluster_skew",
        format_table(
            ["store", "theta", "rebalanced", "hot_share", "p99_us",
             "hot_shard_p99_us", "drops"],
            rows,
        ),
    )
    for store in SKEW_STORES:
        base = stats[(store, 0.6, False)]
        moved = stats[(store, 0.6, True)]
        # the lumpy ring concentrates load well past the fair share, and
        # the hot shard's tail is the worst in the cluster
        assert base["hot_share"] > 0.3
        assert base["hot_p99_us"] >= base["p99_us"] * 0.95
        # rebalancing moved ownership and measurably evened the load ...
        assert moved["moved"]
        assert moved["hot_share"] < base["hot_share"] - 0.05
        # ... and cut the cluster tail
        assert moved["p99_us"] < base["p99_us"]
