"""Figure 12: sensitivity to the DRAM MemTable size.

Paper: MioDB's average per-MemTable flush latency is 37.6x / 11.9x
shorter than NoveLSM's / MatrixKV's (one-piece flushing vs per-KV or
serialize-and-copy), while the MemTable size itself barely moves any
store's total flushing time or random read/write throughput.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random

KB = 1 << 10
MEMTABLE_SIZES = [256 * KB, 512 * KB, 1024 * KB, 2048 * KB]
STORES = ("miodb", "matrixkv", "novelsm")


def run_memtable_sweep(scale):
    rows = []
    n = scale.n_records
    for mem_bytes in MEMTABLE_SIZES:
        for name in STORES:
            store, system = make_store(
                name, scale, memtable_bytes=mem_bytes, sstable_bytes=mem_bytes
            )
            write = fill_random(store, n, scale.value_size)
            store.quiesce()
            flushes = system.stats.get("flush.count") or 1
            avg_flush_ms = system.stats.get("flush.time_s") / flushes * 1e3
            total_flush_s = system.stats.get("flush.time_s")
            read = read_random(store, min(scale.rw_ops, n), n)
            rows.append(
                [mem_bytes // KB, name, avg_flush_ms, total_flush_s,
                 write.kiops, read.kiops]
            )
    return rows


def test_fig12_memtable_size(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_memtable_sweep(scale))
    text = format_table(
        ["memtable_KB", "store", "avg_flush_ms", "total_flush_s",
         "write_KIOPS", "read_KIOPS"],
        rows,
    )
    by = {(r[0], r[1]): r for r in rows}
    base = MEMTABLE_SIZES[2] // KB  # the default 1 MB point
    ratio_novel = by[(base, "novelsm")][2] / by[(base, "miodb")][2]
    ratio_matrix = by[(base, "matrixkv")][2] / by[(base, "miodb")][2]
    text += (
        f"\n\navg flush latency ratios at {base} KB MemTables: "
        f"novelsm/miodb = {ratio_novel:.1f}x (paper 37.6x), "
        f"matrixkv/miodb = {ratio_matrix:.1f}x (paper 11.9x)"
    )
    emit("fig12_memtable_size", text)

    assert ratio_novel > 1.5
    assert ratio_matrix > 1.5
    # MemTable size has limited impact on MioDB's write throughput
    mio_writes = [r[4] for r in rows if r[1] == "miodb"]
    assert max(mio_writes) / min(mio_writes) < 1.4
