"""Figure 9: sensitivity to the number of levels (= compaction threads).

Paper findings: MioDB's random-write latency/throughput are flat in the
level count (the elastic buffer absorbs bursts regardless), while random
reads improve with depth up to ~8 levels and then decline as merged
bloom filters saturate.  MatrixKV needs ~4 threads for its best write
throughput, which still trails MioDB's.
"""

from conftest import deep_scale, run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random

KB = 1 << 10
LEVELS = [2, 4, 6, 8, 10]


def run_level_sweep(scale):
    scale = deep_scale(scale)
    rows = []
    n = scale.n_records
    for levels in LEVELS:
        store, system = make_store("miodb", scale, num_levels=levels)
        write = fill_random(store, n, scale.value_size)
        read = read_random(store, scale.rw_ops, n)
        rows.append(
            [levels, write.kiops, write.latency.mean * 1e6, read.kiops]
        )
    matrix_rows = []
    for workers in (1, 2, 4, 8):
        store, system = make_store("matrixkv", scale, compaction_workers=workers)
        write = fill_random(store, n, scale.value_size)
        matrix_rows.append([workers, write.kiops])
    return rows, matrix_rows


def test_fig09_levels(benchmark, scale, emit):
    rows, matrix_rows = run_once(benchmark, lambda: run_level_sweep(scale))
    text = (
        "(a+b) MioDB vs number of levels\n"
        + format_table(
            ["levels", "write_KIOPS", "write_avg_us", "read_KIOPS"], rows
        )
        + "\n\nMatrixKV vs compaction threads\n"
        + format_table(["threads", "write_KIOPS"], matrix_rows)
    )
    emit("fig09_levels", text)

    write_tputs = [r[1] for r in rows]
    # writes are insensitive to the level count (< 25% spread)
    assert max(write_tputs) / min(write_tputs) < 1.25
    # reads improve sharply with depth and plateau around 6-8 levels
    # (the paper's optimum is 8 at its 1280:1 dataset:MemTable ratio;
    # at this scale the knee lands at 6-8 within a few percent)
    by_levels = {r[0]: r[3] for r in rows}
    assert by_levels[8] > 1.3 * by_levels[2]
    assert by_levels[8] > by_levels[4]
    assert by_levels[8] >= 0.93 * max(by_levels.values())
    # MatrixKV peaks below MioDB regardless of thread count
    assert max(r[1] for r in matrix_rows) < min(write_tputs)
