"""Figure 2: the observation study motivating MioDB.

The paper writes an 80 GB dataset to NoveLSM and MatrixKV and reports
(a) write time split into interval stalls / cumulative stalls / other,
(b) read time split showing ~50-59% deserialization,
(c) MemTable flushing throughput, and
(d) write amplification (NoveLSM 6.6x, MatrixKV 5.6x).
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random


def run_observation_study(scale):
    rows_write, rows_read, rows_flush, rows_wa = [], [], [], []
    n = scale.n_records
    for name in ("novelsm", "matrixkv"):
        store, system = make_store(name, scale)
        write = fill_random(store, n, scale.value_size)
        store.quiesce()
        interval = system.stats.get("stall.interval_s")
        cumulative = system.stats.get("stall.cumulative_s")
        other = max(0.0, write.duration_s - interval - cumulative)
        rows_write.append([name, write.duration_s, interval, cumulative, other])

        read = read_random(store, scale.rw_ops, n)
        deser = read.stats_delta.get("deserialize.time_s", 0.0)
        pct = 100.0 * deser / read.duration_s if read.duration_s else 0.0
        rows_read.append([name, read.duration_s, deser, pct])

        flush_bytes = system.stats.get("flush.bytes")
        flush_time = system.stats.get("flush.time_s")
        tput = flush_bytes / flush_time / 2**20 if flush_time else 0.0
        rows_flush.append([name, flush_bytes / 2**20, flush_time, tput])

        rows_wa.append([name, system.write_amplification()])
    return rows_write, rows_read, rows_flush, rows_wa


def test_fig02_observations(benchmark, scale, emit):
    rows_write, rows_read, rows_flush, rows_wa = run_once(
        benchmark, lambda: run_observation_study(scale)
    )
    text = "\n\n".join(
        [
            "(a) write execution time (s)\n"
            + format_table(
                ["store", "total_s", "interval_stall_s", "cumulative_stall_s", "other_s"],
                rows_write,
            ),
            "(b) read execution time (s)\n"
            + format_table(
                ["store", "total_s", "deserialize_s", "deserialize_%"], rows_read
            ),
            "(c) flushing throughput\n"
            + format_table(["store", "flushed_MB", "flush_s", "MB_per_s"], rows_flush),
            "(d) write amplification\n" + format_table(["store", "WA"], rows_wa),
        ]
    )
    emit("fig02_observations", text)

    # paper shapes: stalls dominate writes; deserialization ~half of reads;
    # MatrixKV flushes faster than NoveLSM; both have WA well above MioDB's 3
    for name, total, interval, cumulative, __ in rows_write:
        assert interval + cumulative > 0.3 * total, name
    for name, __, __d, pct in rows_read:
        assert pct > 25.0, name
    assert rows_flush[1][3] > rows_flush[0][3]  # MatrixKV > NoveLSM MB/s
    assert all(wa > 3.5 for __, wa in rows_wa)
