"""Figure 8: latency over time for YCSB workload A (4 KB values).

The paper plots per-request latency during the run: NoveLSM and MatrixKV
show periodic spikes from write stalls, MioDB stays flat and low.  We
regenerate the time series with bucketed averages and quantify
"spikiness" as max-bucket / median-bucket.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import YCSB_WORKLOADS, load_phase, run_workload

KB = 1 << 10
STORES = ("novelsm", "matrixkv", "miodb")
BUCKETS = 40


def run_latency_series(scale):
    n = scale.records_for(4 * KB)
    series = {}
    for name in STORES:
        store, system = make_store(name, scale)
        load_phase(store, n, 4 * KB)
        marker = system.latency.count()
        run_workload(store, YCSB_WORKLOADS["A"], scale.rw_ops, n, 4 * KB)
        # series over the workload phase only (drop the load samples)
        window = [
            (at, lat)
            for kind in system.latency.kinds()
            for at, lat in system.latency.samples_since(kind, 0)
        ]
        window.sort()
        window = window[marker:]
        series[name] = _bucketise(window)
    return series


def _bucketise(rows):
    if not rows:
        return []
    t0, t1 = rows[0][0], rows[-1][0]
    width = ((t1 - t0) or 1e-12) / BUCKETS
    sums, counts = [0.0] * BUCKETS, [0] * BUCKETS
    for at, lat in rows:
        idx = min(BUCKETS - 1, int((at - t0) / width))
        sums[idx] += lat
        counts[idx] += 1
    return [
        (i, sums[i] / counts[i] * 1e6) for i in range(BUCKETS) if counts[i]
    ]


def spikiness(buckets):
    values = sorted(lat for __, lat in buckets)
    if not values:
        return 0.0
    median = values[len(values) // 2]
    return values[-1] / median if median else 0.0


def test_fig08_latency_series(benchmark, scale, emit):
    series = run_once(benchmark, lambda: run_latency_series(scale))
    rows = []
    for name in STORES:
        for bucket, lat_us in series[name]:
            rows.append([name, bucket, lat_us])
    text = format_table(["store", "time_bucket", "avg_latency_us"], rows)
    spikes = {name: spikiness(series[name]) for name in STORES}
    text += "\n\nspikiness (max bucket / median bucket): " + ", ".join(
        f"{name}={val:.1f}x" for name, val in spikes.items()
    )
    emit("fig08_latency_series", text)

    # MioDB's latency curve is the flattest and the lowest
    assert spikes["miodb"] < spikes["matrixkv"]
    assert spikes["miodb"] < spikes["novelsm"]
    mio_peak = max(lat for __, lat in series["miodb"])
    matrix_peak = max(lat for __, lat in series["matrixkv"])
    novel_peak = max(lat for __, lat in series["novelsm"])
    assert mio_peak < matrix_peak
    assert mio_peak < novel_peak
