"""Ablation study over MioDB's design choices (DESIGN.md Section 4).

Not a paper artifact -- this quantifies how much each MioDB technique
contributes by turning them off one at a time:

- one-piece flushing vs NoveLSM-style per-KV flushing,
- zero-copy vs copying buffer compaction,
- parallel vs single-thread compaction,
- bloom filters on/off for reads.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random

CONFIGS = [
    ("full", {}),
    ("no-one-piece-flush", {"one_piece_flush": False}),
    ("no-zero-copy", {"zero_copy": False}),
    ("serial-compaction", {"parallel_compaction": False}),
    ("no-blooms", {"use_blooms": False}),
]


def run_ablation(scale):
    rows = []
    n = scale.n_records
    for label, overrides in CONFIGS:
        store, system = make_store("miodb", scale, **overrides)
        write = fill_random(store, n, scale.value_size)
        read = read_random(store, min(scale.rw_ops, n), n)
        rows.append(
            [
                label,
                write.kiops,
                write.latency.p999 * 1e6,
                read.kiops,
                system.write_amplification(),
                system.stats.get("flush.time_s"),
            ]
        )
    return rows


def test_ablation(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_ablation(scale))
    text = format_table(
        ["config", "write_KIOPS", "write_p999_us", "read_KIOPS", "WA", "flush_s"],
        rows,
    )
    emit("ablation", text)

    by = {r[0]: r for r in rows}
    full = by["full"]
    # each removed technique costs something on its target axis
    assert by["no-one-piece-flush"][5] > full[5]  # slower flushing
    assert by["no-zero-copy"][4] > full[4]  # more write amplification
    assert by["no-blooms"][3] < full[3]  # slower reads
    # the full configuration is the best overall writer
    assert full[1] >= max(r[1] for r in rows) * 0.95
