#!/usr/bin/env python
"""Regenerate every figure/table artifact, fanned across processes.

Thin wrapper over :mod:`repro.bench.parallel`; run it from anywhere::

    python benchmarks/run_all.py --jobs 8
    REPRO_BENCH_SCALE=large python benchmarks/run_all.py

Each benchmark file gets its own pytest subprocess (every benchmark
already builds its own simulated machine, so the files are independent)
and rewrites its ``benchmarks/results/<artifact>.txt``.
"""

import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.parallel import build_parser, run_suite  # noqa: E402


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    bench_dir = args.bench_dir or pathlib.Path(__file__).resolve().parent
    failures, __, __ = run_suite(bench_dir, args.jobs, args.match)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
