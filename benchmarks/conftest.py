"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment once inside pytest-benchmark (the runs are deterministic,
so one round suffices), prints the paper-style rows, and writes them to
``benchmarks/results/<artifact>.txt`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

from repro.bench import default_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """Benchmark scale (ratios of the paper's setup; see bench.config)."""
    return default_scale()


@pytest.fixture
def emit():
    """Print a result table and persist it under benchmarks/results/."""

    def _emit(artifact: str, text: str) -> None:
        banner = f"==== {artifact} ===="
        print(f"\n{banner}\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{artifact}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def deep_scale(scale):
    """A variant with 128 KB MemTables.

    The paper's dataset-to-MemTable ratio is ~1280; the figures that
    depend on deep LSM dynamics (level sweeps, dataset sweeps, write
    amplification, where data must reach the bottom level and the data
    repository) need a three-digit ratio, which the default 1 MB
    MemTable cannot give at tractable dataset sizes.
    """
    from repro.bench import BenchScale

    return BenchScale(
        memtable_bytes=128 << 10,
        dataset_bytes=scale.dataset_bytes,
        value_size=scale.value_size,
        rw_ops=scale.rw_ops,
        nvm_buffer_bytes=scale.nvm_buffer_bytes,
    )
