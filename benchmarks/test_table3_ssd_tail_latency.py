"""Table 3: YCSB-A tail latencies in the DRAM-NVM-SSD hierarchy.

Paper (4 KB values): MioDB p99.9 = 39.6 us vs MatrixKV 1979.5 us (49.9x)
and NoveLSM 971.8 us (24.5x).
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import YCSB_WORKLOADS, load_phase, run_workload

KB = 1 << 10
STORES = ("novelsm", "matrixkv", "miodb")


def run_ssd_tail(scale, value_size):
    rows = []
    n = scale.records_for(value_size)
    for name in STORES:
        store, system = make_store(name, scale, ssd=True)
        load_phase(store, n, value_size)
        result = run_workload(store, YCSB_WORKLOADS["A"], scale.rw_ops, n, value_size)
        us = result.latency.as_micros()
        rows.append([name, us["avg"], us["p90"], us["p99"], us["p99.9"]])
    return rows


def test_table3_ssd_tail_latency(benchmark, scale, emit):
    rows4 = run_once(benchmark, lambda: run_ssd_tail(scale, 4 * KB))
    rows1 = run_ssd_tail(scale, 1 * KB)
    text = (
        "4 KB values\n"
        + format_table(["store", "avg_us", "p90_us", "p99_us", "p99.9_us"], rows4)
        + "\n\n1 KB values\n"
        + format_table(["store", "avg_us", "p90_us", "p99_us", "p99.9_us"], rows1)
    )
    by4 = {r[0]: r for r in rows4}
    ratio_m = by4["matrixkv"][4] / by4["miodb"][4]
    ratio_n = by4["novelsm"][4] / by4["miodb"][4]
    text += (
        f"\n\np99.9 ratios at 4 KB: matrixkv/miodb = {ratio_m:.1f}x (paper 49.9x), "
        f"novelsm/miodb = {ratio_n:.1f}x (paper 24.5x)"
    )
    emit("table3_ssd_tail_latency", text)

    assert ratio_m > 5.0
    assert ratio_n > 5.0
    # SSD-mode tails for the baselines exceed their in-memory tails;
    # MioDB's elastic buffer keeps its tail in the same ballpark.
    by1 = {r[0]: r for r in rows1}
    assert by1["miodb"][4] < by1["matrixkv"][4]
