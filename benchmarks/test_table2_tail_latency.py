"""Table 2: tail latencies of YCSB workload A (in-memory mode).

Paper (4 KB values): MioDB p99.9 = 44.7 us vs MatrixKV 973.6 us (21.7x)
and NoveLSM 764.3 us (17.1x).
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import YCSB_WORKLOADS, load_phase, run_workload

KB = 1 << 10
STORES = ("novelsm", "matrixkv", "miodb")


def run_tail_latency(scale, value_size):
    rows = []
    n = scale.records_for(value_size)
    for name in STORES:
        store, system = make_store(name, scale)
        load_phase(store, n, value_size)
        result = run_workload(store, YCSB_WORKLOADS["A"], scale.rw_ops, n, value_size)
        us = result.latency.as_micros()
        rows.append([name, us["avg"], us["p90"], us["p99"], us["p99.9"]])
    return rows


def test_table2_tail_latency(benchmark, scale, emit):
    value_size = 4 * KB
    rows4 = run_once(benchmark, lambda: run_tail_latency(scale, value_size))
    rows1 = run_tail_latency(scale, 1 * KB)
    text = (
        "4 KB values\n"
        + format_table(["store", "avg_us", "p90_us", "p99_us", "p99.9_us"], rows4)
        + "\n\n1 KB values\n"
        + format_table(["store", "avg_us", "p90_us", "p99_us", "p99.9_us"], rows1)
    )
    by4 = {r[0]: r for r in rows4}
    ratio_m = by4["matrixkv"][4] / by4["miodb"][4]
    ratio_n = by4["novelsm"][4] / by4["miodb"][4]
    text += (
        f"\n\np99.9 ratios at 4 KB: matrixkv/miodb = {ratio_m:.1f}x (paper 21.7x), "
        f"novelsm/miodb = {ratio_n:.1f}x (paper 17.1x)"
    )
    emit("table2_tail_latency", text)

    assert ratio_m > 5.0
    assert ratio_n > 5.0
    by1 = {r[0]: r for r in rows1}
    assert by1["miodb"][4] < by1["matrixkv"][4]
    assert by1["miodb"][1] < by1["matrixkv"][1]  # avg too
