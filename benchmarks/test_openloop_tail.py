"""Open-loop tail-latency analysis (extension; SILK-style, not a paper
artifact).

The paper's YCSB numbers are closed-loop.  Under an open-loop Poisson
arrival process the baselines' write stalls turn into queueing delay and
their response-time tails explode, while MioDB -- with no stalls -- keeps
its tail near its service time even at high offered rates.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.kvstore.values import SizedValue
from repro.workloads.openloop import run_open_loop

RATES = [20_000, 50_000, 100_000]
STORES = ("miodb", "matrixkv", "novelsm")


def run_openloop_sweep(scale):
    rows = []
    n = scale.n_records
    for rate in RATES:
        for name in STORES:
            store, __ = make_store(name, scale)

            def op(i, store=store):
                store.put(
                    b"user%012d" % ((i * 7919) % n),
                    SizedValue(i, scale.value_size),
                )

            result = run_open_loop(store, op, min(6000, n), rate, seed=3)
            rows.append(
                [
                    rate // 1000,
                    name,
                    result.achieved_rate / 1000,
                    result.response.p50 * 1e6,
                    result.response.p999 * 1e6,
                    "yes" if result.saturated else "no",
                ]
            )
    return rows


def test_openloop_tail(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_openloop_sweep(scale))
    text = format_table(
        ["offered_Kops", "store", "achieved_Kops", "p50_us", "p99.9_us",
         "saturated"],
        rows,
    )
    emit("openloop_tail", text)

    by = {(r[0], r[1]): r for r in rows}
    for rate in (20, 50, 100):
        # MioDB's open-loop p99.9 stays far below the baselines'
        assert by[(rate, "miodb")][4] < by[(rate, "matrixkv")][4]
        assert by[(rate, "miodb")][4] < by[(rate, "novelsm")][4]
        assert by[(rate, "miodb")][5] == "no"
    # at 100 Kops/s the baselines are saturated, MioDB is not
    assert by[(100, "matrixkv")][5] == "yes"
    assert by[(100, "novelsm")][5] == "yes"
