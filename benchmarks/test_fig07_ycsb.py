"""Figure 7: YCSB throughput (KIOPS) in in-memory mode.

The paper loads 80 GB, then runs workloads A-F with 1M ops at 4 KB and
1 KB values on NoveLSM, MatrixKV, NoveLSM-NoSST, and MioDB.  Headlines:
MioDB's load throughput is 12.1x NoveLSM / 2.8x MatrixKV / 2.2x NoSST;
NoveLSM-NoSST wins the scan-heavy workload E.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import YCSB_WORKLOADS, load_phase, run_workload

KB = 1 << 10
STORES = ("novelsm", "matrixkv", "novelsm-nosst", "miodb")
PHASES = ["load", "A", "B", "C", "D", "E", "F"]


def run_ycsb(scale, value_size):
    n = scale.records_for(value_size)
    ops = scale.rw_ops
    results = {}
    for name in STORES:
        store, system = make_store(name, scale)
        load = load_phase(store, n, value_size)
        kiops = {"load": load.kiops}
        for wl in "ABCDEF":
            spec = YCSB_WORKLOADS[wl]
            wl_ops = ops // 10 if wl == "E" else ops  # scans are 50x heavier
            result = run_workload(store, spec, wl_ops, n, value_size, seed=31)
            kiops[wl] = result.kiops
        results[name] = kiops
    return results


def render(results):
    rows = [
        [name] + [results[name][phase] for phase in PHASES] for name in STORES
    ]
    return format_table(["store"] + [f"{p}_KIOPS" for p in PHASES], rows)


def test_fig07_ycsb_4kb(benchmark, scale, emit):
    results = run_once(benchmark, lambda: run_ycsb(scale, 4 * KB))
    emit("fig07_ycsb_4kb", render(results))
    mio, novel = results["miodb"], results["novelsm"]
    matrix, nosst = results["matrixkv"], results["novelsm-nosst"]
    # load: MioDB beats everything (paper: 12.1x / 2.8x / 2.2x)
    assert mio["load"] > 3 * novel["load"]
    assert mio["load"] > 1.5 * matrix["load"]
    assert mio["load"] > 1.3 * nosst["load"]
    # write-dominant A and F: MioDB beats NoveLSM and MatrixKV
    for wl in ("A", "F"):
        assert mio[wl] > matrix[wl]
        assert mio[wl] > novel[wl]
    # read-dominant B, C, D: MioDB at least matches the SSTable baselines
    for wl in ("B", "C", "D"):
        assert mio[wl] > matrix[wl]
        assert mio[wl] > novel[wl]
    # scan-heavy E: the single big skip list is the best fit (paper)
    assert nosst["E"] >= mio["E"]


def test_fig07_ycsb_1kb(benchmark, scale, emit):
    results = run_once(benchmark, lambda: run_ycsb(scale, 1 * KB))
    emit("fig07_ycsb_1kb", render(results))
    mio = results["miodb"]
    assert mio["load"] > results["novelsm"]["load"]
    assert mio["load"] > results["matrixkv"]["load"]
    assert mio["A"] > results["matrixkv"]["A"]
