"""Table 1: cost analysis of MioDB, MatrixKV, and NoveLSM.

Paper values (80 GB fillrandom + 1M reads, in-memory mode):

    cost                 MioDB   MatrixKV  NoveLSM
    interval stalls (s)  0       0         496.9
    cumulative stalls    28.1    731.3     1071.3
    deserialization (s)  0       74.3      82.3
    flushing (s)         13.6    191.0     511.8
    write amplification  2.9x    5.6x      6.6x
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, read_random


def run_cost_analysis(scale):
    rows = []
    n = scale.n_records
    for name in ("miodb", "matrixkv", "novelsm"):
        store, system = make_store(name, scale)
        fill_random(store, n, scale.value_size)
        store.quiesce()
        read = read_random(store, scale.rw_ops, n)
        rows.append(
            [
                name,
                system.stats.get("stall.interval_s"),
                system.stats.get("stall.cumulative_s"),
                read.stats_delta.get("deserialize.time_s", 0.0),
                system.stats.get("flush.time_s"),
                system.write_amplification(),
            ]
        )
    return rows


def test_table1_costs(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_cost_analysis(scale))
    text = format_table(
        ["store", "interval_stall_s", "cumulative_stall_s",
         "read_deserialize_s", "flushing_s", "WA"],
        rows,
    )
    emit("table1_costs", text)

    by_name = {r[0]: r for r in rows}
    mio, matrix, novel = by_name["miodb"], by_name["matrixkv"], by_name["novelsm"]
    # MioDB and MatrixKV eliminate interval stalls; NoveLSM does not.
    assert mio[1] == 0.0
    assert matrix[1] == 0.0
    assert novel[1] > 0.0
    # MioDB's cumulative stalls are tiny compared with both baselines.
    assert mio[2] < 0.05 * matrix[2] + 1e-12
    assert mio[2] < 0.05 * novel[2] + 1e-12
    # MioDB performs no deserialization on reads.
    assert mio[3] == 0.0
    assert matrix[3] > 0.0 and novel[3] > 0.0
    # MioDB flushes far faster, and its WA is lowest and near 3.
    assert mio[4] < matrix[4] and mio[4] < novel[4]
    assert mio[5] < matrix[5] < novel[5] * 1.6
    assert mio[5] <= 3.2
