"""Figure 13: the DRAM-NVM-SSD hierarchy (paper Section 5.4).

All stores keep SSTables on the SSD; MioDB's elastic NVM buffer absorbs
bursts before lazy-flushing to the SSD.  Paper: MioDB improves random
write throughput 10.5x / 11.2x over MatrixKV / NoveLSM and YCSB load
11.8x / 12.1x.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import (
    YCSB_WORKLOADS,
    fill_random,
    load_phase,
    read_random,
    run_workload,
)

KB = 1 << 10
STORES = ("miodb", "matrixkv", "novelsm")


def run_ssd_mode(scale):
    n = scale.n_records
    micro_rows = []
    for name in STORES:
        store, system = make_store(name, scale, ssd=True)
        write = fill_random(store, n, scale.value_size)
        read = read_random(store, min(scale.rw_ops, n), n)
        micro_rows.append([name, write.kiops, read.kiops])

    ycsb_rows = []
    for name in STORES:
        store, system = make_store(name, scale, ssd=True)
        load = load_phase(store, n, scale.value_size)
        row = [name, load.kiops]
        for wl in "ABCDF":
            result = run_workload(
                store, YCSB_WORKLOADS[wl], scale.rw_ops, n, scale.value_size
            )
            row.append(result.kiops)
        ycsb_rows.append(row)
    return micro_rows, ycsb_rows


def test_fig13_ssd_mode(benchmark, scale, emit):
    micro_rows, ycsb_rows = run_once(benchmark, lambda: run_ssd_mode(scale))
    text = (
        "(a+b) db_bench random write/read\n"
        + format_table(["store", "randwrite_KIOPS", "randread_KIOPS"], micro_rows)
        + "\n\n(c) YCSB\n"
        + format_table(
            ["store", "load", "A", "B", "C", "D", "F"], ycsb_rows
        )
    )
    emit("fig13_ssd_mode", text)

    micro = {r[0]: r for r in micro_rows}
    assert micro["miodb"][1] > 3 * micro["matrixkv"][1]
    assert micro["miodb"][1] > 3 * micro["novelsm"][1]
    assert micro["miodb"][2] > micro["matrixkv"][2]
    ycsb = {r[0]: r for r in ycsb_rows}
    assert ycsb["miodb"][1] > 3 * ycsb["matrixkv"][1]  # load
    assert ycsb["miodb"][1] > 3 * ycsb["novelsm"][1]
    for idx in (2, 3, 4):  # A, B, C
        assert ycsb["miodb"][idx] > ycsb["matrixkv"][idx]
