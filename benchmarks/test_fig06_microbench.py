"""Figure 6: db_bench microbenchmarks vs value size (1 KB - 64 KB).

The paper reports random/sequential write and read throughput+latency for
MioDB, MatrixKV, and NoveLSM in in-memory mode.  Headline: MioDB improves
random-write throughput 2.5x (avg) over MatrixKV and 8.3x over NoveLSM,
and random reads 1.3x / 4.4x.
"""

from conftest import run_once

from repro.bench import format_table, make_store
from repro.workloads import fill_random, fill_seq, read_random, read_seq

KB = 1 << 10
VALUE_SIZES = [1 * KB, 4 * KB, 16 * KB, 64 * KB]
STORES = ("miodb", "matrixkv", "novelsm")


def run_microbench(scale):
    rows = {"randwrite": [], "seqwrite": [], "randread": [], "seqread": []}
    for value_size in VALUE_SIZES:
        n = scale.records_for(value_size)
        reads = min(scale.rw_ops, n)
        for name in STORES:
            store, system = make_store(name, scale)
            rw = fill_random(store, n, value_size)
            store.quiesce()
            rr = read_random(store, reads, n)
            rows["randwrite"].append([value_size // KB, name, rw.kiops, rw.latency.mean * 1e6])
            rows["randread"].append([value_size // KB, name, rr.kiops, rr.latency.mean * 1e6])

            store, system = make_store(name, scale)
            sw = fill_seq(store, n, value_size)
            store.quiesce()
            sr = read_seq(store, reads, n)
            rows["seqwrite"].append([value_size // KB, name, sw.kiops, sw.latency.mean * 1e6])
            rows["seqread"].append([value_size // KB, name, sr.kiops, sr.latency.mean * 1e6])
    return rows


def geo_ratio(rows, numerator, denominator):
    """Average throughput ratio numerator/denominator across value sizes."""
    by_size = {}
    for size, name, kiops, __ in rows:
        by_size.setdefault(size, {})[name] = kiops
    ratios = [sizes[numerator] / sizes[denominator] for sizes in by_size.values()]
    return sum(ratios) / len(ratios)


def test_fig06_microbench(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_microbench(scale))
    sections = []
    for panel, title in [
        ("randwrite", "(a) random write"),
        ("seqwrite", "(b) sequential write"),
        ("randread", "(c) random read"),
        ("seqread", "(d) sequential read"),
    ]:
        sections.append(
            f"{title}\n"
            + format_table(["value_KB", "store", "KIOPS", "avg_us"], rows[panel])
        )
    text = "\n\n".join(sections)

    vs_matrix = geo_ratio(rows["randwrite"], "miodb", "matrixkv")
    vs_novelsm = geo_ratio(rows["randwrite"], "miodb", "novelsm")
    rd_matrix = geo_ratio(rows["randread"], "miodb", "matrixkv")
    rd_novelsm = geo_ratio(rows["randread"], "miodb", "novelsm")
    text += (
        f"\n\nrandom write: miodb/matrixkv = {vs_matrix:.1f}x (paper 2.5x), "
        f"miodb/novelsm = {vs_novelsm:.1f}x (paper 8.3x)"
        f"\nrandom read:  miodb/matrixkv = {rd_matrix:.1f}x (paper 1.3x), "
        f"miodb/novelsm = {rd_novelsm:.1f}x (paper 4.4x)"
    )
    emit("fig06_microbench", text)

    assert vs_matrix > 1.5
    assert vs_novelsm > 3.0
    assert rd_matrix > 1.0
    assert rd_novelsm > 1.0
    assert geo_ratio(rows["seqwrite"], "miodb", "matrixkv") > 1.0
    assert geo_ratio(rows["seqread"], "miodb", "novelsm") > 1.0
