"""Extended comparison beyond the paper's evaluated set.

Adds the two systems the paper discusses but does not plot — the
hierarchical NoveLSM architecture (Figure 1(b)) and SLM-DB (Section 6) —
to the headline fillrandom + readrandom comparison, validating the
paper's qualitative statements about both:

- flat NoveLSM outperforms hierarchical NoveLSM for writes (Section 3.1
  chose flat "because its performance is better");
- SLM-DB suffers write stalls because flushing and compaction cannot
  run in parallel, and its compactions are costly due to B+-tree index
  maintenance (Section 6), while its indexed reads are competitive.
"""

from conftest import run_once

from repro.bench import STORE_NAMES, format_table, make_store
from repro.workloads import fill_random, read_random


def run_extended(scale):
    rows = []
    n = scale.n_records
    for name in STORE_NAMES:
        store, system = make_store(name, scale)
        write = fill_random(store, n, scale.value_size)
        store.quiesce()
        read = read_random(store, scale.rw_ops, n)
        rows.append(
            [
                name,
                write.kiops,
                write.latency.p999 * 1e6,
                read.kiops,
                system.write_amplification(),
                system.stats.get("stall.interval_s")
                + system.stats.get("stall.cumulative_s"),
            ]
        )
    return rows


def test_extended_comparison(benchmark, scale, emit):
    rows = run_once(benchmark, lambda: run_extended(scale))
    text = format_table(
        ["store", "write_KIOPS", "write_p999_us", "read_KIOPS", "WA", "stalls_s"],
        rows,
    )
    emit("extended_comparison", text)

    by = {r[0]: r for r in rows}
    # flat NoveLSM stalls less than hierarchical (it bypasses the busy
    # DRAM buffer into the mutable NVM MemTable) and writes at least
    # comparably (paper Section 3.1 picks flat as the better variant;
    # at this scale the two are within a few percent)
    assert by["novelsm"][5] <= by["novelsm-hier"][5]
    assert by["novelsm"][1] >= 0.9 * by["novelsm-hier"][1]
    # SLM-DB: stalls exist (serialized flush+compaction) and writes trail
    # MioDB by a wide margin
    assert by["slmdb"][5] > 0
    assert by["miodb"][1] > 1.5 * by["slmdb"][1]
    # MioDB leads every store on writes, and its stalls are zero
    assert by["miodb"][1] == max(r[1] for r in rows)
    assert by["miodb"][5] == 0.0
