"""MioDB's compaction manager: zero-copy per level, lazy-copy at the
bottom, all in parallel (paper Sections 4.3-4.5).

Scheduling rules, straight from the paper:

- a level compacts as soon as it holds two (ready) PMTables -- no
  capacity limits, no selection policy;
- each level has its own worker, so compactions in different levels
  overlap ("parallel compaction");
- the last buffer level L(n-1) feeds the repository via lazy-copy, the
  only stage that physically moves data (and therefore the only source
  of compaction write amplification -- bounded, with the WAL and the
  flush, by 3x).
"""

from typing import List, Optional

from repro.core.pmtable import PMTable
from repro.obs.events import CAT_COMPACT
from repro.skiplist.merge import ZeroCopyMerge


class CompactionManager:
    """Drives the elastic buffer's background merging for one MioDB."""

    def __init__(self, store) -> None:
        self.store = store
        self.system = store.system
        self.options = store.options
        executor = self.system.executor
        if self.options.parallel_compaction:
            self.workers = [
                executor.worker(f"miodb-compact-L{i}")
                for i in range(self.options.num_levels)
            ]
        else:
            single = executor.worker("miodb-compact")
            self.workers = [single] * self.options.num_levels
        self.zero_copy_merges = 0
        self.lazy_copies = 0

    # ------------------------------------------------------------ scheduling

    def check(self) -> None:
        """Schedule every compaction whose level and worker are ready."""
        last = self.options.num_levels - 1
        for level in range(last):
            self._maybe_zero_copy(level)
        self._maybe_lazy_copy(last)

    def _worker_free(self, level: int) -> bool:
        return self.workers[level].busy_until <= self.system.clock.now

    @staticmethod
    def _ready_tables(tables: List[PMTable]) -> List[PMTable]:
        return [t for t in tables if t.swizzled and not t.busy]

    def _maybe_zero_copy(self, level: int) -> None:
        if not self._worker_free(level):
            return
        ready = self._ready_tables(self.store.levels[level])
        if len(ready) < 2:
            return
        older, newer = ready[0], ready[1]
        self._schedule_zero_copy(level, older, newer)

    def _schedule_zero_copy(self, level: int, older: PMTable, newer: PMTable) -> None:
        older.busy = True
        newer.busy = True
        older.merge_bloom_from(newer)
        with self.system.job_scope():
            if self.options.zero_copy:
                seconds = self._run_pointer_merge(newer, older)
            else:
                seconds = self._run_copy_merge(newer, older)

        def apply() -> None:
            older.busy = False
            self.store.levels[level].remove(older)
            self.store.levels[level].remove(newer)
            older.absorb(newer)
            older.level = level + 1
            self.store.levels[level + 1].append(older)
            self.zero_copy_merges += 1
            self.system.stats.add("compact.count", 1)
            self.store.crash.reach("compact.after_zero_copy")
            self.check()

        self.system.stats.add("compact.time_s", seconds)
        self.system.executor.submit(
            self.workers[level], seconds, apply, name=f"miodb-zero-copy-L{level}",
            meta={
                "cat": CAT_COMPACT,
                "level": level,
                "kind": "zero-copy",
                "bytes": older.data_bytes + newer.data_bytes,
            },
            # The merge ran eagerly at submit (crash-consistent
            # insertion marks); in flight the busy-marked input tables
            # are only read by foreground gets.
            accesses=(("r", f"pmtable:L{level}"),),
        )

    def _run_pointer_merge(self, newer: PMTable, older: PMTable) -> float:
        """Zero-copy merge: pointer updates only (no data traffic)."""
        merge = ZeroCopyMerge(newer.skiplist, older.skiplist).run()
        seconds = self.system.cpu.skiplist_search_time("nvm", merge.search_hops)
        # N separate 8-byte atomic writes: N latencies plus the bytes.
        ptr = merge.pointer_writes
        if ptr:
            seconds += self.system.nvm.write(8 * ptr, sequential=False)
            seconds += (ptr - 1) * self.system.nvm.profile.write_latency
        self.system.stats.add("compact.ptr_writes", ptr)
        return seconds

    def _run_copy_merge(self, newer: PMTable, older: PMTable) -> float:
        """Ablation: merge by physically rewriting both tables' data."""
        moved = newer.data_bytes + older.data_bytes
        merge = ZeroCopyMerge(newer.skiplist, older.skiplist).run()
        seconds = self.system.cpu.skiplist_search_time("nvm", merge.search_hops)
        seconds += self.system.nvm.read(moved, sequential=True)
        seconds += self.system.nvm.write(moved, sequential=True)
        return seconds

    def _maybe_lazy_copy(self, level: int) -> None:
        if not self._worker_free(level):
            return
        ready = self._ready_tables(self.store.levels[level])
        if not ready:
            return
        self._schedule_lazy_copy(level, ready[0])

    def _schedule_lazy_copy(self, level: int, table: PMTable) -> None:
        table.busy = True
        with self.system.job_scope():
            seconds, repo_apply = self.store.repository.ingest(table)

        def apply() -> None:
            if repo_apply is not None:
                repo_apply()
            table.busy = False
            self.store.levels[level].remove(table)
            freed = table.reclaim(self.system.now)
            self.lazy_copies += 1
            self.system.stats.add("gc.reclaimed_bytes", freed)
            self.system.stats.add("compact.lazy_count", 1)
            self.store.crash.reach("compact.after_lazy_copy")
            self.check()

        self.system.stats.add("compact.time_s", seconds)
        self.system.stats.add("compact.lazy_time_s", seconds)
        self.system.executor.submit(
            self.workers[level], seconds, apply, name=f"miodb-lazy-copy-L{level}",
            meta={
                "cat": CAT_COMPACT,
                "level": level,
                "kind": "lazy-copy",
                "bytes": table.data_bytes,
            },
            # Lazy copy reads the source PMTable; the compacted copy is
            # staged privately until the callback installs it.
            accesses=(("r", f"pmtable:L{level}"),),
        )

    def force_progress(self) -> bool:
        """Push data toward the repository when the buffer cap demands it.

        Normal triggers need two tables per level; a lone table parked
        mid-buffer can then never shrink the footprint.  Lazy-copying the
        *globally oldest* table (the oldest table of the deepest
        non-empty level) is always safe: everything younger stays above
        it in the read path, and the repository is searched last.
        """
        for level in range(self.options.num_levels - 1, -1, -1):
            ready = self._ready_tables(self.store.levels[level])
            if not ready:
                continue
            if not self._worker_free(level):
                return True  # work already in flight on this level
            self._schedule_lazy_copy(level, ready[0])
            return True
        return False

    # ------------------------------------------------------------- reporting

    def buffer_table_count(self) -> int:
        """PMTables currently in the elastic buffer."""
        return sum(len(level) for level in self.store.levels)

    def __repr__(self) -> str:
        counts = [len(level) for level in self.store.levels]
        return f"CompactionManager(levels={counts})"
