"""Crash recovery for MioDB (paper Section 4.7).

The recovery contract the paper establishes:

- data in the DRAM MemTables is covered by the WAL, which is truncated
  only after the one-piece flush *and* pointer swizzling complete;
- a PMTable whose swizzle had not finished is discarded (its content is
  still in the WAL);
- zero-copy compaction updates pointers with atomic writes, so merged
  PMTables are consistent at any crash point; interrupted merges resume
  from the insertion mark (exercised at the skip-list level in tests);
- the data repository is always consistent because lazy-copy inserts and
  in-place updates are individually atomic and idempotent.

:func:`recover` rebuilds a fresh :class:`MioDB` from whatever survived.
"""

from typing import Tuple

from repro.core.miodb import MioDB


def recover(crashed: MioDB) -> Tuple[MioDB, float]:
    """Rebuild a MioDB after a simulated crash.

    Returns ``(store, recovery_seconds)``.  The simulated clock is
    advanced by the recovery time (WAL scan plus MemTable replay).
    """
    system = crashed.system
    dropped_jobs = system.executor.crash_reset()
    system.stats.add("recover.dropped_jobs", dropped_jobs)

    # Volatile state of the crashed process is gone.
    for table in (crashed.memtable, crashed.immutable):
        if table is not None and not table.arena.released:
            table.release()
    inflight = crashed._inflight_pmtable
    if inflight is not None and not inflight.swizzled:
        inflight.reclaim(system.now)

    store = MioDB(system, crashed.options, crash_injector=crashed.crash)

    # Adopt persistent structures: swizzled PMTables, repository, WAL.
    max_seq = 0
    for level, tables in enumerate(crashed.levels):
        for table in tables:
            if not table.swizzled:
                table.reclaim(system.now)
                continue
            table.busy = False
            store.levels[level].append(table)
            for node in table.skiplist.nodes():
                if node.seq > max_seq:
                    max_seq = node.seq
    store.repository = crashed.repository
    if hasattr(store.repository, "skiplist"):
        for node in store.repository.skiplist.nodes():
            if node.seq > max_seq:
                max_seq = node.seq

    fresh_wal = store.wal
    store.wal = crashed.wal
    del fresh_wal  # never appended to; nothing to release

    # Replay intact WAL records into a fresh MemTable hierarchy.
    seconds = 0.0
    replayed = 0
    for record in store.wal.replay():
        seconds += system.nvm.read(record.frame_bytes, sequential=True)
        if store.memtable.is_full:
            store._rotate_memtable()
        seconds += store.memtable.insert(
            record.key, record.seq, record.value, record.value_bytes
        )
        if record.seq > max_seq:
            max_seq = record.seq
        replayed += 1

    store.seq = max_seq
    system.clock.advance(seconds)
    system.executor.settle()
    store.compactor.check()
    system.stats.add("recover.count", 1)
    system.stats.add("recover.time_s", seconds)
    system.stats.add("recover.replayed", replayed)
    return store, seconds
