"""PMTable: a persistent skip list in the NVM elastic buffer.

A PMTable is created from a one-piece-flushed MemTable and then grows by
zero-copy merging: the merged table takes ownership of both inputs'
arenas (no data moved, so the memory cannot be returned until a lazy-copy
compaction reclaims it).  Each PMTable carries a fixed-size OR-mergeable
bloom filter sized for one MemTable's key budget.
"""

from typing import List, Optional, Tuple

from repro.bloom.filter import BloomFilter
from repro.persist.arena import Arena
from repro.skiplist.skiplist import SkipList


class PMTable:
    """One persistent skip list plus its arenas and bloom filter."""

    _ids = 0

    def __init__(
        self,
        system,
        skiplist: SkipList,
        arenas: List[Arena],
        bloom: Optional[BloomFilter],
        level: int = 0,
    ) -> None:
        PMTable._ids += 1
        self.table_id = PMTable._ids
        self.system = system
        self.skiplist = skiplist
        self.arenas = arenas
        self.bloom = bloom
        self.level = level
        self.swizzled = False
        self.reclaimable = False
        self.busy = False  # reserved by a compaction job

    @property
    def entries(self) -> int:
        """Live (not yet shadow-dropped) versions in the table."""
        return self.skiplist.entries

    @property
    def data_bytes(self) -> int:
        """Live payload bytes."""
        return self.skiplist.data_bytes

    @property
    def footprint_bytes(self) -> int:
        """NVM bytes held (arenas), including unreclaimed garbage."""
        return sum(a.size for a in self.arenas if not a.released)

    def may_contain(self, key: bytes) -> Tuple[bool, float]:
        """Bloom-filter gate; returns (possible, probe_cost).

        A definite miss short-circuits after ~2 hash probes; a "maybe"
        pays all k probes.  Saturated filters on big merged tables thus
        cost more per query *and* admit more false-positive searches --
        the effect that caps the useful level depth (paper Section 4.6).
        """
        if self.bloom is None:
            return True, 0.0
        if self.bloom.saturation > 0.9:
            # After enough OR-merges the filter approves everything;
            # probing it is pure overhead, so fall through to the search.
            return True, 0.0
        possible = self.bloom.may_contain(key)
        probes = self.bloom.k if possible else 2
        return possible, self.system.cpu.bloom_probe_time(probes)

    def get(self, key: bytes):
        """Point lookup: NVM pointer chase plus payload read on a hit."""
        node, hops = self.skiplist.lookup(key)
        seconds = self.system.cpu.skiplist_search_time("nvm", max(hops, 1))
        if node is not None:
            seconds += self.system.nvm.read(node.nbytes, sequential=False)
        return node, seconds

    def merge_bloom_from(self, other: "PMTable") -> None:
        """OR-merge ``other``'s bloom filter into this one.

        Done *before* the zero-copy merge moves any node: a bloom filter
        may only over-approximate, so widening early keeps every
        mid-merge read correct.
        """
        if self.bloom is not None and other.bloom is not None:
            self.bloom.merge_from(other.bloom)

    def absorb(self, other: "PMTable") -> None:
        """Take ownership of ``other``'s arenas after a completed merge."""
        self.arenas.extend(other.arenas)
        other.arenas = []
        other.reclaimable = True

    def reclaim(self, now: float) -> int:
        """Release every arena (after lazy-copy GC); returns bytes freed."""
        freed = 0
        for arena in self.arenas:
            freed += arena.release(now)
        self.reclaimable = True
        return freed

    def __repr__(self) -> str:
        return (
            f"PMTable(#{self.table_id}, L{self.level}, entries={self.entries}, "
            f"{self.footprint_bytes}B)"
        )
