"""MioDB's data repository (the bottom level, L(n)).

Two interchangeable backends:

- :class:`NvmRepository` -- the paper's default: one huge persistent skip
  list holding every unique, sorted KV pair.  Lazy-copy compaction copies
  the newest versions out of an L(n-1) PMTable into it (Section 4.4).
- :class:`SsdRepository` -- the DRAM-NVM-SSD mode (Section 5.4): the
  repository is ordinary leveled SSTables on the SSD; "lazy copy" becomes
  serialize-and-flush, and the elastic buffer absorbs the SSD's slowness.

Both expose ``ingest(pmtable) -> (seconds, apply)`` where ``apply`` is the
visibility callback the compaction manager runs at job completion
(``None`` when the backend mutates eagerly, as the NVM skip list does).
"""

from typing import List, Optional, Tuple

from repro.baselines.lsm import LeveledLSM
from repro.kvstore.scans import skiplist_stream
from repro.persist.arena import Arena
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import NODE_OVERHEAD_BYTES, TOMBSTONE
from repro.skiplist.skiplist import SkipList
from repro.sstable.table import entry_frame_bytes


def newest_versions(skiplist: SkipList):
    """Yield the newest version node of each key, in key order."""
    last_key = None
    for node in skiplist.nodes():
        if node.key == last_key:
            continue
        last_key = node.key
        yield node


class NvmRepository:
    """A huge persistent skip list in NVM."""

    def __init__(self, system) -> None:
        self.system = system
        self.skiplist = SkipList(XorShiftRng(0x4E50))
        self.arena = Arena(system.nvm, 0, system.now, "miodb-repository")
        self.lazy_copies = 0

    @property
    def data_bytes(self) -> int:
        """Bytes of unique live pairs stored."""
        return self.skiplist.data_bytes

    @property
    def entry_count(self) -> int:
        return self.skiplist.entries

    def ingest(self, table) -> Tuple[float, Optional[callable]]:
        """Lazy-copy one PMTable into the repository (eager mutation).

        For each newest version: in-place update when the key exists,
        copy+insert otherwise; tombstones delete the repository node.
        Returns the simulated duration; visibility is immediate (the
        PMTable stays readable above until the manager retires it, so
        queries see duplicates, never gaps).
        """
        cpu = self.system.cpu
        nvm = self.system.nvm
        now = self.system.now
        seconds = 0.0
        for node in newest_versions(table.skiplist):
            value_bytes = max(0, node.nbytes - len(node.key) - NODE_OVERHEAD_BYTES)
            existing, hops = self.skiplist.get(node.key)
            seconds += cpu.skiplist_search_time("nvm", max(hops, 1))
            if node.is_tombstone:
                if existing is not None:
                    preds = self.skiplist.predecessors_of(existing)
                    self.skiplist.unlink(existing, preds, to_garbage=False)
                    seconds += nvm.write(8 * existing.height, sequential=False)
                    self.arena.shrink(existing.nbytes, now)
                continue
            if existing is not None:
                if node.seq <= existing.seq:
                    continue
                delta = self.skiplist.update_in_place(
                    existing, node.seq, node.value, value_bytes
                )
                if delta > 0:
                    self.arena.grow(delta, now)
                elif delta < 0:
                    self.arena.shrink(-delta, now)
                seconds += nvm.write(existing.nbytes, sequential=False)
            else:
                new_node, ins_hops = self.skiplist.insert(
                    node.key, node.seq, node.value, value_bytes
                )
                seconds += cpu.skiplist_search_time("nvm", max(ins_hops, 1))
                seconds += nvm.write(new_node.nbytes, sequential=False)
                self.arena.grow(new_node.nbytes, now)
        self.lazy_copies += 1
        return seconds, None

    def get(self, key: bytes) -> Tuple[Optional[object], float]:
        """Point lookup; returns (value_or_TOMBSTONE_or_None, seconds)."""
        node, hops = self.skiplist.lookup(key)
        seconds = self.system.cpu.skiplist_search_time("nvm", max(hops, 1))
        if node is None:
            return None, seconds
        seconds += self.system.nvm.read(node.nbytes, sequential=False)
        return node.value, seconds

    def scan_streams(self, start_key: bytes, cost) -> List:
        """Lazy streams for a merged scan (one: the huge skip list)."""
        return [
            skiplist_stream(self.system, self.skiplist, start_key, "nvm", cost)
        ]


class SsdRepository:
    """Leveled SSTables on the SSD as the repository backend."""

    def __init__(self, system, options) -> None:
        if system.ssd is None:
            raise ValueError("SSD mode requires a system with an SSD device")
        self.system = system
        self.lsm = LeveledLSM(
            system, options, system.ssd, nworkers=1, label="miodb-ssd"
        )
        self.lazy_copies = 0

    @property
    def data_bytes(self) -> int:
        return self.lsm.total_data_bytes()

    @property
    def entry_count(self) -> int:
        return sum(len(t) for level in self.lsm.levels for t in level)

    def ingest(self, table) -> Tuple[float, Optional[callable]]:
        """Serialize a PMTable's newest versions into SSD L0 tables."""
        entries = [
            (
                n.key,
                n.seq,
                n.value,
                max(0, n.nbytes - len(n.key) - NODE_OVERHEAD_BYTES),
            )
            for n in newest_versions(table.skiplist)
        ]
        seconds = self.system.nvm.read(table.data_bytes, sequential=True)
        outputs = []
        for i, chunk in enumerate(self.lsm.split_entries(entries)):
            sst, cost = self.lsm.build_table(chunk, f"miodb-ssd-L0-{i}")
            outputs.append(sst)
            seconds += cost
        self.system.stats.add(
            "serialize.time_s",
            self.system.cpu.serialize_time(sum(entry_frame_bytes(e) for e in entries)),
        )

        def apply() -> None:
            for sst in outputs:
                self.lsm.add_table(0, sst)

        self.lazy_copies += 1
        return seconds, apply

    def get(self, key: bytes) -> Tuple[Optional[object], float]:
        entry, seconds = self.lsm.get(key)
        if entry is None:
            return None, seconds
        return entry[2], seconds

    def scan_streams(self, start_key: bytes, cost) -> list:
        return self.lsm.scan_streams(start_key, cost)
