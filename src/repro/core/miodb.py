"""The MioDB store: one-piece flushing into an elastic PMTable buffer.

Write path: WAL append (NVM, sequential) -> DRAM MemTable insert.  When
the MemTable fills, the whole arena is copied to NVM with one ``memcpy``
and pointers are swizzled in the background while the DRAM copy still
serves reads (Section 4.2).  The elastic buffer has no capacity limits,
so -- unlike every baseline -- flushing is effectively never blocked and
write stalls disappear.

Read path: MemTable -> immutable MemTable -> elastic buffer levels
(younger tables first, gated by per-PMTable bloom filters) -> the data
repository.  The first hit is the newest version because tables and
levels are strictly age-ordered.
"""

from typing import List, Optional, Tuple

from repro.bloom.filter import BloomFilter
from repro.core.compaction import CompactionManager
from repro.core.options import MioOptions
from repro.core.pmtable import PMTable
from repro.core.repository import NvmRepository, SsdRepository
from repro.kvstore.api import KVStore
from repro.kvstore.memtable import MemTable
from repro.kvstore.scans import CostCell, merged_scan, skiplist_stream
from repro.kvstore.values import value_nbytes
from repro.obs.events import CAT_FLUSH, STALL_BUFFER_CAP, STALL_MEMTABLE_FULL
from repro.persist.arena import Arena
from repro.persist.crash import PASSIVE_INJECTOR
from repro.persist.wal import WriteAheadLog
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE


class MioDB(KVStore):
    """LSM-style KV store for hybrid DRAM/NVM memory (the paper's system)."""

    name = "miodb"

    def __init__(
        self,
        system,
        options: Optional[MioOptions] = None,
        crash_injector=None,
    ) -> None:
        super().__init__(system, options or MioOptions())
        self.crash = crash_injector or PASSIVE_INJECTOR
        self.rng = XorShiftRng(0x111D)
        self.wal = WriteAheadLog(
            system.nvm, "miodb-wal",
            fsync_policy=self.options.fsync_policy, clock=system.clock,
        )
        self.memtable = MemTable(system, self.options.memtable_bytes, self.rng.fork())
        self.immutable: Optional[MemTable] = None
        self._flush_tail = None
        self._inflight_pmtable: Optional[PMTable] = None
        self._bloom_geometry = None
        self.levels: List[List[PMTable]] = [
            [] for __ in range(self.options.num_levels)
        ]
        if self.options.ssd_mode:
            self.repository = SsdRepository(system, self.options)
        else:
            self.repository = NvmRepository(system)
        self.compactor = CompactionManager(self)
        self.flush_worker = system.executor.worker("miodb-flush")

    # ------------------------------------------------------------ write path

    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = 0.0
        if self.memtable.is_full:
            if self._flush_tail is not None and not self._flush_tail.done:
                stalled = self.system.executor.wait_for(self._flush_tail)
                self._stall_wait(STALL_MEMTABLE_FULL, stalled)
            self._respect_buffer_cap()
            self._rotate_memtable()
        if self.options.wal_enabled:
            seconds += self.wal.append(seq, key, value, value_bytes)
            self.crash.reach("put.after_wal")
        seconds += self.memtable.insert(key, seq, value, value_bytes)
        return seconds

    def _respect_buffer_cap(self) -> None:
        cap = self.options.max_nvm_buffer_bytes
        if cap is None:
            return
        while self.elastic_buffer_bytes() + self.options.memtable_bytes > cap:
            self.compactor.check()
            deadline = self.system.executor.next_completion()
            if deadline is None:
                if not self.compactor.force_progress():
                    raise RuntimeError("NVM buffer cap hit with nothing to drain")
                deadline = self.system.executor.next_completion()
                if deadline is None:
                    raise RuntimeError("NVM buffer cap hit with no background work")
            before = self.system.clock.now
            self.system.clock.advance_to(deadline)
            self.system.executor.settle()
            self._stall_wait(STALL_BUFFER_CAP, self.system.clock.now - before)

    def _rotate_memtable(self) -> None:
        old = self.memtable
        old.mark_immutable()
        self.immutable = old
        self.memtable = MemTable(
            self.system, self.options.memtable_bytes, self.rng.fork()
        )
        self._flush_tail = self._schedule_flush(old)

    def _schedule_flush(self, table: MemTable):
        """One-piece flush + background pointer swizzling (Section 4.2)."""
        # A MemTable may overshoot its budget by its final entry; the
        # PMTable arena covers whichever is larger.
        arena = Arena(
            self.system.nvm,
            max(table.capacity_bytes, table.skiplist.footprint_bytes),
            self.system.now,
            f"pmtable-{table.table_id}",
        )
        bloom = None
        if self.options.use_blooms:
            bloom = self._make_bloom(len(table.skiplist))
        pmtable = PMTable(self.system, table.skiplist, [arena], bloom, level=0)
        self._inflight_pmtable = pmtable

        # One pass over the table's nodes gathers everything the flush
        # needs -- bloom keys, pointer count, entry count, and the WAL
        # truncation horizon (previously three separate iterations).
        # An empty table (never produced by the put path, which only
        # rotates a *full* MemTable, but reachable via direct calls)
        # degenerates to last_seq = self.seq and a zero-work flush.
        entries = 0
        pointers = 0
        last_seq = None
        with self.system.job_scope():
            if self.options.one_piece_flush:
                bloom_keys = [] if bloom is not None else None
                for node in table.skiplist.nodes():
                    entries += 1
                    pointers += node.height
                    if last_seq is None or node.seq > last_seq:
                        last_seq = node.seq
                    if bloom_keys is not None:
                        bloom_keys.append(node.key)
                if bloom_keys:
                    bloom.add_all(bloom_keys)
                copy_seconds = self.system.dram.read(
                    table.capacity_bytes, sequential=True
                )
                copy_seconds += self.system.nvm.write(
                    table.capacity_bytes, sequential=True
                )
                swizzle_seconds = 0.0
                if pointers:
                    swizzle_seconds += self.system.nvm.write(
                        8 * pointers, sequential=False
                    )
                    swizzle_seconds += (
                        pointers - 1
                    ) * self.system.nvm.profile.write_latency
                swizzle_seconds += self.system.cpu.bloom_build_time(entries)
            else:
                # Ablation: NoveLSM-style per-KV copy+insert into NVM.
                copy_seconds = 0.0
                for node in table.skiplist.nodes():
                    entries += 1
                    if last_seq is None or node.seq > last_seq:
                        last_seq = node.seq
                    if bloom is not None:
                        bloom.add(node.key)
                    hops = max(1, node.height * 3)
                    copy_seconds += self.system.cpu.skiplist_search_time("nvm", hops)
                    copy_seconds += self.system.nvm.write(
                        node.nbytes, sequential=False
                    )
                swizzle_seconds = self.system.cpu.bloom_build_time(entries)

        if last_seq is None:
            last_seq = self.seq

        def copy_done() -> None:
            self.crash.reach("flush.after_copy")

        def swizzle_done() -> None:
            self.crash.reach("flush.after_swizzle")
            pmtable.swizzled = True
            if self._inflight_pmtable is pmtable:
                self._inflight_pmtable = None
            self.levels[0].append(pmtable)
            table.release()
            if self.immutable is table:
                self.immutable = None
            if self.options.wal_enabled:
                self.wal.truncate_through(last_seq)
            self.compactor.check()

        self.system.stats.add("flush.count", 1)
        self.system.stats.add("flush.time_s", copy_seconds)
        self.system.stats.add("flush.bytes", table.data_bytes)
        self.system.stats.add("swizzle.time_s", swizzle_seconds)
        self.system.executor.submit(
            self.flush_worker, copy_seconds, copy_done,
            name="miodb-one-piece-flush",
            meta={"cat": CAT_FLUSH, "bytes": table.data_bytes, "entries": entries},
            # One-piece flush reads the rotated immutable MemTable.
            accesses=(("r", "memtable:imm"),),
        )
        return self.system.executor.submit(
            self.flush_worker, swizzle_seconds, swizzle_done,
            name="miodb-swizzle",
            meta={"cat": CAT_FLUSH, "phase": "swizzle", "pointers": pointers},
            # Swizzling rewrites the PMTable's not-yet-published
            # pointers; readers only follow already-swizzled (8-byte
            # atomic) words, so the unswizzled region is job-private.
            accesses=(("w", "pmtable:unswizzled"),),
        )

    def _make_bloom(self, entry_count: int) -> BloomFilter:
        """A bloom filter with the store's fixed geometry.

        Every PMTable's filter must share one geometry so compaction can
        OR-merge them (paper Section 4.6): the first flush fixes it at
        ``bloom_bits_per_key`` bits per key of one MemTable.  Merged
        tables therefore see fewer effective bits per key, which is what
        eventually caps the useful level count (Figure 9).
        """
        if self._bloom_geometry is None:
            capacity = max(1, entry_count) * self.options.bloom_capacity_tables
            probe = BloomFilter.for_capacity(
                capacity, self.options.bloom_bits_per_key
            )
            self._bloom_geometry = (probe.nbits, probe.k)
        nbits, k = self._bloom_geometry
        return BloomFilter(nbits, k)

    def write(self, batch) -> float:
        """Apply a :class:`~repro.kvstore.batch.WriteBatch` atomically.

        The whole batch lands in the WAL under one commit marker, so a
        crash before the commit record surfaces none of it after
        recovery (tested by tearing the log tail mid-batch).
        """
        if batch.is_empty:
            return 0.0
        self.system.executor.settle()
        start = self.system.clock.now
        items = []
        user_bytes = 0
        for op, key, value in batch.ops:
            self._require_key(key)
            self.seq += 1
            if op == "put":
                nbytes = value_nbytes(value)
            else:
                value, nbytes = TOMBSTONE, 0
            items.append((self.seq, key, value, nbytes))
            user_bytes += len(key) + nbytes
        seconds = 0.0
        if self.options.wal_enabled:
            seconds += self.wal.append_batch(items)
            self.crash.reach("write.after_wal_batch")
        for seq, key, value, nbytes in items:
            if self.memtable.is_full:
                if self._flush_tail is not None and not self._flush_tail.done:
                    stalled = self.system.executor.wait_for(self._flush_tail)
                    self._stall_wait(STALL_MEMTABLE_FULL, stalled)
                self._respect_buffer_cap()
                self._rotate_memtable()
            seconds += self.memtable.insert(key, seq, value, nbytes)
        self.system.stats.add("user.bytes_written", user_bytes)
        self.system.stats.add("op.batch", 1)
        return self._finish("batch", start, seconds)

    # ------------------------------------------------------------- read path

    def _batch_lookup(self):
        tables = tuple(
            t for t in (self.memtable, self.immutable) if t is not None
        )
        # One entry per PMTable in probe order, with the bloom gate
        # pre-resolved: probe costs are pure functions of the filter
        # geometry, and a saturated (or absent) filter always passes.
        # Filters only change via settled background callbacks, after
        # which multi_get requests a fresh closure.
        cpu = self.system.cpu
        gated = []
        for level_tables in self.levels:
            for pmtable in reversed(level_tables):
                bloom = pmtable.bloom
                if bloom is None or bloom.saturation > 0.9:
                    gated.append((None, 0.0, 0.0, pmtable.get))
                else:
                    gated.append((
                        bloom.may_contain,
                        cpu.bloom_probe_time(bloom.k),
                        cpu.bloom_probe_time(2),
                        pmtable.get,
                    ))
        repo_get = self.repository.get

        def lookup(key):
            seconds = 0.0
            for table in tables:
                node, cost = table.get(key)
                seconds += cost
                if node is not None:
                    return (None if node.is_tombstone else node.value), seconds
            for may_contain, hit_cost, miss_cost, table_get in gated:
                if may_contain is not None:
                    if may_contain(key):
                        seconds += hit_cost
                    else:
                        seconds += miss_cost
                        continue
                node, cost = table_get(key)
                seconds += cost
                if node is not None:
                    return (None if node.is_tombstone else node.value), seconds
            value, cost = repo_get(key)
            seconds += cost
            if value is None or value is TOMBSTONE:
                return None, seconds
            return value, seconds

        return lookup

    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        seconds = 0.0
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            node, cost = table.get(key)
            seconds += cost
            if node is not None:
                return (None if node.is_tombstone else node.value), seconds
        for level_tables in self.levels:
            for pmtable in reversed(level_tables):
                possible, probe_cost = pmtable.may_contain(key)
                seconds += probe_cost
                if not possible:
                    continue
                node, cost = pmtable.get(key)
                seconds += cost
                if node is not None:
                    return (None if node.is_tombstone else node.value), seconds
        value, cost = self.repository.get(key)
        seconds += cost
        if value is None or value is TOMBSTONE:
            return None, seconds
        return value, seconds

    def _scan(self, start_key: bytes, count: int):
        cost = CostCell()
        streams: List = []
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            streams.append(
                skiplist_stream(self.system, table.skiplist, start_key, "dram", cost)
            )
        for level_tables in self.levels:
            for pmtable in level_tables:
                streams.append(
                    skiplist_stream(
                        self.system, pmtable.skiplist, start_key, "nvm", cost
                    )
                )
        streams.extend(self.repository.scan_streams(start_key, cost))
        pairs = merged_scan(streams, count)
        return pairs, cost.seconds

    # ------------------------------------------------------------- reporting

    def elastic_buffer_bytes(self) -> int:
        """NVM bytes currently held by buffer PMTables (arenas)."""
        return sum(t.footprint_bytes for level in self.levels for t in level)

    def level_table_counts(self) -> List[int]:
        """PMTables per buffer level, for diagnostics."""
        return [len(level) for level in self.levels]

    def __repr__(self) -> str:
        return (
            f"MioDB(levels={self.level_table_counts()}, "
            f"repo={self.repository.entry_count} keys)"
        )
