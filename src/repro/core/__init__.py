"""MioDB: the paper's contribution.

A LSM-style KV store that replaces on-media SSTables with persistent skip
lists (PMTables) and exploits NVM byte-addressability end to end:

- **one-piece flushing** (Section 4.2): the whole immutable MemTable is
  copied to NVM with a single ``memcpy``; pointers are swizzled by a
  background thread while the DRAM copy still serves reads.
- **elastic multi-level buffer** (Section 4.1): levels L0..L(n-1) hold
  unlimited PMTables, so flushing is never blocked.
- **zero-copy compaction** (Section 4.3): two PMTables merge by pointer
  updates only -- no data movement, no write amplification.
- **lazy-copy compaction** (Section 4.4): L(n-1) tables are copied into
  the huge PMTable data repository; only then is garbage reclaimed.
- **parallel compaction** (Section 4.5): one worker per level.
- **read optimizations** (Section 4.6): deep levels plus OR-mergeable
  bloom filters per PMTable.
- **DRAM-NVM-SSD mode** (Section 5.4): the repository can instead be
  leveled SSTables on an SSD, with the elastic buffer absorbing bursts.
"""

from repro.core.miodb import MioDB
from repro.core.options import MioOptions
from repro.core.pmtable import PMTable
from repro.core.recovery import recover

__all__ = ["MioDB", "MioOptions", "PMTable", "recover"]
