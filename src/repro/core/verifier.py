"""Internal-state invariant checking for MioDB.

``verify_store`` walks a live store and asserts the structural
invariants the design relies on.  Tests call it after workloads (and
after crash recovery) so violations surface at the point of corruption
rather than as a wrong read much later.

Invariants checked:

1.  Age ordering: every version of a key found in a younger source is
    newer than any version in an older source (this is what makes the
    read path's first-hit-wins correct).
2.  Level structure: tables know their level; reclaimable tables are
    not linked; busy tables belong to a scheduled job.
3.  Accounting: skip-list data/garbage bytes are non-negative and the
    arenas of live tables cover their footprints.
4.  Repository: at most one version per key, no tombstones, sorted.
5.  WAL: every record still in the log is newer than the newest flushed
    sequence number (truncation kept up).
"""

from typing import List

from repro.skiplist.node import TOMBSTONE


class InvariantViolation(AssertionError):
    """Raised when a store invariant does not hold."""


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def verify_store(store) -> None:
    """Check every invariant on a quiescent or live MioDB instance."""
    verify_age_ordering(store)
    verify_level_structure(store)
    verify_accounting(store)
    verify_repository(store)
    verify_wal(store)


def _source_chain(store) -> List:
    """Skip lists from youngest to oldest, as the read path visits them."""
    chain = []
    for table in (store.memtable, store.immutable):
        if table is not None:
            chain.append(table.skiplist)
    for level_tables in store.levels:
        for pmtable in reversed(level_tables):
            chain.append(pmtable.skiplist)
    return chain


def verify_age_ordering(store) -> None:
    """Any key's max seq must not increase while walking older sources."""
    newest_seen = {}
    for rank, skiplist in enumerate(_source_chain(store)):
        per_key_newest = {}
        for node in skiplist.nodes():
            if node.key not in per_key_newest:
                per_key_newest[node.key] = node.seq
        for key, seq in per_key_newest.items():
            if key in newest_seen and seq > newest_seen[key]:
                _fail(
                    f"age inversion for {key!r}: source #{rank} holds seq "
                    f"{seq} > younger source's {newest_seen[key]}"
                )
            newest_seen.setdefault(key, seq)
    if hasattr(store.repository, "skiplist"):
        for node in store.repository.skiplist.nodes():
            if node.key in newest_seen and node.seq > newest_seen[node.key]:
                _fail(
                    f"repository holds seq {node.seq} for {node.key!r}, newer "
                    f"than the buffer's {newest_seen[node.key]}"
                )


def verify_level_structure(store) -> None:
    for level, tables in enumerate(store.levels):
        for pmtable in tables:
            if pmtable.level != level:
                _fail(f"{pmtable!r} thinks it is at L{pmtable.level}, found at L{level}")
            if pmtable.reclaimable:
                _fail(f"reclaimable {pmtable!r} still linked at L{level}")
            if not pmtable.swizzled and pmtable is not store._inflight_pmtable:
                _fail(f"unswizzled {pmtable!r} linked at L{level}")


def verify_accounting(store) -> None:
    for level_tables in store.levels:
        for pmtable in level_tables:
            sl = pmtable.skiplist
            if sl.data_bytes < 0 or sl.garbage_bytes < 0:
                _fail(f"negative byte accounting on {pmtable!r}")
            if pmtable.busy:
                # a zero-copy merge moved nodes in eagerly; the donor's
                # arenas transfer when the merge job completes
                continue
            live_arena = sum(a.size for a in pmtable.arenas if not a.released)
            if live_arena and sl.data_bytes > live_arena:
                # merged tables own multiple arenas; live data must fit
                _fail(
                    f"{pmtable!r} holds {sl.data_bytes}B of data in "
                    f"{live_arena}B of arenas"
                )
    if store.system.nvm.bytes_in_use < 0:
        _fail("NVM device accounting went negative")


def verify_repository(store) -> None:
    repo = store.repository
    if not hasattr(repo, "skiplist"):
        return
    last_key = None
    for node in repo.skiplist.nodes():
        if node.value is TOMBSTONE:
            _fail(f"tombstone for {node.key!r} persisted into the repository")
        if last_key is not None and node.key <= last_key:
            _fail(f"repository order violated at {node.key!r}")
        last_key = node.key


def verify_wal(store) -> None:
    if not store.options.wal_enabled:
        return
    flushed_max = 0
    for level_tables in store.levels:
        for pmtable in level_tables:
            for node in pmtable.skiplist.nodes():
                if node.seq > flushed_max:
                    flushed_max = node.seq
    stale = sum(1 for r in store.wal.replay() if r.seq <= flushed_max)
    # records <= flushed_max may linger only if they belong to the
    # still-unflushed MemTables (possible when seqs interleave after
    # recovery); they must at least be present in a live MemTable
    if stale:
        live = set()
        for table in (store.memtable, store.immutable):
            if table is not None:
                live.update(n.seq for n in table.skiplist.nodes())
        for record in store.wal.replay():
            if record.seq <= flushed_max and record.seq not in live:
                _fail(
                    f"WAL record seq {record.seq} is older than flushed data "
                    "but covers no live MemTable entry"
                )
