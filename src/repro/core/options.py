"""MioDB configuration."""

from dataclasses import dataclass
from typing import Optional

from repro.kvstore.options import StoreOptions


@dataclass
class MioOptions(StoreOptions):
    """MioDB's knobs, including the ablation switches DESIGN.md lists.

    Attributes:
        num_levels: elastic-buffer depth (L0..L(n-1)); the repository sits
            below as L(n).  The paper settles on 8 (Figure 9).
        bloom_bits_per_key: per-PMTable filter budget (paper: 16).
        bloom_capacity_tables: every PMTable's filter shares one fixed
            geometry (so compaction can OR-merge them), sized for this
            many MemTables' worth of keys.  Tables merged beyond it see
            degraded filters -- the effect that caps useful depth.
        use_blooms: disable to measure the bloom filters' contribution.
        one_piece_flush: ablation -- ``False`` falls back to per-KV
            flushing into a fresh PMTable (NoveLSM-style copy+insert).
        zero_copy: ablation -- ``False`` makes buffer compactions copy
            data (SSTable-style merge cost and write amplification).
        parallel_compaction: ablation -- ``False`` serialises all
            compactions on one background worker.
        ssd_mode: store the data repository as leveled SSTables on the
            SSD instead of a huge PMTable in NVM (Section 5.4).
        max_nvm_buffer_bytes: optional cap on elastic-buffer NVM usage;
            writes block when reached (used in the Figure 14 study).
    """

    num_levels: int = 8
    bloom_bits_per_key: int = 16
    bloom_capacity_tables: int = 16
    use_blooms: bool = True
    one_piece_flush: bool = True
    zero_copy: bool = True
    parallel_compaction: bool = True
    ssd_mode: bool = False
    max_nvm_buffer_bytes: Optional[int] = None
