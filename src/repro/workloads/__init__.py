"""Workload generators and runners.

- :mod:`repro.workloads.dbbench` -- LevelDB's db_bench modes used in the
  paper's microbenchmarks (Figure 6) and sensitivity studies.
- :mod:`repro.workloads.ycsb` -- YCSB Load and workloads A-F with the
  paper's zipfian(0.99) access pattern (Figures 7-8, Tables 2-3).
- :mod:`repro.workloads.zipfian` -- the YCSB zipfian generator family.
"""

from repro.workloads.dbbench import (
    delete_random,
    fill_random,
    fill_seq,
    overwrite,
    read_random,
    read_seq,
    seek_random,
)
from repro.workloads.openloop import OpenLoopResult, run_open_loop
from repro.workloads.keys import key_for
from repro.workloads.runner import Phase, RunResult
from repro.workloads.ycsb import YCSB_WORKLOADS, load_phase, run_workload
from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfian,
    UniformGenerator,
    ZipfianGenerator,
)

__all__ = [
    "fill_random",
    "fill_seq",
    "read_random",
    "read_seq",
    "overwrite",
    "delete_random",
    "seek_random",
    "run_open_loop",
    "OpenLoopResult",
    "key_for",
    "Phase",
    "RunResult",
    "YCSB_WORKLOADS",
    "load_phase",
    "run_workload",
    "ZipfianGenerator",
    "ScrambledZipfian",
    "LatestGenerator",
    "UniformGenerator",
]
