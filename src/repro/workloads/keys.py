"""Key formatting.

The paper's datasets use 16-byte keys; ``key_for`` produces exactly that.
"""

KEY_BYTES = 16


def key_for(index: int) -> bytes:
    """The canonical 16-byte key for record ``index``."""
    if index < 0:
        raise ValueError(f"key index must be >= 0, got {index}")
    return b"user%012d" % index
