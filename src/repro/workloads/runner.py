"""Phase measurement over the simulated clock.

A :class:`Phase` brackets a stretch of operations against one store and
produces a :class:`RunResult`: simulated duration, throughput, and the
latency summary of exactly the operations issued inside the phase.
"""

from typing import Dict, Optional

from repro.sim.latency import LatencyRecorder, LatencySummary


class RunResult:
    """Metrics for one workload phase."""

    def __init__(
        self,
        name: str,
        ops: int,
        duration_s: float,
        latency: LatencySummary,
        per_kind: Dict[str, LatencySummary],
        stats_delta: Dict[str, float],
    ) -> None:
        self.name = name
        self.ops = ops
        self.duration_s = duration_s
        self.latency = latency
        self.per_kind = per_kind
        self.stats_delta = stats_delta

    @property
    def kiops(self) -> float:
        """Throughput in thousands of operations per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        return self.ops / self.duration_s / 1e3

    @property
    def mb_per_s(self) -> float:
        """User bytes written per second during the phase, in MB/s."""
        if self.duration_s <= 0:
            return 0.0
        return self.stats_delta.get("user.bytes_written", 0.0) / self.duration_s / 2**20

    def __repr__(self) -> str:
        return (
            f"RunResult({self.name!r}, ops={self.ops}, "
            f"{self.kiops:.1f} KIOPS, avg={self.latency.mean*1e6:.1f}us)"
        )


class Phase:
    """Context manager measuring a block of store operations.

    Example::

        with Phase("load", store.system) as phase:
            for i in range(n):
                store.put(key_for(i), value)
        result = phase.result()
    """

    def __init__(self, name: str, system) -> None:
        self.name = name
        self.system = system
        self._start_time: Optional[float] = None
        self._start_counts: Dict[str, int] = {}
        self._start_stats: Dict[str, float] = {}
        self._result: Optional[RunResult] = None

    def __enter__(self) -> "Phase":
        self._start_time = self.system.clock.now
        recorder = self.system.latency
        self._start_counts = {k: recorder.count(k) for k in recorder.kinds()}
        self._start_stats = self.system.stats.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        self._result = self._measure()

    def _measure(self) -> RunResult:
        recorder = self.system.latency
        duration = self.system.clock.now - self._start_time
        window = LatencyRecorder()
        ops = 0
        for kind in recorder.kinds():
            skip = self._start_counts.get(kind, 0)
            rows = recorder.samples_since(kind, skip)
            ops += len(rows)
            for at, lat in rows:
                window.record(kind, at, lat)
        per_kind = {k: window.summary(k) for k in window.kinds()}
        end_stats = self.system.stats.snapshot()
        delta = {
            key: end_stats.get(key, 0.0) - self._start_stats.get(key, 0.0)
            for key in end_stats
        }
        return RunResult(self.name, ops, duration, window.summary(), per_kind, delta)

    def result(self) -> RunResult:
        """The phase's metrics (after the ``with`` block exits)."""
        if self._result is None:
            raise RuntimeError("Phase.result() called before the phase finished")
        return self._result
