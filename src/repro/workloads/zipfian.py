"""YCSB's request-distribution generators.

:class:`ZipfianGenerator` is the Gray et al. algorithm YCSB uses, with the
paper's default skew (theta = 0.99).  :class:`ScrambledZipfian` hashes the
rank so the popular items are spread over the key space, and
:class:`LatestGenerator` skews toward the most recently inserted record
(YCSB workload D).
"""

from repro.bloom.hashing import fnv1a_64
from repro.sim.rng import XorShiftRng


class UniformGenerator:
    """Uniform draws over ``[0, n)``."""

    def __init__(self, n: int, rng: XorShiftRng) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._rng = rng

    def next(self) -> int:
        return self._rng.next_below(self.n)


class ZipfianGenerator:
    """Zipf-distributed ranks over ``[0, n)`` (most popular = 0)."""

    def __init__(self, n: int, rng: XorShiftRng, theta: float = 0.99) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.next_float()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))


class ScrambledZipfian:
    """Zipfian ranks hashed over the key space (YCSB's default)."""

    def __init__(self, n: int, rng: XorShiftRng, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, rng, theta)

    def next(self) -> int:
        rank = self._zipf.next()
        return fnv1a_64(rank.to_bytes(8, "little")) % self.n


class LatestGenerator:
    """Skewed toward the most recent insert (workload D's read side)."""

    def __init__(self, n: int, rng: XorShiftRng, theta: float = 0.99) -> None:
        self._zipf = ZipfianGenerator(max(1, n), rng, theta)
        self.max_index = n - 1

    def observe_insert(self, index: int) -> None:
        """Tell the generator a new record ``index`` exists."""
        if index > self.max_index:
            self.max_index = index

    def next(self) -> int:
        offset = self._zipf.next()
        value = self.max_index - offset
        return value if value >= 0 else 0
