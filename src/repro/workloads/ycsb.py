"""YCSB core workloads A-F (Cooper et al., SoCC'10), as the paper runs
them: zipfian(0.99) request distribution, latest-distribution for D,
1 KB or 4 KB values, one million operations after an 80 GB load (both
scaled down in this reproduction).
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.kvstore.values import SizedValue
from repro.sim.rng import XorShiftRng
from repro.workloads.keys import key_for
from repro.workloads.runner import Phase, RunResult
from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfian,
    UniformGenerator,
)


@dataclass
class YcsbSpec:
    """Operation mix of one YCSB workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"
    scan_length: int = 50


YCSB_WORKLOADS: Dict[str, YcsbSpec] = {
    "A": YcsbSpec("A", read=0.5, update=0.5),
    "B": YcsbSpec("B", read=0.95, update=0.05),
    "C": YcsbSpec("C", read=1.0),
    "D": YcsbSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YcsbSpec("E", scan=0.95, insert=0.05),
    "F": YcsbSpec("F", read=0.5, rmw=0.5),
}


def load_phase(store, n: int, value_size: int, seed: int = 11) -> RunResult:
    """YCSB Load: insert ``n`` records in hashed (random-looking) order."""
    order = list(range(n))
    XorShiftRng(seed).shuffle(order)
    with Phase("load", store.system) as phase:
        for tag, index in enumerate(order):
            store.put(key_for(index), SizedValue(("load", tag), value_size))
    return phase.result()


def run_workload(
    store,
    spec: YcsbSpec,
    n_ops: int,
    record_count: int,
    value_size: int,
    seed: int = 23,
    check_reads: bool = False,
) -> RunResult:
    """Run ``n_ops`` operations of one YCSB workload against ``store``.

    ``record_count`` is the number of records loaded beforehand; inserts
    extend the key space past it.
    """
    rng = XorShiftRng(seed)
    if spec.distribution == "latest":
        chooser = LatestGenerator(record_count, rng.fork(1))
    elif spec.distribution == "uniform":
        chooser = UniformGenerator(record_count, rng.fork(2))
    else:
        chooser = ScrambledZipfian(record_count, rng.fork(3))
    next_insert = record_count
    thresholds = _mix_thresholds(spec)

    with Phase(f"ycsb-{spec.name}", store.system) as phase:
        for op_index in range(n_ops):
            draw = rng.next_float()
            if draw < thresholds["read"]:
                value, __ = store.get(key_for(chooser.next()))
                if check_reads and value is None:
                    raise AssertionError("YCSB read missed a loaded key")
            elif draw < thresholds["update"]:
                store.put(
                    key_for(chooser.next()),
                    SizedValue(("upd", op_index), value_size),
                )
            elif draw < thresholds["insert"]:
                store.put(
                    key_for(next_insert),
                    SizedValue(("ins", op_index), value_size),
                )
                if isinstance(chooser, LatestGenerator):
                    chooser.observe_insert(next_insert)
                next_insert += 1
            elif draw < thresholds["scan"]:
                store.scan(key_for(chooser.next()), spec.scan_length)
            else:  # read-modify-write
                key = key_for(chooser.next())
                store.get(key)
                store.put(key, SizedValue(("rmw", op_index), value_size))
    return phase.result()


def _mix_thresholds(spec: YcsbSpec) -> Dict[str, float]:
    total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"workload {spec.name} mix sums to {total}, expected 1")
    read_t = spec.read
    update_t = read_t + spec.update
    insert_t = update_t + spec.insert
    scan_t = insert_t + spec.scan
    return {"read": read_t, "update": update_t, "insert": insert_t, "scan": scan_t}
