"""YCSB core workloads A-F (Cooper et al., SoCC'10), as the paper runs
them: zipfian(0.99) request distribution, latest-distribution for D,
1 KB or 4 KB values, one million operations after an 80 GB load (both
scaled down in this reproduction).
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.kvstore.values import SizedValue
from repro.sim.rng import XorShiftRng
from repro.workloads.keys import key_for
from repro.workloads.runner import Phase, RunResult
from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfian,
    UniformGenerator,
)


@dataclass
class YcsbSpec:
    """Operation mix of one YCSB workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"
    scan_length: int = 50


YCSB_WORKLOADS: Dict[str, YcsbSpec] = {
    "A": YcsbSpec("A", read=0.5, update=0.5),
    "B": YcsbSpec("B", read=0.95, update=0.05),
    "C": YcsbSpec("C", read=1.0),
    "D": YcsbSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YcsbSpec("E", scan=0.95, insert=0.05),
    "F": YcsbSpec("F", read=0.5, rmw=0.5),
}


def load_phase(
    store, n: int, value_size: int, seed: int = 11,
    batch_size: Optional[int] = None,
) -> RunResult:
    """YCSB Load: insert ``n`` records in hashed (random-looking) order."""
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = list(range(n))
    XorShiftRng(seed).shuffle(order)
    with Phase("load", store.system) as phase:
        if batch_size is None:
            for tag, index in enumerate(order):
                store.put(key_for(index), SizedValue(("load", tag), value_size))
        else:
            for at in range(0, n, batch_size):
                store.multi_put([
                    (key_for(index), SizedValue(("load", tag), value_size))
                    for tag, index in enumerate(
                        order[at:at + batch_size], start=at
                    )
                ])
    return phase.result()


def run_workload(
    store,
    spec: YcsbSpec,
    n_ops: int,
    record_count: int,
    value_size: int,
    seed: int = 23,
    check_reads: bool = False,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Run ``n_ops`` operations of one YCSB workload against ``store``.

    ``record_count`` is the number of records loaded beforehand; inserts
    extend the key space past it.

    With a ``batch_size``, runs of consecutive same-kind operations
    (reads, or updates/inserts) are coalesced through ``multi_get`` /
    ``multi_put`` up to that length.  The draw sequence, op order, and
    every simulated number are unchanged; with ``check_reads`` a missed
    read is reported when its batch flushes rather than instantly.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = XorShiftRng(seed)
    if spec.distribution == "latest":
        chooser = LatestGenerator(record_count, rng.fork(1))
    elif spec.distribution == "uniform":
        chooser = UniformGenerator(record_count, rng.fork(2))
    else:
        chooser = ScrambledZipfian(record_count, rng.fork(3))
    next_insert = record_count
    thresholds = _mix_thresholds(spec)

    buffer: list = []
    buffer_kind: Optional[str] = None

    def flush() -> None:
        nonlocal buffer_kind
        if not buffer:
            return
        if buffer_kind == "get":
            for value, __ in store.multi_get(buffer):
                if check_reads and value is None:
                    raise AssertionError("YCSB read missed a loaded key")
        else:
            store.multi_put(buffer)
        buffer.clear()
        buffer_kind = None

    def enqueue(kind: str, item) -> None:
        nonlocal buffer_kind
        if buffer_kind != kind:
            flush()
            buffer_kind = kind
        buffer.append(item)
        if len(buffer) >= batch_size:
            flush()

    with Phase(f"ycsb-{spec.name}", store.system) as phase:
        if batch_size is None:
            for op_index in range(n_ops):
                draw = rng.next_float()
                if draw < thresholds["read"]:
                    value, __ = store.get(key_for(chooser.next()))
                    if check_reads and value is None:
                        raise AssertionError("YCSB read missed a loaded key")
                elif draw < thresholds["update"]:
                    store.put(
                        key_for(chooser.next()),
                        SizedValue(("upd", op_index), value_size),
                    )
                elif draw < thresholds["insert"]:
                    store.put(
                        key_for(next_insert),
                        SizedValue(("ins", op_index), value_size),
                    )
                    if isinstance(chooser, LatestGenerator):
                        chooser.observe_insert(next_insert)
                    next_insert += 1
                elif draw < thresholds["scan"]:
                    store.scan(key_for(chooser.next()), spec.scan_length)
                else:  # read-modify-write
                    key = key_for(chooser.next())
                    store.get(key)
                    store.put(key, SizedValue(("rmw", op_index), value_size))
        else:
            # Same draw sequence; consecutive same-kind ops coalesce.
            for op_index in range(n_ops):
                draw = rng.next_float()
                if draw < thresholds["read"]:
                    enqueue("get", key_for(chooser.next()))
                elif draw < thresholds["update"]:
                    enqueue(
                        "put",
                        (
                            key_for(chooser.next()),
                            SizedValue(("upd", op_index), value_size),
                        ),
                    )
                elif draw < thresholds["insert"]:
                    enqueue(
                        "put",
                        (
                            key_for(next_insert),
                            SizedValue(("ins", op_index), value_size),
                        ),
                    )
                    if isinstance(chooser, LatestGenerator):
                        chooser.observe_insert(next_insert)
                    next_insert += 1
                elif draw < thresholds["scan"]:
                    flush()
                    store.scan(key_for(chooser.next()), spec.scan_length)
                else:  # read-modify-write: the get must precede the put
                    key = key_for(chooser.next())
                    enqueue("get", key)
                    enqueue("put", (key, SizedValue(("rmw", op_index), value_size)))
            flush()
    return phase.result()


def _mix_thresholds(spec: YcsbSpec) -> Dict[str, float]:
    total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"workload {spec.name} mix sums to {total}, expected 1")
    read_t = spec.read
    update_t = read_t + spec.update
    insert_t = update_t + spec.insert
    scan_t = insert_t + spec.scan
    return {"read": read_t, "update": update_t, "insert": insert_t, "scan": scan_t}
