"""db_bench-equivalent microbenchmarks (the paper's Section 5.1).

Four modes, matching LevelDB's tool: fillrandom, fillseq, readrandom,
readseq.  Writes use 16-byte keys and a configurable nominal value size;
reads query keys known to exist.
"""

from typing import Optional

from repro.kvstore.values import SizedValue
from repro.sim.rng import XorShiftRng
from repro.workloads.keys import key_for
from repro.workloads.runner import Phase, RunResult


def fill_random(
    store, n: int, value_size: int, seed: int = 1, quiesce: bool = False
) -> RunResult:
    """Write ``n`` KV pairs in random key order."""
    order = list(range(n))
    XorShiftRng(seed).shuffle(order)
    with Phase("fillrandom", store.system) as phase:
        for tag, index in enumerate(order):
            store.put(key_for(index), SizedValue(tag, value_size))
        if quiesce:
            store.quiesce()
    return phase.result()


def fill_seq(
    store, n: int, value_size: int, quiesce: bool = False
) -> RunResult:
    """Write ``n`` KV pairs in ascending key order."""
    with Phase("fillseq", store.system) as phase:
        for index in range(n):
            store.put(key_for(index), SizedValue(index, value_size))
        if quiesce:
            store.quiesce()
    return phase.result()


def read_random(
    store, n_reads: int, key_space: int, seed: int = 2, expect_hits: bool = True
) -> RunResult:
    """Read ``n_reads`` uniformly random existing keys."""
    rng = XorShiftRng(seed)
    misses = 0
    with Phase("readrandom", store.system) as phase:
        for __ in range(n_reads):
            value, __lat = store.get(key_for(rng.next_below(key_space)))
            if value is None:
                misses += 1
    if expect_hits and misses:
        raise AssertionError(f"readrandom missed {misses}/{n_reads} existing keys")
    return phase.result()


def read_seq(
    store, n_reads: int, key_space: int, start: Optional[int] = None
) -> RunResult:
    """Read keys in ascending order (db_bench's readseq)."""
    first = 0 if start is None else start
    with Phase("readseq", store.system) as phase:
        for i in range(n_reads):
            store.get(key_for((first + i) % key_space))
    return phase.result()


def overwrite(
    store, n: int, key_space: int, value_size: int, seed: int = 3
) -> RunResult:
    """Random overwrites of existing keys (db_bench's overwrite)."""
    rng = XorShiftRng(seed)
    with Phase("overwrite", store.system) as phase:
        for tag in range(n):
            store.put(
                key_for(rng.next_below(key_space)),
                SizedValue(("ow", tag), value_size),
            )
    return phase.result()


def delete_random(store, n: int, key_space: int, seed: int = 4) -> RunResult:
    """Random deletions (db_bench's deleterandom)."""
    rng = XorShiftRng(seed)
    with Phase("deleterandom", store.system) as phase:
        for __ in range(n):
            store.delete(key_for(rng.next_below(key_space)))
    return phase.result()


def seek_random(
    store, n_seeks: int, key_space: int, scan_length: int = 10, seed: int = 5
) -> RunResult:
    """Random short range scans (db_bench's seekrandom)."""
    rng = XorShiftRng(seed)
    with Phase("seekrandom", store.system) as phase:
        for __ in range(n_seeks):
            store.scan(key_for(rng.next_below(key_space)), scan_length)
    return phase.result()
