"""db_bench-equivalent microbenchmarks (the paper's Section 5.1).

Four modes, matching LevelDB's tool: fillrandom, fillseq, readrandom,
readseq.  Writes use 16-byte keys and a configurable nominal value size;
reads query keys known to exist.

Every phase accepts a ``batch_size``: chunks of that many consecutive
operations from the *same* deterministic sequence go through the
store's ``multi_*`` entry points instead of one call per op.  Batching
changes only wall-clock time -- the op stream, simulated clock, stats,
and latency samples are byte-identical either way (see
docs/performance.md).
"""

from typing import Optional

from repro.kvstore.values import SizedValue
from repro.sim.rng import XorShiftRng
from repro.workloads.keys import key_for
from repro.workloads.runner import Phase, RunResult


def _check_batch(batch_size: Optional[int]) -> None:
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")


def fill_random(
    store,
    n: int,
    value_size: int,
    seed: int = 1,
    quiesce: bool = False,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Write ``n`` KV pairs in random key order."""
    _check_batch(batch_size)
    order = list(range(n))
    XorShiftRng(seed).shuffle(order)
    with Phase("fillrandom", store.system) as phase:
        if batch_size is None:
            for tag, index in enumerate(order):
                store.put(key_for(index), SizedValue(tag, value_size))
        else:
            for at in range(0, n, batch_size):
                store.multi_put([
                    (key_for(index), SizedValue(tag, value_size))
                    for tag, index in enumerate(
                        order[at:at + batch_size], start=at
                    )
                ])
        if quiesce:
            store.quiesce()
    return phase.result()


def fill_seq(
    store,
    n: int,
    value_size: int,
    quiesce: bool = False,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Write ``n`` KV pairs in ascending key order."""
    _check_batch(batch_size)
    with Phase("fillseq", store.system) as phase:
        if batch_size is None:
            for index in range(n):
                store.put(key_for(index), SizedValue(index, value_size))
        else:
            for at in range(0, n, batch_size):
                store.multi_put([
                    (key_for(index), SizedValue(index, value_size))
                    for index in range(at, min(at + batch_size, n))
                ])
        if quiesce:
            store.quiesce()
    return phase.result()


def read_random(
    store,
    n_reads: int,
    key_space: int,
    seed: int = 2,
    expect_hits: bool = True,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Read ``n_reads`` uniformly random existing keys."""
    _check_batch(batch_size)
    rng = XorShiftRng(seed)
    misses = 0
    with Phase("readrandom", store.system) as phase:
        if batch_size is None:
            for __ in range(n_reads):
                value, __lat = store.get(key_for(rng.next_below(key_space)))
                if value is None:
                    misses += 1
        else:
            for at in range(0, n_reads, batch_size):
                keys = [
                    key_for(rng.next_below(key_space))
                    for __ in range(min(batch_size, n_reads - at))
                ]
                for value, __lat in store.multi_get(keys):
                    if value is None:
                        misses += 1
    if expect_hits and misses:
        raise AssertionError(f"readrandom missed {misses}/{n_reads} existing keys")
    return phase.result()


def read_seq(
    store, n_reads: int, key_space: int, start: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Read keys in ascending order (db_bench's readseq)."""
    _check_batch(batch_size)
    first = 0 if start is None else start
    with Phase("readseq", store.system) as phase:
        if batch_size is None:
            for i in range(n_reads):
                store.get(key_for((first + i) % key_space))
        else:
            for at in range(0, n_reads, batch_size):
                store.multi_get([
                    key_for((first + i) % key_space)
                    for i in range(at, min(at + batch_size, n_reads))
                ])
    return phase.result()


def overwrite(
    store, n: int, key_space: int, value_size: int, seed: int = 3,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Random overwrites of existing keys (db_bench's overwrite)."""
    _check_batch(batch_size)
    rng = XorShiftRng(seed)
    with Phase("overwrite", store.system) as phase:
        if batch_size is None:
            for tag in range(n):
                store.put(
                    key_for(rng.next_below(key_space)),
                    SizedValue(("ow", tag), value_size),
                )
        else:
            for at in range(0, n, batch_size):
                store.multi_put([
                    (
                        key_for(rng.next_below(key_space)),
                        SizedValue(("ow", tag), value_size),
                    )
                    for tag in range(at, min(at + batch_size, n))
                ])
    return phase.result()


def delete_random(
    store, n: int, key_space: int, seed: int = 4,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Random deletions (db_bench's deleterandom)."""
    _check_batch(batch_size)
    rng = XorShiftRng(seed)
    with Phase("deleterandom", store.system) as phase:
        if batch_size is None:
            for __ in range(n):
                store.delete(key_for(rng.next_below(key_space)))
        else:
            for at in range(0, n, batch_size):
                store.multi_delete([
                    key_for(rng.next_below(key_space))
                    for __ in range(min(batch_size, n - at))
                ])
    return phase.result()


def seek_random(
    store, n_seeks: int, key_space: int, scan_length: int = 10, seed: int = 5
) -> RunResult:
    """Random short range scans (db_bench's seekrandom)."""
    rng = XorShiftRng(seed)
    with Phase("seekrandom", store.system) as phase:
        for __ in range(n_seeks):
            store.scan(key_for(rng.next_below(key_space)), scan_length)
    return phase.result()
