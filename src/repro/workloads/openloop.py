"""Open-loop load generation.

YCSB and db_bench are *closed-loop*: the next operation is issued only
when the previous one returns, so write stalls slow the client down
instead of piling up.  Under an *open-loop* arrival process (requests
arrive at a fixed rate whether or not the store is ready) a stall also
queues every request behind it -- the queueing delay that dominates
production tail latency.

``run_open_loop`` replays an operation stream with exponential or fixed
inter-arrival gaps and reports *response times* (completion minus
arrival), which include time spent waiting for the store.  Passing
``rate_per_s=math.inf`` selects the closed-loop fast path: each request
arrives the instant the previous one completes, so responses degenerate
to service times.  Cluster drivers use this to mix saturating and
rate-limited clients through one code path.
"""

import math
from typing import Callable, Optional

from repro.sim.latency import LatencyRecorder, LatencySummary
from repro.sim.rng import XorShiftRng


class OpenLoopResult:
    """Response-time statistics for one open-loop run."""

    def __init__(self, ops: int, offered_rate: float, achieved_rate: float,
                 response: LatencySummary, max_queue_delay: float) -> None:
        self.ops = ops
        self.offered_rate = offered_rate
        self.achieved_rate = achieved_rate
        self.response = response
        self.max_queue_delay = max_queue_delay

    @property
    def saturated(self) -> bool:
        """True when the store could not keep up with the offered load.

        A closed-loop run (``offered_rate=inf``) is by definition paced
        by the store, so it never falls behind its own arrivals.
        """
        if math.isinf(self.offered_rate):
            return False
        return self.achieved_rate < 0.95 * self.offered_rate

    def __repr__(self) -> str:
        return (
            f"OpenLoopResult(offered={self.offered_rate:.0f}/s, "
            f"achieved={self.achieved_rate:.0f}/s, "
            f"p99.9={self.response.p999 * 1e6:.1f}us)"
        )


def run_open_loop(
    store,
    operations: Callable[[int], None],
    n_ops: int,
    rate_per_s: float,
    seed: int = 1,
    poisson: bool = True,
) -> OpenLoopResult:
    """Issue ``n_ops`` calls of ``operations(i)`` at ``rate_per_s``.

    ``operations`` performs exactly one store operation per call (the
    store advances the simulated clock by its service time).  Arrivals
    are scheduled independently; if the store is still busy when a
    request arrives, the request queues and its response time includes
    the wait.  ``rate_per_s=math.inf`` runs closed-loop: every request
    arrives exactly when the previous one finished (no queueing).
    """
    closed_loop = math.isinf(rate_per_s)
    if not closed_loop and rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    clock = store.system.clock
    rng = XorShiftRng(seed)
    recorder = LatencyRecorder()
    arrival = clock.now
    max_queue = 0.0

    for i in range(n_ops):
        if closed_loop:
            # Closed loop: the client blocks on each response, so the
            # next request is issued at the completion instant and the
            # response time is exactly the service time.
            arrival = clock.now
        else:
            if poisson:
                gap = -math.log(1.0 - rng.next_float()) / rate_per_s
            else:
                gap = 1.0 / rate_per_s
            arrival += gap
            # the server (store) is free at clock.now; the request starts
            # at whichever is later
            if arrival > clock.now:
                clock.advance_to(arrival)
                store.system.executor.settle()
        queue_delay = max(0.0, clock.now - arrival)
        max_queue = max(max_queue, queue_delay)
        operations(i)
        recorder.record("response", clock.now, clock.now - arrival)

    samples = recorder.samples_since("response", 0)
    first_arrival = samples[0][0] - samples[0][1]
    total_span = samples[-1][0] - first_arrival
    achieved = n_ops / total_span if total_span > 0 else 0.0
    return OpenLoopResult(
        ops=n_ops,
        offered_rate=rate_per_s,
        achieved_rate=achieved,
        response=recorder.summary("response"),
        max_queue_delay=max_queue,
    )
