"""Persistence substrate: write-ahead logging, arenas, crash injection.

Persistence is modelled in-process: objects held by persistent structures
(WAL records, PMTable arenas, merge state) survive a *simulated* crash,
while volatile state (DRAM MemTables) is discarded by the store's recovery
path.  Crash points are injected cooperatively via :class:`CrashInjector`
so tests can stop a store mid-flush or mid-compaction deterministically.
"""

from repro.persist.arena import Arena
from repro.persist.crash import CrashInjector, SimulatedCrash
from repro.persist.wal import WalRecord, WriteAheadLog

__all__ = [
    "Arena",
    "CrashInjector",
    "SimulatedCrash",
    "WalRecord",
    "WriteAheadLog",
]
