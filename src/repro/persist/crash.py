"""Cooperative crash injection for failure-recovery testing."""

from typing import Dict, Optional


class SimulatedCrash(Exception):
    """Raised at an armed crash point; tests catch it and run recovery."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class CrashInjector:
    """Arms named crash points with hit-count triggers.

    Store code calls :meth:`reach` at interesting instants (for example
    ``"flush.after_copy"``, ``"zero_copy.mid_merge"``).  Nothing happens
    unless a test armed that point; when armed, the Nth hit raises
    :class:`SimulatedCrash`.
    """

    def __init__(self) -> None:
        self._armed: Dict[str, int] = {}
        self._hits: Dict[str, int] = {}

    def arm(self, point: str, after_hits: int = 1) -> None:
        """Crash on the ``after_hits``-th time ``point`` is reached."""
        if after_hits < 1:
            raise ValueError(f"after_hits must be >= 1, got {after_hits}")
        self._armed[point] = after_hits

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point (or all points when ``point`` is ``None``)."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def reach(self, point: str) -> None:
        """Record reaching ``point``; raise if its trigger fires."""
        self._hits[point] = self._hits.get(point, 0) + 1
        threshold = self._armed.get(point)
        if threshold is not None and self._hits[point] >= threshold:
            # Single-shot: a crash point fires once, then disarms, so the
            # recovery path does not immediately re-crash.
            del self._armed[point]
            raise SimulatedCrash(point)

    def rearm(self, point: str, after_hits: int = 1) -> None:
        """Arm ``point`` to fire ``after_hits`` reaches *from now*.

        :meth:`arm` counts cumulative hits since the injector was built,
        so reusing an injector across a chaos schedule's kill/restart
        cycles would need every threshold offset by the hits already
        taken.  ``rearm`` zeroes the point's hit count first, giving the
        one-shot trigger a fresh fuse.
        """
        if after_hits < 1:
            raise ValueError(f"after_hits must be >= 1, got {after_hits}")
        self._hits.pop(point, None)
        self._armed[point] = after_hits

    def reset(self, point: Optional[str] = None) -> None:
        """Disarm and forget hit counts for ``point`` (or every point).

        Unlike :meth:`disarm`, which keeps hit counts so a later
        :meth:`arm` still aims at the cumulative total, ``reset`` returns
        the injector to its just-built state for the point(s) -- the
        chaos harness calls it between schedule entries so pending
        one-shot triggers from a previous incarnation cannot fire into
        the restarted replica.
        """
        if point is None:
            self._armed.clear()
            self._hits.clear()
        else:
            self._armed.pop(point, None)
            self._hits.pop(point, None)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached."""
        return self._hits.get(point, 0)


#: A default injector with nothing armed, shared by stores that were not
#: given one explicitly (reaching points on it is a cheap no-op).
PASSIVE_INJECTOR = CrashInjector()
