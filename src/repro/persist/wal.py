"""Write-ahead log on a persistent device.

Every KV store in the reproduction appends a framed record to the WAL
before touching its DRAM MemTable (except NoveLSM's flat mode, which
updates a persistent MemTable in place and needs no log).  Records carry a
CRC-style integrity flag so torn tails can be modelled; the log charges
sequential writes to its device and its traffic counts toward write
amplification, matching MioDB's theoretical WA bound of 3 (log + flush +
lazy copy).

Fsync policy
------------

``fsync_policy`` selects when appended records become durable:

- ``"sync"`` (default) -- every append is one sequential device write;
  a record is durable the instant ``append`` returns.
- ``"batch:N"`` -- group commit: records buffer in volatile memory and
  the Nth buffered record triggers one sequential write of all buffered
  frames (amortizing the device's per-write latency N ways).
- ``"interval:T"`` -- records buffer until ``T`` simulated seconds have
  passed since the first buffered append, then one write flushes them
  (requires the shared ``clock``).

Buffered records are *not yet durable*: a crash loses them
(:meth:`WriteAheadLog.crash_drop_unsynced`), replay skips them, and
they occupy no device bytes until synced.  ``append_batch`` is always a
commit barrier: it flushes any buffered records first.
"""

from typing import Iterator, List, Optional, Tuple

# Frame: 8B seq + 4B key len + 4B value len + 1B kind/CRC.
RECORD_HEADER_BYTES = 17

#: The fsync policy names accepted by :func:`parse_fsync_policy`.
FSYNC_MODES = ("sync", "batch", "interval")


def parse_fsync_policy(policy: str) -> Tuple[str, float]:
    """``"sync" | "batch:N" | "interval:T"`` -> ``(mode, parameter)``.

    Raises ``ValueError`` on anything else, so a typo'd CLI flag fails
    at store construction rather than silently meaning ``sync``.
    """
    if policy == "sync":
        return "sync", 0.0
    mode, sep, arg = policy.partition(":")
    if sep and mode == "batch":
        try:
            n = int(arg)
        except ValueError:
            n = 0
        if n >= 1:
            return "batch", float(n)
    elif sep and mode == "interval":
        try:
            t = float(arg)
        except ValueError:
            t = 0.0
        if t > 0:
            return "interval", t
    raise ValueError(
        f"bad fsync policy {policy!r} (expected 'sync', 'batch:N' with "
        f"N >= 1, or 'interval:T' with T > 0 seconds)"
    )


class WalRecord:
    """One framed log record.

    Records written as part of an atomic batch share a ``batch_id``; the
    batch's last record carries ``commit=True``.  Replay only surfaces a
    batch whose commit record is intact.  ``synced`` is False while the
    record sits in a group-commit buffer (not yet durable).
    """

    __slots__ = (
        "seq", "key", "value", "value_bytes", "torn", "batch_id", "commit",
        "synced",
    )

    def __init__(self, seq: int, key: bytes, value, value_bytes: int) -> None:
        self.seq = seq
        self.key = key
        self.value = value
        self.value_bytes = value_bytes
        self.torn = False
        self.batch_id = None
        self.commit = True
        self.synced = True

    @property
    def frame_bytes(self) -> int:
        """Size of the record on the device."""
        return RECORD_HEADER_BYTES + len(self.key) + self.value_bytes

    def __repr__(self) -> str:
        return f"WalRecord(seq={self.seq}, key={self.key!r})"


class WriteAheadLog:
    """Sequential, truncatable log of KV updates."""

    def __init__(
        self,
        device,
        label: str = "wal",
        fsync_policy: str = "sync",
        clock=None,
    ) -> None:
        self.device = device
        self.label = label
        self._records: List[WalRecord] = []
        self.appended_bytes = 0
        self._next_batch_id = 1
        self.fsync_policy = fsync_policy
        self._mode, self._fsync_param = parse_fsync_policy(fsync_policy)
        if self._mode == "interval" and clock is None:
            raise ValueError(
                f"fsync policy {fsync_policy!r} needs the shared clock"
            )
        self._clock = clock
        self._pending: List[WalRecord] = []
        self._window_start: Optional[float] = None

    def append(self, seq: int, key: bytes, value, value_bytes: int) -> float:
        """Append one record; returns the simulated write duration.

        Under a group-commit policy the duration is 0.0 for buffered
        appends and the whole group's write time on the append that
        triggers the flush.
        """
        record = WalRecord(seq, key, value, value_bytes)
        self._records.append(record)
        frame = RECORD_HEADER_BYTES + len(key) + value_bytes
        self.appended_bytes += frame
        if self._mode == "sync":
            self.device.allocate(frame)
            return self.device.write(frame, sequential=True)
        record.synced = False
        self._pending.append(record)
        if self._sync_due():
            return self.sync()
        return 0.0

    def _sync_due(self) -> bool:
        if self._mode == "batch":
            return len(self._pending) >= int(self._fsync_param)
        # interval: the flush window opens at the first buffered append.
        if self._window_start is None:
            self._window_start = self._clock.now
        return self._clock.now >= self._window_start + self._fsync_param

    def sync(self) -> float:
        """Flush buffered records to the device; returns write duration.

        A no-op (0.0) when nothing is buffered -- including always under
        the ``sync`` policy.
        """
        if not self._pending:
            self._window_start = None
            return 0.0
        total = 0
        for record in self._pending:
            record.synced = True
            total += record.frame_bytes
        self._pending = []
        self._window_start = None
        self.device.allocate(total)
        return self.device.write(total, sequential=True)

    def append_batch(self, items) -> float:
        """Append an atomic batch of ``(seq, key, value, value_bytes)``.

        The batch commits with its final record; replay drops a batch
        whose commit never made it to the log.  Acts as a commit barrier
        under group-commit policies (buffered records flush first).
        Returns the write duration (one sequential write of all frames).
        """
        if not items:
            return 0.0
        barrier = self.sync()
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        total = 0
        for i, (seq, key, value, value_bytes) in enumerate(items):
            record = WalRecord(seq, key, value, value_bytes)
            record.batch_id = batch_id
            record.commit = i == len(items) - 1
            self._records.append(record)
            total += record.frame_bytes
        self.appended_bytes += total
        self.device.allocate(total)
        return barrier + self.device.write(total, sequential=True)

    def truncate_through(self, seq: int) -> int:
        """Drop records with ``record.seq <= seq`` (data safely flushed).

        Returns the number of bytes released on the device.  Buffered
        (unsynced) records are dropped without a release -- they never
        occupied device bytes.
        """
        kept: List[WalRecord] = []
        freed = 0
        dropped_pending = False
        for record in self._records:
            if record.seq <= seq:
                if record.synced:
                    freed += record.frame_bytes
                else:
                    dropped_pending = True
            else:
                kept.append(record)
        self._records = kept
        if dropped_pending:
            self._pending = [r for r in self._pending if r.seq > seq]
            if not self._pending:
                self._window_start = None
        if freed:
            self.device.release(freed)
        return freed

    def tear_tail(self, count: int = 1) -> None:
        """Mark the last ``count`` records as torn (partially written).

        Models a crash in the middle of an append: replay must stop at the
        first torn record.
        """
        if count <= 0:
            return
        for record in self._records[-count:]:
            record.torn = True

    def crash_drop_unsynced(self) -> int:
        """Lose every buffered (unsynced) record, as a crash would.

        Returns the number of records dropped.  ``sync`` policy never
        buffers, so there the call is a no-op returning 0.
        """
        if not self._pending:
            return 0
        dropped = len(self._pending)
        self._records = [r for r in self._records if r.synced]
        self._pending = []
        self._window_start = None
        return dropped

    def replay(self) -> Iterator[WalRecord]:
        """Yield intact durable records in append order, stopping at a torn one.

        Batch records are buffered until their commit record: a batch
        whose commit was torn away is dropped entirely (atomicity).
        Unsynced records are skipped -- they were never durable.
        """
        pending: List[WalRecord] = []
        for record in self._records:
            if record.torn:
                return
            if not record.synced:
                continue
            if record.batch_id is None:
                yield record
                continue
            pending.append(record)
            if record.commit:
                for buffered in pending:
                    yield buffered
                pending = []

    def records_since(self, seq: int) -> List[WalRecord]:
        """Intact records with ``record.seq > seq``, in append order.

        The replication layer's shipping cursor: the leader's group pulls
        fresh frames with this after every acknowledged operation.
        """
        return [r for r in self._records if r.seq > seq and not r.torn]

    @property
    def record_count(self) -> int:
        """Records currently retained (not yet truncated)."""
        return len(self._records)

    @property
    def pending_count(self) -> int:
        """Buffered records awaiting a group-commit flush."""
        return len(self._pending)

    @property
    def live_bytes(self) -> int:
        """Bytes the log currently occupies on its device."""
        return sum(r.frame_bytes for r in self._records if r.synced)

    def last_seq(self) -> Optional[int]:
        """Sequence number of the newest intact record, if any."""
        for record in reversed(self._records):
            if not record.torn:
                return record.seq
        return None

    def last_synced_seq(self) -> Optional[int]:
        """Sequence number of the newest durable record, if any."""
        for record in reversed(self._records):
            if not record.torn and record.synced:
                return record.seq
        return None

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.label!r}, records={len(self._records)})"
