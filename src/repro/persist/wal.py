"""Write-ahead log on a persistent device.

Every KV store in the reproduction appends a framed record to the WAL
before touching its DRAM MemTable (except NoveLSM's flat mode, which
updates a persistent MemTable in place and needs no log).  Records carry a
CRC-style integrity flag so torn tails can be modelled; the log charges
sequential writes to its device and its traffic counts toward write
amplification, matching MioDB's theoretical WA bound of 3 (log + flush +
lazy copy).
"""

from typing import Iterator, List, Optional

# Frame: 8B seq + 4B key len + 4B value len + 1B kind/CRC.
RECORD_HEADER_BYTES = 17


class WalRecord:
    """One framed log record.

    Records written as part of an atomic batch share a ``batch_id``; the
    batch's last record carries ``commit=True``.  Replay only surfaces a
    batch whose commit record is intact.
    """

    __slots__ = ("seq", "key", "value", "value_bytes", "torn", "batch_id", "commit")

    def __init__(self, seq: int, key: bytes, value, value_bytes: int) -> None:
        self.seq = seq
        self.key = key
        self.value = value
        self.value_bytes = value_bytes
        self.torn = False
        self.batch_id = None
        self.commit = True

    @property
    def frame_bytes(self) -> int:
        """Size of the record on the device."""
        return RECORD_HEADER_BYTES + len(self.key) + self.value_bytes

    def __repr__(self) -> str:
        return f"WalRecord(seq={self.seq}, key={self.key!r})"


class WriteAheadLog:
    """Sequential, truncatable log of KV updates."""

    def __init__(self, device, label: str = "wal") -> None:
        self.device = device
        self.label = label
        self._records: List[WalRecord] = []
        self.appended_bytes = 0
        self._next_batch_id = 1

    def append(self, seq: int, key: bytes, value, value_bytes: int) -> float:
        """Append one record; returns the simulated write duration."""
        record = WalRecord(seq, key, value, value_bytes)
        self._records.append(record)
        frame = RECORD_HEADER_BYTES + len(key) + value_bytes
        self.appended_bytes += frame
        self.device.allocate(frame)
        return self.device.write(frame, sequential=True)

    def append_batch(self, items) -> float:
        """Append an atomic batch of ``(seq, key, value, value_bytes)``.

        The batch commits with its final record; replay drops a batch
        whose commit never made it to the log.  Returns the write
        duration (one sequential write of all frames).
        """
        if not items:
            return 0.0
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        total = 0
        for i, (seq, key, value, value_bytes) in enumerate(items):
            record = WalRecord(seq, key, value, value_bytes)
            record.batch_id = batch_id
            record.commit = i == len(items) - 1
            self._records.append(record)
            total += record.frame_bytes
        self.appended_bytes += total
        self.device.allocate(total)
        return self.device.write(total, sequential=True)

    def truncate_through(self, seq: int) -> int:
        """Drop records with ``record.seq <= seq`` (data safely flushed).

        Returns the number of bytes released on the device.
        """
        kept: List[WalRecord] = []
        freed = 0
        for record in self._records:
            if record.seq <= seq:
                freed += record.frame_bytes
            else:
                kept.append(record)
        self._records = kept
        if freed:
            self.device.release(freed)
        return freed

    def tear_tail(self, count: int = 1) -> None:
        """Mark the last ``count`` records as torn (partially written).

        Models a crash in the middle of an append: replay must stop at the
        first torn record.
        """
        if count <= 0:
            return
        for record in self._records[-count:]:
            record.torn = True

    def replay(self) -> Iterator[WalRecord]:
        """Yield intact records in append order, stopping at a torn one.

        Batch records are buffered until their commit record: a batch
        whose commit was torn away is dropped entirely (atomicity).
        """
        pending: List[WalRecord] = []
        for record in self._records:
            if record.torn:
                return
            if record.batch_id is None:
                yield record
                continue
            pending.append(record)
            if record.commit:
                for buffered in pending:
                    yield buffered
                pending = []

    @property
    def record_count(self) -> int:
        """Records currently retained (not yet truncated)."""
        return len(self._records)

    @property
    def live_bytes(self) -> int:
        """Bytes the log currently occupies on its device."""
        return sum(r.frame_bytes for r in self._records)

    def last_seq(self) -> Optional[int]:
        """Sequence number of the newest intact record, if any."""
        for record in reversed(self._records):
            if not record.torn:
                return record.seq
        return None

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.label!r}, records={len(self._records)})"
