"""Contiguous allocations on a simulated device.

MioDB allocates MemTables and PMTables as same-sized contiguous regions so
a whole MemTable can be flushed with a single ``memcpy`` (one-piece
flushing).  An :class:`Arena` represents one such region: it reserves
space on its device at creation and returns it when released.
"""

from typing import Optional


class Arena:
    """A fixed-size region of one device's space."""

    def __init__(self, device, size: int, now: float = 0.0, label: str = "") -> None:
        if size < 0:
            raise ValueError(f"arena size must be >= 0, got {size}")
        self.device = device
        self.size = size
        self.label = label
        self.released = False
        device.allocate(size, now)

    def release(self, now: float = 0.0) -> int:
        """Return the space to the device; idempotent."""
        if self.released:
            return 0
        self.device.release(self.size, now)
        self.released = True
        return self.size

    def grow(self, extra: int, now: float = 0.0) -> None:
        """Extend the arena (used by the growing data repository)."""
        if extra < 0:
            raise ValueError(f"cannot grow by negative bytes: {extra}")
        if self.released:
            raise ValueError("cannot grow a released arena")
        self.device.allocate(extra, now)
        self.size += extra

    def shrink(self, nbytes: int, now: float = 0.0) -> None:
        """Give back part of the arena (in-place garbage collection)."""
        if nbytes < 0 or nbytes > self.size:
            raise ValueError(f"cannot shrink {self.size}B arena by {nbytes}B")
        if self.released:
            raise ValueError("cannot shrink a released arena")
        self.device.release(nbytes, now)
        self.size -= nbytes

    def __repr__(self) -> str:
        state = "released" if self.released else "live"
        return f"Arena({self.label!r}, {self.size}B on {self.device.name}, {state})"


class ArenaPool:
    """Optional bookkeeping for a family of arenas (usage reporting)."""

    def __init__(self) -> None:
        self.arenas = []

    def create(self, device, size: int, now: float = 0.0, label: str = "") -> Arena:
        """Allocate and track a new arena."""
        arena = Arena(device, size, now, label)
        self.arenas.append(arena)
        return arena

    def live_bytes(self) -> int:
        """Total size of arenas not yet released."""
        return sum(a.size for a in self.arenas if not a.released)

    def prune(self) -> None:
        """Forget released arenas."""
        self.arenas = [a for a in self.arenas if not a.released]
