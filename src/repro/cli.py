"""Command-line interface.

Run workloads against any store in the library from a shell::

    python -m repro dbbench --store miodb --n 8192
    python -m repro ycsb --store all --workloads A,C --records 4096
    python -m repro compare
    python -m repro trace --store miodb --n 2048 --out trace.json
    python -m repro analyze --store miodb --mode ycsb-a
    python -m repro slo --store miodb --threshold-us 10 --target 0.999
    python -m repro cluster --shards 4 --followers 2 --ack quorum
    python -m repro chaos --store miodb --seeds 3,7,42 --report chaos.json
    python -m repro info
    python -m repro perf --label after-change
    python -m repro bench --jobs 8
    python -m repro check --strict --races

Every run is deterministic (simulated time); throughput and latency
numbers are directly comparable across stores and invocations, and
trace artifacts (``repro trace`` or ``--trace FILE`` on the workload
commands) are byte-identical across runs with the same seed.
"""

import argparse
import pathlib
import sys
from typing import List

from repro.bench import STORE_NAMES, default_scale, format_table, make_store
from repro.mem.profiles import DRAM_PROFILE, NVME_SSD_PROFILE, OPTANE_NVM_PROFILE
from repro.workloads import (
    YCSB_WORKLOADS,
    fill_random,
    fill_seq,
    load_phase,
    read_random,
    read_seq,
    run_workload,
)


def _stores_arg(value: str) -> List[str]:
    if value == "all":
        return list(STORE_NAMES)
    names = [v.strip() for v in value.split(",") if v.strip()]
    for name in names:
        if name not in STORE_NAMES:
            raise argparse.ArgumentTypeError(
                f"unknown store {name!r}; choose from {STORE_NAMES} or 'all'"
            )
    return names


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", type=_stores_arg, default=["miodb"],
        help="store name, comma list, or 'all'",
    )
    parser.add_argument("--value-size", type=int, default=4096)
    parser.add_argument("--ssd", action="store_true",
                        help="use the DRAM-NVM-SSD hierarchy")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome/Perfetto trace of each store's run to FILE "
             "(with multiple stores the store name is suffixed)",
    )


def _trace_path(base: str, store_name: str, multi: bool) -> pathlib.Path:
    """Per-store output path: ``trace.json`` -> ``trace-miodb.json``."""
    path = pathlib.Path(base)
    if not multi:
        return path
    return path.with_name(f"{path.stem}-{store_name}{path.suffix or '.json'}")


def _start_trace(system, args):
    """Attach a recorder when ``--trace`` was given, else return None."""
    return system.attach_tracing() if getattr(args, "trace", None) else None


def _finish_trace(recorder, args, store_name: str, multi: bool) -> None:
    if recorder is None:
        return
    from repro.obs import write_chrome_trace

    recorder.detach()
    out = _trace_path(args.trace, store_name, multi)
    write_chrome_trace(recorder, out, process_name=store_name)
    print(f"# trace: {out} ({len(recorder)} events)", file=sys.stderr)


def _batch_arg(args):
    """``--batch-size 0`` means the per-op loop (no coalescing)."""
    return args.batch_size if args.batch_size > 0 else None


def _live_overrides(args) -> dict:
    """LiveConfig keyword overrides from the shared ``--live-*`` flags."""
    overrides = {"seed": args.seed}
    if args.live_window_us > 0:
        overrides["window_s"] = args.live_window_us * 1e-6
    if args.head_rate > 0:
        overrides["head_rate"] = args.head_rate
    if args.slo_threshold_us > 0:
        overrides["slo_threshold_s"] = args.slo_threshold_us * 1e-6
    if args.stall_alert_us > 0:
        overrides["stall_alert_s"] = args.stall_alert_us * 1e-6
    return overrides


def _add_live_flags(parser) -> None:
    parser.add_argument("--live", action="store_true",
                        help="attach the sampled live-telemetry plane "
                             "instead of full tracing")
    parser.add_argument("--live-window-us", type=float, default=0.0,
                        help="aggregation window in simulated us "
                             "(0 = default 1000)")
    parser.add_argument("--head-rate", type=float, default=0.0,
                        help="head-sampling rate in (0, 1] (0 = default 1/64)")
    parser.add_argument("--slo-threshold-us", type=float, default=0.0,
                        help="per-op latency SLO for burn-rate flight "
                             "triggers (0 = off)")
    parser.add_argument("--stall-alert-us", type=float, default=0.0,
                        help="stall duration that triggers a flight dump "
                             "(0 = off)")
    parser.add_argument("--openmetrics", default=None, metavar="FILE",
                        help="write the OpenMetrics exposition document")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="write flight-recorder dump JSON files here")


def _write_flight_dumps(recorders, labels, out_dir) -> List[pathlib.Path]:
    """One JSON file per flight dump; deterministic names and bytes."""
    from repro.obs.live import FlightRecorder

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for label, recorder in zip(labels, recorders):
        for i, doc in enumerate(recorder.flight.dumps):
            path = out / f"flight-{label}-{i}-{doc['trigger']}.json"
            path.write_text(FlightRecorder.dump_json(doc))
            written.append(path)
    return written


def cmd_dbbench(args) -> int:
    scale = default_scale()
    n = args.n or scale.records_for(args.value_size)
    batch = _batch_arg(args)
    rows = []
    multi = len(args.store) > 1
    for name in args.store:
        store, system = make_store(
            name, scale, ssd=args.ssd, fsync_policy=args.fsync_policy
        )
        recorder = _start_trace(system, args)
        if args.mode in ("fillrandom", "all"):
            w = fill_random(store, n, args.value_size, seed=args.seed,
                            batch_size=batch)
        else:
            w = fill_seq(store, n, args.value_size, batch_size=batch)
        store.quiesce()
        reads = min(args.reads, n)
        r = (
            read_random(store, reads, n, seed=args.seed + 1, batch_size=batch)
            if args.mode != "fillseq"
            else read_seq(store, reads, n, batch_size=batch)
        )
        _finish_trace(recorder, args, name, multi)
        rows.append(
            [name, w.kiops, w.latency.p999 * 1e6, r.kiops,
             r.latency.mean * 1e6, system.write_amplification()]
        )
    print(format_table(
        ["store", "write_KIOPS", "write_p999_us", "read_KIOPS",
         "read_avg_us", "WA"], rows))
    return 0


def cmd_ycsb(args) -> int:
    scale = default_scale()
    n = args.records or scale.records_for(args.value_size)
    workloads = [w.strip().upper() for w in args.workloads.split(",")]
    for wl in workloads:
        if wl not in YCSB_WORKLOADS:
            print(f"unknown YCSB workload {wl!r}", file=sys.stderr)
            return 2
    batch = _batch_arg(args)
    rows = []
    multi = len(args.store) > 1
    for name in args.store:
        store, system = make_store(name, scale, ssd=args.ssd)
        recorder = _start_trace(system, args)
        load = load_phase(store, n, args.value_size, seed=args.seed,
                          batch_size=batch)
        row = [name, load.kiops]
        for wl in workloads:
            result = run_workload(
                store, YCSB_WORKLOADS[wl], args.ops, n, args.value_size,
                seed=args.seed + 7, batch_size=batch,
            )
            row.append(result.kiops)
        _finish_trace(recorder, args, name, multi)
        rows.append(row)
    print(format_table(
        ["store", "load_KIOPS"] + [f"{w}_KIOPS" for w in workloads], rows))
    return 0


def cmd_compare(args) -> int:
    scale = default_scale()
    n = scale.records_for(args.value_size) // 2
    rows = []
    analyses = []
    multi = len(args.store) > 1
    for name in args.store:
        store, system = make_store(name, scale, ssd=args.ssd)
        recorder = (
            system.attach_tracing()
            if (args.trace or args.analyze)
            else None
        )
        w = fill_random(store, n, args.value_size, seed=args.seed)
        store.quiesce()
        r = read_random(store, min(1000, n), n)
        if recorder is not None and args.analyze:
            from repro.obs.analyze import analyze_run, render_analysis

            recorder.detach()
            doc = analyze_run(recorder, system, name)
            analyses.append(render_analysis(doc, profile=False))
        if args.trace:
            _finish_trace(recorder, args, name, multi)
        elif recorder is not None:
            recorder.detach()
        rows.append(
            [name, w.kiops, r.kiops, w.latency.p999 * 1e6,
             system.write_amplification(),
             # The paper distinguishes interval stalls (writes blocked
             # on a flush/L0-stop) from cumulative slowdowns (per-write
             # delays); report them separately.
             system.stats.get("stall.interval_s"),
             system.stats.get("stall.cumulative_s")]
        )
    print(format_table(
        ["store", "write_KIOPS", "read_KIOPS", "write_p999_us", "WA",
         "stall_interval_s", "stall_cumulative_s"], rows))
    for text in analyses:
        print()
        print(text, end="")
    return 0


def cmd_trace(args) -> int:
    """Traced run of a deterministic workload; writes trace artifacts."""
    from repro.obs import (
        bandwidth_csv,
        gantt,
        queue_depth_csv,
        run_traced,
        write_artifact,
        write_chrome_trace,
        write_metrics,
    )

    multi = len(args.store) > 1
    for name in args.store:
        store, system, recorder = run_traced(
            name,
            n=args.n,
            value_size=args.value_size,
            mode=args.mode,
            reads=args.reads,
            seed=args.seed,
            ssd=args.ssd,
            live=_live_overrides(args) if args.live else None,
        )
        out = _trace_path(args.out, name, multi)
        write_chrome_trace(recorder, out, process_name=name)
        print(f"# trace: {out} ({len(recorder)} events)", file=sys.stderr)
        if args.live:
            meta = recorder.sampling_meta()
            print(
                f"# sampled: {meta['ops_retained']}/{meta['ops_seen']} ops "
                f"retained (head={meta['retained_head']} "
                f"tail={meta['retained_tail']} "
                f"stall={meta['retained_stall']})",
                file=sys.stderr,
            )
            if args.openmetrics:
                from repro.obs.live import write_openmetrics

                path = _trace_path(args.openmetrics, name, multi)
                write_openmetrics(path, recorder, labels=["0"])
                print(f"# openmetrics: {path}", file=sys.stderr)
            if args.flight_dir:
                written = _write_flight_dumps(
                    [recorder], [name], args.flight_dir
                )
                print(f"# flight dumps: {len(written)} in {args.flight_dir}",
                      file=sys.stderr)
        if args.metrics:
            path = _trace_path(args.metrics, name, multi)
            write_metrics(system, path, recorder)
            print(f"# metrics: {path}", file=sys.stderr)
        if args.bandwidth_csv:
            path = _trace_path(args.bandwidth_csv, name, multi)
            write_artifact(path, bandwidth_csv(recorder))
            print(f"# bandwidth: {path}", file=sys.stderr)
        if args.queue_csv:
            path = _trace_path(args.queue_csv, name, multi)
            write_artifact(path, queue_depth_csv(recorder))
            print(f"# queue depth: {path}", file=sys.stderr)
        if args.gantt:
            print(f"## {name}")
            print(gantt(recorder))
    return 0


def cmd_analyze(args) -> int:
    """Traced run + latency attribution / critical-path / WA report."""
    from repro.obs import run_traced, write_artifact
    from repro.obs.analyze import analysis_json, analyze_run, render_analysis

    multi = len(args.store) > 1
    for name in args.store:
        store, system, recorder = run_traced(
            name,
            n=args.n,
            value_size=args.value_size,
            mode=args.mode,
            reads=args.reads,
            seed=args.seed,
            ssd=args.ssd,
        )
        doc = analyze_run(recorder, system, name, top=args.top)
        if args.json:
            path = _trace_path(args.json, name, multi)
            write_artifact(path, analysis_json(doc))
            print(f"# analysis: {path}", file=sys.stderr)
        print(render_analysis(doc, profile=not args.no_profile), end="")
        if multi and name != args.store[-1]:
            print()
    return 0


def cmd_slo(args) -> int:
    """Traced run + SLO compliance, burn-rate alert log, rolling tails."""
    from repro.obs import run_traced, write_artifact
    from repro.obs.analyze import (
        BurnRateRule,
        SloMonitor,
        SloObjective,
        analysis_json,
        attribute_ops,
        render_slo,
        rolling_series,
        slo_document,
    )

    multi = len(args.store) > 1
    for name in args.store:
        store, system, recorder = run_traced(
            name,
            n=args.n,
            value_size=args.value_size,
            mode=args.mode,
            reads=args.reads,
            seed=args.seed,
            ssd=args.ssd,
        )
        end_s = system.clock.now
        samples = [
            (attr.end, attr.measured_s)
            for attr in attribute_ops(recorder)
            if args.kind is None or attr.kind == args.kind
        ]
        # Windows default to fractions of the simulated run so one flag
        # set works at any scale; explicit --short-ms/--long-ms override.
        long_s = args.long_ms * 1e-3 if args.long_ms else end_s / 10
        short_s = args.short_ms * 1e-3 if args.short_ms else long_s / 5
        objective = SloObjective(
            args.objective, args.threshold_us * 1e-6, target=args.target
        )
        monitor = SloMonitor(
            objective, [BurnRateRule(short_s, long_s, args.factor)]
        )
        series = rolling_series(
            samples,
            end_s,
            long_s,
            bins=args.bins,
            min_kiops=args.min_kiops,
        )
        doc = slo_document(monitor.run(samples), series, name, end_s)
        if args.json:
            path = _trace_path(args.json, name, multi)
            write_artifact(path, analysis_json(doc))
            print(f"# slo: {path}", file=sys.stderr)
        print(render_slo(doc), end="")
        if multi and name != args.store[-1]:
            print()
    return 0


def cmd_cluster(args) -> int:
    """Drive a sharded cluster: routed multi-client load, optional rebalance."""
    from repro.cluster import (
        AdmissionControl,
        ClientSpec,
        Cluster,
        ShardRouter,
        cluster_metrics_json,
        run_cluster,
        write_cluster_trace,
    )
    from repro.kvstore.values import SizedValue
    from repro.workloads.keys import key_for

    store_name = args.store[0]
    if len(args.store) > 1:
        print("cluster drives one store per run; pick one with --store",
              file=sys.stderr)
        return 2
    replication = None
    if args.followers > 0:
        from repro.replication import ReplicationConfig

        replication = ReplicationConfig(
            followers=args.followers,
            ack_policy=args.ack,
            read_policy=args.read_policy,
        )
    cluster = Cluster(
        store_name,
        n_shards=args.shards,
        ssd=args.ssd,
        replication=replication,
        fsync_policy=args.fsync_policy,
    )
    router = ShardRouter(
        cluster,
        placement_name=args.placement,
        key_space=args.key_space,
        vnodes_per_shard=args.vnodes,
    )
    if args.live and (args.trace or args.analyze):
        print("--live replaces full tracing; drop --trace/--analyze or "
              "--live", file=sys.stderr)
        return 2
    recorders = (
        cluster.attach_tracing() if (args.trace or args.analyze) else None
    )
    # Preload the key space so reads hit and rebalances have keys to move.
    for i in range(args.preload):
        router.put(key_for(i), SizedValue(("preload", i), args.value_size))
    router.quiesce()
    router.reset_window()

    live_recorders = dashboard = None
    if args.live:
        # Attached after the preload: the live plane watches steady-state
        # serving (its window cursor skips pre-attach samples anyway).
        live_recorders = cluster.attach_live(**_live_overrides(args))
        from repro.obs.live import LiveDashboard

        refresh_s = (
            args.live_refresh_us * 1e-6 if args.live_refresh_us > 0
            else max(4e-3, 4 * live_recorders[0].config.window_s)
        )
        dashboard = LiveDashboard(
            live_recorders,
            labels=[str(s.shard_id) for s in cluster.shards],
            refresh_s=refresh_s,
            sink=lambda frame: print(frame, end=""),
            groups=cluster.groups if replication is not None else None,
        )

    theta = args.theta if args.theta > 0 else None
    rate = float("inf") if args.rate <= 0 else args.rate
    clients = [
        ClientSpec(
            n_ops=args.ops,
            rate_per_s=rate,
            key_space=args.key_space,
            read_fraction=args.read_frac,
            theta=theta,
            value_size=args.value_size,
            seed=args.seed + i,
        )
        for i in range(args.clients)
    ]
    admission = AdmissionControl(
        max_queue_depth=args.max_queue_depth, policy=args.admission
    )
    sessions = (
        [router.session() for __ in clients]
        if replication is not None
        else None
    )
    result = run_cluster(
        router,
        clients,
        admission=admission,
        rebalance_every=args.rebalance_every,
        hot_factor=args.hot_factor,
        batch_limit=_batch_arg(args),
        dashboard=dashboard,
        sessions=sessions,
    )
    router.quiesce()
    if dashboard is not None:
        dashboard.force_refresh(cluster.clock.now)

    rows = [
        [d["shard"], d["ops"], sum(d["drops"].values()), d["max_queue_depth"],
         d["p50_us"], d["p99_us"], d["p999_us"]]
        for d in result.per_shard
    ]
    print(format_table(
        ["shard", "ops", "drops", "max_q", "p50_us", "p99_us", "p999_us"],
        rows))
    drops = ", ".join(f"{k}={v}" for k, v in result.drops.items()) or "none"
    print(
        f"\ncluster: {store_name} shards={args.shards} "
        f"placement={router.placement.name}\n"
        f"completed {result.completed}/{result.offered} "
        f"({result.throughput_kiops:.1f} KIOPS over "
        f"{result.duration_s * 1e3:.2f} sim-ms), drops: {drops}, "
        f"rebalances: {len(result.rebalances)}"
    )
    if replication is not None:
        stats = cluster.stats
        lags = ", ".join(
            f"g{g.group_id}={g.lag()}" for g in cluster.groups
        )
        print(
            f"replication: K={args.followers} ack={args.ack} "
            f"read={args.read_policy}, "
            f"elections={int(stats.get('repl.elections'))}, "
            f"lag_peak={int(stats.get('repl.lag_peak'))} records, "
            f"final lag: {lags}"
        )
    if args.metrics:
        path = pathlib.Path(args.metrics)
        path.write_text(cluster_metrics_json(cluster, router, result))
        print(f"# metrics: {path}", file=sys.stderr)
    if live_recorders is not None:
        cluster.detach_tracing()
        if args.openmetrics:
            from repro.cluster import cluster_openmetrics_text
            from repro.obs import write_artifact

            write_artifact(
                args.openmetrics,
                cluster_openmetrics_text(cluster, live_recorders),
                overwrite=True,
            )
            print(f"# openmetrics: {args.openmetrics}", file=sys.stderr)
        if args.flight_dir:
            labels = [str(s.shard_id) for s in cluster.shards]
            written = _write_flight_dumps(
                live_recorders, labels, args.flight_dir
            )
            print(f"# flight dumps: {len(written)} in {args.flight_dir}",
                  file=sys.stderr)
    if recorders is not None:
        cluster.detach_tracing()
        if args.trace:
            write_cluster_trace(cluster, recorders, args.trace)
            events = sum(len(r) for r in recorders)
            print(f"# trace: {args.trace} ({events} events)", file=sys.stderr)
        if args.analyze:
            from repro.obs.analyze import (
                analysis_json,
                analyze_cluster,
                render_cluster_analysis,
            )

            doc = analyze_cluster(cluster, recorders)
            if args.analyze_json:
                from repro.obs import write_artifact

                path = write_artifact(args.analyze_json, analysis_json(doc))
                print(f"# analysis: {path}", file=sys.stderr)
            print()
            print(render_cluster_analysis(doc), end="")
    return 0


def cmd_chaos(args) -> int:
    """Seeded kill/restart chaos scenarios with post-run state audits."""
    import json

    from repro.replication import run_chaos

    store_name = args.store[0]
    if len(args.store) > 1:
        print("chaos drives one store per run; pick one with --store",
              file=sys.stderr)
        return 2
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    if not seeds:
        print("--seeds must name at least one seed", file=sys.stderr)
        return 2
    reports = []
    rows = []
    all_ok = True
    trace_paths = []
    for seed in seeds:
        trace = None
        if args.trace:
            base = pathlib.Path(args.trace)
            if len(seeds) > 1:
                trace = str(base.with_name(
                    f"{base.stem}-s{seed}{base.suffix}"
                ))
            else:
                trace = str(base)
            trace_paths.append(trace)
        report = run_chaos(
            store_name,
            seed=seed,
            shards=args.shards,
            followers=args.followers,
            ops=args.ops,
            kills=args.kills,
            restart_gap=args.restart_gap,
            ack_policy=args.ack,
            read_policy=args.read_policy,
            trace=trace,
        )
        reports.append(report)
        all_ok = all_ok and report["ok"]
        checks = report["checks"]
        rows.append([
            seed,
            report["completed"],
            int(report["kills"]),
            int(report["restarts"]),
            int(report["elections"]),
            int(report["acked_lost"]),
            "yes" if checks["oracle_match"] else "NO",
            "yes" if checks["followers_match"] else "NO",
            "PASS" if report["ok"] else "FAIL",
        ])
    print(format_table(
        ["seed", "completed", "kills", "restarts", "elections",
         "acked_lost", "oracle", "followers", "verdict"], rows))
    for path in trace_paths:
        print(f"# trace: {path}", file=sys.stderr)
    print(
        f"\nchaos: {store_name} shards={args.shards} K={args.followers} "
        f"ack={args.ack} read={args.read_policy} -- "
        f"{'all scenarios PASS' if all_ok else 'FAILURES above'}"
    )
    if args.report:
        doc = {
            "schema": 1,
            "store": store_name,
            "shards": args.shards,
            "followers": args.followers,
            "ack": args.ack,
            "read_policy": args.read_policy,
            "reports": reports,
        }
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"# chaos report: {path}", file=sys.stderr)
    return 0 if all_ok else 1


def cmd_check(args) -> int:
    """Static analysis: determinism lint, API contracts, race smoke."""
    import pathlib as _pathlib

    from repro.check import (
        apply_baseline,
        check_contracts,
        default_baseline_path,
        load_baseline,
        race_smoke,
        render_findings,
        run_lint,
        save_baseline,
    )

    failed = False
    findings = []
    if not args.skip_lint:
        root = _pathlib.Path(args.path) if args.path else None
        findings.extend(run_lint(root))
    if not args.skip_contracts:
        findings.extend(check_contracts())
    baseline_path = (
        _pathlib.Path(args.baseline) if args.baseline
        else default_baseline_path()
    )
    if args.update_baseline:
        target = save_baseline(findings, baseline_path)
        print(f"# baseline: {target} ({len(findings)} fingerprints)",
              file=sys.stderr)
        return 0
    fresh, suppressed = apply_baseline(findings, load_baseline(baseline_path))
    if fresh:
        print(render_findings(fresh))
        failed = failed or args.strict or any(
            f.severity == "error" for f in fresh
        )
    summary = f"check: {len(fresh)} finding(s)"
    if suppressed:
        summary += f", {suppressed} baselined"
    print(summary)
    if args.races:
        results = race_smoke(store_names=args.store, n=args.races_n)
        total = sum(len(races) for races in results.values())
        for name, races in sorted(results.items()):
            status = "clean" if not races else f"{len(races)} race(s)"
            print(f"races [{name}]: {status}")
            for race in races:
                print(f"  {race.render()}")
        failed = failed or total > 0
    return 1 if failed else 0


def cmd_info(args) -> int:
    from repro.cluster import PLACEMENT_POLICIES

    print("stores:", ", ".join(STORE_NAMES))
    print("placement policies:", ", ".join(sorted(PLACEMENT_POLICIES)))
    rows = []
    for profile in (DRAM_PROFILE, OPTANE_NVM_PROFILE, NVME_SSD_PROFILE):
        rows.append(
            [profile.name, profile.read_latency * 1e9, profile.write_latency * 1e9,
             profile.seq_read_bw / 2**30, profile.seq_write_bw / 2**30,
             profile.rand_write_bw / 2**30]
        )
    print(format_table(
        ["device", "rd_lat_ns", "wr_lat_ns", "seq_rd_GBps", "seq_wr_GBps",
         "rand_wr_GBps"], rows))
    scale = default_scale()
    print(f"\nbench scale: memtable={scale.memtable_bytes >> 10}KB "
          f"dataset={scale.dataset_bytes >> 20}MB value={scale.value_size}B")
    return 0


def cmd_perf(args) -> int:
    """Wall-clock microbenchmark kernels -> BENCH_perf.json."""
    from repro.bench import perf

    argv = [
        "--label", args.label, "--store", args.perf_store,
        "--ops-scale", args.ops_scale, "--repeats", str(args.repeats),
        "--kernels", args.kernels, "--json", args.json,
        "--band-factor", str(args.band_factor),
    ]
    if args.check_band is not None:
        argv += ["--check-band", args.check_band]
    if args.history:
        argv += ["--history"]
    return perf.main(argv)


def cmd_diff(args) -> int:
    """Differential analysis between two runs (see docs/observability.md).

    Default mode diffs two ``repro analyze --json`` documents by file
    path; ``--perf`` diffs two labelled runs from the perf history
    instead (positionals become labels in ``BENCH_perf.json``).
    """
    import json

    from repro.obs.analyze import diff_analysis, diff_json, diff_perf, render_diff

    if args.perf:
        from repro.bench.perf import find_run, load_results

        doc = load_results(pathlib.Path(args.json))
        runs = []
        for label in (args.a, args.b):
            run = find_run(doc, args.diff_store, args.ops_scale, label)
            if run is None:
                print(
                    f"no recorded run: label={label!r} "
                    f"store={args.diff_store} ops_scale={args.ops_scale} "
                    f"in {args.json}",
                    file=sys.stderr,
                )
                return 2
            runs.append(run)
        report = diff_perf(runs[0], runs[1])
    else:
        docs = []
        for path in (args.a, args.b):
            try:
                docs.append(json.loads(pathlib.Path(path).read_text()))
            except (OSError, ValueError) as exc:
                print(f"cannot read analysis JSON {path}: {exc}",
                      file=sys.stderr)
                return 2
        report = diff_analysis(
            docs[0], docs[1],
            label_a=pathlib.Path(args.a).name,
            label_b=pathlib.Path(args.b).name,
        )
    print(render_diff(report, top=args.top), end="")
    if args.out:
        path = pathlib.Path(args.out)
        path.write_text(diff_json(report))
        print(f"# diff report: {path}", file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    """Parallel regeneration of every figure/table artifact."""
    import os

    from repro.bench import parallel

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    argv = ["--jobs", str(jobs), "--match", args.match]
    if args.bench_dir:
        argv += ["--bench-dir", args.bench_dir]
    return parallel.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MioDB reproduction workload runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_batch(p, default):
        p.add_argument(
            "--batch-size", type=int, default=default, metavar="N",
            help="ops coalesced per multi_* call (wall-clock only; "
                 "0 = per-op loop, default %(default)s)",
        )

    p = sub.add_parser("dbbench", help="LevelDB-style microbenchmark")
    _add_common(p)
    p.add_argument("--mode", choices=["fillrandom", "fillseq", "all"],
                   default="fillrandom")
    p.add_argument("--n", type=int, default=None, help="records to write")
    p.add_argument("--reads", type=int, default=2000)
    p.add_argument("--fsync-policy", default="sync", metavar="POLICY",
                   help="WAL durability: sync, batch:N, or interval:T "
                        "(simulated seconds); default %(default)s")
    _add_batch(p, 128)
    p.set_defaults(func=cmd_dbbench)

    p = sub.add_parser("ycsb", help="YCSB load + workloads")
    _add_common(p)
    p.add_argument("--workloads", default="A,B,C")
    p.add_argument("--records", type=int, default=None)
    p.add_argument("--ops", type=int, default=1000)
    _add_batch(p, 128)
    p.set_defaults(func=cmd_ycsb)

    p = sub.add_parser("compare", help="headline store comparison")
    _add_common(p)
    p.add_argument("--analyze", action="store_true",
                   help="also print per-store latency attribution reports")
    p.set_defaults(func=cmd_compare)
    p.set_defaults(store=list(STORE_NAMES))

    p = sub.add_parser(
        "trace", help="run a traced workload, write Perfetto/CSV artifacts"
    )
    p.add_argument(
        "--store", type=_stores_arg, default=["miodb"],
        help="store name, comma list, or 'all'",
    )
    p.add_argument("--n", type=int, default=2048, help="records to write")
    p.add_argument("--value-size", type=int, default=1024)
    p.add_argument("--mode", choices=["fillrandom", "fillseq"],
                   default="fillrandom")
    p.add_argument("--reads", type=int, default=256,
                   help="random reads after the fill (0 to skip)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--ssd", action="store_true",
                   help="use the DRAM-NVM-SSD hierarchy")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="Chrome/Perfetto trace-event JSON output")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="also write a hierarchical metrics snapshot (JSON)")
    p.add_argument("--bandwidth-csv", default=None, metavar="FILE",
                   help="also write a per-device bandwidth time series")
    p.add_argument("--queue-csv", default=None, metavar="FILE",
                   help="also write the background queue-depth time series")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII gantt of background jobs")
    _add_live_flags(p)
    p.set_defaults(func=cmd_trace)

    def _add_traced_workload(p):
        p.add_argument(
            "--store", type=_stores_arg, default=["miodb"],
            help="store name, comma list, or 'all'",
        )
        p.add_argument("--n", type=int, default=2048, help="records to write")
        p.add_argument("--value-size", type=int, default=1024)
        p.add_argument(
            "--mode", default="fillrandom",
            help="fillrandom, fillseq, or ycsb-<letter> (e.g. ycsb-a)",
        )
        p.add_argument("--reads", type=int, default=256,
                       help="reads (fill modes) or workload ops (ycsb)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--ssd", action="store_true",
                       help="use the DRAM-NVM-SSD hierarchy")

    p = sub.add_parser(
        "analyze",
        help="latency attribution, critical paths, and WA from a traced run",
    )
    _add_traced_workload(p)
    p.add_argument("--top", type=int, default=5,
                   help="critical-path chains to keep (longest stalls)")
    p.add_argument("--no-profile", action="store_true",
                   help="skip the top-down time profile section")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the full analysis document (JSON)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "slo",
        help="SLO compliance + burn-rate alert log from a traced run",
    )
    _add_traced_workload(p)
    p.add_argument("--objective", default="op-latency",
                   help="objective name used in the alert log")
    p.add_argument("--threshold-us", type=float, default=10.0,
                   help="per-op latency threshold in microseconds")
    p.add_argument("--target", type=float, default=0.999,
                   help="required fraction of ops under the threshold")
    p.add_argument("--short-ms", type=float, default=0.0,
                   help="short burn window (0 = long/5)")
    p.add_argument("--long-ms", type=float, default=0.0,
                   help="long burn window (0 = run duration/10)")
    p.add_argument("--factor", type=float, default=2.0,
                   help="burn-rate factor both windows must exceed")
    p.add_argument("--bins", type=int, default=20,
                   help="grid points in the rolling series")
    p.add_argument("--kind", default=None,
                   help="restrict samples to one op kind (put/get/...)")
    p.add_argument("--min-kiops", type=float, default=None,
                   help="flag rolling-window throughput under this floor")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the full SLO document (JSON)")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser(
        "cluster", help="sharded serving layer: routed load + backpressure"
    )
    _add_common(p)
    p.add_argument("--shards", type=int, default=4,
                   help="number of shard stores on the shared clock")
    p.add_argument("--placement", choices=["hash-ring", "range"],
                   default="hash-ring")
    p.add_argument("--vnodes", type=int, default=32,
                   help="virtual nodes per shard (hash-ring only)")
    p.add_argument("--clients", type=int, default=4,
                   help="independent load-generating clients")
    p.add_argument("--ops", type=int, default=1000, help="ops per client")
    p.add_argument("--rate", type=float, default=0.0, metavar="OPS_PER_S",
                   help="open-loop arrival rate per client "
                        "(<= 0 means closed-loop)")
    p.add_argument("--theta", type=float, default=0.0,
                   help="zipfian skew in (0, 1); 0 means uniform keys")
    p.add_argument("--read-frac", type=float, default=0.5)
    p.add_argument("--key-space", type=int, default=10000)
    p.add_argument("--preload", type=int, default=2000,
                   help="keys written through the router before driving")
    p.add_argument("--max-queue-depth", type=int, default=64)
    p.add_argument("--admission", choices=["reject", "defer"],
                   default="reject")
    p.add_argument("--rebalance-every", type=int, default=0, metavar="N",
                   help="hot-shard check every N completions (0 = off)")
    p.add_argument("--hot-factor", type=float, default=1.5)
    p.add_argument("--followers", type=int, default=0, metavar="K",
                   help="replicate each shard across K followers (0 = off)")
    p.add_argument("--ack", choices=["leader", "quorum", "all"],
                   default="quorum",
                   help="write ack policy (with --followers > 0)")
    p.add_argument("--read-policy",
                   choices=["leader", "follower-eventual", "follower-ryw"],
                   default="leader",
                   help="read routing policy (with --followers > 0)")
    p.add_argument("--fsync-policy", default="sync", metavar="POLICY",
                   help="WAL durability: sync, batch:N, or interval:T "
                        "(simulated seconds); default %(default)s")
    _add_batch(p, 32)
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="write the deterministic cluster metrics JSON")
    p.add_argument("--analyze", action="store_true",
                   help="print the router-merged latency attribution report")
    p.add_argument("--analyze-json", default=None, metavar="FILE",
                   help="also write the cluster analysis document (JSON)")
    _add_live_flags(p)
    p.add_argument("--live-refresh-us", type=float, default=0.0,
                   help="dashboard refresh cadence in simulated us "
                        "(0 = 4x the aggregation window)")
    p.set_defaults(func=cmd_cluster, value_size=256)

    p = sub.add_parser(
        "chaos",
        help="seeded replica kill/restart scenarios with state audits",
    )
    p.add_argument(
        "--store", type=_stores_arg, default=["miodb"],
        help="store to replicate (one per run)",
    )
    p.add_argument("--seeds", default="1", metavar="S1,S2,...",
                   help="comma list of scenario seeds")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--followers", type=int, default=2, metavar="K")
    p.add_argument("--ops", type=int, default=400,
                   help="client ops per scenario")
    p.add_argument("--kills", type=int, default=3,
                   help="scheduled kills per scenario")
    p.add_argument("--restart-gap", type=int, default=80, metavar="OPS",
                   help="completed ops between a kill and its restart")
    p.add_argument("--ack", choices=["leader", "quorum", "all"],
                   default="quorum")
    p.add_argument("--read-policy",
                   choices=["leader", "follower-eventual", "follower-ryw"],
                   default="leader")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the deterministic chaos report JSON")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="run under causal tracing and write the merged "
                        "trace (per-seed suffixes with multiple seeds); "
                        "adds failover timelines to the report")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "check",
        help="determinism lint, API contracts, and the race-detector smoke",
    )
    p.add_argument("--strict", action="store_true",
                   help="fail on any non-baselined finding (CI gate)")
    p.add_argument("--races", action="store_true",
                   help="also run the simulated-race smoke workload")
    p.add_argument("--races-n", type=int, default=256, metavar="N",
                   help="records in the race smoke fill (default %(default)s)")
    p.add_argument("--store", type=_stores_arg, default=None,
                   help="stores for the race smoke (default: all)")
    p.add_argument("--skip-lint", action="store_true")
    p.add_argument("--skip-contracts", action="store_true")
    p.add_argument("--path", default=None, metavar="DIR",
                   help="lint this directory instead of src/repro")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file (default: <repo>/.repro-check-baseline)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("info", help="stores, device profiles, scaling")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser(
        "perf", help="simulator wall-clock kernels (perf trajectory)"
    )
    p.add_argument("--label", default="current")
    p.add_argument("--perf-store", default="miodb", metavar="STORE")
    p.add_argument("--ops-scale", choices=["tiny", "default"], default="default")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--kernels",
        default="put,get,scan,flush,compact,cluster,"
                "put-traced,get-traced,put-live,get-live,"
                "put-repl0,get-repl0,put-repl2,get-repl2",
    )
    p.add_argument("--json", default="BENCH_perf.json")
    p.add_argument("--check-band", metavar="LABEL", default=None,
                   help="compare against recorded run LABEL instead of "
                        "recording; exit 1 on violation")
    p.add_argument("--band-factor", type=float, default=3.0)
    p.add_argument("--history", action="store_true",
                   help="render the per-kernel trajectory across recorded "
                        "runs instead of running kernels")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser(
        "diff",
        help="differential analysis between two runs (analyze docs or "
             "perf-history labels)",
    )
    p.add_argument("a", help="analysis JSON path (or run label with --perf)")
    p.add_argument("b", help="analysis JSON path (or run label with --perf)")
    p.add_argument("--perf", action="store_true",
                   help="diff two labelled BENCH_perf.json runs instead "
                        "of two analysis documents")
    p.add_argument("--json", default="BENCH_perf.json",
                   help="perf history file for --perf (default %(default)s)")
    p.add_argument("--store", dest="diff_store", default="miodb",
                   metavar="STORE", help="store of the --perf runs")
    p.add_argument("--ops-scale", choices=["tiny", "default"],
                   default="default", help="ops scale of the --perf runs")
    p.add_argument("--top", type=int, default=20, metavar="N",
                   help="rows in the text report (default %(default)s)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the full diff document as JSON")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "bench", help="regenerate all figure/table artifacts in parallel"
    )
    p.add_argument("--jobs", "-j", type=int, default=None)
    p.add_argument("--match", default="")
    p.add_argument("--bench-dir", default=None)
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
