"""The cluster topology and the shard router.

A :class:`Cluster` instantiates N shards -- each a full store built by
:func:`repro.bench.factory.make_store` on its own
:class:`~repro.mem.system.HybridMemorySystem` -- coordinated on one
shared :class:`~repro.sim.clock.SimClock`.  Sharing the clock makes the
shards' foreground operations and background jobs mutually ordered: one
serving context drives the whole cluster (the "shared-clock" model), so
aggregate throughput scales with shard count only as far as per-shard
work actually gets cheaper (smaller structures, overlapped background
work) -- the saturation point the scale-out benchmark measures.

A :class:`ShardRouter` exposes the single-store ``KVStore`` API over the
cluster: ``put``/``get``/``delete`` route by placement policy, ``scan``
scatter-gathers across every shard and merges (keys are disjoint across
shards, so the merge is a plain ordered union).  The router also keeps
the per-slot traffic counts that hot-shard detection and rebalancing
consume.
"""

import heapq
from typing import Dict, List, Optional, Tuple

from repro.cluster.placement import PlacementPolicy, make_placement
from repro.sim.clock import SimClock
from repro.sim.latency import LatencyRecorder
from repro.sim.stats import StatsRegistry


class Shard:
    """One cluster member: a store on its own simulated machine.

    With replication enabled the shard fronts a whole
    :class:`~repro.replication.group.ReplicaGroup`: ``group`` is set,
    and ``store``/``system`` track the group's *current leader* (the
    group repoints them on failover).
    """

    __slots__ = ("shard_id", "store", "system", "group")

    def __init__(self, shard_id: int, store, system, group=None) -> None:
        self.shard_id = shard_id
        self.store = store
        self.system = system
        self.group = group

    def __repr__(self) -> str:
        return f"Shard({self.shard_id}, {self.store.name})"


class Cluster:
    """N shard stores on one shared simulated clock."""

    def __init__(
        self,
        store_name: str = "miodb",
        n_shards: int = 4,
        scale=None,
        ssd: bool = False,
        replication=None,
        crash_injector=None,
        **overrides,
    ) -> None:
        # Imported here: the bench factory imports stores which import
        # obs; keeping cluster importable without the factory at module
        # import time avoids any cycle if stores ever grow cluster hooks.
        from repro.bench.factory import make_store
        from repro.mem.system import HybridMemorySystem

        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.store_name = store_name
        self.clock = SimClock()
        #: Cluster-level counters (routed ops, drops, migration bytes,
        #: and -- with replication on -- the ``repl.*`` family).
        self.stats = StatsRegistry()
        self.replication = replication
        self.shards: List[Shard] = []

        def build_system():
            if ssd:
                return HybridMemorySystem.with_ssd(clock=self.clock)
            return HybridMemorySystem(clock=self.clock)

        for shard_id in range(n_shards):
            if replication is not None:
                from repro.replication.group import ReplicaGroup

                def factory(rid, _build=build_system):
                    system = _build()
                    return make_store(
                        store_name, scale, system=system, ssd=ssd, **overrides
                    )

                group = ReplicaGroup(
                    shard_id,
                    self.clock,
                    factory,
                    replication,
                    stats=self.stats,
                    crash_injector=crash_injector,
                )
                leader = group.members[group.leader_idx]
                shard = Shard(shard_id, leader.store, leader.system, group)
                group.shard = shard
            else:
                system = build_system()
                store, __ = make_store(
                    store_name, scale, system=system, ssd=ssd, **overrides
                )
                shard = Shard(shard_id, store, system)
            self.shards.append(shard)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def groups(self) -> List[Optional[object]]:
        """Per-shard replica groups (``None`` entries when unreplicated)."""
        return [shard.group for shard in self.shards]

    def _systems(self):
        """Every live simulated machine: shard systems, then -- with
        replication on -- each group member's own system."""
        for shard in self.shards:
            if shard.group is not None:
                for member in shard.group.members:
                    if member.alive:
                        yield member.system
            else:
                yield shard.system

    def settle_all(self) -> None:
        """Apply every shard's background effects due at the current time."""
        for system in self._systems():
            system.executor.settle()

    def quiesce(self) -> float:
        """Drain background work on every shard; returns the final time.

        Draining one shard advances the shared clock, which can make
        another shard's jobs due; loop until every executor is idle.
        """
        while True:
            pending = False
            for system in self._systems():
                if system.executor.pending:
                    system.executor.drain()
                    pending = True
            if not pending:
                return self.clock.now

    def attach_tracing(self) -> List[object]:
        """Attach a fresh trace recorder to every shard.

        Returns the recorders in shard order; all share the cluster
        clock, so their event streams interleave on one timeline.  Use
        :func:`repro.cluster.metrics.cluster_chrome_trace` to export
        them as one multi-process Perfetto document with shard-id
        metadata.

        Replicated shards additionally route their group's causal
        ``repl.*`` events (append/ship/durable/apply/ack and failover)
        into the shard's recorder, so quorum-ack latency decomposes on
        the same timeline as the leader's op spans.
        """
        recorders = []
        for shard in self.shards:
            recorder = shard.system.attach_tracing()
            if shard.group is not None:
                shard.group.obs = recorder
            recorders.append(recorder)
        return recorders

    def detach_tracing(self) -> None:
        """Detach every shard's recorder (idempotent)."""
        for shard in self.shards:
            if shard.group is not None:
                shard.group.obs = None
            shard.system.detach_tracing()

    def attach_live(self, config=None, **overrides) -> List[object]:
        """Attach a live (sampled) recorder to every shard.

        Returns the recorders in shard order.  Each shard gets its own
        sampling seed (base seed + shard id), so head-sampled runs are
        decorrelated across shards while every shard's retained set
        stays a pure function of the cluster seed.  Config is a
        :class:`~repro.obs.live.recorder.LiveConfig` (or keyword
        overrides for one); detach with :meth:`detach_tracing`.
        """
        from repro.obs.live.recorder import LiveConfig, LiveRecorder

        if config is None:
            config = LiveConfig(**overrides)
        elif overrides:
            raise ValueError("pass a LiveConfig or overrides, not both")
        recorders = []
        for shard in self.shards:
            shard_cfg = LiveConfig(**config.as_dict())
            shard_cfg.seed = config.seed + shard.shard_id
            recorder = LiveRecorder(
                self.clock, shard_cfg, shard_id=shard.shard_id
            )
            recorders.append(recorder.attach(shard.system))
        return recorders

    def merged_latency(self) -> LatencyRecorder:
        """Store-level latency samples pooled across every shard."""
        merged = LatencyRecorder()
        for shard in self.shards:
            merged.merge_from(shard.system.latency)
        return merged

    def __repr__(self) -> str:
        return (
            f"Cluster({self.store_name!r}, shards={self.n_shards}, "
            f"t={self.clock.now:.6f})"
        )


class ShardRouter:
    """Routes the ``KVStore`` API across a cluster by placement policy."""

    def __init__(
        self,
        cluster: Cluster,
        placement: Optional[PlacementPolicy] = None,
        placement_name: str = "hash-ring",
        key_space: Optional[int] = None,
        vnodes_per_shard: int = 32,
    ) -> None:
        if placement is not None and placement.n_shards != cluster.n_shards:
            raise ValueError(
                f"placement covers {placement.n_shards} shards but the "
                f"cluster has {cluster.n_shards}"
            )
        self.cluster = cluster
        self.placement = placement or make_placement(
            placement_name,
            cluster.n_shards,
            key_space=key_space,
            vnodes_per_shard=vnodes_per_shard,
        )
        #: Routed ops per shard since the last :meth:`reset_window`.
        self.shard_ops: List[int] = [0] * cluster.n_shards
        #: Routed ops per placement slot (ring point / range index)
        #: since the last window reset -- the granularity rebalancing moves.
        self.slot_ops: Dict[int, int] = {}

    # ------------------------------------------------------------ routing

    def route(self, key: bytes) -> int:
        """The shard id serving ``key``; records window traffic counts."""
        slot, shard = self.placement.locate(key)
        self.shard_ops[shard] += 1
        self.slot_ops[slot] = self.slot_ops.get(slot, 0) + 1
        self.cluster.stats.add("cluster.routed_ops", 1)
        return shard

    def reset_window(self) -> None:
        """Zero the traffic window (after a hot-shard check/rebalance)."""
        self.shard_ops = [0] * self.cluster.n_shards
        self.slot_ops = {}

    def shard_store(self, shard_id: int):
        """The store behind ``shard_id``."""
        return self.cluster.shards[shard_id].store

    # ------------------------------------------------------- KVStore API

    def session(self):
        """A read-your-writes session token for replicated clusters."""
        from repro.replication.group import Session

        return Session()

    def put(self, key: bytes, value, session=None) -> float:
        """Insert or update ``key`` on its owning shard.

        On a replicated cluster the write goes through the shard's
        replica group (leader write + ack policy); if the group is
        mid-election this blocks until a leader is up.
        """
        shard = self.cluster.shards[self.route(key)]
        if shard.group is not None:
            return shard.group.put(key, value, session=session)
        return shard.store.put(key, value)

    def get(self, key: bytes, session=None) -> Tuple[Optional[object], float]:
        """Point lookup on the owning shard (read-policy routed)."""
        shard = self.cluster.shards[self.route(key)]
        if shard.group is not None:
            return shard.group.get(key, session=session)
        return shard.store.get(key)

    def delete(self, key: bytes, session=None) -> float:
        """Tombstone ``key`` on its owning shard."""
        shard = self.cluster.shards[self.route(key)]
        if shard.group is not None:
            return shard.group.delete(key, session=session)
        return shard.store.delete(key)

    def scan(self, start_key: bytes, count: int):
        """Scatter-gather range query across every shard.

        Each shard returns its first ``count`` live pairs from
        ``start_key``; the union is merged in key order and truncated.
        Because placement assigns each key to exactly one shard, the
        merged stream has no duplicates.  The reported latency is the
        total simulated time the scatter-gather occupied (the shards
        execute in sequence on the shared clock).
        """
        if count < 0:
            raise ValueError(f"scan count must be >= 0, got {count}")
        start = self.cluster.clock.now
        results = []
        for shard in self.cluster.shards:
            if shard.group is not None:
                pairs, __ = shard.group.scan(start_key, count)
            else:
                pairs, __ = shard.store.scan(start_key, count)
            results.append(pairs)
        self.cluster.stats.add("cluster.scatter_scans", 1)
        merged = list(heapq.merge(*results))[:count]
        return merged, self.cluster.clock.now - start

    def items(self, start_key: bytes = b"\x00", end_key: Optional[bytes] = None,
              page_size: int = 128):
        """Iterate live ``(key, value)`` pairs cluster-wide in key order."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        cursor = start_key
        while True:
            pairs, __ = self.scan(cursor, page_size)
            for key, value in pairs:
                if end_key is not None and key >= end_key:
                    return
                yield key, value
            if len(pairs) < page_size:
                return
            cursor = pairs[-1][0] + b"\x00"

    def quiesce(self) -> float:
        """Drain background work on every shard."""
        return self.cluster.quiesce()

    def __repr__(self) -> str:
        return (
            f"ShardRouter({self.placement.name}, "
            f"shards={self.cluster.n_shards})"
        )
