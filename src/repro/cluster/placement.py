"""Shard placement policies.

A placement policy maps every key to exactly one shard.  Two policies
are provided:

- :class:`HashRingPlacement` -- a consistent-hash ring with virtual
  nodes.  Each shard owns several points on a 64-bit ring; a key is
  served by the shard owning the first point at or after the key's
  hash (wrapping).  Virtual nodes smooth ownership, and rebalancing is
  an ownership move of individual ring arcs.
- :class:`RangePlacement` -- static range partitioning by key bytes:
  ``boundaries[i]`` is the first key of shard ``i + 1``.  Preserves key
  locality (scans mostly hit one shard) but cannot rebalance.

Both are pure functions of their construction parameters, so routing is
deterministic and identical across runs.
"""

import bisect
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from repro.bloom.hashing import fnv1a_64

_MASK64 = (1 << 64) - 1


def ring_hash(data: bytes) -> int:
    """64-bit ring position of ``data``.

    FNV-1a alone has weak avalanche on trailing-byte differences, so
    sequential keys (``user...0001``, ``user...0002``) and vnode labels
    would cluster into tight runs and defeat the ring's balancing.  A
    splitmix64 finalizer spreads them over the full 64-bit space.
    """
    h = fnv1a_64(data)
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


class PlacementPolicy(ABC):
    """Maps keys to shard ids in ``[0, n_shards)``."""

    #: Registry name ("hash-ring", "range").
    name = "abstract"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    @abstractmethod
    def locate(self, key: bytes) -> Tuple[int, int]:
        """``(slot, shard)`` for ``key``.

        The *slot* identifies the ownership unit the key fell into (a
        ring point for the hash ring, a range index for range
        partitioning); routers use it to attribute traffic at the
        granularity rebalancing can actually move.
        """

    def shard_for(self, key: bytes) -> int:
        """The shard serving ``key``."""
        return self.locate(key)[1]

    @abstractmethod
    def describe(self) -> dict:
        """A JSON-friendly description of the current ownership map."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_shards={self.n_shards})"


class HashRingPlacement(PlacementPolicy):
    """Consistent-hash ring with virtual nodes.

    Ring points are ``fnv1a_64(b"vnode-<shard>-<replica>")``; a key
    hashes to ``fnv1a_64(key)`` and is owned by the first point at or
    after it (wrapping past the top of the ring).  Ownership of any
    point can be reassigned with :meth:`move_slot` -- the rebalance
    primitive.
    """

    name = "hash-ring"

    def __init__(self, n_shards: int, vnodes_per_shard: int = 32) -> None:
        super().__init__(n_shards)
        if vnodes_per_shard < 1:
            raise ValueError(
                f"vnodes_per_shard must be >= 1, got {vnodes_per_shard}"
            )
        self.vnodes_per_shard = vnodes_per_shard
        points: Dict[int, int] = {}
        for shard in range(n_shards):
            for replica in range(vnodes_per_shard):
                point = ring_hash(b"vnode-%d-%d" % (shard, replica))
                # A full 64-bit hash collision between vnode labels is
                # effectively impossible; keep the first owner if it happens.
                points.setdefault(point, shard)
        self._points: List[int] = sorted(points)
        self._owner: Dict[int, int] = points

    def locate(self, key: bytes) -> Tuple[int, int]:
        h = ring_hash(key)
        idx = bisect.bisect_left(self._points, h)
        if idx == len(self._points):
            idx = 0  # wrap
        point = self._points[idx]
        return point, self._owner[point]

    def slots_of(self, shard: int) -> List[int]:
        """The ring points currently owned by ``shard``, ascending."""
        return [p for p in self._points if self._owner[p] == shard]

    def move_slot(self, point: int, to_shard: int) -> int:
        """Reassign ring point ``point`` to ``to_shard``.

        Returns the previous owner.  This changes only the ownership
        map; migrating the keys that now route elsewhere is the
        caller's job (see :mod:`repro.cluster.rebalance`).
        """
        if point not in self._owner:
            raise KeyError(f"no ring point {point!r}")
        if not 0 <= to_shard < self.n_shards:
            raise ValueError(f"shard {to_shard} out of range")
        previous = self._owner[point]
        self._owner[point] = to_shard
        return previous

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "n_shards": self.n_shards,
            "vnodes_per_shard": self.vnodes_per_shard,
            "slots_per_shard": {
                str(shard): len(self.slots_of(shard))
                for shard in range(self.n_shards)
            },
        }


class RangePlacement(PlacementPolicy):
    """Static range partitioning: ``boundaries[i]`` starts shard ``i+1``.

    Keys below ``boundaries[0]`` go to shard 0, and so on.  Boundaries
    are fixed at construction -- this policy documents the baseline the
    hash ring's rebalance is compared against.
    """

    name = "range"

    def __init__(self, n_shards: int, boundaries: List[bytes]) -> None:
        super().__init__(n_shards)
        if len(boundaries) != n_shards - 1:
            raise ValueError(
                f"need {n_shards - 1} boundaries for {n_shards} shards, "
                f"got {len(boundaries)}"
            )
        if list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be ascending")
        self.boundaries = list(boundaries)

    @classmethod
    def for_key_space(cls, n_shards: int, key_space: int) -> "RangePlacement":
        """Even split of the canonical ``key_for`` key space."""
        from repro.workloads.keys import key_for

        if key_space < n_shards:
            raise ValueError(
                f"key_space {key_space} smaller than n_shards {n_shards}"
            )
        boundaries = [
            key_for(i * key_space // n_shards) for i in range(1, n_shards)
        ]
        return cls(n_shards, boundaries)

    def locate(self, key: bytes) -> Tuple[int, int]:
        shard = bisect.bisect_right(self.boundaries, key)
        return shard, shard

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "n_shards": self.n_shards,
            "boundaries": [b.decode("latin-1") for b in self.boundaries],
        }


#: Registry of placement policy names, surfaced by ``repro info``.
PLACEMENT_POLICIES: Dict[str, type] = {
    HashRingPlacement.name: HashRingPlacement,
    RangePlacement.name: RangePlacement,
}


def make_placement(
    name: str,
    n_shards: int,
    key_space: Optional[int] = None,
    vnodes_per_shard: int = 32,
) -> PlacementPolicy:
    """Build a placement policy by registry name.

    ``key_space`` is required for ``"range"`` (the static split needs to
    know the canonical key universe); ``vnodes_per_shard`` only applies
    to ``"hash-ring"``.
    """
    if name == HashRingPlacement.name:
        return HashRingPlacement(n_shards, vnodes_per_shard=vnodes_per_shard)
    if name == RangePlacement.name:
        if key_space is None:
            raise ValueError("range placement needs key_space")
        return RangePlacement.for_key_space(n_shards, key_space)
    raise ValueError(
        f"unknown placement {name!r}; choose from {sorted(PLACEMENT_POLICIES)}"
    )
