"""Cluster-level metrics and trace export.

Per-shard state is already captured natively -- every shard's
:class:`~repro.mem.system.HybridMemorySystem` has its own stats
registry, latency recorder, devices, and (optionally) trace recorder.
This module assembles them into cluster-level artifacts:

- :func:`cluster_metrics_snapshot` / :func:`cluster_metrics_json` -- a
  deterministic grouped-metrics document: per-shard counter families,
  device traffic, and latency summaries, plus placement state,
  cluster counters (routed ops, drops by cause, migration bytes), and
  -- when a driver result is supplied -- response-time percentiles
  pooled with :meth:`LatencyRecorder.merge`.
- :func:`cluster_chrome_trace` / :func:`write_cluster_trace` -- the
  shards' trace streams merged into one Chrome/Perfetto document, one
  *process* per shard (``pid`` = shard id + 1) with shard-id metadata,
  so the shared timeline reads as a cluster gantt.

Everything is keyed and ordered deterministically: the same seed
produces byte-identical JSON.
"""

import json
from typing import Dict, List, Optional

from repro.obs.export import metrics_snapshot


def cluster_metrics_snapshot(cluster, router=None, result=None) -> dict:
    """A hierarchical metrics document for one finished cluster run."""
    doc: Dict = {
        "schema": 1,
        "store": cluster.store_name,
        "n_shards": cluster.n_shards,
        "sim_time_s": cluster.clock.now,
        "cluster": cluster.stats.snapshot_grouped(),
        "shards": {
            str(shard.shard_id): metrics_snapshot(shard.system)
            for shard in cluster.shards
        },
    }
    if any(shard.group is not None for shard in cluster.shards):
        doc["replication"] = {
            str(shard.shard_id): shard.group.snapshot()
            for shard in cluster.shards
            if shard.group is not None
        }
    if router is not None:
        doc["placement"] = router.placement.describe()
        doc["window_shard_ops"] = list(router.shard_ops)
    if result is not None:
        merged = result.merged_recorder()
        doc["driver"] = {
            "offered": result.offered,
            "completed": result.completed,
            "drops": dict(sorted(result.drops.items())),
            "duration_s": result.duration_s,
            "throughput_kiops": result.throughput_kiops,
            "response_us": merged.summary("response").as_micros(),
            "per_shard": result.per_shard,
            "rebalances": [
                {
                    "from_shard": r.from_shard,
                    "to_shard": r.to_shard,
                    "moved_slots": len(r.moved_slots),
                    "moved_keys": r.moved_keys,
                    "moved_bytes": r.moved_bytes,
                    "at_time_s": r.at_time,
                }
                for r in result.rebalances
            ],
        }
    return doc


def cluster_metrics_json(cluster, router=None, result=None) -> str:
    """The cluster snapshot serialized deterministically."""
    doc = cluster_metrics_snapshot(cluster, router=router, result=result)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def cluster_openmetrics_text(cluster, recorders: List[object]) -> str:
    """The shards' live telemetry as one OpenMetrics exposition document.

    ``recorders`` is the list returned by ``cluster.attach_live()``
    (shard order); the ``shard`` label carries the shard id.  Like every
    exporter here, the text is byte-identical for identical seeded runs.
    Replicated clusters additionally expose per-follower ``repro_repl_lag``
    samples; unreplicated documents are unchanged.
    """
    from repro.obs.live.openmetrics import openmetrics_text

    if len(recorders) != cluster.n_shards:
        raise ValueError(
            f"expected {cluster.n_shards} recorders, got {len(recorders)}"
        )
    labels = [str(shard.shard_id) for shard in cluster.shards]
    groups = [shard.group for shard in cluster.shards]
    if any(group is not None for group in groups):
        return openmetrics_text(recorders, labels, groups=groups)
    return openmetrics_text(recorders, labels)


def cluster_chrome_trace(cluster, recorders: List[object]) -> dict:
    """Shard trace streams merged into one multi-process trace document.

    ``recorders`` is the list returned by ``cluster.attach_tracing()``
    (shard order).  Each shard becomes its own trace *process*: ``pid``
    is ``shard_id + 1``, the process name carries the shard id and
    store name, and every track keeps its per-shard ``tid`` assignment.
    Event args gain a ``"shard"`` entry so filtering by shard works in
    Perfetto queries too.
    """
    if len(recorders) != cluster.n_shards:
        raise ValueError(
            f"expected {cluster.n_shards} recorders, got {len(recorders)}"
        )
    us = 1e6
    trace_events: List[dict] = []
    for shard, recorder in zip(cluster.shards, recorders):
        pid = shard.shard_id + 1
        trace_events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {
                    "name": f"shard{shard.shard_id}:{cluster.store_name}",
                    "shard": shard.shard_id,
                },
            }
        )
        tids: Dict[str, int] = {}
        for track in recorder.tracks():
            tids[track] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[track],
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        for event in recorder.events:
            record = {
                "name": event.name,
                "cat": event.cat,
                "pid": pid,
                "tid": tids[event.track],
                "ts": event.ts * us,
            }
            if event.dur is not None:
                record["ph"] = "X"
                record["dur"] = event.dur * us
            else:
                record["ph"] = "i"
                record["s"] = "t"
            args = dict(event.args) if event.args else {}
            args["shard"] = shard.shard_id
            record["args"] = args
            trace_events.append(record)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.cluster", "schema": 1},
        "traceEvents": trace_events,
    }


def cluster_trace_json(cluster, recorders: List[object]) -> str:
    """The merged trace serialized deterministically (sorted keys)."""
    doc = cluster_chrome_trace(cluster, recorders)
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_cluster_trace(
    cluster, recorders: List[object], path, overwrite: bool = True
) -> None:
    """Serialize the merged shard trace to ``path`` (byte-reproducible)."""
    from repro.obs.export import write_artifact

    write_artifact(path, cluster_trace_json(cluster, recorders),
                   overwrite=overwrite)
