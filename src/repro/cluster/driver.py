"""Multi-client open-loop driving of a sharded cluster.

This generalises :func:`repro.workloads.openloop.run_open_loop` to a
cluster: several clients issue requests with independent Poisson (or
fixed-gap) arrival processes, requests route through a
:class:`~repro.cluster.router.ShardRouter`, and every shard has a
bounded admission queue.  A client with ``rate_per_s=math.inf`` runs
closed-loop (its next request arrives when the previous one completes),
so saturating and rate-limited clients mix through one code path.

The serving model matches the repo's shared-clock discipline: the
cluster executes one foreground request at a time on the shared
:class:`~repro.sim.clock.SimClock` while background jobs of *all*
shards overlap freely.  Requests whose arrival time has passed wait in
their shard's FIFO queue; a queue at ``max_queue_depth`` sheds load --
immediately (``"reject"``) or after bounded defers (``"defer"``) --
with every shed request tagged by a cause from the closed
:data:`DROP_CAUSES` vocabulary.

Response time is completion minus *arrival* (queueing included), pooled
across shards with :meth:`LatencyRecorder.merge` for cluster-level
percentiles.
"""

import heapq
import itertools
import math
from typing import Dict, List, Optional

from repro.kvstore.values import SizedValue

# The closed load-shedding vocabulary lives in ``repro.obs.events``
# (next to the stall causes, so strict tracing can validate both);
# re-exported here because the cluster layer is its main producer.
from repro.obs.events import (  # noqa: F401  (re-exports)
    CAT_QUEUE,
    DROP_CAUSES,
    DROP_NO_LEADER,
    DROP_QUEUE_FULL,
    DROP_RETRY_EXHAUSTED,
)
from repro.sim.latency import LatencyRecorder, LatencySummary
from repro.sim.rng import XorShiftRng
from repro.workloads.keys import key_for
from repro.workloads.zipfian import UniformGenerator, ZipfianGenerator

ADMISSION_POLICIES = ("reject", "defer")


class AdmissionControl:
    """Backpressure policy: bounded per-shard queues with reject/defer."""

    def __init__(
        self,
        max_queue_depth: int = 64,
        policy: str = "reject",
        max_retries: int = 3,
        defer_s: float = 1e-4,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if defer_s <= 0:
            raise ValueError(f"defer_s must be positive, got {defer_s}")
        self.max_queue_depth = max_queue_depth
        self.policy = policy
        self.max_retries = max_retries
        self.defer_s = defer_s


class ClientSpec:
    """One load-generating client.

    ``rate_per_s`` is the open-loop arrival rate; ``math.inf`` makes the
    client closed-loop.  Keys are drawn from the canonical ``key_for``
    space: uniformly, or zipfian with ``theta`` skew (rank 0 -- the
    hottest key -- is index 0, so skewed clients deterministically
    concentrate on one region of the ring).
    """

    def __init__(
        self,
        n_ops: int,
        rate_per_s: float,
        key_space: int,
        read_fraction: float = 0.5,
        theta: Optional[float] = None,
        value_size: int = 256,
        seed: int = 1,
        poisson: bool = True,
    ) -> None:
        if n_ops < 0:
            raise ValueError(f"n_ops must be >= 0, got {n_ops}")
        if not math.isinf(rate_per_s) and rate_per_s <= 0:
            raise ValueError(f"rate must be positive or inf, got {rate_per_s}")
        if key_space <= 0:
            raise ValueError(f"key_space must be positive, got {key_space}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        self.n_ops = n_ops
        self.rate_per_s = rate_per_s
        self.key_space = key_space
        self.read_fraction = read_fraction
        self.theta = theta
        self.value_size = value_size
        self.seed = seed
        self.poisson = poisson

    @property
    def closed_loop(self) -> bool:
        return math.isinf(self.rate_per_s)


class _Request:
    __slots__ = ("client", "kind", "key", "tag", "arrival", "retries")

    def __init__(self, client: int, kind: str, key: bytes, tag, arrival: float):
        self.client = client
        self.kind = kind
        self.key = key
        self.tag = tag
        self.arrival = arrival
        self.retries = 0


class _ClientState:
    """Deterministic per-client op stream and arrival process."""

    def __init__(self, index: int, spec: ClientSpec) -> None:
        self.index = index
        self.spec = spec
        self.issued = 0
        self.completed = 0
        self.dropped = 0
        rng = XorShiftRng(spec.seed)
        self._gap_rng = rng.fork(1)
        self._op_rng = rng.fork(2)
        key_rng = rng.fork(3)
        if spec.theta is None:
            self._keys = UniformGenerator(spec.key_space, key_rng)
        else:
            self._keys = ZipfianGenerator(spec.key_space, key_rng, spec.theta)

    def next_gap(self) -> float:
        if self.spec.poisson:
            u = self._gap_rng.next_float()
            return -math.log(1.0 - u) / self.spec.rate_per_s
        return 1.0 / self.spec.rate_per_s

    def make_request(self, arrival: float) -> _Request:
        kind = (
            "get"
            if self._op_rng.next_float() < self.spec.read_fraction
            else "put"
        )
        tag = (self.index, self.issued)
        self.issued += 1
        return _Request(self.index, kind, key_for(self._keys.next()), tag, arrival)


class ClusterRunResult:
    """Outcome of one cluster driving run."""

    def __init__(
        self,
        offered: int,
        completed: int,
        drops: Dict[str, int],
        duration_s: float,
        response: LatencySummary,
        per_shard: List[dict],
        rebalances: List[object],
        recorders: List[LatencyRecorder],
    ) -> None:
        self.offered = offered
        self.completed = completed
        self.drops = drops
        self.duration_s = duration_s
        self.response = response
        self.per_shard = per_shard
        self.rebalances = rebalances
        self.recorders = recorders

    @property
    def dropped(self) -> int:
        return sum(self.drops.values())

    @property
    def throughput_kiops(self) -> float:
        """Completed operations per simulated second, in thousands."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s / 1e3

    def merged_recorder(self) -> LatencyRecorder:
        """Response samples of every shard pooled into one recorder."""
        merged = LatencyRecorder()
        for recorder in self.recorders:
            merged = merged.merge(recorder)
        return merged

    def __repr__(self) -> str:
        return (
            f"ClusterRunResult(completed={self.completed}/{self.offered}, "
            f"dropped={self.dropped}, {self.throughput_kiops:.1f} KIOPS, "
            f"p99={self.response.p99 * 1e6:.1f}us)"
        )


def run_cluster(
    router,
    clients: List[ClientSpec],
    admission: Optional[AdmissionControl] = None,
    rebalance_every: int = 0,
    hot_factor: float = 1.5,
    max_rebalances: int = 4,
    batch_limit: Optional[int] = None,
    dashboard=None,
    chaos=None,
    sessions: Optional[List] = None,
) -> ClusterRunResult:
    """Drive ``clients`` against ``router``; returns cluster-level metrics.

    ``rebalance_every`` > 0 runs a hot-shard check every that many
    completed requests (see :mod:`repro.cluster.rebalance`); at most
    ``max_rebalances`` ownership moves are performed.  Everything --
    arrivals, routing, shedding, migration -- is a pure function of the
    specs' seeds and the cluster's state, so two runs with the same
    inputs produce identical results.

    The serve loop coalesces admission-queue drains into per-shard
    batches: once the scheduler picks the shard holding the global FIFO
    minimum, it keeps serving that shard's queue until another shard's
    head becomes the minimum or a new arrival falls due, paying the
    scheduler scan once per batch instead of once per request.  Service
    order -- and with it every simulated number -- is identical to the
    one-request-at-a-time loop; ``batch_limit`` (``None`` = unbounded)
    only caps how long a single drain may run.

    ``dashboard`` is an optional
    :class:`~repro.obs.live.dashboard.LiveDashboard`; it is offered each
    completion time so frames render on simulated-time ticks (one
    ``is None`` check per completion when off).

    ``chaos`` is an optional
    :class:`~repro.replication.chaos.ChaosInjector`; it is offered the
    completed-op count after every completion and may kill or restart
    replicas mid-run (the serve batch restarts afterwards, since the
    shard's leader may have changed).  ``sessions`` is an optional
    per-client list of :class:`~repro.replication.group.Session` tokens
    for read-your-writes routing on replicated clusters.

    On a replicated cluster a request whose shard is leaderless with no
    election in flight (the group is below its majority and waiting for
    a restart) is never silently dropped: ``"defer"`` admission retries
    it after ``defer_s`` until retries exhaust, and the final verdict is
    the closed-vocabulary ``no_leader`` drop cause.
    """
    from collections import deque

    from repro.cluster.rebalance import maybe_rebalance

    if batch_limit is not None and batch_limit < 1:
        raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
    admission = admission or AdmissionControl()
    cluster = router.cluster
    clock = cluster.clock
    stats = cluster.stats
    n_shards = cluster.n_shards

    states = [_ClientState(i, spec) for i, spec in enumerate(clients)]
    tiebreak = itertools.count()
    heap: List = []
    start_time = clock.now

    def push(request: _Request, at: Optional[float] = None) -> None:
        """Queue ``request`` for admission at ``at`` (default: its arrival).

        Deferred retries re-enter at a later instant but keep their
        original arrival, so their response time still counts the full
        wait since first arrival.
        """
        when = request.arrival if at is None else at
        heapq.heappush(heap, (when, next(tiebreak), request))

    def schedule_next(state: _ClientState, base: float) -> None:
        """Queue the client's next request; open-loop paces off ``base``."""
        if state.issued >= state.spec.n_ops:
            return
        if state.spec.closed_loop:
            push(state.make_request(clock.now))
        else:
            push(state.make_request(base + state.next_gap()))

    for state in states:
        if state.spec.n_ops > 0:
            if state.spec.closed_loop:
                push(state.make_request(start_time))
            else:
                push(state.make_request(start_time + state.next_gap()))

    queues = [deque() for __ in range(n_shards)]
    recorders = [LatencyRecorder() for __ in range(n_shards)]
    shard_completed = [0] * n_shards
    shard_drops: List[Dict[str, int]] = [dict() for __ in range(n_shards)]
    max_depth = [0] * n_shards
    drops: Dict[str, int] = {}
    completed = 0
    rebalances: List[object] = []
    since_check = 0

    def drop(request: _Request, shard: int, cause: str) -> None:
        drops[cause] = drops.get(cause, 0) + 1
        shard_drops[shard][cause] = shard_drops[shard].get(cause, 0) + 1
        stats.add(f"cluster.drop.{cause}", 1)
        obs = cluster.shards[shard].system.obs
        if obs is not None:
            obs.instant(
                "router",
                "drop",
                CAT_QUEUE,
                {"cause": cause, "client": request.client},
            )
        state = states[request.client]
        state.dropped += 1
        if state.spec.closed_loop and state.issued < state.spec.n_ops:
            # The closed-loop client saw the rejection; it retries its
            # *next* op after a short backoff rather than spinning at
            # the same instant.
            push(state.make_request(clock.now + admission.defer_s))

    while heap or any(queues):
        if heap and not any(queues):
            # Idle: jump to the next arrival and apply background work.
            clock.advance_to(heap[0][0])
            cluster.settle_all()

        # Admit every arrival that is due.
        while heap and heap[0][0] <= clock.now:
            __, __, request = heapq.heappop(heap)
            fresh = request.retries == 0
            shard = router.route(request.key)
            if len(queues[shard]) >= admission.max_queue_depth:
                if (
                    admission.policy == "defer"
                    and request.retries < admission.max_retries
                ):
                    request.retries += 1
                    stats.add("cluster.deferred", 1)
                    push(request, at=clock.now + admission.defer_s)
                else:
                    cause = (
                        DROP_RETRY_EXHAUSTED
                        if request.retries
                        else DROP_QUEUE_FULL
                    )
                    drop(request, shard, cause)
            else:
                queues[shard].append(request)
                depth = len(queues[shard])
                if depth > max_depth[shard]:
                    max_depth[shard] = depth
            if fresh and not states[request.client].spec.closed_loop:
                schedule_next(states[request.client], request.arrival)

        # Serve the earliest-admitted request (FIFO across shards).
        serve_shard = -1
        serve_key = None
        for shard_id in range(n_shards):
            if queues[shard_id]:
                head = queues[shard_id][0]
                key = (head.arrival, head.tag)
                if serve_key is None or key < serve_key:
                    serve_key = key
                    serve_shard = shard_id
        if serve_shard < 0:
            continue
        # Serve a run of requests from the chosen shard.  Nothing is
        # admitted while we serve (admission only happens above), so the
        # other queues' heads keep their (arrival, tag) keys: the next
        # request the one-at-a-time loop would pick stays ours until
        # this queue's head stops being the global FIFO minimum or a new
        # arrival falls due (closed-loop clients push one per
        # completion).  Batching amortizes the scheduler scan and the
        # per-request local setup; it never changes the service order.
        other_key = None
        for shard_id in range(n_shards):
            if shard_id != serve_shard and queues[shard_id]:
                head = queues[shard_id][0]
                key = (head.arrival, head.tag)
                if other_key is None or key < other_key:
                    other_key = key
        queue = queues[serve_shard]
        shard = cluster.shards[serve_shard]
        group = shard.group
        store_get = shard.store.get
        store_put = shard.store.put
        record = recorders[serve_shard].record
        obs = shard.system.obs
        served = 0
        while True:
            if (
                group is not None
                and group.leader_idx is None
                and not group.election_pending
            ):
                # Leaderless with no election in flight: the group is
                # below its majority and cannot serve until a restart.
                # Defer (bounded) or shed with the no_leader cause --
                # never silently drop.
                request = queue.popleft()
                if (
                    admission.policy == "defer"
                    and request.retries < admission.max_retries
                ):
                    request.retries += 1
                    stats.add("cluster.deferred", 1)
                    push(request, at=clock.now + admission.defer_s)
                else:
                    drop(request, serve_shard, DROP_NO_LEADER)
                break
            request = queue.popleft()
            state = states[request.client]
            if obs is not None:
                # Admission-queue wait: arrival (or first defer) to
                # service start.  One span per served request, so
                # per-shard latency attribution can put the queueing
                # component next to the op's own span (emitted right
                # after, by the store).
                obs.span(
                    "router",
                    request.kind,
                    CAT_QUEUE,
                    request.arrival,
                    clock.now,
                    {"client": request.client, "shard": serve_shard},
                )
            if group is not None:
                session = sessions[request.client] if sessions else None
                if request.kind == "get":
                    group.get(request.key, session=session)
                else:
                    group.put(
                        request.key,
                        SizedValue(request.tag, state.spec.value_size),
                        session=session,
                    )
            elif request.kind == "get":
                store_get(request.key)
            else:
                store_put(
                    request.key, SizedValue(request.tag, state.spec.value_size)
                )
            now = clock.now
            record("response", now, now - request.arrival)
            shard_completed[serve_shard] += 1
            completed += 1
            state.completed += 1
            served += 1
            if dashboard is not None:
                dashboard.maybe_refresh(now)
            if state.spec.closed_loop:
                schedule_next(state, now)
            if chaos is not None and chaos.maybe_fire(completed):
                # A kill or restart just fired: the shard's leader (and
                # with it the hoisted store fast path) may be stale.
                break

            if rebalance_every > 0:
                since_check += 1
                if since_check >= rebalance_every:
                    since_check = 0
                    if len(rebalances) < max_rebalances:
                        moved = maybe_rebalance(router, factor=hot_factor)
                        if moved is not None:
                            rebalances.append(moved)
                    router.reset_window()

            if not queue or served == batch_limit:
                break
            if heap and heap[0][0] <= clock.now:
                break
            head = queue[0]
            if other_key is not None and (head.arrival, head.tag) > other_key:
                break

    duration = clock.now - start_time
    merged = LatencyRecorder()
    for recorder in recorders:
        merged = merged.merge(recorder)
    per_shard = []
    for shard_id in range(n_shards):
        summary = recorders[shard_id].summary("response")
        per_shard.append(
            {
                "shard": shard_id,
                "ops": shard_completed[shard_id],
                "drops": dict(sorted(shard_drops[shard_id].items())),
                "max_queue_depth": max_depth[shard_id],
                "p50_us": summary.p50 * 1e6,
                "p99_us": summary.p99 * 1e6,
                "p999_us": summary.p999 * 1e6,
            }
        )
    offered = sum(state.issued for state in states)
    return ClusterRunResult(
        offered=offered,
        completed=completed,
        drops=dict(sorted(drops.items())),
        duration_s=duration,
        response=merged.summary("response"),
        per_shard=per_shard,
        rebalances=rebalances,
        recorders=recorders,
    )
