"""Hot-shard detection and deterministic keyrange rebalancing.

Skewed workloads concentrate traffic on whichever shard owns the hot
keys' ring arcs.  :func:`detect_hot_shard` flags a shard whose share of
the routed-traffic window exceeds ``factor`` times the fair share;
:func:`rebalance_hot_shard` then moves ownership of the hot shard's
busiest ring arcs to the coldest shard and migrates the keys that now
route elsewhere.

Migration is performed *through the stores*: moved keys are read off
the source shard with scans and replayed as puts on the destination
(plus tombstones on the source), so every migrated byte flows through
the simulated devices and is charged to the cost model -- a rebalance
is never free.  All choices (hot shard, destination, arcs, key order)
are pure functions of observed counts and ring state, keeping runs
bit-deterministic.

Only :class:`~repro.cluster.placement.HashRingPlacement` supports
ownership moves; range partitioning is static by design.
"""

from typing import List, Optional

from repro.cluster.placement import HashRingPlacement
from repro.kvstore.values import value_nbytes


class HotShardReport:
    """Traffic shares of one detection window."""

    def __init__(self, counts: List[int], factor: float) -> None:
        self.counts = list(counts)
        self.total = sum(counts)
        self.factor = factor
        n = len(counts)
        self.shares = [
            (c / self.total if self.total else 0.0) for c in counts
        ]
        self.hot: Optional[int] = None
        if n > 1 and self.total > 0:
            hottest = max(range(n), key=lambda i: (self.counts[i], -i))
            if self.shares[hottest] > factor / n:
                self.hot = hottest

    def __repr__(self) -> str:
        shares = ", ".join(f"{s:.2f}" for s in self.shares)
        return f"HotShardReport(hot={self.hot}, shares=[{shares}])"


class RebalanceResult:
    """What one rebalance operation moved."""

    def __init__(
        self,
        from_shard: int,
        to_shard: int,
        moved_slots: List[int],
        moved_keys: int,
        moved_bytes: int,
        at_time: float,
    ) -> None:
        self.from_shard = from_shard
        self.to_shard = to_shard
        self.moved_slots = list(moved_slots)
        self.moved_keys = moved_keys
        self.moved_bytes = moved_bytes
        self.at_time = at_time

    def __repr__(self) -> str:
        return (
            f"RebalanceResult({self.from_shard}->{self.to_shard}, "
            f"slots={len(self.moved_slots)}, keys={self.moved_keys}, "
            f"bytes={self.moved_bytes})"
        )


def detect_hot_shard(router, factor: float = 1.5) -> HotShardReport:
    """Classify the router's current traffic window.

    A shard is *hot* when its share of routed ops exceeds ``factor / n``
    (``factor`` times the fair share).  Ties break toward the lowest
    shard id for determinism.
    """
    if factor <= 1.0:
        raise ValueError(f"hot factor must be > 1, got {factor}")
    return HotShardReport(router.shard_ops, factor)


def rebalance_hot_shard(
    router,
    hot_shard: int,
    to_shard: Optional[int] = None,
) -> RebalanceResult:
    """Move the hot shard's busiest ring arcs to the coldest shard.

    Arcs (virtual-node ownership slots) are moved hottest-first until
    the traffic they carried in the observation window reaches half the
    load gap between source and destination -- enough to split the hot
    set without ping-ponging ownership.  At least one arc always moves,
    and the source always keeps at least one.  Keys whose owner changed
    are then replayed through the destination store and tombstoned on
    the source, charging migration to the simulated devices.
    """
    placement = router.placement
    if not isinstance(placement, HashRingPlacement):
        raise TypeError(
            f"rebalancing needs a hash-ring placement, got {placement.name!r}"
        )
    cluster = router.cluster
    n = cluster.n_shards
    if n < 2:
        raise ValueError("cannot rebalance a single-shard cluster")
    if not 0 <= hot_shard < n:
        raise ValueError(f"hot_shard {hot_shard} out of range")
    if to_shard is None:
        # Coldest shard by window traffic; ties toward the lowest id.
        to_shard = min(
            (i for i in range(n) if i != hot_shard),
            key=lambda i: (router.shard_ops[i], i),
        )
    if to_shard == hot_shard:
        raise ValueError("source and destination shards are the same")

    slots = placement.slots_of(hot_shard)
    if len(slots) < 2:
        raise ValueError(
            f"shard {hot_shard} owns {len(slots)} arc(s); nothing movable"
        )
    # Busiest arcs first; ties toward the lower ring point.
    ranked = sorted(
        slots, key=lambda p: (-router.slot_ops.get(p, 0), p)
    )
    gap = max(0, router.shard_ops[hot_shard] - router.shard_ops[to_shard])
    target = gap / 2.0
    # Greedy under a capacity of ``target``: an arc whose traffic would
    # push the moved total past the target is skipped -- moving it
    # wholesale would overshoot and simply relocate the hot spot to the
    # destination.  Smaller arcs later in the ranking may still fit.
    moved_slots: List[int] = []
    moved_traffic = 0
    movable = ranked[: len(slots) - 1]  # the source keeps one arc
    for point in movable:
        arc_traffic = router.slot_ops.get(point, 0)
        if moved_slots and moved_traffic + arc_traffic > target:
            continue
        if arc_traffic > target and gap and arc_traffic >= gap:
            # Even alone this arc exceeds the whole load gap; moving it
            # would make the destination hotter than the source is now.
            continue
        moved_slots.append(point)
        moved_traffic += arc_traffic
        if moved_traffic >= target:
            break
    if not moved_slots:
        # Every arc overshoots: move the least-loaded one -- the best
        # single-arc improvement available at this granularity.
        moved_slots.append(
            min(movable, key=lambda p: (router.slot_ops.get(p, 0), p))
        )
    for point in moved_slots:
        placement.move_slot(point, to_shard)

    moved_keys, moved_bytes = _migrate(router, hot_shard)
    result = RebalanceResult(
        from_shard=hot_shard,
        to_shard=to_shard,
        moved_slots=moved_slots,
        moved_keys=moved_keys,
        moved_bytes=moved_bytes,
        at_time=cluster.clock.now,
    )
    stats = cluster.stats
    stats.add("cluster.rebalances", 1)
    stats.add("cluster.migrated_keys", moved_keys)
    stats.add("cluster.migrated_bytes", moved_bytes)
    return result


def _migrate(router, source_shard: int):
    """Replay keys the ring no longer assigns to ``source_shard``.

    The source shard is scanned in key order; every live pair whose
    owner changed is put on its new shard and tombstoned on the source.
    Both sides go through the ordinary store write paths, so WAL
    appends, flushes, and compactions triggered by the migration are
    all simulated and billed.
    """
    source = router.cluster.shards[source_shard].store
    placement = router.placement
    moved = [
        (key, value)
        for key, value in source.items()
        if placement.shard_for(key) != source_shard
    ]
    moved_bytes = 0
    for key, value in moved:
        owner = placement.shard_for(key)
        router.cluster.shards[owner].store.put(key, value)
        source.delete(key)
        moved_bytes += len(key) + value_nbytes(value)
    return len(moved), moved_bytes


def maybe_rebalance(router, factor: float = 1.5):
    """One detection-plus-rebalance step; returns the move or ``None``.

    ``None`` means no shard was hot, the placement cannot move
    ownership (range partitioning), or the hot shard had nothing
    movable.  Used by the cluster driver's periodic check.
    """
    report = detect_hot_shard(router, factor)
    if report.hot is None:
        return None
    if not isinstance(router.placement, HashRingPlacement):
        return None
    try:
        return rebalance_hot_shard(router, report.hot)
    except ValueError:
        return None
