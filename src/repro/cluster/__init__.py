"""Sharded serving layer: routing, backpressure, rebalance, scale-out.

The paper evaluates one store on one hybrid-memory machine;
``repro.cluster`` is the layer above it that a production deployment
needs -- N full store instances (each on its own simulated machine)
behind a router, all coordinated on one shared
:class:`~repro.sim.clock.SimClock`:

- :class:`Cluster` builds the shards; :class:`ShardRouter` exposes the
  single-store ``KVStore`` API over them with pluggable placement
  (:class:`HashRingPlacement` with virtual nodes, or static
  :class:`RangePlacement`) and scatter-gather scans.
- :func:`run_cluster` drives multi-client open-loop load (per-client
  Poisson arrivals, ``math.inf`` for closed-loop) through bounded
  per-shard admission queues; shed load is tagged with the closed
  :data:`DROP_CAUSES` vocabulary.
- :func:`detect_hot_shard` / :func:`rebalance_hot_shard` move
  hash-ring ownership of hot keyranges and replay the moved keys
  through the simulated devices, so migration is charged to the cost
  model.
- :func:`cluster_metrics_json` and :func:`write_cluster_trace` export
  deterministic cluster-level metrics and per-shard Perfetto streams.

Everything is seeded and runs on simulated time: the same inputs
always produce byte-identical artifacts.  See docs/cluster.md.
"""

from repro.cluster.driver import (
    ADMISSION_POLICIES,
    DROP_CAUSES,
    DROP_NO_LEADER,
    DROP_QUEUE_FULL,
    DROP_RETRY_EXHAUSTED,
    AdmissionControl,
    ClientSpec,
    ClusterRunResult,
    run_cluster,
)
from repro.cluster.metrics import (
    cluster_chrome_trace,
    cluster_metrics_json,
    cluster_metrics_snapshot,
    cluster_openmetrics_text,
    cluster_trace_json,
    write_cluster_trace,
)
from repro.cluster.placement import (
    PLACEMENT_POLICIES,
    HashRingPlacement,
    PlacementPolicy,
    RangePlacement,
    make_placement,
)
from repro.cluster.rebalance import (
    HotShardReport,
    RebalanceResult,
    detect_hot_shard,
    maybe_rebalance,
    rebalance_hot_shard,
)
from repro.cluster.router import Cluster, Shard, ShardRouter

__all__ = [
    "Cluster",
    "Shard",
    "ShardRouter",
    "PlacementPolicy",
    "HashRingPlacement",
    "RangePlacement",
    "PLACEMENT_POLICIES",
    "make_placement",
    "ClientSpec",
    "AdmissionControl",
    "ClusterRunResult",
    "run_cluster",
    "ADMISSION_POLICIES",
    "DROP_CAUSES",
    "DROP_NO_LEADER",
    "DROP_QUEUE_FULL",
    "DROP_RETRY_EXHAUSTED",
    "HotShardReport",
    "RebalanceResult",
    "detect_hot_shard",
    "rebalance_hot_shard",
    "maybe_rebalance",
    "cluster_metrics_snapshot",
    "cluster_metrics_json",
    "cluster_openmetrics_text",
    "cluster_chrome_trace",
    "cluster_trace_json",
    "write_cluster_trace",
]
