"""NoveLSM: LevelDB with large persistent MemTables in NVM.

Two architectures from the paper (Section 2.3):

- *flat* (Figure 1(c), the evaluated configuration): the NVM MemTable is
  mutable.  While the DRAM MemTable is unavailable (its predecessor is
  still being flushed), writes go directly into the persistent skip list
  in place -- no stall, no WAL record needed, but each such write pays
  NVM pointer-chase and random-write costs.
- *hierarchical* (Figure 1(b)): the NVM MemTable only receives flushed
  immutable DRAM MemTables; writes block while the DRAM table flushes.

Either way, when the big NVM MemTable fills it is serialized into L0
SSTables.  That flush is large (the paper uses a 4 GB NVM MemTable) and
the L0-to-L1 compaction cannot keep up, which is where NoveLSM's massive
interval stalls come from.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.lsm import LeveledLSM
from repro.kvstore.api import KVStore
from repro.kvstore.memtable import MemTable, memtable_entries
from repro.kvstore.options import MB, StoreOptions
from repro.kvstore.scans import CostCell, merged_scan, skiplist_stream
from repro.obs.events import (
    CAT_FLUSH,
    STALL_L0_SLOWDOWN,
    STALL_L0_STOP,
    STALL_MEMTABLE_FULL,
)
from repro.persist.wal import WriteAheadLog
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE
from repro.sstable.merge import merge_entry_streams


@dataclass
class NoveLSMOptions(StoreOptions):
    """NoveLSM adds a large NVM MemTable to the common options.

    The paper's ratio is a 4 GB NVM MemTable against a 64 MB DRAM
    MemTable; scaled down we default to 8x the DRAM MemTable.
    """

    nvm_memtable_bytes: int = 8 * MB
    mutable_nvm: bool = True


class NoveLSMStore(KVStore):
    """NoveLSM on a DRAM+NVM machine (SSTables on NVM or SSD)."""

    name = "novelsm"

    def __init__(
        self,
        system,
        options: Optional[NoveLSMOptions] = None,
        media: str = "nvm",
    ) -> None:
        super().__init__(system, options or NoveLSMOptions())
        if not self.options.mutable_nvm:
            self.name = "novelsm-hier"
        self.device = system.nvm if media == "nvm" else system.ssd
        if self.device is None:
            raise ValueError(f"system has no {media} device")
        self.rng = XorShiftRng(0x2073)
        self.wal = WriteAheadLog(
            system.nvm, f"{self.name}-wal",
            fsync_policy=self.options.fsync_policy, clock=system.clock,
        )
        self.dram_mt = MemTable(system, self.options.memtable_bytes, self.rng.fork())
        self.dram_imm: Optional[MemTable] = None
        self._dram_flush_job = None
        self.nvm_mt = MemTable(
            system, self.options.nvm_memtable_bytes, self.rng.fork(), placement="nvm"
        )
        self.nvm_imm: Optional[MemTable] = None
        self._nvm_chain_tail = None
        self.lsm = LeveledLSM(system, self.options, self.device, nworkers=1, label=self.name)
        self.dram_flush_worker = system.executor.worker(f"{self.name}-dram-flush")
        self.nvm_flush_worker = system.executor.worker(f"{self.name}-nvm-flush")

    # ------------------------------------------------------------ write path

    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = 0.0
        if self.lsm.l0_table_count() >= self.options.l0_slowdown_tables:
            seconds += self._stall_delay(
                STALL_L0_SLOWDOWN, self.options.slowdown_delay_s
            )
        if not self.dram_mt.is_full:
            return seconds + self._dram_put(key, seq, value, value_bytes)

        dram_flush_busy = (
            self._dram_flush_job is not None and not self._dram_flush_job.done
        )
        if dram_flush_busy:
            if self.options.mutable_nvm:
                # Flat NoveLSM: bypass the busy DRAM buffer, update the
                # persistent skip list in place (no WAL needed).
                return seconds + self._nvm_direct_put(key, seq, value, value_bytes)
            stalled = self.system.executor.wait_for(self._dram_flush_job)
            self._stall_wait(STALL_MEMTABLE_FULL, stalled)
        self._wait_while_l0_stopped()
        self._rotate_dram()
        return seconds + self._dram_put(key, seq, value, value_bytes)

    def _dram_put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = 0.0
        if self.options.wal_enabled:
            seconds += self.wal.append(seq, key, value, value_bytes)
        seconds += self.dram_mt.insert(key, seq, value, value_bytes)
        return seconds

    def _nvm_direct_put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = self._ensure_nvm_room(len(key) + value_bytes + 64)
        seconds += self.nvm_mt.insert(key, seq, value, value_bytes)
        return seconds

    def _ensure_nvm_room(self, incoming: int) -> float:
        """Rotate the NVM MemTable if ``incoming`` bytes will not fit.

        Returns the foreground stall spent waiting for the previous NVM
        MemTable's flush chain -- the paper's dominant interval stall.
        """
        if self.nvm_mt.skiplist.footprint_bytes + incoming <= self.nvm_mt.capacity_bytes:
            return 0.0
        stalled = 0.0
        if self.nvm_imm is not None:
            if self._nvm_chain_tail is not None and not self._nvm_chain_tail.done:
                stalled = self.system.executor.wait_for(self._nvm_chain_tail)
                self._stall_wait(STALL_MEMTABLE_FULL, stalled)
        self._rotate_nvm()
        return stalled

    def _rotate_dram(self) -> None:
        old = self.dram_mt
        old.mark_immutable()
        self.dram_imm = old
        self.dram_mt = MemTable(self.system, self.options.memtable_bytes, self.rng.fork())
        self._dram_flush_job = self._schedule_dram_flush(old)

    def _schedule_dram_flush(self, table: MemTable):
        """Flush the immutable DRAM MemTable into the NVM skip list.

        Per the paper: each KV is located and copied one by one, paying an
        NVM pointer chase plus a random NVM write per pair (Section 3.1's
        slow flushing observation).
        """
        self._ensure_nvm_room(table.skiplist.footprint_bytes)
        entries = memtable_entries(table)
        seconds = 0.0
        with self.system.job_scope():
            for key, seq, value, value_bytes in entries:
                node, hops = self.nvm_mt.skiplist.insert(key, seq, value, value_bytes)
                seconds += self.system.cpu.skiplist_search_time("nvm", max(hops, 1))
                seconds += self.system.nvm.write(node.nbytes, sequential=False)
        last_seq = max((e[1] for e in entries), default=self.seq)

        def apply() -> None:
            table.release()
            if self.dram_imm is table:
                self.dram_imm = None
            if self.options.wal_enabled:
                self.wal.truncate_through(last_seq)

        self.system.stats.add("flush.count", 1)
        self.system.stats.add("flush.time_s", seconds)
        self.system.stats.add("flush.bytes", table.data_bytes)
        return self.system.executor.submit(
            self.dram_flush_worker, seconds, apply, name=f"{self.name}-dram-flush",
            meta={"cat": CAT_FLUSH, "bytes": table.data_bytes},
            # The NVM-side inserts happen synchronously at submit
            # (foreground-ordered); in flight only the frozen DRAM
            # MemTable is read.  Concurrent NVM-direct puts land in the
            # *active* NVM MemTable, a disjoint region by design.
            accesses=(("r", "memtable:imm"),),
        )

    def _rotate_nvm(self) -> None:
        old = self.nvm_mt
        old.mark_immutable()
        self.nvm_imm = old
        self.nvm_mt = MemTable(
            self.system,
            self.options.nvm_memtable_bytes,
            self.rng.fork(),
            placement="nvm",
        )
        self._schedule_nvm_flush(old)

    def _schedule_nvm_flush(self, table: MemTable) -> None:
        """Serialize the big NVM MemTable into a run of L0 SSTables."""
        entries = merge_entry_streams([memtable_entries(table)], drop_shadowed=False)
        chunks = self.lsm.split_entries(list(entries))
        tail = None
        for i, chunk in enumerate(chunks):
            chunk_bytes = sum(len(k) + vb for (k, __, __, vb) in chunk)
            with self.system.job_scope():
                seconds = self.system.nvm.read(chunk_bytes, sequential=True)
                sst, build_cost = self.lsm.build_table(chunk, f"{self.name}-L0-{i}")
            seconds += build_cost
            last = i == len(chunks) - 1

            def apply(sst=sst, last=last, table=table) -> None:
                self.lsm.add_table(0, sst)
                if last:
                    table.release()
                    if self.nvm_imm is table:
                        self.nvm_imm = None

            self.system.stats.add("flush.time_s", seconds)
            tail = self.system.executor.submit(
                self.nvm_flush_worker, seconds, apply, name=f"{self.name}-nvm-flush",
                meta={"cat": CAT_FLUSH, "bytes": chunk_bytes},
                # Each chunk job reads the immutable NVM MemTable only.
                accesses=(("r", "memtable:nvm-imm"),),
            )
        self.system.stats.add("flush.count", 1)
        self.system.stats.add("flush.bytes", table.data_bytes)
        self._nvm_chain_tail = tail

    def _wait_while_l0_stopped(self) -> None:
        while self.lsm.l0_table_count() >= self.options.l0_stop_tables:
            self.lsm.maybe_compact()
            deadline = self.system.executor.next_completion()
            if deadline is None:
                raise RuntimeError("L0 stopped with no background work pending")
            before = self.system.clock.now
            self.system.clock.advance_to(deadline)
            self.system.executor.settle()
            self._stall_wait(STALL_L0_STOP, self.system.clock.now - before)

    # ------------------------------------------------------------- read path

    def _batch_lookup(self):
        tables = tuple(
            t
            for t in (self.dram_mt, self.dram_imm, self.nvm_mt, self.nvm_imm)
            if t is not None
        )
        lsm_get = self.lsm.get

        def lookup(key):
            seconds = 0.0
            best = None
            for table in tables:
                node, cost = table.get(key)
                seconds += cost
                if node is not None and (best is None or node.seq > best.seq):
                    best = node
            if best is not None:
                return (None if best.is_tombstone else best.value), seconds
            entry, cost = lsm_get(key)
            seconds += cost
            if entry is None:
                return None, seconds
            value = entry[2]
            return (None if value is TOMBSTONE else value), seconds

        return lookup

    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        seconds = 0.0
        best = None
        for table in (self.dram_mt, self.dram_imm, self.nvm_mt, self.nvm_imm):
            if table is None:
                continue
            node, cost = table.get(key)
            seconds += cost
            if node is not None and (best is None or node.seq > best.seq):
                best = node
        if best is not None:
            return (None if best.is_tombstone else best.value), seconds
        entry, cost = self.lsm.get(key)
        seconds += cost
        if entry is None:
            return None, seconds
        value = entry[2]
        return (None if value is TOMBSTONE else value), seconds

    def _scan(self, start_key: bytes, count: int):
        cost = CostCell()
        streams: List = []
        for table in (self.dram_mt, self.dram_imm, self.nvm_mt, self.nvm_imm):
            if table is None:
                continue
            streams.append(
                skiplist_stream(
                    self.system, table.skiplist, start_key, table.placement, cost
                )
            )
        streams.extend(self.lsm.scan_streams(start_key, cost))
        pairs = merged_scan(streams, count)
        return pairs, cost.seconds
