"""Leveled SSTable engine (the LevelDB compaction machinery).

One instance manages the on-media levels of a store: L0 receives whole
flushed MemTables (tables may overlap), deeper levels hold disjoint sorted
runs with a ``fanout``x capacity ratio.  Compactions are background jobs:
inputs are chosen and costed when a worker is free, and the level edits
are applied when the job's simulated end time passes.

The engine is shared: LevelDB and NoveLSM use it for L0..Ln, MatrixKV for
L1..Ln below its matrix container, and MioDB's SSD mode for the levels
below the elastic NVM buffer.
"""

from typing import List, Optional, Sequence, Tuple

from repro.bloom.filter import BloomFilter
from repro.kvstore.scans import CostCell, entry_list_stream, merged_entries
from repro.obs.events import CAT_COMPACT
from repro.skiplist.node import TOMBSTONE
from repro.sstable.merge import merge_entry_streams
from repro.sstable.table import Entry, SSTable, build_sstable, entry_frame_bytes

#: L0 table count that makes L0 the most urgent compaction.
L0_COMPACTION_TRIGGER = 4

#: Bits per key for the per-SSTable bloom filters (LevelDB's default-ish).
SSTABLE_BLOOM_BITS = 10


class LeveledLSM:
    """Levels of SSTables plus background compaction scheduling."""

    def __init__(
        self,
        system,
        options,
        device,
        nworkers: int = 1,
        label: str = "lsm",
        bottom_level_hint: Optional[int] = None,
    ) -> None:
        self.system = system
        self.options = options
        self.device = device
        self.label = label
        self.levels: List[List[SSTable]] = [[] for __ in range(options.num_levels)]
        self.workers = [
            system.executor.worker(f"{label}-compact-{i}") for i in range(nworkers)
        ]
        self._busy = set()
        self._blooms = {}
        self._listeners = []
        self.compactions_done = 0
        self.bottom_level = (
            options.num_levels - 1 if bottom_level_hint is None else bottom_level_hint
        )

    # ------------------------------------------------------------- ingestion

    def build_table(self, entries: Sequence[Entry], label: str = "") -> Tuple[SSTable, float]:
        """Serialize entries into a table on this engine's device.

        Returns (table, build_seconds); the caller decides which level the
        table lands in and when (usually via a flush job callback).
        """
        table, seconds = build_sstable(entries, self.device, self.system.cpu, label)
        self.system.stats.add(
            "serialize.time_s", self.system.cpu.serialize_time(table.data_bytes)
        )
        bloom = BloomFilter.for_capacity(max(1, len(entries)), SSTABLE_BLOOM_BITS)
        bloom.add_all(e[0] for e in entries)
        seconds += self.system.cpu.bloom_build_time(len(entries))
        self._blooms[table.table_id] = bloom
        return table, seconds

    def add_table(self, level: int, table: SSTable) -> None:
        """Install a built table into ``level`` and re-check triggers."""
        self._check_level(level)
        self.levels[level].append(table)
        if level > 0:
            self.levels[level].sort(key=lambda t: t.min_key)
        self.maybe_compact()

    def split_entries(self, entries: Sequence[Entry]) -> List[List[Entry]]:
        """Chunk a sorted entry run into SSTable-sized pieces.

        Chunks only cut at key boundaries: splitting one key's version
        run across two tables would let an older version land in a
        younger table and break the read path's newest-first ordering.
        """
        chunks: List[List[Entry]] = []
        current: List[Entry] = []
        used = 0
        for i, entry in enumerate(entries):
            current.append(entry)
            used += entry_frame_bytes(entry)
            next_key = entries[i + 1][0] if i + 1 < len(entries) else None
            if used >= self.options.sstable_bytes and next_key != entry[0]:
                chunks.append(current)
                current = []
                used = 0
        if current:
            chunks.append(current)
        return chunks

    # ------------------------------------------------------------ compaction

    def maybe_compact(self) -> None:
        """Schedule compactions on free workers while triggers fire."""
        for worker in self.workers:
            if worker.busy_until > self.system.clock.now:
                continue
            plan = self._pick_compaction()
            if plan is None:
                return
            self._schedule(worker, *plan)

    def _pick_compaction(self) -> Optional[Tuple[int, List[SSTable], List[SSTable]]]:
        best_level, best_score = None, 0.0
        for level in range(self.bottom_level):
            score = self._level_score(level)
            if score >= 1.0 and score > best_score:
                best_level, best_score = level, score
        if best_level is None:
            return None
        return self._plan_for(best_level)

    def _level_score(self, level: int) -> float:
        free = [t for t in self.levels[level] if t.table_id not in self._busy]
        if not free:
            return 0.0
        if level == 0:
            return len(free) / float(L0_COMPACTION_TRIGGER)
        total = sum(t.data_bytes for t in free)
        return total / float(self.options.level_capacity_bytes(level))

    def _plan_for(
        self, level: int
    ) -> Optional[Tuple[int, List[SSTable], List[SSTable]]]:
        if level == 0:
            inputs = [t for t in self.levels[0] if t.table_id not in self._busy]
        else:
            inputs = [
                t for t in self.levels[level][:1] if t.table_id not in self._busy
            ]
        if not inputs:
            return None
        min_key = min(t.min_key for t in inputs)
        max_key = max(t.max_key for t in inputs)
        overlaps = [
            t for t in self.levels[level + 1] if t.overlaps(min_key, max_key)
        ]
        if any(t.table_id in self._busy for t in overlaps):
            return None
        return level, inputs, overlaps

    def _schedule(
        self, worker, level: int, inputs: List[SSTable], overlaps: List[SSTable]
    ) -> None:
        all_inputs = inputs + overlaps
        for table in all_inputs:
            self._busy.add(table.table_id)

        with self.system.job_scope():
            seconds = 0.0
            streams = []
            for table in all_inputs:
                entries, cost = table.scan_all(self.system.cpu)
                seconds += cost
                streams.append(entries)
            target = level + 1
            drop_tombstones = target == self.bottom_level
            # L0 tables overlap: order streams newest table first so, with
            # equal keys, globally-unique seqs still decide (merge is by seq).
            merged = list(
                merge_entry_streams(
                    streams,
                    drop_shadowed=True,
                    drop_tombstones=drop_tombstones,
                    tombstone=TOMBSTONE,
                )
            )
            outputs: List[SSTable] = []
            for i, chunk in enumerate(self.split_entries(merged)):
                table, cost = self.build_table(chunk, f"{self.label}-L{target}-{i}")
                outputs.append(table)
                seconds += cost
        bytes_moved = sum(t.data_bytes for t in all_inputs)

        def apply() -> None:
            for table in all_inputs:
                self._busy.discard(table.table_id)
                self._blooms.pop(table.table_id, None)
            self.levels[level] = [t for t in self.levels[level] if t not in inputs]
            self.levels[target] = [t for t in self.levels[target] if t not in overlaps]
            for table in all_inputs:
                table.release()
            self.levels[target].extend(outputs)
            self.levels[target].sort(key=lambda t: t.min_key)
            self.compactions_done += 1
            self.system.stats.add("compact.count", 1)
            self.system.stats.add("compact.bytes_in", bytes_moved)
            self.maybe_compact()
            for listener in list(self._listeners):
                listener()

        self.system.stats.add("compact.time_s", seconds)
        self.system.executor.submit(
            worker, seconds, apply, name=f"{self.label}-compact-L{level}",
            meta={"cat": CAT_COMPACT, "level": level, "bytes": bytes_moved},
            # Inputs were scanned at submit; in flight the compaction
            # reads the busy-marked tables of both levels (foreground
            # gets may read them too -- read/read, never a conflict).
            accesses=(
                ("r", f"tables:{self.label}:L{level}"),
                ("r", f"tables:{self.label}:L{level + 1}"),
            ),
        )

    # ----------------------------------------------------------------- reads

    def get(self, key: bytes) -> Tuple[Optional[Entry], float]:
        """Search L0 newest-first, then one candidate table per level."""
        seconds = 0.0
        for table in reversed(self.levels[0]):
            entry, cost = self._probe(table, key)
            seconds += cost
            if entry is not None:
                return entry, seconds
        for level in range(1, self.options.num_levels):
            # Runs below L0 are normally disjoint, so at most one table
            # covers the key; probing every covering table and keeping
            # the newest version also stays correct if runs ever overlap
            # transiently (e.g. around external column compactions).
            best = None
            for table in self.levels[level]:
                if table.min_key <= key <= table.max_key:
                    entry, cost = self._probe(table, key)
                    seconds += cost
                    if entry is not None and (best is None or entry[1] > best[1]):
                        best = entry
            if best is not None:
                return best, seconds
        return None, seconds

    def _probe(self, table: SSTable, key: bytes) -> Tuple[Optional[Entry], float]:
        if not (table.min_key <= key <= table.max_key):
            return None, 0.0
        seconds = self.system.cpu.bloom_probe_time()
        bloom = self._blooms.get(table.table_id)
        if bloom is not None and not bloom.may_contain(key):
            return None, seconds
        entry, cost = table.get(key, self.system.cpu, self.system.stats)
        return entry, seconds + cost

    def scan_streams(self, key: bytes, cost) -> List:
        """Lazy per-table streams for a merged scan from ``key``."""
        streams = []
        for level_tables in self.levels:
            for table in level_tables:
                if table.max_key < key:
                    continue
                idx = self._lower_bound(table, key)
                streams.append(
                    entry_list_stream(
                        self.system, table.entries, idx, self.device, cost
                    )
                )
        return streams

    def scan_from(self, key: bytes, count: int) -> Tuple[List[Entry], float]:
        """Merged range read across all levels (newest live versions)."""
        cost = CostCell()
        merged = merged_entries(self.scan_streams(key, cost), count)
        return merged, cost.seconds

    @staticmethod
    def _lower_bound(table: SSTable, key: bytes) -> int:
        import bisect

        return bisect.bisect_left(table._keys, key)

    # ------------------------------------------------------------- reporting

    def try_reserve(self, tables: Sequence[SSTable]) -> bool:
        """Atomically mark tables busy for an external compaction.

        Returns ``False`` (reserving nothing) when any is already busy.
        Used by MatrixKV's column compaction, which merges container
        columns with L1 tables outside this engine's own scheduler.
        """
        if any(t.table_id in self._busy for t in tables):
            return False
        for table in tables:
            self._busy.add(table.table_id)
        return True

    def release_reservation(self, tables: Sequence[SSTable]) -> None:
        """Undo :meth:`try_reserve` without applying any edit."""
        for table in tables:
            self._busy.discard(table.table_id)

    def replace_tables(
        self, level: int, remove: Sequence[SSTable], add: Sequence[SSTable]
    ) -> None:
        """Apply an externally computed compaction result to ``level``."""
        self._check_level(level)
        removed_ids = {t.table_id for t in remove}
        self.levels[level] = [
            t for t in self.levels[level] if t.table_id not in removed_ids
        ]
        for table in remove:
            self._busy.discard(table.table_id)
            self._blooms.pop(table.table_id, None)
            table.release()
        self.levels[level].extend(add)
        self.levels[level].sort(key=lambda t: t.min_key)
        self.maybe_compact()
        for listener in list(self._listeners):
            listener()

    def add_completion_listener(self, fn) -> None:
        """Call ``fn`` after every applied compaction (flush throttling)."""
        self._listeners.append(fn)

    def l0_table_count(self) -> int:
        """Current number of L0 tables (drives slowdown/stop stalls)."""
        return len(self.levels[0])

    def total_data_bytes(self) -> int:
        """Bytes across all live tables."""
        return sum(t.data_bytes for level in self.levels for t in level)

    def table_counts(self) -> List[int]:
        """Tables per level, for diagnostics."""
        return [len(level) for level in self.levels]

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.options.num_levels:
            raise ValueError(
                f"level {level} out of range [0, {self.options.num_levels})"
            )

    def __repr__(self) -> str:
        return f"LeveledLSM({self.label!r}, tables={self.table_counts()})"
