"""LevelDB-style KV store: DRAM MemTable + leveled SSTables.

This is the classic design (paper Figure 1(a)) that everything else
modifies.  Its write path exhibits both stall kinds the paper measures:

- *interval stalls*: the MemTable fills while the immutable MemTable is
  still being flushed (writes block until the flush completes), and L0
  reaching the stop threshold blocks writes outright;
- *cumulative stalls*: L0 reaching the slowdown threshold adds a fixed
  delay to every write.
"""

from typing import List, Optional, Tuple

from repro.baselines.lsm import LeveledLSM
from repro.kvstore.api import KVStore
from repro.kvstore.memtable import MemTable, memtable_entries
from repro.kvstore.options import StoreOptions
from repro.kvstore.scans import CostCell, merged_scan, skiplist_stream
from repro.obs.events import (
    CAT_FLUSH,
    STALL_L0_SLOWDOWN,
    STALL_L0_STOP,
    STALL_MEMTABLE_FULL,
)
from repro.persist.wal import WriteAheadLog
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE


class LevelDBStore(KVStore):
    """The reference leveled-LSM engine on a single persistent device."""

    name = "leveldb"

    def __init__(self, system, options: Optional[StoreOptions] = None, media: str = "nvm") -> None:
        super().__init__(system, options or StoreOptions())
        self.device = self._pick_device(system, media)
        self.rng = XorShiftRng(0x1EAF)
        self.wal = WriteAheadLog(
            self.device, f"{self.name}-wal",
            fsync_policy=self.options.fsync_policy, clock=system.clock,
        )
        self.memtable = MemTable(system, self.options.memtable_bytes, self.rng.fork())
        self.immutable: Optional[MemTable] = None
        self._flush_job = None
        self.lsm = LeveledLSM(system, self.options, self.device, nworkers=1, label=self.name)
        self.flush_worker = system.executor.worker(f"{self.name}-flush")

    @staticmethod
    def _pick_device(system, media: str):
        if media == "nvm":
            return system.nvm
        if media == "ssd":
            if system.ssd is None:
                raise ValueError("system has no SSD device")
            return system.ssd
        raise ValueError(f"unknown media {media!r}")

    # ------------------------------------------------------------ write path

    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = self._make_room()
        if self.options.wal_enabled:
            seconds += self.wal.append(seq, key, value, value_bytes)
        seconds += self.memtable.insert(key, seq, value, value_bytes)
        return seconds

    def _make_room(self) -> float:
        """LevelDB's MakeRoomForWrite: slowdown, rotate, or block."""
        seconds = 0.0
        if self.lsm.l0_table_count() >= self.options.l0_slowdown_tables:
            seconds += self._stall_delay(
                STALL_L0_SLOWDOWN, self.options.slowdown_delay_s
            )
        if not self.memtable.is_full:
            return seconds
        if self._flush_job is not None and not self._flush_job.done:
            stalled = self.system.executor.wait_for(self._flush_job)
            self._stall_wait(STALL_MEMTABLE_FULL, stalled)
        seconds += self._wait_while_l0_stopped()
        self._rotate_memtable()
        return seconds

    def _wait_while_l0_stopped(self) -> float:
        """Block (advancing the clock) until L0 drops below the stop mark."""
        while self.lsm.l0_table_count() >= self.options.l0_stop_tables:
            self.lsm.maybe_compact()
            deadline = self.system.executor.next_completion()
            if deadline is None:
                raise RuntimeError("L0 stopped with no background work pending")
            before = self.system.clock.now
            self.system.clock.advance_to(deadline)
            self.system.executor.settle()
            self._stall_wait(STALL_L0_STOP, self.system.clock.now - before)
        return 0.0

    def _rotate_memtable(self) -> None:
        old = self.memtable
        old.mark_immutable()
        self.immutable = old
        self.memtable = MemTable(
            self.system, self.options.memtable_bytes, self.rng.fork()
        )
        self._flush_job = self._schedule_flush(old)

    def _schedule_flush(self, table: MemTable):
        entries = memtable_entries(table)
        with self.system.job_scope():
            seconds = self.system.dram.read(table.data_bytes, sequential=True)
            sst, build_cost = self.lsm.build_table(entries, f"{self.name}-L0")
        seconds += build_cost
        last_seq = max(e[1] for e in entries) if entries else self.seq

        def apply() -> None:
            self.lsm.add_table(0, sst)
            table.release()
            if self.immutable is table:
                self.immutable = None
            if self.options.wal_enabled:
                self.wal.truncate_through(last_seq)

        self.system.stats.add("flush.count", 1)
        self.system.stats.add("flush.time_s", seconds)
        self.system.stats.add("flush.bytes", table.data_bytes)
        return self.system.executor.submit(
            self.flush_worker, seconds, apply, name=f"{self.name}-flush",
            meta={"cat": CAT_FLUSH, "bytes": table.data_bytes},
            # In-flight the flush only reads the rotated (frozen)
            # MemTable; the active one stays foreground-writable.
            accesses=(("r", "memtable:imm"),),
        )

    # ------------------------------------------------------------- read path

    def _batch_lookup(self):
        tables = tuple(
            t for t in (self.memtable, self.immutable) if t is not None
        )
        lsm_get = self.lsm.get

        def lookup(key):
            # Mirrors _get, including its quirk: a missing table's probe
            # cost is discarded, not accumulated.
            for table in tables:
                node, cost = table.get(key)
                if node is not None:
                    return (None if node.is_tombstone else node.value), cost
            entry, cost = lsm_get(key)
            if entry is None:
                return None, cost
            value = entry[2]
            return (None if value is TOMBSTONE else value), cost

        return lookup

    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            node, cost = table.get(key)
            if node is not None:
                return (None if node.is_tombstone else node.value), cost
        entry, cost = self.lsm.get(key)
        if entry is None:
            return None, cost
        value = entry[2]
        return (None if value is TOMBSTONE else value), cost

    def _scan(self, start_key: bytes, count: int):
        cost = CostCell()
        streams: List = []
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            streams.append(
                skiplist_stream(self.system, table.skiplist, start_key, "dram", cost)
            )
        streams.extend(self.lsm.scan_streams(start_key, cost))
        pairs = merged_scan(streams, count)
        return pairs, cost.seconds
