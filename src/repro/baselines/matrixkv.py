"""MatrixKV: a matrix container at L0 in NVM with column compaction.

Faithful to the paper's description (Section 2.3 and Figure 1(d)):

- Flushed MemTables become *rows* of a matrix container in NVM.  The
  flush still serializes data (rows are in storage format), but it is a
  fast sequential NVM write, so MemTable flushing rarely blocks.
- The container is compacted to L1 one *column* (key-range slice across
  all rows) at a time, which keeps individual compactions small and
  removes interval stalls; sustained pressure surfaces as cumulative
  slowdown instead (the paper measures 731 s of it).
- Rows keep a DRAM-resident key index, so locating a key in a row is
  cheap; reading the KV still pays NVM access plus deserialization.
- Compaction below L1 is ordinary leveled compaction, with parallel
  workers (the paper's Figure 9 shows MatrixKV using up to 4).
"""

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.lsm import LeveledLSM
from repro.bloom.filter import BloomFilter
from repro.kvstore.api import KVStore
from repro.kvstore.memtable import MemTable, memtable_entries
from repro.kvstore.options import MB, StoreOptions
from repro.kvstore.scans import CostCell, entry_list_stream, merged_scan, skiplist_stream
from repro.obs.events import (
    CAT_COMPACT,
    CAT_FLUSH,
    STALL_L0_SLOWDOWN,
    STALL_L0_STOP,
    STALL_MEMTABLE_FULL,
)
from repro.persist.arena import Arena
from repro.persist.wal import WriteAheadLog
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE
from repro.sstable.merge import merge_entry_streams
from repro.sstable.table import entry_frame_bytes


@dataclass
class MatrixKVOptions(StoreOptions):
    """MatrixKV's container sizing and compaction pacing knobs."""

    container_bytes: int = 16 * MB
    column_target_bytes: int = 4 * MB
    compact_threshold: float = 0.5
    slowdown_threshold: float = 0.7
    stop_threshold: float = 0.95
    compaction_workers: int = 4


class MatrixRow:
    """One flushed MemTable, serialized into the container."""

    _ids = 0

    def __init__(self, system, entries, label: str = "") -> None:
        MatrixRow._ids += 1
        self.row_id = MatrixRow._ids
        self.system = system
        self.entries = list(entries)
        self.keys = [e[0] for e in self.entries]  # DRAM index
        self.data_bytes = sum(entry_frame_bytes(e) for e in self.entries)
        self.arena = Arena(
            system.nvm, self.data_bytes, system.now, label or f"row-{self.row_id}"
        )
        self.bloom = BloomFilter.for_capacity(max(1, len(self.entries)), 10)
        self.bloom.add_all(self.keys)

    def get(self, key: bytes, cpu) -> Tuple[Optional[tuple], float]:
        """Indexed point lookup; charges NVM read + deserialization."""
        seconds = cpu.bloom_probe_time()
        if not self.bloom.may_contain(key):
            return None, seconds
        idx = bisect.bisect_left(self.keys, key)
        if idx >= len(self.entries) or self.entries[idx][0] != key:
            return None, seconds
        entry = self.entries[idx]
        nbytes = entry_frame_bytes(entry)
        deser = cpu.deserialize_time(nbytes)
        self.system.stats.add("deserialize.time_s", deser)
        seconds += self.system.nvm.read(nbytes, sequential=False) + deser
        return entry, seconds

    def take_range(self, low: Optional[bytes], high: Optional[bytes]) -> List[tuple]:
        """Remove and return entries with ``low <= key <= high``.

        ``None`` bounds are open; space is returned to the device.
        """
        lo = 0 if low is None else bisect.bisect_left(self.keys, low)
        hi = len(self.entries) if high is None else bisect.bisect_right(self.keys, high)
        taken = self.entries[lo:hi]
        if not taken:
            return []
        self.entries = self.entries[:lo] + self.entries[hi:]
        self.keys = self.keys[:lo] + self.keys[hi:]
        freed = sum(entry_frame_bytes(e) for e in taken)
        self.data_bytes -= freed
        self.arena.shrink(freed, self.system.now)
        return taken

    @property
    def is_empty(self) -> bool:
        return not self.entries


class MatrixKVStore(KVStore):
    """MatrixKV on a DRAM+NVM machine (lower levels on NVM or SSD)."""

    name = "matrixkv"

    def __init__(
        self,
        system,
        options: Optional[MatrixKVOptions] = None,
        media: str = "nvm",
    ) -> None:
        super().__init__(system, options or MatrixKVOptions())
        self.device = system.nvm if media == "nvm" else system.ssd
        if self.device is None:
            raise ValueError(f"system has no {media} device")
        self.rng = XorShiftRng(0x3A7B)
        self.wal = WriteAheadLog(
            system.nvm, f"{self.name}-wal",
            fsync_policy=self.options.fsync_policy, clock=system.clock,
        )
        self.memtable = MemTable(system, self.options.memtable_bytes, self.rng.fork())
        self.immutable: Optional[MemTable] = None
        self._flush_job = None
        self.rows: List[MatrixRow] = []
        self.lsm = LeveledLSM(
            system,
            self.options,
            self.device,
            nworkers=self.options.compaction_workers,
            label=self.name,
        )
        self.flush_worker = system.executor.worker(f"{self.name}-flush")
        self.column_worker = system.executor.worker(f"{self.name}-column")
        self._column_cursor: Optional[bytes] = None
        self._column_busy = False
        self._inflight_column = {}
        self.column_compactions = 0
        self.lsm.add_completion_listener(self._maybe_column_compact)

    # ------------------------------------------------------------ write path

    def container_bytes(self) -> int:
        """Live bytes currently held by the matrix container."""
        return sum(row.data_bytes for row in self.rows)

    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = self._throttle()
        if self.memtable.is_full:
            if self._flush_job is not None and not self._flush_job.done:
                stalled = self.system.executor.wait_for(self._flush_job)
                self._stall_wait(STALL_MEMTABLE_FULL, stalled)
            self._wait_while_container_stopped()
            self._rotate_memtable()
        if self.options.wal_enabled:
            seconds += self.wal.append(seq, key, value, value_bytes)
        seconds += self.memtable.insert(key, seq, value, value_bytes)
        return seconds

    def _throttle(self) -> float:
        """RocksDB-style delayed writes: container pressure or pending
        flush slow the foreground instead of blocking it."""
        fill = self.container_bytes() / float(self.options.container_bytes)
        flush_pending = self._flush_job is not None and not self._flush_job.done
        if fill >= self.options.slowdown_threshold or flush_pending:
            # The matrix container plays L0's role, so container
            # pressure reports as the canonical l0-slowdown cause.
            return self._stall_delay(
                STALL_L0_SLOWDOWN, self.options.slowdown_delay_s
            )
        return 0.0

    def _wait_while_container_stopped(self) -> None:
        limit = self.options.stop_threshold * self.options.container_bytes
        while self.container_bytes() >= limit:
            self._maybe_column_compact()
            deadline = self.system.executor.next_completion()
            if deadline is None:
                raise RuntimeError("container full with no background work pending")
            before = self.system.clock.now
            self.system.clock.advance_to(deadline)
            self.system.executor.settle()
            self._stall_wait(STALL_L0_STOP, self.system.clock.now - before)

    def _rotate_memtable(self) -> None:
        old = self.memtable
        old.mark_immutable()
        self.immutable = old
        self.memtable = MemTable(
            self.system, self.options.memtable_bytes, self.rng.fork()
        )
        self._flush_job = self._schedule_flush(old)

    def _schedule_flush(self, table: MemTable):
        entries = memtable_entries(table)
        row = MatrixRow(self.system, entries, f"{self.name}-row")
        with self.system.job_scope():
            seconds = self.system.dram.read(table.data_bytes, sequential=True)
            seconds += self.system.cpu.serialize_time(row.data_bytes)
            seconds += self.system.nvm.write(row.data_bytes, sequential=True)
        last_seq = max((e[1] for e in entries), default=self.seq)

        def apply() -> None:
            self.rows.append(row)
            table.release()
            if self.immutable is table:
                self.immutable = None
            if self.options.wal_enabled:
                self.wal.truncate_through(last_seq)
            self._maybe_column_compact()

        self.system.stats.add("flush.count", 1)
        self.system.stats.add("flush.time_s", seconds)
        self.system.stats.add("flush.bytes", table.data_bytes)
        self.system.stats.add("serialize.time_s", self.system.cpu.serialize_time(row.data_bytes))
        return self.system.executor.submit(
            self.flush_worker, seconds, apply, name=f"{self.name}-flush",
            meta={"cat": CAT_FLUSH, "bytes": table.data_bytes},
            # The row was serialized from the rotated MemTable at
            # submit; in flight only that frozen table is read.
            accesses=(("r", "memtable:imm"),),
        )

    # ------------------------------------------------------- column compaction

    def _maybe_column_compact(self) -> None:
        if self._column_busy:
            return
        threshold = self.options.compact_threshold * self.options.container_bytes
        if self.container_bytes() < threshold:
            return
        if self.column_worker.busy_until > self.system.clock.now:
            return
        self._schedule_column_compaction()

    def _pick_column(self) -> Optional[Tuple[Optional[bytes], bytes]]:
        """Choose [low, high] so the selected slice is about one column.

        Returns ``None`` when the container holds nothing to compact;
        the cursor wraps to the start of the key space when it passes
        the container's maximum key.
        """
        low = self._column_cursor
        candidates = []
        for row in self.rows:
            start = 0 if low is None else bisect.bisect_left(row.keys, low)
            candidates.extend(row.entries[start:])
        if not candidates and low is not None:
            low = None
            candidates = [e for row in self.rows for e in row.entries]
        if not candidates:
            self._column_cursor = None
            return None
        candidates.sort(key=lambda e: e[0])
        used = 0
        high = candidates[-1][0]
        for entry in candidates:
            used += entry_frame_bytes(entry)
            if used >= self.options.column_target_bytes:
                high = entry[0]
                break
        return low, high

    def _schedule_column_compaction(self) -> None:
        column = self._pick_column()
        if column is None:
            return
        low, high = column
        bounds_low = low if low is not None else min(
            (row.keys[0] for row in self.rows if row.keys), default=high
        )
        overlaps = [t for t in self.lsm.levels[1] if t.overlaps(bounds_low, high)]
        if not self.lsm.try_reserve(overlaps):
            # An L1 input is being compacted downward; retry when that
            # compaction completes (the completion listener re-triggers
            # us).  Compacting around a busy table would create
            # overlapping L1 runs, which the read path must never see.
            return
        taken_streams = []
        taken_bytes = 0
        for row in self.rows:
            taken = row.take_range(low, high)
            if taken:
                taken_streams.append(taken)
                taken_bytes += sum(entry_frame_bytes(e) for e in taken)
        self.rows = [row for row in self.rows if not row.is_empty]
        if not taken_streams:
            self._column_cursor = None
            self.lsm.release_reservation(overlaps)
            return
        # Keep the in-flight column readable until the result is applied.
        for stream in taken_streams:
            for entry in stream:
                current = self._inflight_column.get(entry[0])
                if current is None or entry[1] > current[1]:
                    self._inflight_column[entry[0]] = entry

        with self.system.job_scope():
            seconds = self.system.nvm.read(taken_bytes, sequential=True)
            seconds += self.system.cpu.deserialize_time(taken_bytes)
            streams = list(taken_streams)
            for table in overlaps:
                entries, cost = table.scan_all(self.system.cpu)
                seconds += cost
                streams.append(entries)
            drop_tombstones = all(
                not level for level in self.lsm.levels[2:]
            )
            merged = list(
                merge_entry_streams(
                    streams,
                    drop_shadowed=True,
                    drop_tombstones=drop_tombstones,
                    tombstone=TOMBSTONE,
                )
            )
            outputs = []
            for i, chunk in enumerate(self.lsm.split_entries(merged)):
                table, cost = self.lsm.build_table(chunk, f"{self.name}-col-{i}")
                outputs.append(table)
                seconds += cost

        self._column_busy = True
        self._column_cursor = _next_key(high)

        def apply() -> None:
            self._column_busy = False
            self._inflight_column.clear()
            self.lsm.replace_tables(1, overlaps, outputs)
            self.column_compactions += 1
            self.system.stats.add("compact.count", 1)
            self.system.stats.add("compact.bytes_in", taken_bytes)
            self._maybe_column_compact()

        self.system.stats.add("compact.time_s", seconds)
        self.system.executor.submit(
            self.column_worker, seconds, apply, name=f"{self.name}-column",
            meta={"cat": CAT_COMPACT, "level": 0, "kind": "column",
                  "bytes": taken_bytes},
            # Column compaction reads the taken container rows (kept
            # readable via _inflight_column) and the overlapping L1
            # tables; both stay foreground-read-only while in flight.
            accesses=(
                ("r", "container:rows"),
                ("r", "tables:matrixkv:L1"),
            ),
        )

    # ------------------------------------------------------------- read path

    def _batch_lookup(self):
        tables = tuple(
            t for t in (self.memtable, self.immutable) if t is not None
        )
        lsm_get = self.lsm.get
        nvm_read = self.system.nvm.read
        deserialize_time = self.system.cpu.deserialize_time
        cpu = self.system.cpu

        def lookup(key):
            seconds = 0.0
            for table in tables:
                node, cost = table.get(key)
                seconds += cost
                if node is not None:
                    return (None if node.is_tombstone else node.value), seconds
            for row in reversed(self.rows):
                entry, cost = row.get(key, cpu)
                seconds += cost
                if entry is not None:
                    value = entry[2]
                    return (None if value is TOMBSTONE else value), seconds
            inflight = self._inflight_column.get(key)
            if inflight is not None:
                nbytes = entry_frame_bytes(inflight)
                seconds += nvm_read(nbytes, sequential=False)
                seconds += deserialize_time(nbytes)
                value = inflight[2]
                return (None if value is TOMBSTONE else value), seconds
            entry, cost = lsm_get(key)
            seconds += cost
            if entry is None:
                return None, seconds
            value = entry[2]
            return (None if value is TOMBSTONE else value), seconds

        return lookup

    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        seconds = 0.0
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            node, cost = table.get(key)
            seconds += cost
            if node is not None:
                return (None if node.is_tombstone else node.value), seconds
        for row in reversed(self.rows):
            entry, cost = row.get(key, self.system.cpu)
            seconds += cost
            if entry is not None:
                value = entry[2]
                return (None if value is TOMBSTONE else value), seconds
        inflight = self._inflight_column.get(key)
        if inflight is not None:
            nbytes = entry_frame_bytes(inflight)
            seconds += self.system.nvm.read(nbytes, sequential=False)
            seconds += self.system.cpu.deserialize_time(nbytes)
            value = inflight[2]
            return (None if value is TOMBSTONE else value), seconds
        entry, cost = self.lsm.get(key)
        seconds += cost
        if entry is None:
            return None, seconds
        value = entry[2]
        return (None if value is TOMBSTONE else value), seconds

    def _scan(self, start_key: bytes, count: int):
        cost = CostCell()
        streams: List = []
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            streams.append(
                skiplist_stream(self.system, table.skiplist, start_key, "dram", cost)
            )
        for row in self.rows:
            idx = bisect.bisect_left(row.keys, start_key)
            streams.append(
                entry_list_stream(self.system, row.entries, idx, self.system.nvm, cost)
            )
        if self._inflight_column:
            window = sorted(
                (e for k, e in self._inflight_column.items() if k >= start_key),
                key=lambda e: (e[0], -e[1]),
            )
            streams.append(
                entry_list_stream(self.system, window, 0, self.system.nvm, cost)
            )
        streams.extend(self.lsm.scan_streams(start_key, cost))
        pairs = merged_scan(streams, count)
        return pairs, cost.seconds


def _next_key(key: bytes) -> bytes:
    """The smallest key strictly greater than ``key``."""
    return key + b"\x00"
