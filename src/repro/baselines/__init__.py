"""Baseline KV stores the paper compares against, built from scratch.

- :class:`LevelDBStore` -- the classic LevelDB design (DRAM MemTable,
  leveled SSTable compaction, single background thread).
- :class:`NoveLSMStore` -- NVM MemTable extension of LevelDB; flat
  (mutable NVM MemTable, Figure 1(c)) and hierarchical (immutable NVM
  buffer, Figure 1(b)) modes.
- :class:`NoveLSMNoSSTStore` -- a single big persistent skip list
  (the paper's NoveLSM-NoSST configuration in Figure 7).
- :class:`MatrixKVStore` -- matrix container at L0 in NVM with
  fine-grained column compaction (Figure 1(d)).

All of them run on the same simulated machine and the same leveled
SSTable engine (:class:`LeveledLSM`), so differences in stalls, write
amplification, and (de)serialization come only from their designs.
"""

from repro.baselines.leveldb import LevelDBStore
from repro.baselines.lsm import LeveledLSM
from repro.baselines.matrixkv import MatrixKVOptions, MatrixKVStore
from repro.baselines.novelsm import NoveLSMOptions, NoveLSMStore
from repro.baselines.novelsm_nosst import NoveLSMNoSSTStore
from repro.baselines.slmdb import SLMDBOptions, SLMDBStore

__all__ = [
    "LeveledLSM",
    "LevelDBStore",
    "NoveLSMStore",
    "NoveLSMOptions",
    "NoveLSMNoSSTStore",
    "MatrixKVStore",
    "MatrixKVOptions",
    "SLMDBStore",
    "SLMDBOptions",
]
