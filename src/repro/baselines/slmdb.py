"""SLM-DB: single-level LSM with a persistent B+-tree index (FAST'19).

The paper discusses SLM-DB as prior art (Sections 1 and 6): it keeps a
*single* level of SSTables plus a B+-tree in NVM that maps every key to
its table, so point reads go straight to the right table.  Its
weaknesses, which the paper calls out and this implementation exhibits:

- compaction must rewrite B+-tree index entries for every moved key, so
  it is expensive;
- because index order must be preserved, flushing and compaction cannot
  run in parallel (one background worker serialises them), so write
  bursts stall;
- selective compaction picks candidate tables by key-range overlap,
  and the selection itself costs time when the candidate list grows.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.btree.tree import NODE_BYTES, BPlusTree
from repro.kvstore.api import KVStore
from repro.kvstore.memtable import MemTable, memtable_entries
from repro.kvstore.options import StoreOptions
from repro.kvstore.scans import CostCell, entry_list_stream, merged_scan, skiplist_stream
from repro.obs.events import CAT_COMPACT, CAT_FLUSH, STALL_MEMTABLE_FULL
from repro.persist.arena import Arena
from repro.persist.wal import WriteAheadLog
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE
from repro.sstable.merge import merge_entry_streams
from repro.sstable.table import SSTable, build_sstable


@dataclass
class SLMDBOptions(StoreOptions):
    """SLM-DB's compaction pacing knobs."""

    #: start selective compaction when live tables exceed this count
    compaction_trigger_tables: int = 8
    #: merge at most this many tables per selective compaction
    compaction_fanin: int = 4
    btree_order: int = 64


class SLMDBStore(KVStore):
    """Single-level SSTables + NVM B+-tree index."""

    name = "slmdb"

    def __init__(self, system, options: Optional[SLMDBOptions] = None) -> None:
        super().__init__(system, options or SLMDBOptions())
        self.rng = XorShiftRng(0x51DB)
        self.wal = WriteAheadLog(
            system.nvm, f"{self.name}-wal",
            fsync_policy=self.options.fsync_policy, clock=system.clock,
        )
        self.memtable = MemTable(system, self.options.memtable_bytes, self.rng.fork())
        self.immutable: Optional[MemTable] = None
        self._flush_job = None
        self.tables: List[SSTable] = []
        self.index = BPlusTree(self.options.btree_order)
        self.index_arena = Arena(system.nvm, 0, system.now, f"{self.name}-index")
        # One worker for BOTH flushing and compaction: index order must
        # be preserved, so they cannot overlap (the paper's criticism).
        self.worker = system.executor.worker(f"{self.name}-background")
        self.compactions_done = 0

    # ------------------------------------------------------------ write path

    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        seconds = 0.0
        if self.memtable.is_full:
            if self._flush_job is not None and not self._flush_job.done:
                stalled = self.system.executor.wait_for(self._flush_job)
                self._stall_wait(STALL_MEMTABLE_FULL, stalled)
            self._rotate_memtable()
        if self.options.wal_enabled:
            seconds += self.wal.append(seq, key, value, value_bytes)
        seconds += self.memtable.insert(key, seq, value, value_bytes)
        return seconds

    def _rotate_memtable(self) -> None:
        old = self.memtable
        old.mark_immutable()
        self.immutable = old
        self.memtable = MemTable(
            self.system, self.options.memtable_bytes, self.rng.fork()
        )
        self._flush_job = self._schedule_flush(old)

    def _index_cost(self, visits: int, writes: int = 0) -> float:
        seconds = visits * self.system.cpu.hop_time("nvm")
        if writes:
            seconds += self.system.nvm.write(writes * 64, sequential=False)
        return seconds

    def _schedule_flush(self, table: MemTable):
        """Serialize the MemTable into one L1 table and index every key."""
        entries = list(
            merge_entry_streams([memtable_entries(table)], drop_shadowed=True)
        )
        with self.system.job_scope():
            seconds = self.system.dram.read(table.data_bytes, sequential=True)
            sst, build_cost = build_sstable(
                entries, self.system.nvm, self.system.cpu, f"{self.name}-L1"
            )
            seconds += build_cost
            self.system.stats.add(
                "serialize.time_s", self.system.cpu.serialize_time(sst.data_bytes)
            )
            # B+-tree updates: one insert per key, each an NVM pointer chase
            # plus an in-place node write (this is what makes SLM-DB's
            # flush+compaction path slow).
            nodes_before = self.index.node_count
            for key, seq, __v, __vb in entries:
                seconds += self._index_put(key, sst, seq)
        self._grow_index_arena(nodes_before)
        last_seq = max((e[1] for e in entries), default=self.seq)

        def apply() -> None:
            self.tables.append(sst)
            table.release()
            if self.immutable is table:
                self.immutable = None
            if self.options.wal_enabled:
                self.wal.truncate_through(last_seq)
            self._maybe_compact()

        self.system.stats.add("flush.count", 1)
        self.system.stats.add("flush.time_s", seconds)
        self.system.stats.add("flush.bytes", table.data_bytes)
        return self.system.executor.submit(
            self.worker, seconds, apply, name=f"{self.name}-flush",
            meta={"cat": CAT_FLUSH, "bytes": table.data_bytes},
            # Only the rotated MemTable is read while in flight; the
            # B+-tree index was already updated synchronously at submit.
            accesses=(("r", "memtable:imm"),),
        )

    def _grow_index_arena(self, nodes_before: int) -> None:
        grown = self.index.node_count - nodes_before
        if grown > 0:
            self.index_arena.grow(grown * NODE_BYTES, self.system.now)

    def _index_put(self, key: bytes, sst: SSTable, seq: int) -> float:
        """Point the index at (sst, seq) unless a newer locator exists.

        Compactions re-index old versions; a locator installed by a more
        recent flush must never be overwritten by them.
        """
        current, visits = self.index.get(key)
        seconds = self._index_cost(visits)
        if current is not None and current[1] > seq:
            return seconds
        visits, writes = self.index.insert(key, (sst, seq))
        return seconds + self._index_cost(visits, writes)

    # ------------------------------------------------------------ compaction

    def _maybe_compact(self) -> None:
        if len(self.tables) <= self.options.compaction_trigger_tables:
            return
        if self.worker.busy_until > self.system.clock.now:
            return
        self._schedule_compaction()

    def _pick_candidates(self) -> List[SSTable]:
        """Selective compaction: the tables with the most range overlap.

        The scan over the candidate list is itself charged (the paper
        notes the selection gets costly as the list grows).
        """
        scored = []
        for table in self.tables:
            overlap = sum(
                1
                for other in self.tables
                if other is not table
                and other.overlaps(table.min_key, table.max_key)
            )
            scored.append((overlap, table.table_id, table))
        scored.sort(reverse=True)
        return [t for __, __id, t in scored[: self.options.compaction_fanin]]

    def _schedule_compaction(self) -> None:
        candidates = self._pick_candidates()
        if len(candidates) < 2:
            return
        with self.system.job_scope():
            seconds = len(self.tables) * self.system.cpu.compare_cost * 8  # selection
            streams = []
            for table in candidates:
                entries, cost = table.scan_all(self.system.cpu)
                seconds += cost
                streams.append(entries)
            newest = list(merge_entry_streams(streams, drop_shadowed=True))
            # A tombstone may only be dropped when every older version of its
            # key is inside this compaction; with other tables live in the
            # single level, the tombstone must survive to keep shadowing them.
            dropping_all = len(candidates) == len(self.tables)
            if dropping_all:
                merged = [e for e in newest if e[2] is not TOMBSTONE]
            else:
                merged = newest
            if not merged:
                return
            sst, build_cost = build_sstable(
                merged, self.system.nvm, self.system.cpu, f"{self.name}-compact"
            )
            seconds += build_cost
            nodes_before = self.index.node_count
            for key, seq, value, __vb in newest:
                if value is TOMBSTONE:
                    # drop the index entry unless a newer flush superseded it
                    current, visits = self.index.get(key)
                    seconds += self._index_cost(visits)
                    if current is not None and current[1] <= seq:
                        __, visits = self.index.delete(key)
                        seconds += self._index_cost(visits, 1)
                else:
                    seconds += self._index_put(key, sst, seq)
        self._grow_index_arena(nodes_before)
        candidate_ids = {t.table_id for t in candidates}

        def apply() -> None:
            self.tables = [t for t in self.tables if t.table_id not in candidate_ids]
            self.tables.append(sst)
            for table in candidates:
                table.release()
            self.compactions_done += 1
            self.system.stats.add("compact.count", 1)
            self._maybe_compact()

        self.system.stats.add("compact.time_s", seconds)
        self.system.executor.submit(
            self.worker, seconds, apply, name=f"{self.name}-compact",
            meta={"cat": CAT_COMPACT, "level": 1,
                  "bytes": sum(t.data_bytes for t in candidates)},
            # The selected candidate tables stay readable while the
            # merged replacement is built off to the side.
            accesses=(("r", "tables:slmdb:L1"),),
        )

    # ------------------------------------------------------------- read path

    def _batch_lookup(self):
        tables = tuple(
            t for t in (self.memtable, self.immutable) if t is not None
        )
        index_get = self.index.get
        index_cost = self._index_cost
        cpu = self.system.cpu
        stats = self.system.stats

        def lookup(key):
            seconds = 0.0
            for table in tables:
                node, cost = table.get(key)
                seconds += cost
                if node is not None:
                    return (None if node.is_tombstone else node.value), seconds
            locator, visits = index_get(key)
            seconds += index_cost(visits)
            if locator is None:
                return None, seconds
            sst, __seq = locator
            if sst.released:
                for table in reversed(self.tables):
                    if table.released or not table.min_key <= key <= table.max_key:
                        continue
                    entry, cost = table.get(key, cpu, stats)
                    seconds += cost
                    if entry is not None:
                        value = entry[2]
                        return (None if value is TOMBSTONE else value), seconds
                return None, seconds
            entry, cost = sst.get(key, cpu, stats)
            seconds += cost
            if entry is None:
                return None, seconds
            value = entry[2]
            return (None if value is TOMBSTONE else value), seconds

        return lookup

    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        seconds = 0.0
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            node, cost = table.get(key)
            seconds += cost
            if node is not None:
                return (None if node.is_tombstone else node.value), seconds
        locator, visits = self.index.get(key)
        seconds += self._index_cost(visits)
        if locator is None:
            return None, seconds
        sst, __seq = locator
        if sst.released:
            # The index was updated eagerly while a compaction job is
            # still in flight; the data is in one of the live tables.
            for table in reversed(self.tables):
                if table.released or not table.min_key <= key <= table.max_key:
                    continue
                entry, cost = table.get(key, self.system.cpu, self.system.stats)
                seconds += cost
                if entry is not None:
                    value = entry[2]
                    return (None if value is TOMBSTONE else value), seconds
            return None, seconds
        entry, cost = sst.get(key, self.system.cpu, self.system.stats)
        seconds += cost
        if entry is None:
            return None, seconds
        value = entry[2]
        return (None if value is TOMBSTONE else value), seconds

    def _scan(self, start_key: bytes, count: int):
        cost = CostCell()
        streams = []
        for table in (self.memtable, self.immutable):
            if table is None:
                continue
            streams.append(
                skiplist_stream(self.system, table.skiplist, start_key, "dram", cost)
            )
        import bisect as _bisect

        for table in self.tables:
            if table.released or table.max_key < start_key:
                continue
            idx = _bisect.bisect_left(table._keys, start_key)
            streams.append(
                entry_list_stream(
                    self.system, table.entries, idx, self.system.nvm, cost
                )
            )
        pairs = merged_scan(streams, count)
        return pairs, cost.seconds
