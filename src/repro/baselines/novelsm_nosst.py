"""NoveLSM-NoSST: one big persistent skip list, no SSTables at all.

The paper's Figure 7 includes this configuration: every operation works
in place on a single NVM-resident skip list.  Updates pay a long NVM
pointer chase (log of the entire dataset) and a random NVM write; point
and range reads are served directly from the sorted list, which is why it
wins the scan-dominant workload E.
"""

from typing import List, Optional, Tuple

from repro.kvstore.api import KVStore
from repro.kvstore.options import StoreOptions
from repro.persist.arena import Arena
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE
from repro.skiplist.skiplist import SkipList


class NoveLSMNoSSTStore(KVStore):
    """All data in one mutable persistent skip list in NVM."""

    name = "novelsm-nosst"

    def __init__(self, system, options: Optional[StoreOptions] = None) -> None:
        super().__init__(system, options or StoreOptions())
        self.skiplist = SkipList(XorShiftRng(0x0557))
        self.arena = Arena(system.nvm, 0, system.now, f"{self.name}-heap")

    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        node, hops = self.skiplist.insert(key, seq, value, value_bytes)
        self.arena.grow(node.nbytes, self.system.now)
        seconds = self.system.cpu.skiplist_search_time("nvm", max(hops, 1))
        seconds += self.system.nvm.write(node.nbytes, sequential=False)
        # In-place shadowing: older versions of the key are dropped
        # immediately (the structure is its own storage; no compaction).
        dropped = self._drop_older_versions(node)
        seconds += dropped * self.system.cpu.nvm_hop
        return seconds

    def _drop_older_versions(self, node) -> int:
        dropped = 0
        while True:
            dup = node.next[0]
            if dup is None or dup.key != node.key:
                return dropped
            preds = self.skiplist.predecessors_of(dup)
            self.skiplist.unlink(dup, preds, to_garbage=False)
            self.arena.shrink(dup.nbytes, self.system.now)
            dropped += 1

    def _batch_lookup(self):
        sl_lookup = self.skiplist.lookup
        search_time = self.system.cpu.skiplist_search_time
        nvm_read = self.system.nvm.read

        def lookup(key):
            node, hops = sl_lookup(key)
            seconds = search_time("nvm", max(hops, 1))
            if node is None:
                return None, seconds
            seconds += nvm_read(node.nbytes, sequential=False)
            return (None if node.is_tombstone else node.value), seconds

        return lookup

    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        node, hops = self.skiplist.lookup(key)
        seconds = self.system.cpu.skiplist_search_time("nvm", max(hops, 1))
        if node is None:
            return None, seconds
        seconds += self.system.nvm.read(node.nbytes, sequential=False)
        return (None if node.is_tombstone else node.value), seconds

    def _scan(self, start_key: bytes, count: int):
        node, hops = self.skiplist.first_ge(start_key)
        seconds = self.system.cpu.skiplist_search_time("nvm", max(hops, 1))
        pairs: List[Tuple[bytes, object]] = []
        touched = 0
        last_key = None
        while node is not None and len(pairs) < count:
            if node.key != last_key:
                last_key = node.key
                if not node.is_tombstone:
                    pairs.append((node.key, node.value))
                    touched += node.nbytes
            node = node.next[0]
            seconds += self.system.cpu.nvm_hop
        seconds += self.system.nvm.read(touched, sequential=True)
        return pairs, seconds
