"""Skip-list nodes and tower-height generation."""

from typing import List, Optional

MAX_HEIGHT = 12
BRANCHING = 4

# Per-node metadata the cost model charges when a node is materialised:
# the tower pointers, key/seq headers, and allocator overhead.
NODE_OVERHEAD_BYTES = 64


class _Tombstone:
    """Sentinel value marking a deleted key (kept until compaction)."""

    def __repr__(self) -> str:
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class Node:
    """One version of one key.

    ``nbytes`` is the entry's accounted size (key + value + overhead) in
    *simulated* bytes; benchmarks use nominal value sizes far larger than
    the in-interpreter payload.
    """

    __slots__ = ("key", "seq", "value", "nbytes", "height", "next")

    def __init__(self, key: bytes, seq: int, value, nbytes: int, height: int) -> None:
        if height < 1 or height > MAX_HEIGHT:
            raise ValueError(f"node height out of range: {height}")
        self.key = key
        self.seq = seq
        self.value = value
        self.nbytes = nbytes
        # Plain slot, not a property: the flush/merge paths read `height`
        # hundreds of thousands of times per workload, and the tower
        # length never changes after construction.
        self.height = height
        self.next: List[Optional["Node"]] = [None] * height

    @property
    def is_tombstone(self) -> bool:
        """True when this version records a delete."""
        return self.value is TOMBSTONE

    def precedes(self, key: bytes, seq: int) -> bool:
        """Ordering test: does this node sort before (key, seq)?

        Keys ascend; among equal keys, larger sequence numbers (newer
        versions) come first.
        """
        if self.key != key:
            return self.key < key
        return self.seq > seq

    def __repr__(self) -> str:
        return f"Node({self.key!r}, seq={self.seq}, h={self.height})"


def random_height(rng) -> int:
    """Draw a tower height with P(h >= k) = BRANCHING^-(k-1), capped."""
    height = 1
    while height < MAX_HEIGHT and rng.next_below(BRANCHING) == 0:
        height += 1
    return height
