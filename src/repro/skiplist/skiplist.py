"""Multi-version skip list.

The list tracks both its live payload (``data_bytes``) and the payload of
nodes that were unlinked by zero-copy merging but not yet reclaimed
(``garbage_bytes``) -- the paper frees that memory lazily after a
lazy-copy compaction.

Search methods return ``(node, hops)`` pairs; the hop counts feed the CPU
cost model (a hop on NVM is several times more expensive than on DRAM).
"""

from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.skiplist.node import (
    MAX_HEIGHT,
    NODE_OVERHEAD_BYTES,
    Node,
    random_height,
)
from repro.sim.rng import XorShiftRng


class SkipList:
    """Nodes ordered by (key ascending, seq descending)."""

    def __init__(self, rng: Optional[XorShiftRng] = None) -> None:
        self._rng = rng or XorShiftRng()
        self.head = Node(b"", -1, None, 0, MAX_HEIGHT)
        self.entries = 0
        self.data_bytes = 0
        self.garbage_bytes = 0
        # Upper bound on the tallest linked tower.  Levels above it are
        # guaranteed empty, so searches skip them outright; unlinking the
        # tallest node leaves the bound stale-high, which is correct
        # (those levels are walked and found empty) just not tight.
        self._tallest = 0
        # Structural version, bumped on every link/unlink; the frozen
        # index below is valid only while the version it captured holds.
        self._version = 0
        self._index: Optional[Tuple[List[bytes], List[Node], List[int]]] = None
        self._index_version = -1
        self._index_hits = 0
        self._index_misses = 0
        self._rebuild_after = 8

    # -------------------------------------------------------------- queries

    def _find_predecessors(
        self, key: bytes, seq: int
    ) -> Tuple[List[Node], int]:
        """Predecessor at every level for position (key, seq); plus hops.

        This is the simulator's hottest loop (every insert, get, scan
        seek, and merge splice lands here), so ``Node.precedes`` is
        inlined: keys ascend, and among equal keys larger sequence
        numbers (newer versions) come first.  The descent never needs a
        tower-height guard -- a node reached at ``level`` spans it, and
        the head spans every level.
        """
        node = self.head
        preds = [node] * MAX_HEIGHT
        hops = 0
        # Levels above the tallest linked tower hold no nodes: walking
        # them adds no hops and leaves their predecessor at the head,
        # exactly what the preds prefill already says.
        for level in range(self._tallest - 1, -1, -1):
            nxt = node.next[level]
            while nxt is not None:
                nkey = nxt.key
                if not (nkey < key if nkey != key else nxt.seq > seq):
                    break
                node = nxt
                nxt = node.next[level]
                hops += 1
            preds[level] = node
        return preds, hops

    def first_ge(self, key: bytes) -> Tuple[Optional[Node], int]:
        """First node with ``node.key >= key`` (its newest version)."""
        # seq=+inf sentinel: stop before any version of `key`.
        preds, hops = self._find_predecessors(key, 1 << 62)
        return preds[0].next[0], hops

    def get(
        self, key: bytes, max_seq: Optional[int] = None
    ) -> Tuple[Optional[Node], int]:
        """Newest version of ``key`` visible at snapshot ``max_seq``.

        Tombstone nodes are returned as-is; callers decide whether a
        tombstone means "not found" or must shadow older levels.
        """
        node, hops = self.first_ge(key)
        while node is not None and node.key == key:
            if max_seq is None or node.seq <= max_seq:
                return node, hops
            node = node.next[0]
            hops += 1
        return None, hops

    def frozen_index(self):
        """Bottom-level snapshot ``(keys, nodes, hops_at)`` or ``None``.

        ``hops_at[p]`` is exactly the number of forward hops the level
        descent of :meth:`first_ge` pays to reach bottom-level position
        ``p``: the nodes stepped onto are precisely the suffix maxima of
        the tower heights in the prefix ``[0, p)`` (a node is visited iff
        no node between it and the target is strictly taller; equal
        heights are both visited).  A monotonic stack yields those counts
        in one O(n) pass, so an index query can charge the byte-identical
        hop cost without walking the towers.

        The index is rebuilt lazily when the structural version moved.
        Rebuilds back off exponentially while they keep getting
        invalidated before being used (an in-flight zero-copy merge
        relinks nodes every step); callers then get ``None`` and must
        fall back to the walking search.
        """
        if self._index_version == self._version:
            self._index_hits += 1
            return self._index
        self._index_misses += 1
        if self._index is not None:
            if self._index_misses < self._rebuild_after:
                return None
            if self._index_hits < 4:
                self._rebuild_after = min(1024, self._rebuild_after * 2)
            else:
                self._rebuild_after = 8
        keys: List[bytes] = []
        nodes: List[Node] = []
        hops_at = [0]
        stack: List[int] = []
        node = self.head.next[0]
        while node is not None:
            keys.append(node.key)
            nodes.append(node)
            height = node.height
            while stack and stack[-1] < height:
                stack.pop()
            stack.append(height)
            hops_at.append(len(stack))
            node = node.next[0]
        self._index = (keys, nodes, hops_at)
        self._index_version = self._version
        self._index_hits = 0
        self._index_misses = 0
        return self._index

    def lookup(self, key: bytes) -> Tuple[Optional[Node], int]:
        """Newest version of ``key``: index-accelerated :meth:`get`.

        Returns the identical ``(node, hops)`` pair ``get(key)`` would --
        same node object, same charged hop count -- via one bisect over
        the frozen index when it is current, falling back to the walking
        search otherwise.
        """
        index = self.frozen_index()
        if index is None:
            return self.get(key)
        keys, nodes, hops_at = index
        p = bisect_left(keys, key)
        if p < len(keys) and keys[p] == key:
            return nodes[p], hops_at[p]
        return None, hops_at[p]

    def nodes(self) -> Iterator[Node]:
        """Every version in order, including tombstones."""
        node = self.head.next[0]
        while node is not None:
            yield node
            node = node.next[0]

    def items(self, include_tombstones: bool = False):
        """Newest version per key, as ``(key, value)`` pairs."""
        last_key = None
        for node in self.nodes():
            if node.key == last_key:
                continue
            last_key = node.key
            if node.is_tombstone and not include_tombstones:
                continue
            yield node.key, node.value

    def first_node(self) -> Optional[Node]:
        """The smallest node, or ``None`` when empty."""
        return self.head.next[0]

    @property
    def is_empty(self) -> bool:
        """True when no nodes are linked at the bottom level."""
        return self.head.next[0] is None

    def key_range(self) -> Optional[Tuple[bytes, bytes]]:
        """(min_key, max_key) of live nodes, or ``None`` when empty."""
        first = self.head.next[0]
        if first is None:
            return None
        # Descend from the head's full-height tower, riding each level to
        # its last node; the final bottom-level node is the maximum.
        node = self.head
        for level in range(MAX_HEIGHT - 1, -1, -1):
            nxt = node.next[level]
            while nxt is not None:
                node = nxt
                nxt = node.next[level]
        return first.key, node.key

    # -------------------------------------------------------------- updates

    def insert(
        self,
        key: bytes,
        seq: int,
        value,
        value_bytes: int,
        height: Optional[int] = None,
    ) -> Tuple[Node, int]:
        """Insert one version; returns ``(node, hops)``.

        Duplicate (key, seq) pairs are rejected -- sequence numbers are
        globally unique in every store built on this structure.
        """
        preds, hops = self._find_predecessors(key, seq)
        at = preds[0].next[0]
        if at is not None and at.key == key and at.seq == seq:
            raise ValueError(f"duplicate (key, seq): ({key!r}, {seq})")
        if height is None:
            height = random_height(self._rng)
        nbytes = len(key) + value_bytes + NODE_OVERHEAD_BYTES
        node = Node(key, seq, value, nbytes, height)
        self._splice_in(node, preds)
        return node, hops

    def _splice_in(self, node: Node, preds: List[Node]) -> None:
        """Link ``node`` after the given predecessors and account it."""
        for level in range(node.height):
            pred = preds[level]
            # preds[level] always spans `level` (see _find_predecessors).
            node.next[level] = pred.next[level]
            pred.next[level] = node
        self.entries += 1
        self.data_bytes += node.nbytes
        if node.height > self._tallest:
            self._tallest = node.height
        self._version += 1

    def update_in_place(self, node: Node, seq: int, value, value_bytes: int) -> int:
        """Overwrite a node's payload (MioDB's repository update path).

        Legal only when the node is its key's sole version in this list,
        so changing ``seq`` cannot reorder it.  Returns the change in the
        node's accounted size.
        """
        nxt = node.next[0]
        if nxt is not None and nxt.key == node.key:
            raise ValueError("in-place update on a multi-version key")
        if seq < node.seq:
            raise ValueError(f"in-place update going backwards: {seq} < {node.seq}")
        new_nbytes = len(node.key) + value_bytes + NODE_OVERHEAD_BYTES
        delta = new_nbytes - node.nbytes
        node.seq = seq
        node.value = value
        node.nbytes = new_nbytes
        self.data_bytes += delta
        # No _version bump: the node keeps its position (sole version of
        # its key, checked above) and the frozen index holds node
        # references, so payload updates stay visible through it.
        return delta

    def unlink(self, node: Node, preds: List[Node], to_garbage: bool = True) -> None:
        """Remove ``node`` given its predecessors at every level.

        With ``to_garbage`` the node's bytes move to the garbage pool
        (zero-copy merge semantics: unlinked but not yet reclaimed);
        otherwise they simply leave the list (physical removal).
        """
        for level in range(node.height):
            pred = preds[level]
            if pred.next[level] is not node:
                raise ValueError("stale predecessors for unlink")
            pred.next[level] = node.next[level]
        self.entries -= 1
        self.data_bytes -= node.nbytes
        self._version += 1
        if to_garbage:
            self.garbage_bytes += node.nbytes

    def predecessors_of(self, node: Node) -> List[Node]:
        """Exact predecessors of a linked node (for unlinking)."""
        preds, __ = self._find_predecessors(node.key, node.seq)
        if preds[0].next[0] is not node:
            raise ValueError(f"node not in list: {node!r}")
        return preds

    # ------------------------------------------------------------- accounting

    @property
    def footprint_bytes(self) -> int:
        """Live plus not-yet-reclaimed bytes (arena footprint)."""
        return self.data_bytes + self.garbage_bytes

    def reclaim_garbage(self) -> int:
        """Drop the garbage accounting; returns bytes reclaimed."""
        freed = self.garbage_bytes
        self.garbage_bytes = 0
        return freed

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:
        return (
            f"SkipList(entries={self.entries}, data={self.data_bytes}B, "
            f"garbage={self.garbage_bytes}B)"
        )
