"""Multi-version skip list.

The list tracks both its live payload (``data_bytes``) and the payload of
nodes that were unlinked by zero-copy merging but not yet reclaimed
(``garbage_bytes``) -- the paper frees that memory lazily after a
lazy-copy compaction.

Search methods return ``(node, hops)`` pairs; the hop counts feed the CPU
cost model (a hop on NVM is several times more expensive than on DRAM).
"""

from typing import Iterator, List, Optional, Tuple

from repro.skiplist.node import (
    MAX_HEIGHT,
    NODE_OVERHEAD_BYTES,
    Node,
    random_height,
)
from repro.sim.rng import XorShiftRng


class SkipList:
    """Nodes ordered by (key ascending, seq descending)."""

    def __init__(self, rng: Optional[XorShiftRng] = None) -> None:
        self._rng = rng or XorShiftRng()
        self.head = Node(b"", -1, None, 0, MAX_HEIGHT)
        self.entries = 0
        self.data_bytes = 0
        self.garbage_bytes = 0

    # -------------------------------------------------------------- queries

    def _find_predecessors(
        self, key: bytes, seq: int
    ) -> Tuple[List[Node], int]:
        """Predecessor at every level for position (key, seq); plus hops.

        This is the simulator's hottest loop (every insert, get, scan
        seek, and merge splice lands here), so ``Node.precedes`` is
        inlined: keys ascend, and among equal keys larger sequence
        numbers (newer versions) come first.  The descent never needs a
        tower-height guard -- a node reached at ``level`` spans it, and
        the head spans every level.
        """
        node = self.head
        preds = [node] * MAX_HEIGHT
        hops = 0
        for level in range(MAX_HEIGHT - 1, -1, -1):
            nxt = node.next[level]
            while nxt is not None:
                nkey = nxt.key
                if not (nkey < key if nkey != key else nxt.seq > seq):
                    break
                node = nxt
                nxt = node.next[level]
                hops += 1
            preds[level] = node
        return preds, hops

    def first_ge(self, key: bytes) -> Tuple[Optional[Node], int]:
        """First node with ``node.key >= key`` (its newest version)."""
        # seq=+inf sentinel: stop before any version of `key`.
        preds, hops = self._find_predecessors(key, 1 << 62)
        return preds[0].next[0], hops

    def get(
        self, key: bytes, max_seq: Optional[int] = None
    ) -> Tuple[Optional[Node], int]:
        """Newest version of ``key`` visible at snapshot ``max_seq``.

        Tombstone nodes are returned as-is; callers decide whether a
        tombstone means "not found" or must shadow older levels.
        """
        node, hops = self.first_ge(key)
        while node is not None and node.key == key:
            if max_seq is None or node.seq <= max_seq:
                return node, hops
            node = node.next[0]
            hops += 1
        return None, hops

    def nodes(self) -> Iterator[Node]:
        """Every version in order, including tombstones."""
        node = self.head.next[0]
        while node is not None:
            yield node
            node = node.next[0]

    def items(self, include_tombstones: bool = False):
        """Newest version per key, as ``(key, value)`` pairs."""
        last_key = None
        for node in self.nodes():
            if node.key == last_key:
                continue
            last_key = node.key
            if node.is_tombstone and not include_tombstones:
                continue
            yield node.key, node.value

    def first_node(self) -> Optional[Node]:
        """The smallest node, or ``None`` when empty."""
        return self.head.next[0]

    @property
    def is_empty(self) -> bool:
        """True when no nodes are linked at the bottom level."""
        return self.head.next[0] is None

    def key_range(self) -> Optional[Tuple[bytes, bytes]]:
        """(min_key, max_key) of live nodes, or ``None`` when empty."""
        first = self.head.next[0]
        if first is None:
            return None
        # Descend from the head's full-height tower, riding each level to
        # its last node; the final bottom-level node is the maximum.
        node = self.head
        for level in range(MAX_HEIGHT - 1, -1, -1):
            nxt = node.next[level]
            while nxt is not None:
                node = nxt
                nxt = node.next[level]
        return first.key, node.key

    # -------------------------------------------------------------- updates

    def insert(
        self,
        key: bytes,
        seq: int,
        value,
        value_bytes: int,
        height: Optional[int] = None,
    ) -> Tuple[Node, int]:
        """Insert one version; returns ``(node, hops)``.

        Duplicate (key, seq) pairs are rejected -- sequence numbers are
        globally unique in every store built on this structure.
        """
        preds, hops = self._find_predecessors(key, seq)
        at = preds[0].next[0]
        if at is not None and at.key == key and at.seq == seq:
            raise ValueError(f"duplicate (key, seq): ({key!r}, {seq})")
        if height is None:
            height = random_height(self._rng)
        nbytes = len(key) + value_bytes + NODE_OVERHEAD_BYTES
        node = Node(key, seq, value, nbytes, height)
        self._splice_in(node, preds)
        return node, hops

    def _splice_in(self, node: Node, preds: List[Node]) -> None:
        """Link ``node`` after the given predecessors and account it."""
        for level in range(node.height):
            pred = preds[level]
            # preds[level] always spans `level` (see _find_predecessors).
            node.next[level] = pred.next[level]
            pred.next[level] = node
        self.entries += 1
        self.data_bytes += node.nbytes

    def update_in_place(self, node: Node, seq: int, value, value_bytes: int) -> int:
        """Overwrite a node's payload (MioDB's repository update path).

        Legal only when the node is its key's sole version in this list,
        so changing ``seq`` cannot reorder it.  Returns the change in the
        node's accounted size.
        """
        nxt = node.next[0]
        if nxt is not None and nxt.key == node.key:
            raise ValueError("in-place update on a multi-version key")
        if seq < node.seq:
            raise ValueError(f"in-place update going backwards: {seq} < {node.seq}")
        new_nbytes = len(node.key) + value_bytes + NODE_OVERHEAD_BYTES
        delta = new_nbytes - node.nbytes
        node.seq = seq
        node.value = value
        node.nbytes = new_nbytes
        self.data_bytes += delta
        return delta

    def unlink(self, node: Node, preds: List[Node], to_garbage: bool = True) -> None:
        """Remove ``node`` given its predecessors at every level.

        With ``to_garbage`` the node's bytes move to the garbage pool
        (zero-copy merge semantics: unlinked but not yet reclaimed);
        otherwise they simply leave the list (physical removal).
        """
        for level in range(node.height):
            pred = preds[level]
            if pred.next[level] is not node:
                raise ValueError("stale predecessors for unlink")
            pred.next[level] = node.next[level]
        self.entries -= 1
        self.data_bytes -= node.nbytes
        if to_garbage:
            self.garbage_bytes += node.nbytes

    def predecessors_of(self, node: Node) -> List[Node]:
        """Exact predecessors of a linked node (for unlinking)."""
        preds, __ = self._find_predecessors(node.key, node.seq)
        if preds[0].next[0] is not node:
            raise ValueError(f"node not in list: {node!r}")
        return preds

    # ------------------------------------------------------------- accounting

    @property
    def footprint_bytes(self) -> int:
        """Live plus not-yet-reclaimed bytes (arena footprint)."""
        return self.data_bytes + self.garbage_bytes

    def reclaim_garbage(self) -> int:
        """Drop the garbage accounting; returns bytes reclaimed."""
        freed = self.garbage_bytes
        self.garbage_bytes = 0
        return freed

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:
        return (
            f"SkipList(entries={self.entries}, data={self.data_bytes}B, "
            f"garbage={self.garbage_bytes}B)"
        )
