"""Skip lists with sequence-numbered multi-version nodes.

This is the single data structure MioDB uses everywhere: DRAM MemTables,
NVM PMTables in the elastic buffer, and the huge PMTable data repository.
Nodes are ordered by (key ascending, sequence number descending), so the
newest version of a key is encountered first -- exactly the layout the
paper's zero-copy compaction (Section 4.3) relies on.

:class:`ZeroCopyMerge` implements the pointer-only merge with an insertion
mark; it is resumable so crash-recovery tests can stop it mid-merge.
"""

from repro.skiplist.node import MAX_HEIGHT, TOMBSTONE, Node, random_height
from repro.skiplist.skiplist import SkipList
from repro.skiplist.merge import ZeroCopyMerge

__all__ = [
    "Node",
    "SkipList",
    "ZeroCopyMerge",
    "TOMBSTONE",
    "MAX_HEIGHT",
    "random_height",
]
