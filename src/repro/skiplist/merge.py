"""Zero-copy compaction of two skip lists (paper Section 4.3).

Nodes migrate from the *newtable* into the *oldtable* purely by pointer
updates -- no KV data is copied, so the merge contributes no write
amplification.  Older duplicate versions are unlinked (logically deleted)
and their bytes accumulate as garbage to be reclaimed after a later
lazy-copy compaction.

The merge is a resumable stepper with an *insertion mark*: the node
currently in flight is recorded so queries (and crash recovery) never lose
it.  :meth:`ZeroCopyMerge.get` implements the paper's query rule --
consult the newtable, then the insertion mark, then the oldtable.
"""

from typing import Optional, Tuple

from repro.skiplist.node import Node
from repro.skiplist.skiplist import SkipList


class ZeroCopyMerge:
    """Merges ``new`` into ``old``; ``old`` becomes the merged table."""

    def __init__(self, new: SkipList, old: SkipList) -> None:
        self.new = new
        self.old = old
        self.insertion_mark: Optional[Node] = None
        self.done = False
        # Cost counters, consumed by the store's cost model.
        self.pointer_writes = 0
        self.search_hops = 0
        self.nodes_moved = 0
        self.nodes_dropped = 0

    # --------------------------------------------------------------- merging

    def step(self) -> bool:
        """Migrate one node (plus its shadowed duplicates).

        Returns ``True`` while more work remains, ``False`` once the
        newtable is exhausted and the merge is complete.
        """
        if self.done:
            return False
        new = self.new
        node = new.head.next[0]
        if node is None:
            self._finish()
            return False

        # 1. Record the in-flight node, then unlink it from the newtable.
        #    As the minimum element its predecessors are all the head node.
        self.insertion_mark = node
        preds = [new.head] * len(node.next)
        new.unlink(node, preds, to_garbage=False)
        self.pointer_writes += node.height

        # 2. Drop older versions of the same key at the newtable front
        #    (seq-descending order puts them immediately after the newest).
        self._drop_leading_duplicates(new, node.key)

        # 3. Splice the node into the oldtable at (key, seq) order.
        old_preds, hops = self.old._find_predecessors(node.key, node.seq)
        self.search_hops += hops
        for level in range(node.height):
            node.next[level] = None
        self.old._splice_in(node, old_preds)
        self.pointer_writes += node.height
        self.nodes_moved += 1

        # 4. Unlink any older versions that now follow it in the oldtable.
        self._drop_following_duplicates(node)

        self.insertion_mark = None
        if new.head.next[0] is None:
            self._finish()
            return False
        return True

    def run(self) -> "ZeroCopyMerge":
        """Drive the merge to completion; returns self for chaining.

        Same node-by-node procedure as :meth:`step` with the hot state
        held in locals for the whole merge; counters, hop charges, and
        the resulting structure are identical.  Runs synchronously (no
        queries interleave), so the insertion mark is not maintained.
        """
        if self.done:
            return self
        new = self.new
        old = self.old
        head = new.head
        find = old._find_predecessors
        unlink = new.unlink
        pointer_writes = 0
        search_hops = 0
        nodes_moved = 0
        while True:
            node = head.next[0]
            if node is None:
                break
            key = node.key
            unlink(node, [head] * len(node.next), to_garbage=False)
            pointer_writes += node.height
            dup = head.next[0]
            while dup is not None and dup.key == key:
                unlink(dup, [head] * len(dup.next), to_garbage=True)
                pointer_writes += dup.height
                self.nodes_dropped += 1
                dup = head.next[0]
            old_preds, hops = find(key, node.seq)
            search_hops += hops
            nxt = node.next
            for level in range(node.height):
                nxt[level] = None
            old._splice_in(node, old_preds)
            pointer_writes += node.height
            nodes_moved += 1
            self._drop_following_duplicates(node)
        self.pointer_writes += pointer_writes
        self.search_hops += search_hops
        self.nodes_moved += nodes_moved
        self._finish()
        return self

    def _drop_leading_duplicates(self, table: SkipList, key: bytes) -> None:
        head = table.head
        while True:
            dup = head.next[0]
            if dup is None or dup.key != key:
                return
            preds = [head] * len(dup.next)
            table.unlink(dup, preds, to_garbage=True)
            self.pointer_writes += dup.height
            self.nodes_dropped += 1

    def _drop_following_duplicates(self, node: Node) -> None:
        while True:
            dup = node.next[0]
            if dup is None or dup.key != node.key:
                return
            preds = self.old.predecessors_of(dup)
            self.old.unlink(dup, preds, to_garbage=True)
            self.pointer_writes += dup.height
            self.nodes_dropped += 1

    def _finish(self) -> None:
        # The newtable's arena (including its unlinked duplicates) now
        # belongs to the merged table until a lazy-copy reclaims it.
        self.old.garbage_bytes += self.new.garbage_bytes
        self.new.garbage_bytes = 0
        self.done = True
        self.insertion_mark = None

    # --------------------------------------------------------------- queries

    def get(self, key: bytes, max_seq: Optional[int] = None) -> Tuple[Optional[Node], int]:
        """Query both tables mid-merge without missing the in-flight node.

        Order: newtable, insertion mark, oldtable (paper Section 4.3,
        "Supporting Concurrent Compaction and Queries").  Returns the
        newest visible version found and the hop count.
        """
        best: Optional[Node] = None
        node, hops = self.new.get(key, max_seq)
        if node is not None:
            best = node
        mark = self.insertion_mark
        if mark is not None and mark.key == key:
            if (max_seq is None or mark.seq <= max_seq) and (
                best is None or mark.seq > best.seq
            ):
                best = mark
        node, extra = self.old.get(key, max_seq)
        hops += extra
        if node is not None and (best is None or node.seq > best.seq):
            best = node
        return best, hops

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return (
            f"ZeroCopyMerge({state}, moved={self.nodes_moved}, "
            f"dropped={self.nodes_dropped}, ptr_writes={self.pointer_writes})"
        )
