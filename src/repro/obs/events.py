"""Typed trace events and the vocabularies they draw from.

Every event carries a *track* (which timeline row it belongs to), a
*category* (what kind of activity it describes), a simulated timestamp,
and -- for spans -- a duration.  Because all timestamps come from the
simulated clock, a trace is a pure function of the workload: the same
operations always produce the same events in the same order.

Track naming convention:

- ``"foreground"`` -- client operations and the stalls they suffer.
- ``"worker:<name>"`` -- one background worker (flush or compaction).
- ``"dev:<name>"`` -- one device's transfer events.
"""

from typing import Optional

# ------------------------------------------------------------- categories

#: Foreground client operation (put/get/scan/delete/batch).
CAT_OP = "op"
#: Foreground write stall; ``args["cause"]`` names the trigger.
CAT_STALL = "stall"
#: Background MemTable flush work.
CAT_FLUSH = "flush"
#: Background compaction work; ``args["level"]`` when known.
CAT_COMPACT = "compact"
#: Any other background job.
CAT_JOB = "job"
#: One device read or write; ``args["bytes"]`` is the transfer size and
#: ``args["seconds"]`` the simulated duration charged for it.  Transfers
#: emitted while computing a *background job's* cost additionally carry
#: ``args["job"] = True`` so analysis can keep them out of foreground
#: latency attribution.
CAT_TRANSFER = "transfer"
#: Admission-queue wait ahead of a served cluster request (router track).
CAT_QUEUE = "queue"
#: Replication activity: WAL shipping, follower apply, ack waits,
#: leader elections and failover (``args["lsn"]``/``args["replica"]``
#: when known).  Emitted on the group's member tracks.
CAT_REPL = "repl"
#: Replicated-log shipping: the ``append`` instant that extends the
#: group log with fresh leader WAL frames, and the per-follower ``ship``
#: span covering one batch's link transfer.  Causally linked: a ship
#: span's ``args["parent"]`` is the span id of the append that most
#: recently extended the log it ships.
CAT_REPL_SHIP = "repl.ship"
#: Follower-side ingestion: the ``durable`` instant (frames appended to
#: the follower's WAL, ``durable_lsn`` advanced) and the ``apply`` span
#: (the replay job that makes them readable).  ``args["parent"]`` is the
#: delivering ship span's id.
CAT_REPL_APPLY = "repl.apply"
#: The leader's ack decision for one replicated write: a span from the
#: write's completion on the leader to the moment the ack policy is
#: satisfied.  ``args["straggler"]`` names the follower whose durability
#: completed the quorum; ``args["parent"]`` is that follower's delivering
#: ship span.
CAT_REPL_ACK = "repl.ack"
#: Failover machinery: ``kill``/``restart`` instants, the
#: ``election-blocked``/``truncate`` instants, the ``elect`` span (the
#: election job on the winner's apply worker), and the ``repoint``
#: instant when the shard is re-pointed at the new leader.
CAT_REPL_ELECTION = "repl.election"

CATEGORIES = (
    CAT_OP,
    CAT_STALL,
    CAT_FLUSH,
    CAT_COMPACT,
    CAT_JOB,
    CAT_TRANSFER,
    CAT_QUEUE,
    CAT_REPL,
    CAT_REPL_SHIP,
    CAT_REPL_APPLY,
    CAT_REPL_ACK,
    CAT_REPL_ELECTION,
)

#: Closed event-name vocabulary per ``repl.*`` category.  Strict-mode
#: recorders reject names outside these sets, so the causal replication
#: trace schema stays closed the same way stall/drop causes do.
REPL_EVENT_NAMES = {
    CAT_REPL_SHIP: ("append", "ship"),
    CAT_REPL_APPLY: ("durable", "apply"),
    CAT_REPL_ACK: ("ack",),
    CAT_REPL_ELECTION: (
        "kill", "election-blocked", "truncate", "elect", "repoint", "restart",
    ),
}

# ------------------------------------------------------------ stall causes
#
# The canonical stall-cause vocabulary (docs/observability.md).  Stores
# map their own triggers onto these four: MatrixKV's matrix container
# plays the role of L0, so container slowdown/stop report as the L0
# causes; MioDB's elastic-buffer cap is the only ``buffer-cap`` source.

#: The MemTable filled while its predecessor was still flushing.
STALL_MEMTABLE_FULL = "memtable-full"
#: L0 (or the matrix container) crossed the slowdown threshold.
STALL_L0_SLOWDOWN = "l0-slowdown"
#: L0 (or the matrix container) crossed the stop threshold.
STALL_L0_STOP = "l0-stop"
#: MioDB's bounded NVM buffer needed draining before the next flush.
STALL_BUFFER_CAP = "buffer-cap"

STALL_CAUSES = frozenset(
    {STALL_MEMTABLE_FULL, STALL_L0_SLOWDOWN, STALL_L0_STOP, STALL_BUFFER_CAP}
)

# -------------------------------------------------------------- drop causes
#
# The closed load-shedding vocabulary.  Defined here (rather than in
# ``repro.cluster.driver``, which re-exports them) so the recorder's
# strict mode and ``repro.check`` can validate drop reasons without an
# obs -> cluster import cycle.

#: Rejected outright: the shard's admission queue was at capacity.
DROP_QUEUE_FULL = "queue_full"
#: Deferred ``max_retries`` times and the queue was still full.
DROP_RETRY_EXHAUSTED = "retry_exhausted"
#: The shard's replica group had no leader (failover window) and the
#: request exhausted its deferrals waiting for the election to finish.
DROP_NO_LEADER = "no_leader"

DROP_CAUSES = (DROP_QUEUE_FULL, DROP_RETRY_EXHAUSTED, DROP_NO_LEADER)

# -------------------------------------------------------------- the event


class TraceEvent:
    """One trace record: a span (``dur`` set) or an instant (``dur None``)."""

    __slots__ = ("track", "name", "cat", "ts", "dur", "args")

    def __init__(
        self,
        track: str,
        name: str,
        cat: str,
        ts: float,
        dur: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        self.track = track
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.args = args

    @property
    def end(self) -> float:
        """The span's end time (an instant ends when it happens)."""
        return self.ts if self.dur is None else self.ts + self.dur

    @property
    def is_span(self) -> bool:
        return self.dur is not None

    def __repr__(self) -> str:
        shape = f"dur={self.dur:.9f}" if self.dur is not None else "instant"
        return (
            f"TraceEvent({self.track!r}, {self.name!r}, cat={self.cat!r}, "
            f"ts={self.ts:.9f}, {shape})"
        )
