"""One-call traced workload runs, shared by the CLI and the tests.

``run_traced`` builds a fresh store, attaches a recorder, drives a
deterministic workload, quiesces, and hands back everything needed to
export artifacts.  Because store, system, and recorder are all freshly
constructed and all time is simulated, two calls with the same arguments
produce identical events -- the property the ``repro trace`` CLI and the
pinned-determinism tests rely on.
"""

from typing import Tuple


def run_traced(
    store_name: str,
    n: int = 2048,
    value_size: int = 1024,
    mode: str = "fillrandom",
    reads: int = 256,
    seed: int = 1,
    ssd: bool = False,
    scale=None,
    live=None,
) -> Tuple[object, object, object]:
    """Run a traced workload; returns ``(store, system, recorder)``.

    ``mode`` is ``fillrandom``/``fillseq`` (a fill of ``n`` records plus
    ``reads`` random/sequential reads), or ``ycsb-<X>`` for any YCSB
    workload letter (a load phase of ``n`` records followed by ``reads``
    operations of workload X).

    ``live`` switches from the full-fidelity recorder to the sampled
    :class:`~repro.obs.live.recorder.LiveRecorder`: pass a dict of
    :class:`~repro.obs.live.recorder.LiveConfig` keyword overrides (or
    ``{}`` for defaults).  The workload, clock, and store state are
    identical either way -- only what the recorder retains differs.

    The recorder is detached before returning, so the caller can export
    its events without further mutation.  ``scale`` is a
    :class:`~repro.bench.config.BenchScale`; when ``None`` a
    *trace-tuned* scale is used instead of the benchmark default: a
    small MemTable so a few thousand operations drive many flushes and
    multi-level compactions, and (for MioDB) a capped elastic buffer so
    the trace also shows write stalls.  MioDB's whole point is that it
    barely stalls, so without the cap a short trace would contain no
    stall spans to look at.
    """
    # Imported here, not at module scope: the stores import the event
    # vocabulary from this package, so pulling the bench layer in at
    # obs-import time would be circular.
    from repro.bench.config import KB, MB, BenchScale
    from repro.bench.factory import make_store
    from repro.workloads import (
        YCSB_WORKLOADS,
        fill_random,
        fill_seq,
        load_phase,
        read_random,
        run_workload,
    )

    ycsb_name = None
    if mode.startswith("ycsb-"):
        ycsb_name = mode[len("ycsb-"):].upper()
        if ycsb_name not in YCSB_WORKLOADS:
            raise ValueError(
                f"unknown YCSB workload {ycsb_name!r} "
                f"(choose from {sorted(YCSB_WORKLOADS)})"
            )
    elif mode not in ("fillrandom", "fillseq"):
        raise ValueError(
            f"unknown trace mode {mode!r} (use fillrandom|fillseq|ycsb-<X>)"
        )
    overrides = {}
    if scale is None:
        scale = BenchScale(
            memtable_bytes=64 * KB,
            dataset_bytes=2 * MB,
            value_size=KB,
            nvm_buffer_bytes=512 * KB,
        )
        if store_name == "miodb":
            overrides["max_nvm_buffer_bytes"] = 256 * KB
    store, system = make_store(store_name, scale, ssd=ssd, **overrides)
    if live is not None:
        recorder = system.attach_live(**live)
    else:
        # Strict: an event outside the closed vocabularies raises here
        # rather than silently widening the pinned schema.  Validation
        # only -- the recorded stream (and its pinned hash) is unchanged.
        recorder = system.attach_tracing(strict=True)
    try:
        if ycsb_name is not None:
            load_phase(store, n, value_size, seed=seed)
            if reads > 0:
                run_workload(
                    store, YCSB_WORKLOADS[ycsb_name], reads, n, value_size,
                    seed=seed + 7,
                )
        elif mode == "fillseq":
            fill_seq(store, n, value_size)
        else:
            fill_random(store, n, value_size, seed=seed)
        if ycsb_name is None and reads > 0:
            read_random(store, min(reads, n), n, seed=seed + 1)
        store.quiesce()
    finally:
        recorder.detach()
    return store, system, recorder
