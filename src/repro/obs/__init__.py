"""Unified deterministic tracing & metrics for the reproduction.

The ``repro.obs`` package is the observability layer every store shares:
a :class:`TraceRecorder` collecting typed spans and instants from native
hooks (foreground ops, stalls with causes, flushes, per-level
compactions, per-device transfers), plus exporters for Perfetto/Chrome
trace JSON, hierarchical metrics snapshots, CSV time series, and ASCII
gantt charts.

Because every timestamp comes from the simulated clock, traces are
deterministic: the same seeded workload always produces byte-identical
artifacts.  See docs/observability.md for the event taxonomy and the
determinism contract.

Quickstart::

    from repro.bench import make_store
    from repro.obs import write_chrome_trace

    store, system = make_store("miodb")
    recorder = system.attach_tracing()
    ...                       # run a workload
    recorder.detach()
    write_chrome_trace(recorder, "trace.json")
"""

from repro.obs.analyze import (
    BurnRateRule,
    SloMonitor,
    SloObjective,
    analyze_cluster,
    analyze_run,
    attribute_ops,
    critical_paths,
)
from repro.obs.events import (
    CAT_COMPACT,
    CAT_FLUSH,
    CAT_JOB,
    CAT_OP,
    CAT_QUEUE,
    CAT_STALL,
    CAT_TRANSFER,
    CATEGORIES,
    DROP_CAUSES,
    DROP_QUEUE_FULL,
    DROP_RETRY_EXHAUSTED,
    STALL_BUFFER_CAP,
    STALL_CAUSES,
    STALL_L0_SLOWDOWN,
    STALL_L0_STOP,
    STALL_MEMTABLE_FULL,
    TraceEvent,
)
from repro.obs.export import (
    ascii_gantt,
    bandwidth_csv,
    chrome_trace_json,
    gantt,
    latency_histogram,
    metrics_json,
    metrics_snapshot,
    queue_depth_csv,
    to_chrome_trace,
    write_artifact,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.live import (
    FlightRecorder,
    HeadSampler,
    LiveConfig,
    LiveDashboard,
    LiveRecorder,
    TailSampler,
    WindowAggregator,
    head_keep,
    openmetrics_text,
    splitmix64,
    write_openmetrics,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.runner import run_traced

__all__ = [
    "TraceRecorder",
    "TraceEvent",
    "CATEGORIES",
    "CAT_OP",
    "CAT_STALL",
    "CAT_FLUSH",
    "CAT_COMPACT",
    "CAT_JOB",
    "CAT_TRANSFER",
    "CAT_QUEUE",
    "DROP_CAUSES",
    "DROP_QUEUE_FULL",
    "DROP_RETRY_EXHAUSTED",
    "STALL_CAUSES",
    "STALL_MEMTABLE_FULL",
    "STALL_L0_SLOWDOWN",
    "STALL_L0_STOP",
    "STALL_BUFFER_CAP",
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "metrics_snapshot",
    "metrics_json",
    "write_metrics",
    "write_artifact",
    "latency_histogram",
    "bandwidth_csv",
    "queue_depth_csv",
    "ascii_gantt",
    "gantt",
    "run_traced",
    "attribute_ops",
    "critical_paths",
    "analyze_run",
    "analyze_cluster",
    "SloObjective",
    "BurnRateRule",
    "SloMonitor",
    "LiveRecorder",
    "LiveConfig",
    "LiveDashboard",
    "FlightRecorder",
    "WindowAggregator",
    "HeadSampler",
    "TailSampler",
    "head_keep",
    "splitmix64",
    "openmetrics_text",
    "write_openmetrics",
]
