"""Exporters: Perfetto/Chrome trace JSON, metrics snapshots, CSV series.

All exporters are pure functions of a :class:`~repro.obs.recorder.TraceRecorder`
(or the system it observed), and all output is deterministic: keys are
sorted, track ids are assigned in first-appearance order, and every
timestamp comes from the simulated clock.  Two runs of the same seeded
workload therefore produce byte-identical artifacts -- the determinism
contract that lets tests pin trace fingerprints.
"""

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import CAT_TRANSFER

#: Microseconds per simulated second (the trace-event format's unit).
_US = 1e6


def write_artifact(path, text: str, overwrite: bool = True) -> pathlib.Path:
    """Write a deterministic text artifact to ``path``.

    The one place every exporter's file handling goes through: the
    parent directory is created if missing, and ``overwrite=False``
    refuses to clobber an existing file (useful when pinning golden
    artifacts).  Returns the path written.
    """
    target = pathlib.Path(path)
    if not overwrite and target.exists():
        raise FileExistsError(f"refusing to overwrite {target}")
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target


# ------------------------------------------------------- chrome/perfetto


def to_chrome_trace(recorder, process_name: str = "repro") -> dict:
    """The recorder's events as a Chrome trace-event JSON document.

    Spans become complete (``"ph": "X"``) events and instants become
    thread-scoped instant (``"ph": "i"``) events; each track maps to one
    ``tid`` announced by ``thread_name`` metadata.  The document loads
    directly in https://ui.perfetto.dev or ``chrome://tracing``.
    """
    tids: Dict[str, int] = {}
    for track in recorder.tracks():
        tids[track] = len(tids) + 1
    trace_events: List[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for event in recorder.events:
        record = {
            "name": event.name,
            "cat": event.cat,
            "pid": 1,
            "tid": tids[event.track],
            "ts": event.ts * _US,
        }
        if event.dur is not None:
            record["ph"] = "X"
            record["dur"] = event.dur * _US
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if event.args:
            record["args"] = event.args
        trace_events.append(record)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "schema": 1},
        "traceEvents": trace_events,
    }


def chrome_trace_json(recorder, process_name: str = "repro") -> str:
    """The trace document serialized deterministically (sorted keys)."""
    doc = to_chrome_trace(recorder, process_name)
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(
    recorder, path, process_name: str = "repro", overwrite: bool = True
) -> None:
    """Serialize the trace to ``path`` (byte-reproducible)."""
    write_artifact(path, chrome_trace_json(recorder, process_name),
                   overwrite=overwrite)


# -------------------------------------------------------------- metrics

#: Fixed histogram bucket boundaries in microseconds: powers of two from
#: 1 us up to ~17 s, so histograms from different runs always align.
HISTOGRAM_BUCKETS_US: Tuple[float, ...] = tuple(float(2 ** i) for i in range(25))


def latency_histogram(latencies_s: Sequence[float]) -> dict:
    """Fixed-bucket histogram of latency samples (seconds in, us buckets).

    ``counts[i]`` is the number of samples with
    ``latency <= HISTOGRAM_BUCKETS_US[i]`` (and greater than the previous
    bound); an overflow bucket catches anything beyond the last bound.
    """
    counts = [0] * (len(HISTOGRAM_BUCKETS_US) + 1)
    for latency in latencies_s:
        us = latency * _US
        for i, bound in enumerate(HISTOGRAM_BUCKETS_US):
            if us <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return {
        "bounds_us": list(HISTOGRAM_BUCKETS_US),
        "counts": counts,
        "total": len(latencies_s),
    }


def metrics_snapshot(system, recorder=None) -> dict:
    """A hierarchical metrics document for one finished run.

    Counters are grouped by key family (``stall.*``, ``flush.*``, ...),
    latencies become fixed-bucket histograms plus the usual percentile
    summary, device traffic is reported per device, and -- when a
    recorder is supplied -- stall time is broken down by cause.
    """
    doc = {
        "schema": 1,
        "sim_time_s": system.clock.now,
        "counters": system.stats.snapshot_grouped(),
        "devices": {},
        "latency": {},
    }
    for device in system.devices():
        doc["devices"][device.name] = {
            "bytes_read": device.bytes_read,
            "bytes_written": device.bytes_written,
            "read_ops": device.read_ops,
            "write_ops": device.write_ops,
            "bytes_in_use": device.bytes_in_use,
            "peak_bytes_in_use": device.peak_bytes_in_use,
        }
    for kind in system.latency.kinds():
        summary = system.latency.summary(kind)
        doc["latency"][kind] = {
            "summary_us": summary.as_micros(),
            "histogram": latency_histogram(system.latency.latencies(kind)),
        }
    if recorder is not None:
        doc["events"] = recorder.counts_by_category()
        doc["stall_by_cause_s"] = recorder.stall_seconds_by_cause()
    return doc


def metrics_json(system, recorder=None) -> str:
    """The metrics snapshot serialized deterministically."""
    return json.dumps(metrics_snapshot(system, recorder), sort_keys=True,
                      indent=2) + "\n"


def write_metrics(system, path, recorder=None, overwrite: bool = True) -> None:
    """Serialize the metrics snapshot to ``path`` (byte-reproducible)."""
    write_artifact(path, metrics_json(system, recorder), overwrite=overwrite)


# ------------------------------------------------------------ csv series


def bandwidth_csv(recorder, bins: int = 100) -> str:
    """Per-device read/write bandwidth over time, as CSV text.

    Transfer instants are bucketed into ``bins`` equal slices of the
    traced window; each row reports MB/s per device and direction.
    """
    transfers = [e for e in recorder.events if e.cat == CAT_TRANSFER]
    devices = []
    for event in transfers:
        name = event.track[len("dev:"):]
        if name not in devices:
            devices.append(name)
    header = ["t_s"] + [
        f"{dev}_{op}_MBps" for dev in devices for op in ("read", "write")
    ]
    if not transfers:
        return ",".join(header) + "\n"
    t1 = max(e.ts for e in transfers) or 1e-12
    width = t1 / bins
    totals = [[0.0] * (2 * len(devices)) for __ in range(bins)]
    for event in transfers:
        idx = min(bins - 1, int(event.ts / width))
        dev = event.track[len("dev:"):]
        col = 2 * devices.index(dev) + (0 if event.name == "read" else 1)
        totals[idx][col] += (event.args or {}).get("bytes", 0)
    lines = [",".join(header)]
    for i in range(bins):
        cells = [f"{(i + 0.5) * width:.9f}"]
        cells += [f"{b / width / 2 ** 20:.6f}" for b in totals[i]]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def queue_depth_csv(recorder) -> str:
    """Background jobs in flight over time, as a step-function CSV.

    One row per change point: ``t_s,depth`` where ``depth`` is the
    number of worker-track spans covering ``t``.
    """
    edges: List[Tuple[float, int]] = []
    for span in recorder.worker_spans():
        edges.append((span.ts, 1))
        edges.append((span.end, -1))
    lines = ["t_s,depth"]
    if edges:
        edges.sort()
        depth = 0
        i = 0
        while i < len(edges):
            t = edges[i][0]
            while i < len(edges) and edges[i][0] == t:
                depth += edges[i][1]
                i += 1
            lines.append(f"{t:.9f},{depth}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------- ascii gantt


def ascii_gantt(spans: Sequence[Tuple[str, float, float]], width: int = 72) -> str:
    """ASCII gantt chart: one row per label, ``#`` where busy.

    ``spans`` is a sequence of ``(row_label, start, end)``; rows appear
    sorted by label.  This is the renderer behind both
    :meth:`repro.sim.tracing.JobTracer.gantt` and the recorder-based
    :func:`gantt`.
    """
    if not spans:
        return "(no jobs traced)"
    t0 = min(s[1] for s in spans)
    t1 = max(s[2] for s in spans)
    window = (t1 - t0) or 1e-12
    labels = sorted({s[0] for s in spans})
    label_width = max(len(label) for label in labels)
    lines = []
    for label in labels:
        cells = [" "] * width
        for name, start, end in spans:
            if name != label:
                continue
            lo = int((start - t0) / window * width)
            hi = max(lo + 1, int((end - t0) / window * width))
            for i in range(lo, min(hi, width)):
                cells[i] = "#"
        lines.append(f"{label.ljust(label_width)} |{''.join(cells)}|")
    lines.append(f"{' ' * label_width} t={t0 * 1e3:.2f}ms ... {t1 * 1e3:.2f}ms")
    return "\n".join(lines)


def gantt(recorder, width: int = 72) -> str:
    """The recorder's background work as an ASCII gantt chart."""
    rows = [
        (span.track[len("worker:"):], span.ts, span.end)
        for span in recorder.worker_spans()
    ]
    return ascii_gantt(rows, width)
