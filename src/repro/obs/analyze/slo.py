"""SLO monitors on the simulated clock: rolling windows and burn rates.

A :class:`SloObjective` states that at least ``target`` of operations
complete within ``threshold_s`` (e.g. 99.9% under 200us).  Monitoring
follows the multi-window burn-rate pattern: the *burn rate* over a
window is the observed bad fraction divided by the error budget
(``1 - target``); an alert fires when both a short and a long window
burn faster than the rule's factor, and resolves when both drop back
under it.  The short window makes alerts recover quickly; the long
window keeps one latency spike from paging.

Everything is evaluated event-driven at sample completion times on the
simulated clock, so the alert log is a pure function of the workload:
replaying the same seed yields a byte-identical log.

:func:`rolling_series` additionally samples rolling-window p99 and
throughput on a fixed grid (the ``repro slo`` report body); empty
windows report ``None`` percentiles via
:meth:`LatencyRecorder.percentile`.
"""

import bisect
from typing import Dict, List, Optional, Tuple

from repro.sim.latency import LatencyRecorder

Sample = Tuple[float, float]  # (completion time, measured latency seconds)


class SloObjective:
    """``target`` of ops must complete within ``threshold_s``."""

    def __init__(self, name: str, threshold_s: float, target: float = 0.999):
        if threshold_s <= 0:
            raise ValueError(f"threshold_s must be positive, got {threshold_s}")
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        self.name = name
        self.threshold_s = threshold_s
        self.target = target

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "threshold_us": self.threshold_s * 1e6,
            "target": self.target,
        }


class BurnRateRule:
    """One (short window, long window, factor) alerting pair."""

    def __init__(self, short_s: float, long_s: float, factor: float):
        if not 0 < short_s <= long_s:
            raise ValueError(
                f"need 0 < short_s <= long_s, got {short_s}, {long_s}"
            )
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.short_s = short_s
        self.long_s = long_s
        self.factor = factor

    @property
    def label(self) -> str:
        return (
            f"{self.short_s * 1e3:.4g}ms/{self.long_s * 1e3:.4g}ms "
            f"x{self.factor:g}"
        )

    def as_dict(self) -> dict:
        return {
            "short_s": self.short_s,
            "long_s": self.long_s,
            "factor": self.factor,
        }


class SloMonitor:
    """Evaluates one objective's burn-rate rules over a sample stream."""

    def __init__(self, objective: SloObjective, rules: List[BurnRateRule]):
        if not rules:
            raise ValueError("at least one burn-rate rule is required")
        self.objective = objective
        self.rules = list(rules)

    def run(self, samples: List[Sample]) -> dict:
        """The deterministic alert log and compliance summary.

        ``samples`` must be sorted by completion time (simulated runs
        produce them that way).  Returns a report dict with per-rule
        fire/resolve transitions in one chronological ``alerts`` list.
        """
        times = [t for t, __ in samples]
        bad_prefix = [0] * (len(samples) + 1)
        for i, (__, latency) in enumerate(samples):
            bad = latency > self.objective.threshold_s
            bad_prefix[i + 1] = bad_prefix[i] + (1 if bad else 0)

        def burn(window_s: float, i: int) -> float:
            # Window (t - window_s, t] ending at sample i's completion.
            left = bisect.bisect_right(times, times[i] - window_s)
            total = (i + 1) - left
            if total <= 0:
                return 0.0
            bad = bad_prefix[i + 1] - bad_prefix[left]
            return (bad / total) / self.objective.error_budget

        alerts: List[dict] = []
        firing = [False] * len(self.rules)
        for i in range(len(samples)):
            for r, rule in enumerate(self.rules):
                burn_short = burn(rule.short_s, i)
                burn_long = burn(rule.long_s, i)
                should_fire = (
                    burn_short >= rule.factor and burn_long >= rule.factor
                )
                if should_fire != firing[r]:
                    firing[r] = should_fire
                    alerts.append(
                        {
                            "t_s": times[i],
                            "objective": self.objective.name,
                            "rule": rule.label,
                            "state": "fire" if should_fire else "resolve",
                            "burn_short": burn_short,
                            "burn_long": burn_long,
                        }
                    )
        total = len(samples)
        bad = bad_prefix[total]
        return {
            "objective": self.objective.as_dict(),
            "rules": [rule.as_dict() for rule in self.rules],
            "samples": total,
            "bad": bad,
            "compliance": (total - bad) / total if total else None,
            "alerts": alerts,
            "firing_at_end": [
                self.rules[r].label for r in range(len(self.rules)) if firing[r]
            ],
        }


def rolling_series(
    samples: List[Sample],
    end_s: float,
    window_s: float,
    bins: int = 20,
    p: float = 99.0,
    min_kiops: Optional[float] = None,
) -> dict:
    """Rolling-window p-th percentile and throughput on a fixed grid.

    One row per grid point: window sample count, throughput in KIOPS,
    and the window percentile in microseconds (``None`` for an empty
    window).  When ``min_kiops`` is given, rows whose window throughput
    undershoots it are listed as breaches (skipping the leading
    partial-window rows before the first sample).
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    times = [t for t, __ in samples]
    rows: List[dict] = []
    breaches: List[dict] = []
    for i in range(bins + 1):
        edge = end_s * i / bins
        left = bisect.bisect_right(times, edge - window_s)
        right = bisect.bisect_right(times, edge)
        window = LatencyRecorder()
        for t, latency in samples[left:right]:
            window.record("op", t, latency)
        count = right - left
        kiops = count / window_s / 1e3
        pctl = window.percentile(p, kind="op")
        row: Dict[str, object] = {
            "t_s": edge,
            "count": count,
            "kiops": kiops,
            f"p{p:g}_us": None if pctl is None else pctl * 1e6,
        }
        rows.append(row)
        if (
            min_kiops is not None
            and kiops < min_kiops
            and times
            and edge >= times[0]
        ):
            breaches.append({"t_s": edge, "kiops": kiops})
    return {
        "window_s": window_s,
        "p": p,
        "rows": rows,
        "throughput_breaches": breaches,
    }
