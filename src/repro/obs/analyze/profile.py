"""Top-down time profile: where simulated time went, per store and level.

Two sections, both derived purely from the trace:

- *foreground*: the serial client timeline, broken down by op kind and,
  inside each kind, by attribution component (stalls by cause, device
  time by device, residual CPU/other).  Time outside any op is idle.
- *workers*: per background worker busy time, broken down by job name,
  with per-level compaction totals alongside.

Rendered as an indented ASCII tree (flamegraph-style, widest first) or
embedded as JSON in the analysis report.
"""

from typing import Dict, List

from repro.obs.analyze.attribution import OpAttribution

_BAR_WIDTH = 24


def time_profile(attributions: List[OpAttribution], recorder, total_s: float) -> dict:
    """The profile tree for one store's trace (deterministic dict)."""
    foreground: Dict[str, dict] = {}
    fg_total = 0.0
    for attr in attributions:
        node = foreground.setdefault(
            attr.kind,
            {"count": 0, "seconds": 0.0, "children": {}},
        )
        node["count"] += 1
        node["seconds"] += attr.measured_s
        fg_total += attr.measured_s
        children = node["children"]
        for cause in sorted(attr.stall_s):
            key = f"stall:{cause}"
            children[key] = children.get(key, 0.0) + attr.stall_s[cause]
        for device in sorted(attr.device_s):
            key = f"dev:{device}"
            children[key] = children.get(key, 0.0) + attr.device_s[device]
        if attr.queue_s:
            children["queue"] = children.get("queue", 0.0) + attr.queue_s
        children["other"] = children.get("other", 0.0) + attr.other_s

    workers: Dict[str, dict] = {}
    per_level: Dict[str, dict] = {}
    for span in recorder.worker_spans():
        worker = span.track.split(":", 1)[1]
        node = workers.setdefault(worker, {"busy_s": 0.0, "jobs": {}})
        node["busy_s"] += span.dur
        job = node["jobs"].setdefault(
            span.name, {"count": 0, "seconds": 0.0, "bytes": 0}
        )
        job["count"] += 1
        job["seconds"] += span.dur
        args = span.args or {}
        job["bytes"] += args.get("bytes", 0)
        if span.cat in ("flush", "compact"):
            label = f"L{args['level']}" if "level" in args else "flush"
            level = per_level.setdefault(
                label, {"jobs": 0, "seconds": 0.0, "bytes": 0}
            )
            level["jobs"] += 1
            level["seconds"] += span.dur
            level["bytes"] += args.get("bytes", 0)

    return {
        "total_s": total_s,
        "foreground": {
            "seconds": fg_total,
            "idle_s": total_s - fg_total,
            "ops": {kind: foreground[kind] for kind in sorted(foreground)},
        },
        "workers": {name: workers[name] for name in sorted(workers)},
        "per_level": {label: per_level[label] for label in sorted(per_level)},
    }


def _bar(fraction: float) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * _BAR_WIDTH))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def _line(lines: List[str], depth: int, label: str, seconds: float, total: float,
          suffix: str = "") -> None:
    frac = seconds / total if total > 0 else 0.0
    lines.append(
        f"{'  ' * depth}{label:<{32 - 2 * depth}} "
        f"{seconds * 1e3:>10.4f}ms {frac * 100:>6.1f}% {_bar(frac)}{suffix}"
    )


def render_profile(profile: dict) -> str:
    """The profile tree as fixed-width ASCII (byte-stable)."""
    total = profile["total_s"]
    lines: List[str] = []
    _line(lines, 0, "simulated time", total, total)
    fg = profile["foreground"]
    _line(lines, 1, "foreground", fg["seconds"], total)
    ops = fg["ops"]
    for kind in sorted(ops, key=lambda k: (-ops[k]["seconds"], k)):
        node = ops[kind]
        _line(lines, 2, kind, node["seconds"], total, f"  x{node['count']}")
        children = node["children"]
        for key in sorted(children, key=lambda k: (-children[k], k)):
            _line(lines, 3, key, children[key], total)
    _line(lines, 1, "foreground idle", fg["idle_s"], total)
    lines.append("")
    lines.append("workers (busy time)")
    workers = profile["workers"]
    for name in sorted(workers, key=lambda w: (-workers[w]["busy_s"], w)):
        node = workers[name]
        _line(lines, 1, name, node["busy_s"], total)
        jobs = node["jobs"]
        for job in sorted(jobs, key=lambda j: (-jobs[j]["seconds"], j)):
            _line(
                lines, 2, job, jobs[job]["seconds"], total,
                f"  x{jobs[job]['count']}",
            )
    per_level = profile["per_level"]
    if per_level:
        lines.append("")
        lines.append("per level (flush/compaction)")
        for label in sorted(per_level):
            node = per_level[label]
            _line(
                lines, 1, label, node["seconds"], total,
                f"  x{node['jobs']}  {node['bytes']} B",
            )
    return "\n".join(lines) + "\n"
