"""Deterministic trace analysis: attribution, critical paths, SLOs.

Everything in this package consumes a :class:`~repro.obs.recorder.TraceRecorder`
after a run and computes pure functions of its event list, so every
report is byte-identical across same-seed runs.  The pieces:

- :mod:`~repro.obs.analyze.attribution` -- per-op latency decomposition
  (queue wait, stalls by cause, device time by device, residual other)
  with an exact conservation invariant;
- :mod:`~repro.obs.analyze.critical_path` -- the flush/compaction job
  chain behind each foreground stall;
- :mod:`~repro.obs.analyze.profile` -- top-down time profile per store,
  worker, and level, rendered as JSON or ASCII;
- :mod:`~repro.obs.analyze.timeline` -- per-level bytes-moved and
  write-amplification accounting cross-checkable against fig 11;
- :mod:`~repro.obs.analyze.replication` -- replication-phase totals,
  per-follower lag timelines, and quorum-straggler counts from the
  causal ``repl.*`` events;
- :mod:`~repro.obs.analyze.diff` -- differential analysis between two
  runs (analysis documents or perf-history entries) behind ``repro diff``;
- :mod:`~repro.obs.analyze.slo` -- rolling-window SLO monitors with
  multi-window burn-rate alerting on the simulated clock;
- :mod:`~repro.obs.analyze.report` -- the assembled ``repro analyze``
  and ``repro slo`` documents and their text renderings.
"""

from repro.obs.analyze.attribution import OpAttribution, attribute_ops, summarize
from repro.obs.analyze.critical_path import (
    MAX_CHAIN_DEPTH,
    StallChain,
    critical_paths,
    failover_timelines,
    stall_blame,
)
from repro.obs.analyze.diff import (
    diff_analysis,
    diff_json,
    diff_perf,
    diff_verdict,
    render_diff,
)
from repro.obs.analyze.profile import render_profile, time_profile
from repro.obs.analyze.replication import (
    follower_lag_timeline,
    replication_summary,
)
from repro.obs.analyze.report import (
    analysis_json,
    analyze_cluster,
    analyze_run,
    conservation_check,
    render_analysis,
    render_cluster_analysis,
    render_slo,
    slo_document,
)
from repro.obs.analyze.slo import (
    BurnRateRule,
    SloMonitor,
    SloObjective,
    rolling_series,
)
from repro.obs.analyze.timeline import (
    bytes_moved_timeline,
    per_level_bytes,
    persistent_write_bytes,
    write_amplification,
)

__all__ = [
    "OpAttribution",
    "attribute_ops",
    "summarize",
    "StallChain",
    "critical_paths",
    "stall_blame",
    "failover_timelines",
    "follower_lag_timeline",
    "replication_summary",
    "diff_analysis",
    "diff_perf",
    "diff_verdict",
    "diff_json",
    "render_diff",
    "MAX_CHAIN_DEPTH",
    "time_profile",
    "render_profile",
    "persistent_write_bytes",
    "write_amplification",
    "per_level_bytes",
    "bytes_moved_timeline",
    "SloObjective",
    "BurnRateRule",
    "SloMonitor",
    "rolling_series",
    "analyze_run",
    "analyze_cluster",
    "conservation_check",
    "analysis_json",
    "render_analysis",
    "render_cluster_analysis",
    "slo_document",
    "render_slo",
]
