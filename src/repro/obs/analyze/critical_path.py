"""Critical-path extraction for foreground stalls.

An interval stall (``memtable-full``, ``l0-stop``, ``buffer-cap``) ends
exactly when some background job completes -- the store blocked on it by
advancing the clock to the job's end.  Walking backward from that
*releasing* job names the chain of flush/compaction work the foreground
was really waiting on:

- a job whose worker-queue wait is positive (``wait_s > 0``) ran behind
  its worker's previous job -- the same-worker span ending at its start;
- a job submitted at the instant another job completed was scheduled by
  that job's completion callback (compaction cascades) -- a cross-worker
  dependency edge.

Both edge kinds are recovered from the trace alone: worker spans carry
``wait_s`` (start minus submission time), so the submission instant is
``start - wait_s``, and the simulation's determinism makes the time
matches exact, not heuristic.
"""

from typing import Dict, List, Optional

from repro.obs.events import CAT_REPL_ELECTION, CAT_STALL

#: Don't walk job chains deeper than this (cascades are short in practice).
MAX_CHAIN_DEPTH = 8


class StallChain:
    """One foreground stall and the background job chain behind it."""

    __slots__ = ("cause", "start", "duration_s", "chain")

    def __init__(self, cause: str, start: float, duration_s: float, chain: List[dict]):
        self.cause = cause
        self.start = start
        self.duration_s = duration_s
        #: Releasing job first, then its predecessors (dependency order).
        self.chain = chain

    def as_dict(self) -> dict:
        return {
            "cause": self.cause,
            "start_s": self.start,
            "duration_s": self.duration_s,
            "chain": self.chain,
        }

    def __repr__(self) -> str:
        names = " <- ".join(link["job"] for link in self.chain) or "(none)"
        return (
            f"StallChain({self.cause!r}, {self.duration_s * 1e6:.1f}us, {names})"
        )


def _job_record(span) -> dict:
    args = span.args or {}
    record = {
        "job": span.name,
        "worker": span.track.split(":", 1)[1],
        "start_s": span.ts,
        "duration_s": span.dur,
        "wait_s": args.get("wait_s", 0.0),
    }
    if "level" in args:
        record["level"] = args["level"]
    return record


def critical_paths(recorder, max_depth: int = MAX_CHAIN_DEPTH) -> List[StallChain]:
    """A :class:`StallChain` for every interval stall in the trace."""
    jobs = list(recorder.worker_spans())
    by_end: Dict[float, List] = {}
    for span in jobs:
        by_end.setdefault(span.end, []).append(span)

    def releasing_job(at: float):
        candidates = by_end.get(at)
        if not candidates:
            return None
        # Several jobs can end at the same instant; the last-emitted one
        # is the one the settle loop applied last, but any of them kept
        # the foreground blocked -- pick the longest as the bottleneck.
        return max(candidates, key=lambda s: (s.dur, s.ts))

    def predecessor(span):
        submitted = span.ts - (span.args or {}).get("wait_s", 0.0)
        trigger = by_end.get(submitted)
        if trigger:
            # Submitted the instant another job completed: scheduled by
            # that job's completion callback.
            others = [s for s in trigger if s is not span]
            if others:
                return max(others, key=lambda s: (s.dur, s.ts))
        if (span.args or {}).get("wait_s", 0.0) > 0.0:
            for other in jobs:
                if other.track == span.track and other.end == span.ts:
                    return other
        return None

    chains: List[StallChain] = []
    for event in recorder.events:
        if event.cat != CAT_STALL or event.dur is None:
            continue
        cause = (event.args or {}).get("cause", "unknown")
        chain: List[dict] = []
        seen = set()
        job = releasing_job(event.end)
        depth = 0
        while job is not None and depth < max_depth:
            if id(job) in seen:
                break
            seen.add(id(job))
            chain.append(_job_record(job))
            job = predecessor(job)
            depth += 1
        chains.append(StallChain(cause, event.ts, event.dur, chain))
    return chains


def failover_timelines(recorder) -> List[dict]:
    """Failover critical paths: kill -> election -> truncation -> re-point.

    Reconstructed purely from the causal parent links on
    ``repl.election`` events: blocked/truncate/elect instants carry the
    triggering kill's span id as ``parent``, and the repoint instant
    carries the elect span's id.  One timeline per kill that caused
    election activity (a leader kill, or the follower kill that left a
    blocked election without quorum); ``duration_s`` is the leaderless
    window -- kill to repoint -- when the failover completed.
    """
    candidates: List[dict] = []
    by_kill: Dict[int, dict] = {}
    by_elect: Dict[int, dict] = {}
    for event in recorder.events:
        if event.cat != CAT_REPL_ELECTION:
            continue
        args = event.args or {}
        span = args.get("span")
        parent = args.get("parent")
        if event.name == "kill":
            timeline = {
                "group": args.get("group"),
                "kill_t_s": event.ts,
                "replica": args.get("replica"),
                "role": args.get("role"),
                "blocked": [],
                "restarts": [],
                "truncated_records": 0,
                "elect_start_s": None,
                "elect_end_s": None,
                "winner": None,
                "epoch": None,
                "repoint_t_s": None,
                "duration_s": None,
            }
            by_kill[span] = timeline
            candidates.append(timeline)
        elif event.name == "election-blocked":
            timeline = by_kill.get(parent)
            if timeline is not None:
                timeline["blocked"].append({
                    "t_s": event.ts,
                    "alive": args.get("alive"),
                    "quorum": args.get("quorum"),
                })
        elif event.name == "truncate":
            timeline = by_kill.get(parent)
            if timeline is not None:
                timeline["truncated_records"] = args.get("records", 0)
        elif event.name == "elect":
            timeline = by_kill.get(parent)
            if timeline is not None:
                timeline["elect_start_s"] = event.ts
                timeline["elect_end_s"] = event.end
                timeline["winner"] = args.get("replica")
                by_elect[span] = timeline
        elif event.name == "repoint":
            timeline = by_elect.get(parent)
            if timeline is not None:
                timeline["repoint_t_s"] = event.ts
                timeline["epoch"] = args.get("epoch")
                timeline["duration_s"] = event.ts - timeline["kill_t_s"]
        elif event.name == "restart":
            # Restarts carry no parent (the replacement is a fresh node);
            # attach to the most recent still-unresolved failover, which
            # is the one the restart can unblock.
            for timeline in reversed(candidates):
                if timeline["repoint_t_s"] is None:
                    timeline["restarts"].append({
                        "t_s": event.ts,
                        "replica": args.get("replica"),
                    })
                    break
    return [
        timeline for timeline in candidates
        if timeline["role"] == "leader"
        or timeline["blocked"]
        or timeline["elect_start_s"] is not None
    ]


def stall_blame(chains: List[StallChain]) -> dict:
    """Stalled seconds per cause, blamed on the releasing job's name.

    The job whose completion unblocked the foreground carries the
    stall's full duration; the rest of the chain is context.  Keys are
    sorted for deterministic serialization.
    """
    blame: Dict[str, Dict[str, float]] = {}
    for chain in chains:
        job = chain.chain[0]["job"] if chain.chain else "(no pending job)"
        per_cause = blame.setdefault(chain.cause, {})
        per_cause[job] = per_cause.get(job, 0.0) + chain.duration_s
    return {
        cause: dict(sorted(blame[cause].items())) for cause in sorted(blame)
    }
