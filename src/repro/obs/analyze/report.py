"""Assembled analysis reports: one store, or a cluster of shards.

The report is a plain dict built from deterministic pieces (attribution
summary, conservation check, critical paths, profile tree, per-level
byte accounting) and serialized with sorted keys, so two runs of the
same seed produce byte-identical JSON and text output.
"""

import json
from typing import List, Optional

from repro.obs.analyze.attribution import attribute_ops, summarize
from repro.obs.analyze.critical_path import critical_paths, stall_blame
from repro.obs.analyze.profile import render_profile, time_profile
from repro.obs.analyze.replication import replication_summary
from repro.obs.analyze.timeline import (
    bytes_moved_timeline,
    per_level_bytes,
    persistent_write_bytes,
    write_amplification,
)

#: Critical paths kept in a report (the longest stalls).
TOP_CHAINS = 5


def conservation_check(attributions) -> dict:
    """Verify components sum to measured latency for every op."""
    worst = 0.0
    negative_other = 0
    for attr in attributions:
        residual = abs(attr.residual_s())
        if residual > worst:
            worst = residual
        if attr.other_s < 0.0:
            negative_other += 1
    return {
        "ops": len(attributions),
        "max_abs_residual_s": worst,
        "exact": worst == 0.0,
        "negative_other": negative_other,
    }


def analyze_run(
    recorder,
    system,
    store_name: str,
    top: int = TOP_CHAINS,
    timeline_bins: int = 20,
) -> dict:
    """The full analysis document for one traced store run.

    Works on full-fidelity and live (sampled) recorders alike; a live
    recorder additionally contributes a ``"sampling"`` section with its
    exact seen/retained bookkeeping, so readers know the op-level
    numbers cover a retained subset and by what factor to rescale.
    """
    attrs = attribute_ops(recorder)
    chains = critical_paths(recorder)
    chains_by_len = sorted(
        chains, key=lambda c: (-c.duration_s, c.start)
    )[: max(0, top)]
    end_s = system.clock.now
    user_bytes = system.stats.get("user.bytes_written")
    sampling = None
    meta_fn = getattr(recorder, "sampling_meta", None)
    if meta_fn is not None:
        sampling = meta_fn()
    # Present only on traces with repl.* events, so unreplicated
    # analysis documents stay byte-identical.
    replication = replication_summary(recorder)
    return {
        **({"sampling": sampling} if sampling is not None else {}),
        **({"replication": replication} if replication is not None else {}),
        "schema": 1,
        "store": store_name,
        "sim_time_s": end_s,
        "events": len(recorder.events),
        "attribution": summarize(attrs),
        "conservation": conservation_check(attrs),
        "stall_seconds_by_cause": dict(
            sorted(recorder.stall_seconds_by_cause().items())
        ),
        "stall_blame": stall_blame(chains),
        "critical_paths": [chain.as_dict() for chain in chains_by_len],
        "profile": time_profile(attrs, recorder, end_s),
        "per_level": per_level_bytes(recorder),
        "write": {
            "persistent_bytes": persistent_write_bytes(recorder),
            "user_bytes": user_bytes,
            "write_amplification": write_amplification(recorder, user_bytes),
        },
        "timeline": bytes_moved_timeline(recorder, end_s, bins=timeline_bins),
    }


def analyze_cluster(
    cluster,
    recorders: List[object],
    top: int = TOP_CHAINS,
    timeline_bins: int = 20,
) -> dict:
    """Per-shard analysis plus the router-merged attribution summary.

    ``recorders`` is the list from ``cluster.attach_tracing()`` (shard
    order).  Per-shard attributions include the admission-queue wait
    the driver recorded on each shard's router track; the merged
    summary concatenates the shards' op lists, which is exactly what a
    client sees through the router.
    """
    if len(recorders) != cluster.n_shards:
        raise ValueError(
            f"expected {cluster.n_shards} recorders, got {len(recorders)}"
        )
    shard_docs = {}
    merged_attrs = []
    for shard, recorder in zip(cluster.shards, recorders):
        doc = analyze_run(
            recorder,
            shard.system,
            f"shard{shard.shard_id}:{cluster.store_name}",
            top=top,
            timeline_bins=timeline_bins,
        )
        shard_docs[str(shard.shard_id)] = doc
        merged_attrs.extend(attribute_ops(recorder))
    return {
        "schema": 1,
        "store": cluster.store_name,
        "n_shards": cluster.n_shards,
        "sim_time_s": cluster.clock.now,
        "attribution": summarize(merged_attrs),
        "conservation": conservation_check(merged_attrs),
        "shards": shard_docs,
    }


def analysis_json(doc: dict) -> str:
    """Deterministic serialization (sorted keys, trailing newline)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds * 1e3:.4f}ms"


def _component_line(label: str, seconds: float, measured: float) -> str:
    share = seconds / measured * 100 if measured > 0 else 0.0
    return f"  {label:<24} {_fmt_seconds(seconds):>12}  {share:5.1f}%"


def render_analysis(doc: dict, profile: bool = True) -> str:
    """The analysis document as a fixed-width text report."""
    lines: List[str] = []
    attribution = doc["attribution"]
    measured = attribution["measured_s"]
    lines.append(
        f"== latency attribution: {doc['store']} "
        f"({attribution['ops']} ops, {_fmt_seconds(doc['sim_time_s'])} simulated) =="
    )
    if attribution.get("queue_s"):
        lines.append(_component_line("queue (admission)", attribution["queue_s"], measured))
    for cause, seconds in attribution["stall_s"].items():
        lines.append(_component_line(f"stall:{cause}", seconds, measured))
    for device, seconds in attribution["device_s"].items():
        lines.append(_component_line(f"dev:{device}", seconds, measured))
    lines.append(_component_line("other (cpu)", attribution["other_s"], measured))
    lines.append(_component_line("measured total", measured, measured))
    conservation = doc["conservation"]
    lines.append(
        f"conservation: {'exact' if conservation['exact'] else 'RESIDUAL'} "
        f"over {conservation['ops']} ops "
        f"(max |residual| {conservation['max_abs_residual_s']:.3e}s)"
    )
    if doc.get("critical_paths"):
        lines.append("")
        lines.append("== longest stalls and their job chains ==")
        for chain in doc["critical_paths"]:
            names = " <- ".join(link["job"] for link in chain["chain"])
            lines.append(
                f"  {chain['cause']:<16} {_fmt_seconds(chain['duration_s']):>12}"
                f"  at {_fmt_seconds(chain['start_s'])}  {names or '(no pending job)'}"
            )
    if doc.get("per_level"):
        lines.append("")
        lines.append("== per-level bytes moved ==")
        for label, node in doc["per_level"].items():
            lines.append(
                f"  {label:<8} {node['jobs']:>4} jobs  {node['bytes']:>12} B"
                f"  {_fmt_seconds(node['seconds']):>12}"
            )
    write = doc.get("write")
    if write:
        lines.append(
            f"write amplification: {write['write_amplification']:.3f} "
            f"({write['persistent_bytes']} persistent B / "
            f"{write['user_bytes']} user B)"
        )
    replication = doc.get("replication")
    if replication:
        lines.append("")
        lines.append("== replication phases ==")
        phases = replication["phases"]
        for label, key in (
            ("ship (link)", "ship_s"),
            ("apply (replay)", "apply_s"),
            ("ack wait", "ack_s"),
            ("election", "election_s"),
        ):
            lines.append(f"  {label:<24} {_fmt_seconds(phases[key]):>12}")
        for key, count in replication["stragglers"].items():
            lines.append(f"  straggler {key:<14} {count:>5} acks")
        for timeline in replication["failovers"]:
            took = timeline["duration_s"]
            lines.append(
                f"  failover g{timeline['group']}: kill r{timeline['replica']} "
                f"at {_fmt_seconds(timeline['kill_t_s'])} -> "
                + (
                    f"r{timeline['winner']} repointed after {_fmt_seconds(took)}"
                    if took is not None else "unresolved"
                )
            )
    out = "\n".join(lines) + "\n"
    if profile and "profile" in doc:
        out += "\n" + render_profile(doc["profile"])
    return out


def render_cluster_analysis(doc: dict) -> str:
    """Cluster analysis: merged summary plus a per-shard breakdown."""
    lines = [
        f"== cluster attribution: {doc['store']} x{doc['n_shards']} shards "
        f"({doc['attribution']['ops']} ops) ==",
    ]
    attribution = doc["attribution"]
    measured = attribution["measured_s"]
    lines.append(_component_line("queue (admission)", attribution["queue_s"], measured))
    for cause, seconds in attribution["stall_s"].items():
        lines.append(_component_line(f"stall:{cause}", seconds, measured))
    for device, seconds in attribution["device_s"].items():
        lines.append(_component_line(f"dev:{device}", seconds, measured))
    lines.append(_component_line("other (cpu)", attribution["other_s"], measured))
    lines.append(_component_line("measured total", measured, measured))
    conservation = doc["conservation"]
    lines.append(
        f"conservation: {'exact' if conservation['exact'] else 'RESIDUAL'} "
        f"over {conservation['ops']} ops"
    )
    lines.append("")
    header = (
        f"{'shard':>5} {'ops':>6} {'queue':>12} {'stalls':>12} "
        f"{'device':>12} {'other':>12}"
    )
    lines.append(header)
    for shard_id in sorted(doc["shards"], key=int):
        shard = doc["shards"][shard_id]["attribution"]
        stall_total = sum(shard["stall_s"].values())
        device_total = sum(shard["device_s"].values())
        lines.append(
            f"{shard_id:>5} {shard['ops']:>6} "
            f"{_fmt_seconds(shard['queue_s']):>12} "
            f"{_fmt_seconds(stall_total):>12} "
            f"{_fmt_seconds(device_total):>12} "
            f"{_fmt_seconds(shard['other_s']):>12}"
        )
    return "\n".join(lines) + "\n"


def slo_document(
    monitor_report: dict,
    series: dict,
    store_name: str,
    sim_time_s: float,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble the ``repro slo`` document (monitor + rolling series)."""
    doc = {
        "schema": 1,
        "store": store_name,
        "sim_time_s": sim_time_s,
        "monitor": monitor_report,
        "series": series,
    }
    if extra:
        doc.update(extra)
    return doc


def render_slo(doc: dict) -> str:
    """The SLO document as a fixed-width text report."""
    monitor = doc["monitor"]
    objective = monitor["objective"]
    lines = [
        f"== SLO: {objective['name']} on {doc['store']} ==",
        f"objective: p(latency <= {objective['threshold_us']:g}us) >= "
        f"{objective['target']}",
        f"samples: {monitor['samples']}  bad: {monitor['bad']}  "
        f"compliance: "
        + (
            f"{monitor['compliance']:.6f}"
            if monitor["compliance"] is not None
            else "n/a"
        ),
    ]
    if monitor["alerts"]:
        lines.append("")
        lines.append("alert log (burn-rate rules, simulated clock):")
        for alert in monitor["alerts"]:
            lines.append(
                f"  {alert['t_s'] * 1e3:>10.4f}ms {alert['state']:<8} "
                f"{alert['rule']:<16} burn short={alert['burn_short']:.2f} "
                f"long={alert['burn_long']:.2f}"
            )
    else:
        lines.append("alert log: empty (no burn-rate rule fired)")
    if monitor["firing_at_end"]:
        lines.append(f"still firing at end: {', '.join(monitor['firing_at_end'])}")
    series = doc["series"]
    pkey = f"p{series['p']:g}_us"
    lines.append("")
    lines.append(
        f"rolling window {series['window_s']:g}s "
        f"({len(series['rows'])} grid points):"
    )
    lines.append(f"{'t_ms':>10} {'count':>7} {'kiops':>9} {pkey:>12}")
    for row in series["rows"]:
        pctl = row[pkey]
        lines.append(
            f"{row['t_s'] * 1e3:>10.4f} {row['count']:>7} {row['kiops']:>9.2f} "
            + (f"{pctl:>12.2f}" if pctl is not None else f"{'-':>12}")
        )
    if series["throughput_breaches"]:
        lines.append(
            f"throughput breaches: {len(series['throughput_breaches'])} "
            "grid points under the floor"
        )
    return "\n".join(lines) + "\n"
