"""Per-level bytes-moved and write-amplification accounting from traces.

Every device read/write is a ``transfer`` instant with a byte count, and
every flush/compaction job span carries the bytes it moved plus (for
compactions) its level.  This module aggregates them into:

- :func:`persistent_write_bytes` -- total bytes written to persistent
  media according to the trace; when tracing covered the whole run this
  equals ``system.persistent_bytes_written()`` *exactly*, which is the
  numerator of the fig-11 write-amplification metric
  (``benchmarks/test_fig11_write_amp.py`` cross-checks it);
- :func:`write_amplification` -- the fig-11 ratio computed from the
  trace's persistent traffic and the caller-supplied logical user bytes;
- :func:`per_level_bytes` -- bytes/jobs/seconds moved per level label
  (``flush`` for memtable flushes, ``L<n>`` for compactions);
- :func:`bytes_moved_timeline` -- cumulative per-device written bytes
  sampled on a fixed simulated-time grid (deterministic rows suitable
  for CSV export or plotting).
"""

from typing import Dict, List

from repro.obs.events import CAT_TRANSFER

#: Device tracks whose writes do NOT count as persistent traffic.
_VOLATILE_DEVICES = frozenset({"dram"})


def _transfer_writes(recorder):
    for event in recorder.events:
        if event.cat != CAT_TRANSFER or event.name != "write":
            continue
        yield event


def persistent_write_bytes(recorder) -> int:
    """Bytes written to persistent devices, summed from transfer events."""
    total = 0
    for event in _transfer_writes(recorder):
        device = event.track.split(":", 1)[1]
        if device in _VOLATILE_DEVICES:
            continue
        total += (event.args or {}).get("bytes", 0)
    return total


def write_amplification(recorder, user_bytes: int) -> float:
    """The fig-11 ratio: persistent traffic over logical user writes."""
    if user_bytes <= 0:
        return 0.0
    return persistent_write_bytes(recorder) / user_bytes


def per_level_bytes(recorder) -> Dict[str, dict]:
    """Bytes moved per level label, from flush/compaction job spans."""
    levels: Dict[str, dict] = {}
    for span in recorder.worker_spans():
        if span.cat not in ("flush", "compact"):
            continue
        args = span.args or {}
        label = f"L{args['level']}" if "level" in args else "flush"
        node = levels.setdefault(label, {"jobs": 0, "bytes": 0, "seconds": 0.0})
        node["jobs"] += 1
        node["bytes"] += args.get("bytes", 0)
        node["seconds"] += span.dur
    return {label: levels[label] for label in sorted(levels)}


def bytes_moved_timeline(recorder, end_s: float, bins: int = 20) -> List[dict]:
    """Cumulative written bytes per device on a fixed time grid.

    Returns one row per grid point: ``{"t_s", "<device>": bytes, ...}``.
    The grid spans ``[0, end_s]`` with ``bins`` equal steps, so repeated
    runs of the same seed produce identical rows.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if end_s < 0:
        raise ValueError(f"end_s must be >= 0, got {end_s}")
    events = sorted(
        (
            (event.ts, event.track.split(":", 1)[1], (event.args or {}).get("bytes", 0))
            for event in _transfer_writes(recorder)
        ),
        key=lambda item: item[0],
    )
    devices = sorted({device for __, device, __b in events})
    cumulative = {device: 0 for device in devices}
    rows: List[dict] = []
    cursor = 0
    for i in range(bins + 1):
        edge = end_s * i / bins
        while cursor < len(events) and events[cursor][0] <= edge:
            __, device, nbytes = events[cursor]
            cumulative[device] += nbytes
            cursor += 1
        row = {"t_s": edge}
        row.update({device: cumulative[device] for device in devices})
        rows.append(row)
    return rows
