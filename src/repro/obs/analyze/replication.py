"""Replication-phase analysis over the causal ``repl.*`` trace events.

Decomposes the replicated write path into its phases -- group-log
append, per-follower ship (link transfer), follower apply (replay), and
the leader's ack decision -- and derives two timelines:

- per-follower **lag** samples: each time a follower's apply completes,
  how many records the group log was ahead of it (measured against the
  log head at the moment the apply was scheduled, which is the exact
  deterministic quantity ``repl.lag_peak`` tracks);
- **straggler counts**: how often each follower was the member the ack
  policy actually waited for (the ``straggler`` named on each
  ``repl.ack`` span).

Everything is a pure function of the event stream, so documents built
here are byte-stable across runs of the same seed.
"""

from typing import Dict, List, Optional

from repro.obs.events import (
    CAT_REPL_ACK,
    CAT_REPL_APPLY,
    CAT_REPL_ELECTION,
    CAT_REPL_SHIP,
)

_REPL_CATS = (CAT_REPL_SHIP, CAT_REPL_APPLY, CAT_REPL_ACK, CAT_REPL_ELECTION)


def _member_key(track: str) -> str:
    """``"g<gid>:r<rid>"`` from a member track ``repl:g<gid>:r<rid>``."""
    return track.split(":", 1)[1] if ":" in track else track


def follower_lag_timeline(recorder) -> Dict[str, List[dict]]:
    """Per-follower lag samples, keyed ``"g<gid>:r<rid>"`` (sorted).

    One sample per completed apply: ``t_s`` is the apply span's end
    (when ``lsn`` became readable on the follower), ``lag`` is the
    group-log head minus that LSN at scheduling time.
    """
    head: Dict[str, int] = {}
    series: Dict[str, List[dict]] = {}
    for event in recorder.events:
        args = event.args or {}
        if event.cat == CAT_REPL_SHIP and event.name == "append":
            head[event.track] = args.get("lsn", 0)
        elif event.cat == CAT_REPL_APPLY and event.name == "apply":
            group_track = event.track.rsplit(":r", 1)[0]
            lsn = args.get("lsn", 0)
            key = _member_key(event.track)
            series.setdefault(key, []).append({
                "t_s": event.end,
                "lsn": lsn,
                "lag": max(0, head.get(group_track, lsn) - lsn),
            })
    return {key: series[key] for key in sorted(series)}


def replication_summary(recorder) -> Optional[dict]:
    """The report's ``"replication"`` section, or None without repl events.

    Phase totals are simulated seconds of span duration per phase (ship
    and apply overlap across followers, so they are occupancy, not a
    serial decomposition); ``ack_s`` is the total client-visible ack
    wait.  Per-follower rows split ship/apply occupancy and count how
    often each follower was the quorum straggler.
    """
    from repro.obs.analyze.critical_path import failover_timelines

    phases = {"ship_s": 0.0, "apply_s": 0.0, "ack_s": 0.0, "election_s": 0.0}
    followers: Dict[str, dict] = {}
    stragglers: Dict[str, int] = {}
    appends = 0
    acks = 0
    seen = False

    def follower_row(key: str) -> dict:
        return followers.setdefault(
            key,
            {"ship_s": 0.0, "apply_s": 0.0, "shipped_records": 0,
             "applied_records": 0, "straggler_acks": 0},
        )

    for event in recorder.events:
        cat = event.cat
        if cat not in _REPL_CATS:
            continue
        seen = True
        args = event.args or {}
        if cat == CAT_REPL_SHIP:
            if event.name == "append":
                appends += 1
            elif event.dur is not None:
                phases["ship_s"] += event.dur
                row = follower_row(_member_key(event.track))
                row["ship_s"] += event.dur
                row["shipped_records"] += args.get("records", 0)
        elif cat == CAT_REPL_APPLY:
            if event.name == "apply" and event.dur is not None:
                phases["apply_s"] += event.dur
                row = follower_row(_member_key(event.track))
                row["apply_s"] += event.dur
                row["applied_records"] += args.get("records", 0)
        elif cat == CAT_REPL_ACK:
            if event.dur is not None:
                phases["ack_s"] += event.dur
                acks += 1
                straggler = args.get("straggler")
                if straggler is not None:
                    group = event.track.split(":", 1)[1]
                    key = f"{group}:r{straggler}"
                    stragglers[key] = stragglers.get(key, 0) + 1
                    follower_row(key)["straggler_acks"] += 1
        elif cat == CAT_REPL_ELECTION:
            if event.name == "elect" and event.dur is not None:
                phases["election_s"] += event.dur
    if not seen:
        return None
    return {
        "phases": phases,
        "appends": appends,
        "acks": acks,
        "followers": {key: followers[key] for key in sorted(followers)},
        "stragglers": {key: stragglers[key] for key in sorted(stragglers)},
        "failovers": failover_timelines(recorder),
        "lag": follower_lag_timeline(recorder),
    }
