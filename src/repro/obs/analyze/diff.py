"""Differential trace analysis: what changed between two runs.

Two deterministic comparisons back ``repro diff``:

- :func:`diff_analysis` -- two ``repro analyze`` documents (same store,
  different code or configuration).  Every numeric leaf of the
  comparable sections -- attribution buckets, stall causes, per-device
  and per-level time, write amplification, bytes-moved timeline bins,
  replication phases -- becomes one delta row, ranked by relative
  magnitude.  Two same-seed runs of the same code produce byte-identical
  analysis documents, so their diff has exactly zero rows.
- :func:`diff_perf` -- two labelled runs from ``BENCH_perf.json``
  (the wall-clock trajectory).  Kernels present in both are compared on
  wall time and throughput, ranked by speedup magnitude, and flagged
  when the pinned simulated fingerprint changed (the model itself
  drifted, which no optimization may do).

Both emit the same document shape (``mode`` distinguishes them) with a
one-line ``verdict`` -- the sentence CI embeds in band-violation
messages.  Ranking keys are pure functions of the inputs and ties break
on the metric name, so the report is byte-stable.
"""

import json
from typing import Dict, List, Optional

#: Analysis-document sections compared leaf-by-leaf.  Unlisted sections
#: are either non-numeric narratives (critical paths, profile trees,
#: failover timelines) or meta-data that must not alarm a diff
#: (conservation bookkeeping, sampling counters).
ANALYSIS_SECTIONS = (
    "sim_time_s",
    "events",
    "attribution",
    "stall_seconds_by_cause",
    "per_level",
    "write",
    "timeline",
    "replication",
)

#: Subtrees under the compared sections that are timelines-of-record or
#: examples rather than aggregate metrics.
_SKIP_SUBTREES = frozenset({"slowest", "failovers", "lag"})


def _flatten(prefix: str, node, out: Dict[str, float]) -> None:
    """Numeric leaves of ``node`` as dotted/indexed paths into ``out``."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        out[prefix] = node
    elif isinstance(node, dict):
        for key in node:
            if key in _SKIP_SUBTREES:
                continue
            _flatten(f"{prefix}.{key}" if prefix else str(key), node[key], out)
    elif isinstance(node, list):
        for at, item in enumerate(node):
            _flatten(f"{prefix}[{at}]", item, out)


def _metrics(doc: dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for section in ANALYSIS_SECTIONS:
        if section in doc:
            _flatten(section, doc[section], out)
    return out


def _rel(a: float, b: float) -> float:
    """Relative delta magnitude in (0, 1]; unit-free ranking key."""
    scale = max(abs(a), abs(b))
    return abs(b - a) / scale if scale > 0 else 0.0


def diff_analysis(
    a: dict, b: dict, label_a: str = "a", label_b: str = "b"
) -> dict:
    """Ranked numeric deltas between two analysis documents.

    Rows carry the metric path, both values, the absolute delta
    (``b - a``), and the ratio (``b / a`` when defined).  Metrics absent
    on one side diff against an implicit zero -- a stall cause that
    disappeared still ranks.  Exact-zero deltas are dropped, so a
    same-seed self-diff reports an empty list.
    """
    metrics_a = _metrics(a)
    metrics_b = _metrics(b)
    deltas: List[dict] = []
    for metric in set(metrics_a) | set(metrics_b):
        va = metrics_a.get(metric, 0.0)
        vb = metrics_b.get(metric, 0.0)
        if va == vb:
            continue
        deltas.append({
            "metric": metric,
            "a": va,
            "b": vb,
            "delta": vb - va,
            "ratio": (vb / va) if va != 0 else None,
        })
    deltas.sort(key=lambda row: (-_rel(row["a"], row["b"]),
                                 -abs(row["delta"]), row["metric"]))
    doc = {
        "schema": 1,
        "mode": "analysis",
        "a": label_a,
        "b": label_b,
        "store_a": a.get("store"),
        "store_b": b.get("store"),
        "deltas": deltas,
    }
    doc["verdict"] = _analysis_verdict(doc)
    return doc


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def _analysis_verdict(doc: dict) -> str:
    deltas = doc["deltas"]
    if not deltas:
        return (
            f"no differences: {doc['a']} and {doc['b']} are "
            "numerically identical"
        )
    top = deltas[0]
    pct = _rel(top["a"], top["b"]) * 100.0
    return (
        f"{len(deltas)} metrics differ; biggest: {top['metric']} "
        f"{_fmt(top['a'])} -> {_fmt(top['b'])} ({pct:.1f}% shift) "
        f"from {doc['a']} to {doc['b']}"
    )


def diff_perf(run_a: dict, run_b: dict) -> dict:
    """Per-kernel deltas between two ``BENCH_perf.json`` run entries.

    ``speedup`` is ``a_wall / b_wall`` -- above 1 means ``b`` is faster.
    Kernels with identical wall time and matching fingerprints are
    dropped, so diffing a run against itself reports zero deltas.
    Fingerprint mismatches always rank first: a changed fingerprint
    means the simulated model drifted, which outranks any speed delta.
    """
    label_a = run_a.get("label", "a")
    label_b = run_b.get("label", "b")
    kernels_a = run_a.get("kernels", {})
    kernels_b = run_b.get("kernels", {})
    deltas: List[dict] = []
    for kernel in kernels_a:
        if kernel not in kernels_b:
            continue
        ka, kb = kernels_a[kernel], kernels_b[kernel]
        match = ka.get("fingerprint") == kb.get("fingerprint")
        if match and ka["wall_s"] == kb["wall_s"]:
            continue
        speedup = ka["wall_s"] / kb["wall_s"] if kb["wall_s"] > 0 else None
        deltas.append({
            "kernel": kernel,
            "a_wall_s": ka["wall_s"],
            "b_wall_s": kb["wall_s"],
            "a_kops": ka["kops_wall"],
            "b_kops": kb["kops_wall"],
            "speedup": speedup,
            "fingerprint_match": match,
        })
    deltas.sort(key=lambda row: (
        row["fingerprint_match"],
        -max(row["speedup"], 1.0 / row["speedup"])
        if row["speedup"] else 0.0,
        row["kernel"],
    ))
    doc = {
        "schema": 1,
        "mode": "perf",
        "a": label_a,
        "b": label_b,
        "store_a": run_a.get("store"),
        "store_b": run_b.get("store"),
        "deltas": deltas,
    }
    doc["verdict"] = _perf_verdict(doc)
    return doc


def _perf_verdict(doc: dict) -> str:
    deltas = doc["deltas"]
    if not deltas:
        return (
            f"no differences: {doc['a']} and {doc['b']} match on every "
            "shared kernel"
        )
    drifted = [row["kernel"] for row in deltas if not row["fingerprint_match"]]
    if drifted:
        return (
            f"simulated model drifted on {len(drifted)} kernel(s): "
            f"{', '.join(drifted)} ({doc['a']} vs {doc['b']})"
        )
    top = deltas[0]
    speedup = top["speedup"]
    if speedup >= 1.0:
        direction = f"{speedup:.2f}x faster"
    else:
        direction = f"{1.0 / speedup:.2f}x slower"
    return (
        f"{len(deltas)} kernels changed; biggest: {top['kernel']} "
        f"{direction} ({top['a_kops']:.3f} -> {top['b_kops']:.3f} kops) "
        f"from {doc['a']} to {doc['b']}"
    )


def diff_verdict(doc: dict) -> str:
    """The diff's one-line verdict (CI embeds this in band messages)."""
    return doc["verdict"]


def diff_json(doc: dict) -> str:
    """Deterministic serialization (sorted keys, trailing newline)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def render_diff(doc: dict, top: Optional[int] = 20) -> str:
    """The diff document as a fixed-width text report."""
    lines = [
        f"== repro diff ({doc['mode']}): {doc['a']} -> {doc['b']} ==",
        doc["verdict"],
    ]
    deltas = doc["deltas"]
    shown = deltas if top is None else deltas[:top]
    if doc["mode"] == "perf":
        if shown:
            lines.append(
                f"{'kernel':<14} {'a kops':>10} {'b kops':>10} "
                f"{'speedup':>9} {'model':>8}"
            )
        for row in shown:
            speedup = row["speedup"]
            lines.append(
                f"{row['kernel']:<14} {row['a_kops']:>10.3f} "
                f"{row['b_kops']:>10.3f} "
                + (f"{speedup:>8.2f}x" if speedup else f"{'n/a':>9}")
                + f" {'ok' if row['fingerprint_match'] else 'DRIFT':>8}"
            )
    else:
        if shown:
            lines.append(
                f"{'metric':<44} {'a':>14} {'b':>14} {'shift':>8}"
            )
        for row in shown:
            pct = _rel(row["a"], row["b"]) * 100.0
            lines.append(
                f"{row['metric']:<44} {_fmt(row['a']):>14} "
                f"{_fmt(row['b']):>14} {pct:>7.1f}%"
            )
    if top is not None and len(deltas) > top:
        lines.append(f"... {len(deltas) - top} more rows (see --out JSON)")
    return "\n".join(lines) + "\n"
