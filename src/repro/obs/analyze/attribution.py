"""Per-operation latency attribution.

Every foreground op span is decomposed into named components:

- ``queue_s`` -- admission-queue wait ahead of the op (cluster runs;
  the router emits one ``queue`` span per served request);
- ``stall_s`` -- per-cause stalled time, from the closed
  :data:`~repro.obs.events.STALL_CAUSES` vocabulary (interval stall
  spans contribute their duration, cumulative slowdown instants their
  ``seconds`` argument);
- ``device_s`` -- per-device transfer time charged to the op itself
  (transfers tagged ``job`` belong to background work whose cost was
  computed inline and are excluded);
- ``repl_s`` -- replication ack wait (quorum-ack runs; one ``repl.ack``
  span per replicated write, keyed by the straggler follower that
  completed the quorum), folded into the op's measured latency because
  the client-visible write latency includes it;
- ``other_s`` -- everything else (CPU search/serialize time, WAL
  framing, bloom probes), defined as the measured latency minus the
  named components so the decomposition conserves by construction.

The conservation invariant -- components sum back to the measured
simulated latency -- is checked with :meth:`OpAttribution.components_total`;
``tests/test_analyze.py`` asserts it for every traced op.

Attribution relies on the trace layer's emission order: a foreground
op's stall and transfer events are recorded *before* its op span (the
span is appended by ``KVStore._finish``), and a cluster queue span is
emitted just before the store executes the request.  So a linear walk
assigning pending events to the next op span reconstructs each op's
component set exactly.
"""

from typing import Dict, Iterable, List, Optional

from repro.obs.events import (
    CAT_OP,
    CAT_QUEUE,
    CAT_REPL_ACK,
    CAT_STALL,
    CAT_TRANSFER,
)


class OpAttribution:
    """One foreground op's latency, decomposed into named components."""

    __slots__ = (
        "index",
        "kind",
        "start",
        "end",
        "measured_s",
        "queue_s",
        "stall_s",
        "device_s",
        "repl_s",
        "other_s",
    )

    def __init__(
        self,
        index: int,
        kind: str,
        start: float,
        measured_s: float,
        queue_s: float,
        stall_s: Dict[str, float],
        device_s: Dict[str, float],
    ) -> None:
        self.index = index
        self.kind = kind
        self.start = start
        self.end = start + measured_s
        self.measured_s = measured_s
        self.queue_s = queue_s
        self.stall_s = stall_s
        self.device_s = device_s
        self.repl_s: Dict[str, float] = {}
        self.other_s = measured_s - self.named_total()

    def named_total(self) -> float:
        """Queue + stalls + device + replication time, in fixed key order."""
        total = self.queue_s
        for cause in sorted(self.stall_s):
            total += self.stall_s[cause]
        for device in sorted(self.device_s):
            total += self.device_s[device]
        for key in sorted(self.repl_s):
            total += self.repl_s[key]
        return total

    def extend_repl(self, key: str, seconds: float) -> None:
        """Fold a replication ack wait into this op's decomposition.

        The ack wait happens *after* the leader's op span (the client
        blocks on the ack policy once the local write is done), so the
        measured latency grows by the same amount and conservation holds
        by construction -- ``other_s`` is recomputed as the measured
        remainder.
        """
        self.repl_s[key] = self.repl_s.get(key, 0.0) + seconds
        self.measured_s += seconds
        self.end = self.start + self.measured_s
        self.other_s = self.measured_s - self.named_total()

    def components_total(self) -> float:
        """All components including ``other_s`` -- equals ``measured_s``."""
        return self.named_total() + self.other_s

    def residual_s(self) -> float:
        """Conservation residual; exactly zero when the invariant holds."""
        return self.measured_s - self.components_total()

    def as_dict(self) -> dict:
        doc = {
            "index": self.index,
            "kind": self.kind,
            "start_s": self.start,
            "measured_s": self.measured_s,
            "queue_s": self.queue_s,
            "stall_s": dict(sorted(self.stall_s.items())),
            "device_s": dict(sorted(self.device_s.items())),
            "other_s": self.other_s,
        }
        # Only replicated ops carry the bucket, so unreplicated
        # attribution documents stay byte-identical.
        if self.repl_s:
            doc["repl_s"] = dict(sorted(self.repl_s.items()))
        return doc

    def __repr__(self) -> str:
        return (
            f"OpAttribution(#{self.index} {self.kind!r}, "
            f"measured={self.measured_s * 1e6:.2f}us, "
            f"other={self.other_s * 1e6:.2f}us)"
        )


def attribute_ops(recorder) -> List[OpAttribution]:
    """Decompose every foreground op span in ``recorder`` (emission order).

    Works on a single-store trace and on one shard's stream of a
    cluster run (where ``queue`` spans precede the op they delayed).

    Coalesced op spans -- one span per multi-op batch, carrying
    ``{"batch": N, "starts": [...], "durs": [...]}`` args (see
    ``TraceRecorder.op_batch``) -- are decomposed back into N per-op
    attributions.  Batched ops are contiguous on the simulated clock, so
    each pending event is assigned to the unique op whose window covers
    its timestamp (queue spans anchor on their end, which coincides with
    the served op's start); the reconstruction is therefore exactly the
    attribution the per-op event stream would have produced, and the
    conservation invariant holds per decomposed op.
    """
    attributions: List[OpAttribution] = []
    pending: List = []
    last_op_end = None
    for event in recorder.events:
        cat = event.cat
        if cat == CAT_TRANSFER:
            args = event.args or {}
            if args.get("job"):
                continue
            pending.append(event)
        elif cat == CAT_STALL or cat == CAT_QUEUE:
            pending.append(event)
        elif cat == CAT_REPL_ACK:
            # The ack span is emitted synchronously inside the replicated
            # write: nothing advances the clock between the leader op's
            # completion and the start of the ack wait, so an ack belongs
            # to the op span ending exactly at its start.  Acks without a
            # matching op (e.g. the recorder stayed on a deposed leader
            # whose successor serves the writes) are left to the
            # replication-phase summary instead of being misattributed.
            if (
                event.dur is not None
                and attributions
                and event.ts == last_op_end
            ):
                args = event.args or {}
                group = event.track.split(":g", 1)[-1]
                straggler = args.get("straggler")
                key = (
                    f"ack:g{group}" if straggler is None
                    else f"ack:g{group}:r{straggler}"
                )
                attributions[-1].extend_repl(key, event.dur)
        elif cat == CAT_OP and event.track == "foreground":
            args = event.args or {}
            last_op_end = event.end
            if "batch" in args:
                _attribute_batch(event, args, pending, attributions)
            else:
                queue_s, stall_s, device_s = _aggregate(pending)
                attributions.append(
                    OpAttribution(
                        index=len(attributions),
                        kind=event.name,
                        start=event.ts,
                        measured_s=event.dur + queue_s,
                        queue_s=queue_s,
                        stall_s=stall_s,
                        device_s=device_s,
                    )
                )
            pending = []
    return attributions


def _aggregate(events):
    """Sum pending events into (queue_s, stall_s, device_s) in order.

    Addition order matches the emission order, so the float totals are
    identical to accumulating eagerly as each event is recorded.
    """
    queue_s = 0.0
    stall_s: Dict[str, float] = {}
    device_s: Dict[str, float] = {}
    for event in events:
        cat = event.cat
        if cat == CAT_TRANSFER:
            args = event.args or {}
            device = event.track.split(":", 1)[1]
            device_s[device] = device_s.get(device, 0.0) + args.get("seconds", 0.0)
        elif cat == CAT_STALL:
            args = event.args or {}
            cause = args.get("cause", "unknown")
            amount = (
                event.dur if event.dur is not None else args.get("seconds", 0.0)
            )
            stall_s[cause] = stall_s.get(cause, 0.0) + amount
        else:  # CAT_QUEUE
            if event.dur is not None:
                queue_s += event.dur
    return queue_s, stall_s, device_s


def _attribute_batch(event, args, pending, attributions) -> None:
    """Split one coalesced op span into per-op attributions.

    Pending events arrive in chronological order, so a single cursor
    walks the op windows: a non-queue event belongs to the op whose
    ``[start, end)`` window holds its timestamp, a queue span to the op
    starting exactly where it ends.
    """
    starts = args["starts"]
    durs = args["durs"]
    n = args["batch"]
    ends = [starts[i] + durs[i] for i in range(n)]
    buckets: List[List] = [[] for __ in range(n)]
    cur = 0
    for ev in pending:
        if ev.cat == CAT_QUEUE:
            anchor = ev.ts + ev.dur if ev.dur is not None else ev.ts
            while cur < n - 1 and anchor > starts[cur]:
                cur += 1
        else:
            anchor = ev.ts
            while cur < n - 1 and anchor >= ends[cur]:
                cur += 1
        buckets[cur].append(ev)
    for i in range(n):
        queue_s, stall_s, device_s = _aggregate(buckets[i])
        attributions.append(
            OpAttribution(
                index=len(attributions),
                kind=event.name,
                start=starts[i],
                measured_s=durs[i] + queue_s,
                queue_s=queue_s,
                stall_s=stall_s,
                device_s=device_s,
            )
        )


def _merge_into(totals: Dict[str, float], parts: Dict[str, float]) -> None:
    for key, value in parts.items():
        totals[key] = totals.get(key, 0.0) + value


def summarize(attributions: Iterable[OpAttribution]) -> dict:
    """Aggregate per-op attributions into a deterministic summary doc.

    Components are totalled overall and per op kind; keys are sorted so
    the JSON serialization is byte-stable.  Shard lists from a cluster
    run can simply be concatenated before summarizing.
    """
    total = {
        "ops": 0,
        "measured_s": 0.0,
        "queue_s": 0.0,
        "other_s": 0.0,
        "stall_s": {},
        "device_s": {},
        "repl_s": {},
    }
    by_kind: Dict[str, dict] = {}
    max_measured: Optional[OpAttribution] = None
    for attr in attributions:
        for bucket in (total, by_kind.setdefault(
            attr.kind,
            {
                "ops": 0,
                "measured_s": 0.0,
                "queue_s": 0.0,
                "other_s": 0.0,
                "stall_s": {},
                "device_s": {},
                "repl_s": {},
            },
        )):
            bucket["ops"] += 1
            bucket["measured_s"] += attr.measured_s
            bucket["queue_s"] += attr.queue_s
            bucket["other_s"] += attr.other_s
            _merge_into(bucket["stall_s"], attr.stall_s)
            _merge_into(bucket["device_s"], attr.device_s)
            _merge_into(bucket["repl_s"], attr.repl_s)
        if max_measured is None or attr.measured_s > max_measured.measured_s:
            max_measured = attr
    for bucket in [total] + list(by_kind.values()):
        bucket["stall_s"] = dict(sorted(bucket["stall_s"].items()))
        bucket["device_s"] = dict(sorted(bucket["device_s"].items()))
        # The replication bucket only appears on traces that have one,
        # keeping unreplicated summary documents byte-identical.
        if bucket["repl_s"]:
            bucket["repl_s"] = dict(sorted(bucket["repl_s"].items()))
        else:
            del bucket["repl_s"]
    doc = dict(total)
    doc["by_kind"] = {kind: by_kind[kind] for kind in sorted(by_kind)}
    if max_measured is not None:
        doc["slowest"] = max_measured.as_dict()
    return doc
