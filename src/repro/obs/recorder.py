"""The trace recorder: an event bus stamped by the simulated clock.

A :class:`TraceRecorder` attaches to one :class:`~repro.mem.system.HybridMemorySystem`
and collects :class:`~repro.obs.events.TraceEvent` records from three
native hook points:

- the :class:`~repro.kvstore.api.KVStore` base class (foreground op
  spans and stall spans/instants, with a ``cause``);
- the executor's submit-listener API (background flush/compaction job
  spans, one per worker track);
- the devices (per-transfer instants with byte counts).

Tracing is strictly opt-in: a system starts with ``system.obs is None``
and every instrumentation site guards on that, so the disabled cost is
one attribute load per site.  Attach with
``system.attach_tracing()`` / detach with ``system.detach_tracing()``.
"""

from typing import Iterator, List, Optional

from repro.obs.events import (
    CAT_COMPACT,
    CAT_FLUSH,
    CAT_JOB,
    CAT_OP,
    CAT_QUEUE,
    CAT_REPL_ACK,
    CAT_REPL_APPLY,
    CAT_REPL_ELECTION,
    CAT_REPL_SHIP,
    CAT_STALL,
    CAT_TRANSFER,
    CATEGORIES,
    DROP_CAUSES,
    REPL_EVENT_NAMES,
    STALL_CAUSES,
    TraceEvent,
)


class _JobCostScope:
    """Marks transfers emitted inside it as background-job cost."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder: "TraceRecorder") -> None:
        self._recorder = recorder

    def __enter__(self) -> "TraceRecorder":
        self._recorder._job_depth += 1
        return self._recorder

    def __exit__(self, *exc) -> bool:
        self._recorder._job_depth -= 1
        return False


class TraceRecorder:
    """Collects typed spans and instants from one simulated machine."""

    def __init__(
        self, clock, coalesce_ops: bool = False, strict: bool = False
    ) -> None:
        self.clock = clock
        self.events: List[TraceEvent] = []
        self._system = None
        # Strict mode: recording an event with an unknown category, an
        # unknown stall cause, or an unknown drop reason raises instead
        # of silently widening the closed vocabularies.  Validation only
        # -- the recorded event stream is byte-identical either way.
        self.strict = strict
        # When set, the batched KVStore paths (multi_get/multi_put/
        # multi_delete) emit one coalesced op span per batch (see
        # :meth:`op_batch`) instead of one span per op.  Off by default:
        # the per-op event stream is the pinned schema.
        self.coalesce_ops = coalesce_ops
        # Nesting depth of job-cost scopes (see :meth:`job_cost`).  Device
        # cost for a background job is computed inline -- during the
        # foreground op or callback that schedules the job -- so without
        # the scope those transfer instants would be indistinguishable
        # from the op's own device traffic.
        self._job_depth = 0

    # ------------------------------------------------------ attach/detach

    def attach(self, system) -> "TraceRecorder":
        """Wire this recorder into ``system``'s hook points."""
        if self._system is not None:
            raise RuntimeError("recorder is already attached")
        if system.obs is not None:
            raise RuntimeError("system already has a recorder attached")
        self._system = system
        system.obs = self
        for device in system.devices():
            device.obs = self
        system.executor.add_submit_listener(self._on_submit)
        return self

    def detach(self) -> None:
        """Unhook from the system; recorded events stay readable."""
        system = self._system
        if system is None:
            return
        self._system = None
        system.obs = None
        for device in system.devices():
            device.obs = None
        system.executor.remove_submit_listener(self._on_submit)

    @property
    def attached(self) -> bool:
        return self._system is not None

    # ------------------------------------------------------------ emission

    def _check_vocab(self, name: str, cat: str, args: Optional[dict]) -> None:
        """Strict-mode guard: reject events outside the closed vocabularies."""
        if cat not in CATEGORIES:
            raise ValueError(
                f"unknown trace category {cat!r}; expected one of {CATEGORIES}"
            )
        repl_names = REPL_EVENT_NAMES.get(cat)
        if repl_names is not None and name not in repl_names:
            raise ValueError(
                f"unknown {cat!r} event name {name!r}; the closed "
                f"vocabulary is {list(repl_names)} "
                "(repro.obs.events.REPL_EVENT_NAMES)"
            )
        if args is None:
            return
        if cat == CAT_STALL:
            cause = args.get("cause")
            if cause not in STALL_CAUSES:
                raise ValueError(
                    f"unknown stall cause {cause!r}; the closed vocabulary is "
                    f"{sorted(STALL_CAUSES)} (repro.obs.events.STALL_CAUSES)"
                )
        elif cat == CAT_QUEUE and name == "drop":
            cause = args.get("cause")
            if cause not in DROP_CAUSES:
                raise ValueError(
                    f"unknown drop reason {cause!r}; the closed vocabulary is "
                    f"{list(DROP_CAUSES)} (repro.obs.events.DROP_CAUSES)"
                )

    def span(
        self,
        track: str,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a closed interval of activity on ``track``."""
        if self.strict:
            self._check_vocab(name, cat, args)
        self.events.append(TraceEvent(track, name, cat, start, end - start, args))

    def op_batch(
        self,
        track: str,
        kind: str,
        starts: List[float],
        durs: List[float],
    ) -> None:
        """Record one coalesced op span covering a whole multi-op batch.

        The span runs from the first op's start to the last op's end and
        carries the per-op decomposition in its args::

            {"batch": N, "starts": [t0, ...], "durs": [d0, ...]}

        Batched foreground ops are contiguous (nothing advances the
        clock between them), so ``starts[i] + durs[i] == starts[i+1]``
        and the attribution engine can reconstruct the exact per-op
        spans the unbatched path would have emitted.
        """
        n = len(starts)
        if n == 0:
            return
        if len(durs) != n:
            raise ValueError(f"starts/durs length mismatch: {n} vs {len(durs)}")
        end = starts[-1] + durs[-1]
        self.events.append(
            TraceEvent(
                track,
                kind,
                CAT_OP,
                starts[0],
                end - starts[0],
                {"batch": n, "starts": list(starts), "durs": list(durs)},
            )
        )

    def instant(
        self,
        track: str,
        name: str,
        cat: str,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Record a point event (defaults to the current simulated time)."""
        if self.strict:
            self._check_vocab(name, cat, args)
        when = self.clock.now if ts is None else ts
        self.events.append(TraceEvent(track, name, cat, when, None, args))

    def transfer(
        self,
        device_name: str,
        op: str,
        nbytes: int,
        sequential: bool,
        seconds: float,
    ) -> None:
        """One device read/write, stamped at the moment it is charged.

        Device costs are *returned* to callers and applied to the clock
        later, so the timestamp is the emission time -- deterministic,
        and within the enclosing operation's span.  ``seconds`` is the
        simulated duration the transfer will charge; inside a
        :meth:`job_cost` scope the event is tagged ``{"job": True}`` so
        latency attribution can exclude it from foreground device time.
        """
        args = {"bytes": nbytes, "seq": sequential, "seconds": seconds}
        if self._job_depth:
            args["job"] = True
        self.events.append(
            TraceEvent(
                f"dev:{device_name}",
                op,
                CAT_TRANSFER,
                self.clock.now,
                None,
                args,
            )
        )

    def job_cost(self) -> _JobCostScope:
        """Scope under which transfers count as background-job cost.

        Stores wrap the inline cost computation of every flush/compaction
        they schedule (``with system.job_scope(): ...``), which routes
        here when tracing is attached.
        """
        return _JobCostScope(self)

    def _on_submit(self, job, meta) -> None:
        """Executor hook: every background job becomes a worker-track span.

        The span's ``wait_s`` argument is how long the job sat queued
        behind its worker (start minus submission time) -- the executor
        queue-wait component of critical-path analysis.
        """
        if meta is None:
            cat, args = CAT_JOB, {}
        else:
            cat = meta.get("cat", CAT_JOB)
            args = {k: v for k, v in meta.items() if k != "cat"}
        if self.strict and cat not in CATEGORIES:
            raise ValueError(
                f"unknown trace category {cat!r} in job meta for {job.name!r}"
            )
        args["wait_s"] = job.start - job.submitted_at
        self.events.append(
            TraceEvent(
                f"worker:{job.worker.name}",
                job.name,
                cat,
                job.start,
                job.end - job.start,
                args,
            )
        )

    # ------------------------------------------------------------- queries

    def select(
        self, cat: Optional[str] = None, track: Optional[str] = None
    ) -> List[TraceEvent]:
        """Events filtered by category and/or track, in emission order."""
        return [
            e
            for e in self.events
            if (cat is None or e.cat == cat) and (track is None or e.track == track)
        ]

    def spans(self, cat: Optional[str] = None) -> List[TraceEvent]:
        """All span events, optionally limited to one category."""
        return [e for e in self.events if e.is_span and (cat is None or e.cat == cat)]

    def instants(self, cat: Optional[str] = None) -> List[TraceEvent]:
        """All instant events, optionally limited to one category."""
        return [
            e for e in self.events if not e.is_span and (cat is None or e.cat == cat)
        ]

    def tracks(self) -> List[str]:
        """Track names in order of first appearance."""
        seen = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    def stall_seconds_by_cause(self) -> dict:
        """Total stalled simulated seconds per cause, over all stall events.

        Interval stalls contribute their span duration; cumulative
        slowdown instants contribute their ``seconds`` argument.
        """
        totals: dict = {}
        for event in self.events:
            if event.cat != CAT_STALL:
                continue
            cause = (event.args or {}).get("cause", "unknown")
            amount = event.dur if event.dur is not None else (
                (event.args or {}).get("seconds", 0.0)
            )
            totals[cause] = totals.get(cause, 0.0) + amount
        return totals

    def counts_by_category(self) -> dict:
        """Event counts per category, for summaries."""
        counts: dict = {}
        for event in self.events:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        return counts

    def worker_spans(self) -> Iterator[TraceEvent]:
        """Spans on worker tracks (background jobs)."""
        return (e for e in self.events if e.is_span and e.track.startswith("worker:"))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        state = "attached" if self.attached else "detached"
        return f"TraceRecorder({len(self.events)} events, {state})"


# Re-exported so instrumentation sites can import categories from one place.
__all__ = [
    "TraceRecorder",
    "CAT_OP",
    "CAT_STALL",
    "CAT_FLUSH",
    "CAT_COMPACT",
    "CAT_JOB",
    "CAT_TRANSFER",
    "CAT_QUEUE",
    "CAT_REPL_SHIP",
    "CAT_REPL_APPLY",
    "CAT_REPL_ACK",
    "CAT_REPL_ELECTION",
]
