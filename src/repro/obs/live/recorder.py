"""The always-on live recorder: sampled tracing over the TraceRecorder bus.

:class:`LiveRecorder` subclasses :class:`~repro.obs.recorder.TraceRecorder`
and plugs into the exact same hook points (KVStore spans, executor submit
listener, device transfer hooks), so everything downstream -- Chrome-trace
export, gantt rendering, attribution -- works on a live trace unchanged.
What changes is what gets *kept*:

- Foreground op spans are sampled: head-sampled runs (splitmix64 over op
  sequence numbers, see :mod:`repro.obs.live.sampling`), plus every op
  whose latency exceeds the rolling tail percentile, plus every op that
  touched a stall.  Exact seen/retained bookkeeping is kept per decision
  class so attribution can rescale.
- Router queue spans ride with the head decision of the op they precede;
  drops are always kept.
- Stall, flush, compaction, background-job, and transfer events are rare
  and diagnostic, so they stay full fidelity -- except transfers, whose
  device hooks are toggled off outside head-sampled runs so unsampled
  ops pay only the existing ``obs is None`` guard.  Background-job cost
  scopes re-enable the hooks, so flush/compaction traffic is always
  traced; tail-retained ops keep their op span but not their transfers
  (a documented trade: the tail decision only exists after the op ran).
- Every event additionally feeds the flight recorder's ring, and op
  completions drive the windowed aggregation on the simulated clock.

Sampling decisions are pure functions of ``(seed, op sequence number)``
and the simulated event stream, so two identical runs retain identical
event sets -- live traces are as replayable as full ones.  The simulation
itself is never touched: clock, stats, and store state are byte-identical
with the live plane attached or not.
"""

import bisect
from typing import List, Optional

from repro.obs.analyze.slo import BurnRateRule, SloObjective
from repro.obs.events import (
    CAT_OP,
    CAT_QUEUE,
    CAT_STALL,
    CAT_TRANSFER,
    TraceEvent,
)
from repro.obs.live.flight import FlightRecorder
from repro.obs.live.sampling import HeadSampler, TailSampler
from repro.obs.live.window import WindowAggregator
from repro.obs.recorder import TraceRecorder


class LiveConfig:
    """Tuning knobs for the live telemetry plane (all deterministic)."""

    __slots__ = (
        "seed", "head_rate", "head_run", "tail_percentile", "tail_window",
        "tail_refresh", "window_s", "flight_capacity", "stall_alert_s",
        "drop_burst_n", "drop_burst_s", "slo_threshold_s", "slo_target",
        "burn_short_s", "burn_long_s", "burn_factor", "max_dumps",
    )

    def __init__(
        self,
        seed: int = 1,
        head_rate: float = 1.0 / 64.0,
        head_run: int = 16,
        tail_percentile: float = 99.0,
        tail_window: int = 512,
        tail_refresh: int = 256,
        window_s: float = 1e-3,
        flight_capacity: int = 4096,
        stall_alert_s: Optional[float] = None,
        drop_burst_n: int = 8,
        drop_burst_s: float = 1e-3,
        slo_threshold_s: Optional[float] = None,
        slo_target: float = 0.999,
        burn_short_s: float = 5e-3,
        burn_long_s: float = 50e-3,
        burn_factor: float = 2.0,
        max_dumps: int = 4,
    ) -> None:
        self.seed = seed
        self.head_rate = head_rate
        self.head_run = head_run
        self.tail_percentile = tail_percentile
        self.tail_window = tail_window
        self.tail_refresh = tail_refresh
        self.window_s = window_s
        self.flight_capacity = flight_capacity
        self.stall_alert_s = stall_alert_s
        self.drop_burst_n = drop_burst_n
        self.drop_burst_s = drop_burst_s
        self.slo_threshold_s = slo_threshold_s
        self.slo_target = slo_target
        self.burn_short_s = burn_short_s
        self.burn_long_s = burn_long_s
        self.burn_factor = burn_factor
        self.max_dumps = max_dumps

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _LiveJobScope:
    """Job-cost scope that re-enables device hooks for background work."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder: "LiveRecorder") -> None:
        self._recorder = recorder

    def __enter__(self) -> "LiveRecorder":
        recorder = self._recorder
        recorder._job_depth += 1
        if recorder._job_depth == 1:
            recorder._set_devices(True)
        return recorder

    def __exit__(self, *exc) -> bool:
        recorder = self._recorder
        recorder._job_depth -= 1
        if recorder._job_depth == 0:
            recorder._set_devices(recorder.head.live)
        return False


class LiveRecorder(TraceRecorder):
    """Sampling trace recorder + flight ring + windowed aggregation."""

    def __init__(
        self, clock, config: Optional[LiveConfig] = None, shard_id=None
    ) -> None:
        # coalesce_ops so the batched KVStore paths hand us whole
        # batches (one call, array arguments) instead of per-op spans --
        # the vectorised sampling below depends on it.
        super().__init__(clock, coalesce_ops=True, strict=False)
        cfg = config if config is not None else LiveConfig()
        self.config = cfg
        self.shard_id = shard_id
        self.head = HeadSampler(cfg.seed, cfg.head_rate, cfg.head_run)
        self.tail = TailSampler(
            cfg.tail_percentile, cfg.tail_window, cfg.tail_refresh
        )
        slo = None
        if cfg.slo_threshold_s is not None:
            slo = SloObjective(
                "live-latency", cfg.slo_threshold_s, cfg.slo_target
            )
        self.flight = FlightRecorder(
            capacity=cfg.flight_capacity,
            stall_alert_s=cfg.stall_alert_s,
            drop_burst_n=cfg.drop_burst_n,
            drop_burst_s=cfg.drop_burst_s,
            slo=slo,
            burn_rule=BurnRateRule(
                cfg.burn_short_s, cfg.burn_long_s, cfg.burn_factor
            ),
            max_dumps=cfg.max_dumps,
        )
        self.flight.context_provider = self._dump_context
        self.window: Optional[WindowAggregator] = None
        self._slo_threshold = cfg.slo_threshold_s
        # Ops retained by the tail/stall rules *only* (head-retained ops
        # are counted by the head sampler itself); seen == head.seen.
        self.retained_tail = 0
        self.retained_stall = 0
        self.queue_seen = 0
        self.queue_kept = 0
        # Timestamps of stalls not yet pinned to an op; the op (or
        # batch) completing after a stall consumes them and is retained.
        self._pending_stalls: List[float] = []
        self._devices = ()
        self._devices_on = False

    # ------------------------------------------------------ attach/detach

    def attach(self, system) -> "LiveRecorder":
        super().attach(system)
        self._devices = tuple(system.devices())
        self._devices_on = True
        self.window = WindowAggregator(
            system,
            window_s=self.config.window_s,
            slo_threshold_s=self._slo_threshold,
        )
        self.window.set_window_listener(self.flight.on_window)
        # Consume latency samples recorded before attach (preloads) so
        # the first window only covers ops observed live.
        system.latency.window_snapshot(reset=True)
        self._set_devices(self.head.live)
        return self

    def detach(self) -> None:
        system = self._system
        if system is None:
            return
        if self.window is not None:
            self.window.finalize(self.clock.now)
        stats = system.stats
        meta = self.sampling_meta()
        stats.add("live.ops_seen", float(meta["ops_seen"]))
        stats.add("live.ops_retained", float(meta["ops_retained"]))
        stats.add("live.windows", float(len(self.window.rows)))
        stats.add("live.flight_dumps", float(len(self.flight.dumps)))
        # Base detach nulls every device hook regardless of toggle state.
        super().detach()

    def _set_devices(self, on: bool) -> None:
        if on == self._devices_on:
            return
        self._devices_on = on
        obs = self if on else None
        for device in self._devices:
            device.obs = obs

    def job_cost(self) -> _LiveJobScope:
        return _LiveJobScope(self)

    # ------------------------------------------------------------ emission

    def span(self, track, name, cat, start, end, args=None) -> None:
        if cat == CAT_OP:
            dur = end - start
            head = self.head.advance()
            tail = self.tail.observe(dur)
            if head:
                self.events.append(
                    TraceEvent(track, name, cat, start, dur, args)
                )
            elif tail or self._pending_stalls:
                if tail:
                    self.retained_tail += 1
                else:
                    self.retained_stall += 1
                self.events.append(
                    TraceEvent(track, name, cat, start, dur, args)
                )
            if self._pending_stalls:
                del self._pending_stalls[:]
            self.flight.ring.append(("op", name, start, dur))
            window = self.window
            threshold = self._slo_threshold
            if threshold is not None and dur > threshold:
                window.bad_in_window += 1
            if end >= window.next_edge:
                window.maybe_tick(end)
            if self.head.live != self._devices_on and not self._job_depth:
                self._set_devices(self.head.live)
            return
        if cat == CAT_STALL:
            seconds = end - start
            cause = (args or {}).get("cause", "unknown")
            self._pending_stalls.append(start)
            self.events.append(
                TraceEvent(track, name, cat, start, seconds, args)
            )
            self.flight.on_stall(cause, start, seconds)
            return
        if cat == CAT_QUEUE:
            # A router queue span precedes the store op it queued for,
            # so the *current* head decision is that op's decision.
            self.queue_seen += 1
            args_ = args or {}
            self.flight.ring.append(
                ("queue", name, start, end,
                 args_.get("client"), args_.get("shard"))
            )
            if self.head.live:
                self.queue_kept += 1
                self.events.append(
                    TraceEvent(track, name, cat, start, end - start, args)
                )
            return
        # Anything else (rare, diagnostic) stays full fidelity.
        self.events.append(TraceEvent(track, name, cat, start, end - start, args))

    def op_batch(self, track, kind, starts, durs) -> None:
        n = len(starts)
        if n == 0:
            return
        if len(durs) != n:
            raise ValueError(f"starts/durs length mismatch: {n} vs {len(durs)}")
        head = self.head
        # Head decisions in run-sized chunks: batch/run_len hashes, not
        # one per op.
        head_ranges = []
        i = 0
        while i < n:
            k, live = head.take(n - i)
            if live:
                head_ranges.append((i, i + k))
            i += k
        tail_idx = self.tail.observe_many(durs)
        stall_idx = None
        if self._pending_stalls:
            # Pin each stall to the op whose span contains it (stall
            # cost is charged inside the op that waited).
            stall_idx = []
            for ts in self._pending_stalls:
                j = bisect.bisect_right(starts, ts) - 1
                stall_idx.append(j if j >= 0 else 0)
            del self._pending_stalls[:]
        if head_ranges or tail_idx or stall_idx:
            # Retention priority head > tail > stall, mirroring the
            # scalar path's bookkeeping.
            marks = {}
            for i0, i1 in head_ranges:
                for j in range(i0, i1):
                    marks[j] = 1
            for j in tail_idx or ():
                if j not in marks:
                    marks[j] = 2
            for j in stall_idx or ():
                if j not in marks:
                    marks[j] = 3
            events = self.events
            for j in sorted(marks):
                mark = marks[j]
                if mark == 2:
                    self.retained_tail += 1
                elif mark == 3:
                    self.retained_stall += 1
                events.append(
                    TraceEvent(track, kind, CAT_OP, starts[j], durs[j], None)
                )
        self.flight.ring.append(("ops", kind, starts, durs))
        window = self.window
        threshold = self._slo_threshold
        if threshold is not None:
            bad = sum(1 for dur in durs if dur > threshold)
            if bad:
                window.bad_in_window += bad
        end = starts[-1] + durs[-1]
        if end >= window.next_edge:
            window.maybe_tick(end)
        if head.live != self._devices_on and not self._job_depth:
            self._set_devices(head.live)

    def instant(self, track, name, cat, args=None, ts=None) -> None:
        when = self.clock.now if ts is None else ts
        self.events.append(TraceEvent(track, name, cat, when, None, args))
        if cat == CAT_STALL:
            args_ = args or {}
            self._pending_stalls.append(when)
            self.flight.on_stall(
                args_.get("cause", "unknown"),
                when,
                args_.get("seconds", 0.0),
            )
        elif cat == CAT_QUEUE and name == "drop":
            args_ = args or {}
            self.flight.on_drop(
                args_.get("cause", "unknown"), args_.get("client", ""), when
            )

    def transfer(self, device_name, op, nbytes, sequential, seconds) -> None:
        # Only reachable while the device hooks are enabled: inside a
        # head-sampled run, or under a background-job cost scope.
        args = {"bytes": nbytes, "seq": sequential, "seconds": seconds}
        if self._job_depth:
            args["job"] = True
        now = self.clock.now
        self.events.append(
            TraceEvent(f"dev:{device_name}", op, CAT_TRANSFER, now, None, args)
        )
        self.flight.ring.append(
            ("transfer", device_name, op, nbytes, sequential, seconds, now)
        )

    def _on_submit(self, job, meta) -> None:
        super()._on_submit(job, meta)
        event = self.events[-1]
        self.flight.ring.append(
            ("job", job.worker.name, job.name, event.cat, job.start, job.end,
             event.args["wait_s"])
        )

    # ------------------------------------------------------------- queries

    def sampling_meta(self) -> dict:
        """Exact sampling bookkeeping, for attribution rescaling."""
        retained = self.head.kept + self.retained_tail + self.retained_stall
        return {
            "seed": self.config.seed,
            "head_rate": self.config.head_rate,
            "head_run": self.config.head_run,
            "tail": self.tail.as_dict(),
            "ops_seen": self.head.seen,
            "ops_retained": retained,
            "retained_head": self.head.kept,
            "retained_tail": self.retained_tail,
            "retained_stall": self.retained_stall,
            "scale": (self.head.seen / retained) if retained else None,
            "queue_seen": self.queue_seen,
            "queue_retained": self.queue_kept,
        }

    def _dump_context(self) -> dict:
        rows = self.window.rows[-16:] if self.window is not None else []
        return {"sampling": self.sampling_meta(), "windows": rows}

    def __repr__(self) -> str:
        state = "attached" if self.attached else "detached"
        meta = self.sampling_meta()
        return (
            f"LiveRecorder({meta['ops_retained']}/{meta['ops_seen']} ops "
            f"retained, {len(self.events)} events, {state})"
        )
