"""Windowed aggregation of live telemetry on the simulated clock.

The live recorder cannot keep per-op events, so continuous signals come
from fixed-width windows instead: every ``window_s`` of simulated time
it closes a row with the window's op count, throughput, p50/p99, the
executor queue depth, and the system's write amplification.  Rows are
pure functions of the simulated run, so two identical runs produce
identical series -- the property the OpenMetrics export and the live
dashboard inherit.

Percentiles come from :meth:`LatencyRecorder.window_snapshot` with
``reset=True``: the store records every op's latency anyway (sampling
never changes simulation behaviour), and the cursor-based snapshot makes
each tick O(window ops), not O(history).

Windows with no completed ops are skipped rather than emitted as zero
rows: ticks are driven by op completions, so an idle stretch simply
produces no row until the next op lands (the series is sparse in
simulated time).
"""

from typing import List, Optional


class WindowAggregator:
    """Rolls one system's telemetry into fixed simulated-time windows."""

    def __init__(
        self,
        system,
        window_s: float = 1e-3,
        slo_threshold_s: Optional[float] = None,
        max_rows: int = 4096,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.system = system
        self.window_s = window_s
        self.slo_threshold_s = slo_threshold_s
        self.max_rows = max_rows
        self.rows: List[dict] = []
        self.dropped_rows = 0
        # First tick closes the window containing the first op; align
        # edges to multiples of window_s from t=0 so identical runs tick
        # at identical instants regardless of when attach happened.
        self.next_edge = window_s
        # Ops whose latency exceeded the SLO threshold in the open
        # window (maintained by the recorder; consumed at tick time).
        self.bad_in_window = 0
        self._on_window = None

    def set_window_listener(self, listener) -> None:
        """``listener(t_s, ops, bad)`` called once per closed row."""
        self._on_window = listener

    def maybe_tick(self, now: float) -> bool:
        """Close every window edge at or before ``now``; True if any closed.

        Called by the recorder once per op (one float compare on the hot
        path) and once at finalize.  All edges between the previous tick
        and ``now`` share one snapshot: the ops since the last tick all
        belong to the window containing them, and empty intermediate
        windows produce no rows.
        """
        if now < self.next_edge:
            return False
        snap = self.system.latency.window_snapshot(reset=True)
        # The row's edge is the last crossed boundary: ops since the
        # previous tick completed at or before it.
        edge = self.next_edge
        while edge + self.window_s <= now:
            edge += self.window_s
        self.next_edge = edge + self.window_s
        bad = self.bad_in_window
        self.bad_in_window = 0
        if snap.count == 0:
            return False
        self._append_row(edge, snap, bad)
        return True

    def finalize(self, now: float) -> None:
        """Flush the open partial window at detach time."""
        snap = self.system.latency.window_snapshot(reset=True)
        bad = self.bad_in_window
        self.bad_in_window = 0
        if snap.count == 0:
            return
        self._append_row(now, snap, bad)

    def _append_row(self, t_s: float, snap, bad: int) -> None:
        row = {
            "t_s": t_s,
            "ops": snap.count,
            "kiops": snap.count / self.window_s / 1e3,
            "p50_us": snap.p50 * 1e6,
            "p99_us": snap.p99 * 1e6,
            "queue_depth": self.system.executor.pending,
            "wa": self.system.write_amplification(),
        }
        if len(self.rows) >= self.max_rows:
            self.rows.pop(0)
            self.dropped_rows += 1
        self.rows.append(row)
        if self._on_window is not None:
            self._on_window(t_s, snap.count, bad)

    def last_row(self) -> Optional[dict]:
        return self.rows[-1] if self.rows else None

    def __repr__(self) -> str:
        return (
            f"WindowAggregator({len(self.rows)} rows, "
            f"window={self.window_s * 1e3:g}ms)"
        )
