"""Live ASCII cluster dashboard, refreshed on simulated-time ticks.

``repro cluster --live`` renders one frame every ``refresh_s`` of
*simulated* time: a per-shard table (throughput, tail latency, queue
depth, write amplification, sampling ratio, flight dumps) plus a
sparkline of each shard's recent window p99.  Frames are plain text
built from deterministic window rows, so a seeded run always renders
the same frames -- which is also what makes the dashboard testable.
"""

from typing import List, Optional, Sequence

#: Sparkline ramp, dimmest to brightest (shared ASCII-art convention).
SPARK_CHARS = " .:-=+*#"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Last ``width`` values scaled onto :data:`SPARK_CHARS`."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_CHARS[0] * len(tail)
    ramp = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(ramp, int(v / top * ramp + 0.5))] for v in tail
    )


def render_frame(
    recorders,
    labels: Optional[Sequence[str]] = None,
    now: float = 0.0,
    spark_width: int = 24,
    groups: Optional[Sequence[object]] = None,
) -> str:
    """One dashboard frame over one or more live recorders.

    ``groups`` is an optional per-shard list of
    :class:`~repro.replication.group.ReplicaGroup` objects (``None``
    entries allowed); when any group is present the table gains a
    ``role`` column (the serving replica, e.g. ``r1:leader``, or
    ``electing`` during failover) and a ``lag`` column (worst live
    follower replication lag, in records).  Without groups the frame is
    byte-identical to the unreplicated dashboard.
    """
    # Imported here, not at module scope: the bench layer builds stores,
    # which import the obs event vocabulary -- a module-scope import
    # would make ``import repro.obs`` circular.
    from repro.bench.report import format_table

    if not isinstance(recorders, (list, tuple)):
        recorders = [recorders]
    if labels is None:
        labels = [str(i) for i in range(len(recorders))]
    replicated = groups is not None and any(g is not None for g in groups)
    rows = []
    spark_lines = []
    for index, (label, rec) in enumerate(zip(labels, recorders)):
        meta = rec.sampling_meta()
        window = rec.window
        row = window.last_row() if window is not None else None
        retained = meta["ops_retained"]
        seen = meta["ops_seen"]
        cells = [
            label,
            f"{row['kiops']:.1f}" if row else "-",
            f"{row['p50_us']:.1f}" if row else "-",
            f"{row['p99_us']:.1f}" if row else "-",
            row["queue_depth"] if row else 0,
            f"{row['wa']:.2f}" if row else "-",
            f"{retained}/{seen}",
            len(rec.flight.dumps),
        ]
        if replicated:
            group = groups[index] if index < len(groups) else None
            if group is None:
                cells.extend(["-", "-"])
            elif group.leader_idx is None:
                cells.extend(["electing", group.lag()])
            else:
                cells.extend([f"r{group.leader_idx}:leader", group.lag()])
        rows.append(cells)
        series = [r["p99_us"] for r in window.rows] if window is not None else []
        spark_lines.append(
            f"  shard {label} p99 [{sparkline(series, spark_width):<{spark_width}}]"
        )
    headers = ["shard", "kiops", "p50_us", "p99_us", "qdepth", "wa",
               "sampled", "dumps"]
    if replicated:
        headers.extend(["role", "lag"])
    table = format_table(headers, rows)
    header = f"== live telemetry @ t={now * 1e3:.3f}ms =="
    return "\n".join([header, table, *spark_lines]) + "\n"


class LiveDashboard:
    """Renders frames at a fixed simulated-time cadence.

    The cluster driver calls :meth:`maybe_refresh` once per completed
    request (one float compare when it is not yet due).  Frames go to
    ``sink`` (a callable, e.g. ``print``) and are also kept in
    :attr:`frames` so tests and the CLI can inspect the sequence.
    """

    def __init__(
        self,
        recorders,
        labels: Optional[Sequence[str]] = None,
        refresh_s: float = 4e-3,
        sink=None,
        spark_width: int = 24,
        groups: Optional[Sequence[object]] = None,
    ) -> None:
        if refresh_s <= 0:
            raise ValueError(f"refresh_s must be positive, got {refresh_s}")
        if not isinstance(recorders, (list, tuple)):
            recorders = [recorders]
        self.groups = list(groups) if groups is not None else None
        self.recorders = list(recorders)
        self.labels = (
            list(labels) if labels is not None
            else [str(i) for i in range(len(self.recorders))]
        )
        self.refresh_s = refresh_s
        self.sink = sink
        self.spark_width = spark_width
        self.frames: List[str] = []
        self.next_refresh = refresh_s

    def maybe_refresh(self, now: float) -> bool:
        """Render a frame if a refresh tick has passed; True if rendered."""
        if now < self.next_refresh:
            return False
        while self.next_refresh <= now:
            self.next_refresh += self.refresh_s
        self._render(now)
        return True

    def force_refresh(self, now: float) -> str:
        """Render a final frame regardless of cadence (end of run)."""
        return self._render(now)

    def _render(self, now: float) -> str:
        frame = render_frame(
            self.recorders, self.labels, now=now,
            spark_width=self.spark_width, groups=self.groups,
        )
        self.frames.append(frame)
        if self.sink is not None:
            self.sink(frame)
        return frame
