"""Live ASCII cluster dashboard, refreshed on simulated-time ticks.

``repro cluster --live`` renders one frame every ``refresh_s`` of
*simulated* time: a per-shard table (throughput, tail latency, queue
depth, write amplification, sampling ratio, flight dumps) plus a
sparkline of each shard's recent window p99.  Frames are plain text
built from deterministic window rows, so a seeded run always renders
the same frames -- which is also what makes the dashboard testable.
"""

from typing import List, Optional, Sequence

#: Sparkline ramp, dimmest to brightest (shared ASCII-art convention).
SPARK_CHARS = " .:-=+*#"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Last ``width`` values scaled onto :data:`SPARK_CHARS`."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_CHARS[0] * len(tail)
    ramp = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(ramp, int(v / top * ramp + 0.5))] for v in tail
    )


def render_frame(
    recorders,
    labels: Optional[Sequence[str]] = None,
    now: float = 0.0,
    spark_width: int = 24,
) -> str:
    """One dashboard frame over one or more live recorders."""
    # Imported here, not at module scope: the bench layer builds stores,
    # which import the obs event vocabulary -- a module-scope import
    # would make ``import repro.obs`` circular.
    from repro.bench.report import format_table

    if not isinstance(recorders, (list, tuple)):
        recorders = [recorders]
    if labels is None:
        labels = [str(i) for i in range(len(recorders))]
    rows = []
    spark_lines = []
    for label, rec in zip(labels, recorders):
        meta = rec.sampling_meta()
        window = rec.window
        row = window.last_row() if window is not None else None
        retained = meta["ops_retained"]
        seen = meta["ops_seen"]
        rows.append(
            [
                label,
                f"{row['kiops']:.1f}" if row else "-",
                f"{row['p50_us']:.1f}" if row else "-",
                f"{row['p99_us']:.1f}" if row else "-",
                row["queue_depth"] if row else 0,
                f"{row['wa']:.2f}" if row else "-",
                f"{retained}/{seen}",
                len(rec.flight.dumps),
            ]
        )
        series = [r["p99_us"] for r in window.rows] if window is not None else []
        spark_lines.append(
            f"  shard {label} p99 [{sparkline(series, spark_width):<{spark_width}}]"
        )
    table = format_table(
        ["shard", "kiops", "p50_us", "p99_us", "qdepth", "wa",
         "sampled", "dumps"],
        rows,
    )
    header = f"== live telemetry @ t={now * 1e3:.3f}ms =="
    return "\n".join([header, table, *spark_lines]) + "\n"


class LiveDashboard:
    """Renders frames at a fixed simulated-time cadence.

    The cluster driver calls :meth:`maybe_refresh` once per completed
    request (one float compare when it is not yet due).  Frames go to
    ``sink`` (a callable, e.g. ``print``) and are also kept in
    :attr:`frames` so tests and the CLI can inspect the sequence.
    """

    def __init__(
        self,
        recorders,
        labels: Optional[Sequence[str]] = None,
        refresh_s: float = 4e-3,
        sink=None,
        spark_width: int = 24,
    ) -> None:
        if refresh_s <= 0:
            raise ValueError(f"refresh_s must be positive, got {refresh_s}")
        if not isinstance(recorders, (list, tuple)):
            recorders = [recorders]
        self.recorders = list(recorders)
        self.labels = (
            list(labels) if labels is not None
            else [str(i) for i in range(len(self.recorders))]
        )
        self.refresh_s = refresh_s
        self.sink = sink
        self.spark_width = spark_width
        self.frames: List[str] = []
        self.next_refresh = refresh_s

    def maybe_refresh(self, now: float) -> bool:
        """Render a frame if a refresh tick has passed; True if rendered."""
        if now < self.next_refresh:
            return False
        while self.next_refresh <= now:
            self.next_refresh += self.refresh_s
        self._render(now)
        return True

    def force_refresh(self, now: float) -> str:
        """Render a final frame regardless of cadence (end of run)."""
        return self._render(now)

    def _render(self, now: float) -> str:
        frame = render_frame(
            self.recorders, self.labels, now=now, spark_width=self.spark_width
        )
        self.frames.append(frame)
        if self.sink is not None:
            self.sink(frame)
        return frame
