"""OpenMetrics text export for the live telemetry plane.

One exposition document per export: fixed family order, ``# TYPE`` and
``# HELP`` metadata per family, one sample per (shard, label set), and
the mandatory ``# EOF`` terminator.  Everything rendered comes from
simulated state, so the text is byte-identical across identical runs --
the sampling-determinism tests pin it to that.

Counters follow the OpenMetrics convention that the sample name is the
family name plus ``_total``; gauges sample under the bare family name.
Gauge families report the *last closed window* (the "current" value on
the simulated clock).
"""

from typing import List, Optional, Sequence, Tuple

from repro.obs.events import CAT_QUEUE, DROP_CAUSES, STALL_CAUSES


def _fmt(value) -> str:
    """Deterministic sample-value rendering (ints bare, floats repr)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return repr(value)


class _Doc:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def family(self, name: str, kind: str, help_: str) -> None:
        self.lines.append(f"# TYPE {name} {kind}")
        self.lines.append(f"# HELP {name} {help_}")

    def sample(self, name: str, labels: Sequence[Tuple[str, str]], value) -> None:
        if labels:
            body = ",".join(f'{k}="{v}"' for k, v in labels)
            self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines + ["# EOF"]) + "\n"


def openmetrics_text(
    recorders,
    labels: Optional[Sequence[str]] = None,
    groups: Optional[Sequence] = None,
) -> str:
    """Render one exposition document over one or more live recorders.

    ``recorders`` is a single :class:`~repro.obs.live.recorder.LiveRecorder`
    or a sequence of them (one per shard); ``labels`` are the matching
    ``shard`` label values (defaults to ``"0"``, ``"1"``, ...).

    ``groups`` optionally carries one replica group (or ``None``) per
    shard; when given, the document gains a ``repro_repl_lag`` gauge
    family with one sample per live follower -- acked records the
    follower has not yet applied.  Unreplicated exports omit the family
    entirely, so their pinned documents are unchanged.
    """
    if not isinstance(recorders, (list, tuple)):
        recorders = [recorders]
    if labels is None:
        labels = [str(i) for i in range(len(recorders))]
    if len(labels) != len(recorders):
        raise ValueError(
            f"labels/recorders length mismatch: {len(labels)} vs "
            f"{len(recorders)}"
        )
    if groups is not None and len(groups) != len(recorders):
        raise ValueError(
            f"groups/recorders length mismatch: {len(groups)} vs "
            f"{len(recorders)}"
        )
    shards = list(zip(labels, recorders))
    doc = _Doc()

    doc.family("repro_ops_seen", "counter", "Foreground ops observed.")
    for label, rec in shards:
        doc.sample("repro_ops_seen_total", [("shard", label)],
                   rec.sampling_meta()["ops_seen"])

    doc.family(
        "repro_ops_retained", "counter",
        "Foreground op spans retained, by sampling decision.",
    )
    for label, rec in shards:
        meta = rec.sampling_meta()
        for decision in ("head", "tail", "stall"):
            doc.sample(
                "repro_ops_retained_total",
                [("shard", label), ("decision", decision)],
                meta[f"retained_{decision}"],
            )

    doc.family(
        "repro_sample_scale", "gauge",
        "Rescaling factor ops_seen/ops_retained (NaN-free: 0 when empty).",
    )
    for label, rec in shards:
        scale = rec.sampling_meta()["scale"]
        doc.sample("repro_sample_scale", [("shard", label)],
                   0.0 if scale is None else scale)

    doc.family(
        "repro_queue_seen", "counter", "Router queue spans observed.",
    )
    for label, rec in shards:
        doc.sample("repro_queue_seen_total", [("shard", label)],
                   rec.queue_seen)

    doc.family(
        "repro_queue_retained", "counter", "Router queue spans retained.",
    )
    for label, rec in shards:
        doc.sample("repro_queue_retained_total", [("shard", label)],
                   rec.queue_kept)

    doc.family(
        "repro_window_kiops", "gauge",
        "Throughput of the last closed aggregation window (KIOPS).",
    )
    for label, rec in shards:
        row = rec.window.last_row() if rec.window is not None else None
        doc.sample("repro_window_kiops", [("shard", label)],
                   row["kiops"] if row else 0.0)

    doc.family(
        "repro_window_p50_seconds", "gauge",
        "p50 op latency of the last closed window.",
    )
    for label, rec in shards:
        row = rec.window.last_row() if rec.window is not None else None
        doc.sample("repro_window_p50_seconds", [("shard", label)],
                   row["p50_us"] / 1e6 if row else 0.0)

    doc.family(
        "repro_window_p99_seconds", "gauge",
        "p99 op latency of the last closed window.",
    )
    for label, rec in shards:
        row = rec.window.last_row() if rec.window is not None else None
        doc.sample("repro_window_p99_seconds", [("shard", label)],
                   row["p99_us"] / 1e6 if row else 0.0)

    doc.family(
        "repro_queue_depth", "gauge",
        "Background jobs pending on the shard executor.",
    )
    for label, rec in shards:
        row = rec.window.last_row() if rec.window is not None else None
        doc.sample("repro_queue_depth", [("shard", label)],
                   row["queue_depth"] if row else 0)

    doc.family(
        "repro_write_amplification", "gauge",
        "Persistent bytes written over logical user bytes.",
    )
    for label, rec in shards:
        row = rec.window.last_row() if rec.window is not None else None
        doc.sample("repro_write_amplification", [("shard", label)],
                   row["wa"] if row else 0.0)

    doc.family(
        "repro_windows", "counter", "Closed aggregation windows.",
    )
    for label, rec in shards:
        doc.sample("repro_windows_total", [("shard", label)],
                   len(rec.window.rows) if rec.window is not None else 0)

    doc.family(
        "repro_stall_seconds", "counter",
        "Simulated seconds stalled, by cause (stalls are never sampled out).",
    )
    for label, rec in shards:
        totals = rec.stall_seconds_by_cause()
        for cause in sorted(STALL_CAUSES):
            if cause in totals:
                doc.sample(
                    "repro_stall_seconds_total",
                    [("shard", label), ("cause", cause)],
                    totals[cause],
                )

    doc.family(
        "repro_drops", "counter",
        "Admission-queue drops, by cause (drops are never sampled out).",
    )
    for label, rec in shards:
        counts = {}
        for event in rec.events:
            if event.cat == CAT_QUEUE and event.name == "drop":
                cause = (event.args or {}).get("cause", "unknown")
                counts[cause] = counts.get(cause, 0) + 1
        for cause in DROP_CAUSES:
            if cause in counts:
                doc.sample(
                    "repro_drops_total",
                    [("shard", label), ("cause", cause)],
                    counts[cause],
                )

    if groups is not None:
        doc.family(
            "repro_repl_lag", "gauge",
            "Acked log records not yet applied, per live follower.",
        )
        for label, group in zip(labels, groups):
            if group is None:
                continue
            head = len(group.log)
            for member in group.alive_followers():
                doc.sample(
                    "repro_repl_lag",
                    [("shard", label), ("replica", str(member.replica_id))],
                    head - member.applied_lsn,
                )

    doc.family(
        "repro_flight_dumps", "counter",
        "Flight-recorder triggers, by trigger (including past max_dumps).",
    )
    for label, rec in shards:
        for trigger, count in sorted(rec.flight.trigger_counts.items()):
            if count:
                doc.sample(
                    "repro_flight_dumps_total",
                    [("shard", label), ("trigger", trigger)],
                    count,
                )

    return doc.text()


def write_openmetrics(path: str, recorders, labels=None, groups=None) -> str:
    """Write the exposition document to ``path``; returns the text."""
    from repro.obs.export import write_artifact

    text = openmetrics_text(recorders, labels, groups=groups)
    write_artifact(path, text, overwrite=True)
    return text
