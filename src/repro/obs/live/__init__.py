"""Always-on live telemetry: sampled tracing, flight recorder, windows.

The full-fidelity :class:`~repro.obs.recorder.TraceRecorder` (PR2) costs
too much to leave attached in steady state; this package is the
production posture.  :class:`LiveRecorder` plugs into the same hook
points but *samples* foreground op spans (deterministic splitmix64 head
sampling plus rolling-percentile/stall tail sampling, with exact
seen/retained bookkeeping), feeds a bounded :class:`FlightRecorder` ring
that dumps full recent windows on incident triggers, and rolls
continuous per-shard series through a :class:`WindowAggregator` for
OpenMetrics export and the live ASCII dashboard.

Attach via :meth:`HybridMemorySystem.attach_live
<repro.mem.system.HybridMemorySystem.attach_live>` (or
``Cluster.attach_live`` for one recorder per shard).  Everything is
driven by the simulated clock and seeded hashes, so live traces,
metrics text, dashboards, and flight dumps are byte-identical across
identical runs.  See docs/observability.md ("Live telemetry & sampling").
"""

from repro.obs.live.dashboard import LiveDashboard, render_frame, sparkline
from repro.obs.live.flight import (
    FLIGHT_SCHEMA,
    TRIGGER_DROPS,
    TRIGGER_MANUAL,
    TRIGGER_SLO,
    TRIGGER_STALL,
    TRIGGERS,
    FlightRecorder,
)
from repro.obs.live.openmetrics import openmetrics_text, write_openmetrics
from repro.obs.live.recorder import LiveConfig, LiveRecorder
from repro.obs.live.sampling import (
    HeadSampler,
    TailSampler,
    head_keep,
    splitmix64,
)
from repro.obs.live.window import WindowAggregator

__all__ = [
    "LiveConfig",
    "LiveRecorder",
    "HeadSampler",
    "TailSampler",
    "head_keep",
    "splitmix64",
    "FlightRecorder",
    "FLIGHT_SCHEMA",
    "TRIGGERS",
    "TRIGGER_STALL",
    "TRIGGER_DROPS",
    "TRIGGER_SLO",
    "TRIGGER_MANUAL",
    "WindowAggregator",
    "openmetrics_text",
    "write_openmetrics",
    "LiveDashboard",
    "render_frame",
    "sparkline",
]
