"""Flight recorder: a bounded ring of recent events plus dump triggers.

Full tracing answers "what happened?" after the fact; the flight
recorder answers it *at incident time* without paying full-trace cost
steady-state.  The live recorder feeds every event it sees -- sampled or
not -- into a bounded ring of lightweight tuples.  When a trigger fires
(a stall longer than a threshold, a burst of admission-queue drops, or
an SLO burn-rate alert), the ring is frozen into a deterministic JSON
document: the complete recent window, ready for post-incident forensics.

Everything here runs on the simulated clock, so for a seeded scenario
the dump -- trigger time, ring contents, window rows -- is byte-identical
across runs; a pinned-hash test holds it to that.
"""

import json
from collections import deque
from typing import List, Optional

from repro.obs.analyze.slo import BurnRateRule, SloObjective

#: Schema version stamped into every dump document.
FLIGHT_SCHEMA = "repro-flight-v1"

#: Trigger names (closed vocabulary, mirrored in dump docs and metrics).
TRIGGER_STALL = "stall-alert"
TRIGGER_DROPS = "drop-burst"
TRIGGER_SLO = "slo-burn"
TRIGGER_MANUAL = "manual"
TRIGGERS = (TRIGGER_STALL, TRIGGER_DROPS, TRIGGER_SLO, TRIGGER_MANUAL)


class FlightRecorder:
    """Ring buffer of recent events with trigger-driven dumps.

    Ring entries are plain tuples tagged by their first element:

    - ``("op", kind, start, dur)`` -- one foreground op
    - ``("ops", kind, starts, durs)`` -- one coalesced batch (the lists
      are shared with the emitted batch, zero-copy)
    - ``("stall", cause, ts, seconds)`` -- a stall span or instant
    - ``("job", worker, name, cat, start, end, wait_s)`` -- background job
    - ``("transfer", device, op, nbytes, sequential, seconds, ts)``
    - ``("queue", kind, arrival, end, client, shard)`` -- served request
    - ``("drop", cause, client, ts)`` -- shed request

    Dump documents are capped at ``max_dumps`` (oldest kept: the first
    dumps after an incident usually hold the interesting window); further
    triggers only count.
    """

    def __init__(
        self,
        capacity: int = 4096,
        stall_alert_s: Optional[float] = None,
        drop_burst_n: int = 8,
        drop_burst_s: float = 1e-3,
        slo: Optional[SloObjective] = None,
        burn_rule: Optional[BurnRateRule] = None,
        max_dumps: int = 4,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        if max_dumps < 0:
            raise ValueError(f"max_dumps must be >= 0, got {max_dumps}")
        self.capacity = capacity
        self.ring: deque = deque(maxlen=capacity)
        self.stall_alert_s = stall_alert_s
        self.drop_burst_n = drop_burst_n
        self.drop_burst_s = drop_burst_s
        self.slo = slo
        # Default rule: short lookback of 5 simulated ms, long of 50ms,
        # firing at 2x budget burn -- scaled to trace-length runs rather
        # than wall-clock SRE windows.
        self.burn_rule = (
            burn_rule
            if burn_rule is not None
            else BurnRateRule(short_s=5e-3, long_s=50e-3, factor=2.0)
        )
        self.max_dumps = max_dumps
        self.dumps: List[dict] = []
        #: Trigger counts, including triggers past the ``max_dumps`` cap.
        self.trigger_counts = {name: 0 for name in TRIGGERS}
        #: Optional zero-arg callable returning extra context (sampling
        #: bookkeeping, recent window rows) embedded in each dump.
        self.context_provider = None
        self._drop_times: deque = deque()
        # Per-window (ops, bad) history for burn-rate evaluation; rows
        # are appended by the window aggregator via :meth:`on_window`.
        self._slo_windows: List = []

    # -------------------------------------------------------------- feeds

    def on_stall(self, cause: str, ts: float, seconds: float) -> None:
        """A stall span or cumulative-slowdown instant completed."""
        self.ring.append(("stall", cause, ts, seconds))
        alert = self.stall_alert_s
        if alert is not None and seconds >= alert:
            self._trigger(
                TRIGGER_STALL, ts,
                {"cause": cause, "seconds": seconds, "threshold_s": alert},
            )

    def on_drop(self, cause: str, client: str, ts: float) -> None:
        """An admission-queue drop; fires on a burst within the window."""
        self.ring.append(("drop", cause, client, ts))
        times = self._drop_times
        times.append(ts)
        horizon = ts - self.drop_burst_s
        while times and times[0] < horizon:
            times.popleft()
        if len(times) >= self.drop_burst_n:
            self._trigger(
                TRIGGER_DROPS, ts,
                {
                    "cause": cause,
                    "drops_in_window": len(times),
                    "burst_n": self.drop_burst_n,
                    "burst_window_s": self.drop_burst_s,
                },
            )
            times.clear()

    def on_window(self, t_s: float, ops: int, bad: int) -> None:
        """One closed aggregation window; evaluates the burn-rate rule.

        ``bad`` is the number of ops in the window whose latency exceeded
        the SLO threshold.  Burn rate over a lookback of N windows is
        ``(sum bad / sum ops) / error_budget``; the rule fires when both
        its short and long lookbacks burn faster than ``factor``.
        """
        if self.slo is None:
            return
        rows = self._slo_windows
        rows.append((t_s, ops, bad))
        budget = 1.0 - self.slo.target
        if budget <= 0.0:
            return
        rule = self.burn_rule
        short = self._burn(rows, t_s - rule.short_s, budget)
        long_ = self._burn(rows, t_s - rule.long_s, budget)
        if short is None or long_ is None:
            return
        if short > rule.factor and long_ > rule.factor:
            self._trigger(
                TRIGGER_SLO, t_s,
                {
                    "objective": self.slo.name,
                    "threshold_s": self.slo.threshold_s,
                    "target": self.slo.target,
                    "burn_short": short,
                    "burn_long": long_,
                    "factor": rule.factor,
                },
            )
            rows.clear()

    @staticmethod
    def _burn(rows, since: float, budget: float) -> Optional[float]:
        ops = bad = 0
        for t_s, n, b in rows:
            if t_s >= since:
                ops += n
                bad += b
        if ops == 0:
            return None
        return (bad / ops) / budget

    # ------------------------------------------------------------ dumping

    def _trigger(self, name: str, at_s: float, detail: dict) -> None:
        self.trigger_counts[name] += 1
        if len(self.dumps) >= self.max_dumps:
            return
        self.dumps.append(self._dump_doc(name, at_s, detail))

    def dump_now(self, at_s: float, reason: str = TRIGGER_MANUAL) -> dict:
        """Force a dump of the current ring (e.g. at end of run)."""
        self.trigger_counts[TRIGGER_MANUAL] += 1
        doc = self._dump_doc(reason, at_s, {})
        if len(self.dumps) < self.max_dumps:
            self.dumps.append(doc)
        return doc

    def _dump_doc(self, trigger: str, at_s: float, detail: dict) -> dict:
        doc = {
            "schema": FLIGHT_SCHEMA,
            "trigger": trigger,
            "at_s": at_s,
            "detail": detail,
            "ring": [list(entry) for entry in self.ring],
        }
        if self.context_provider is not None:
            doc["context"] = self.context_provider()
        return doc

    @staticmethod
    def dump_json(doc: dict) -> str:
        """Deterministic JSON text for one dump document."""
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self.ring)}/{self.capacity} events, "
            f"{len(self.dumps)} dumps)"
        )
