"""Deterministic trace sampling: splitmix64 head decisions + tail outliers.

The live telemetry plane cannot afford one :class:`TraceEvent` per
operation, so it keeps two kinds of ops:

- **Head samples** -- a pseudo-random, workload-independent subset chosen
  by hashing the op *sequence number* with splitmix64.  The decision is a
  pure function of ``(seed, seq)``: the same seed and the same op stream
  always retain the same set, so live-trace hashes stay pinned for a
  given configuration.  Decisions are made per *run* of ``run_len``
  consecutive ops (the hash is over ``seq // run_len``), which amortises
  the hash to a fraction of an op and keeps a retained op's neighbours --
  and its device transfers -- in the trace with it.
- **Tail samples** -- every op whose latency exceeds a rolling percentile
  of recent latencies, and every op that touched a stall.  Tail retention
  is decided at op completion from the op stream alone, so it is equally
  deterministic.

Retention is exact-bookkeeping sampling, not lossy aggregation: the
sampler counts every op it sees and every op it keeps, per decision
class, so downstream attribution can rescale retained counts back to
population estimates (``scale() == seen / retained``).
"""

from typing import List, Optional, Tuple

_MASK64 = (1 << 64) - 1

#: Golden-ratio increment used by the splitmix64 stream (Steele et al.).
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: one well-mixed 64-bit word from ``x``.

    Same constants as the ring hash in :mod:`repro.cluster.placement`;
    defined here too so the obs layer does not import the cluster layer.
    """
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def head_keep(seed: int, seq: int, rate: float, run_len: int = 16) -> bool:
    """Pure head-sampling decision for op ``seq`` at ``rate``.

    True iff the run of ``run_len`` consecutive ops containing ``seq``
    was drawn.  Exposed as a module function so tests (and attribution)
    can recompute the retained set without a recorder.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"head rate must be in [0, 1], got {rate}")
    if run_len < 1:
        raise ValueError(f"run_len must be >= 1, got {run_len}")
    threshold = int(rate * float(1 << 64))
    return splitmix64(seed ^ ((seq // run_len) * _SPLITMIX_GAMMA)) < threshold


class HeadSampler:
    """Streaming form of :func:`head_keep` with O(1) amortised cost.

    The recorder's hot path calls :meth:`advance` once per op; the hash
    is only recomputed at run boundaries.  ``live`` mirrors the decision
    for the *current* sequence number.
    """

    __slots__ = ("seed", "rate", "run_len", "live", "_threshold", "_left",
                 "_seq", "seen", "kept")

    def __init__(self, seed: int, rate: float, run_len: int = 16) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"head rate must be in [0, 1], got {rate}")
        if run_len < 1:
            raise ValueError(f"run_len must be >= 1, got {run_len}")
        self.seed = seed
        self.rate = rate
        self.run_len = run_len
        self._threshold = int(rate * float(1 << 64))
        self._seq = 0
        self._left = run_len
        self.live = self._draw(0)
        self.seen = 0
        self.kept = 0

    def _draw(self, run_index: int) -> bool:
        return (
            splitmix64(self.seed ^ (run_index * _SPLITMIX_GAMMA))
            < self._threshold
        )

    def advance(self) -> bool:
        """Consume one op; returns the decision for the op just consumed."""
        live = self.live
        self.seen += 1
        if live:
            self.kept += 1
        self._seq += 1
        left = self._left - 1
        if left == 0:
            self._left = self.run_len
            self.live = self._draw(self._seq // self.run_len)
        else:
            self._left = left
        return live

    def advance_many(self, n: int) -> List[bool]:
        """Decisions for the next ``n`` ops, one per op."""
        return [self.advance() for __ in range(n)]

    def take(self, n: int) -> Tuple[int, bool]:
        """Consume up to ``n`` ops sharing the current decision.

        Returns ``(count, live)``: the number of ops consumed (bounded
        by the remainder of the current run) and their shared decision.
        The batched hot path walks a batch in run-sized chunks with this
        -- ``batch/run_len`` calls instead of one per op -- and the
        resulting per-op decisions are identical to ``advance()``'s.
        """
        left = self._left
        k = n if n < left else left
        live = self.live
        self.seen += k
        if live:
            self.kept += k
        self._seq += k
        left -= k
        if left == 0:
            self._left = self.run_len
            self.live = self._draw(self._seq // self.run_len)
        else:
            self._left = left
        return k, live

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "run_len": self.run_len,
            "seen": self.seen,
            "kept": self.kept,
        }


class TailSampler:
    """Rolling-percentile outlier detector over recent op latencies.

    Keeps the last ``window`` latencies in a circular buffer and refreshes
    the retention threshold (the ``percentile``-th of the buffer) every
    ``refresh`` observed ops.  Until the first refresh the threshold is
    ``inf`` -- nothing tail-samples on latency while the distribution is
    still unknown (stall retention is handled by the recorder and does
    not wait).  All state is a pure function of the observed latency
    stream, so tail decisions are as deterministic as head decisions.
    """

    __slots__ = ("percentile", "window", "refresh", "threshold",
                 "_buf", "_idx", "_filled", "_since", "kept")

    def __init__(
        self,
        percentile: float = 99.0,
        window: int = 512,
        refresh: int = 256,
    ) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"tail percentile must be in (0, 100], got {percentile}"
            )
        if window < 1:
            raise ValueError(f"tail window must be >= 1, got {window}")
        if refresh < 1:
            raise ValueError(f"tail refresh must be >= 1, got {refresh}")
        self.percentile = percentile
        self.window = window
        self.refresh = refresh
        self.threshold = float("inf")
        self._buf: List[float] = [0.0] * window
        self._idx = 0
        self._filled = 0
        self._since = 0
        self.kept = 0

    def observe(self, latency: float) -> bool:
        """Record one latency; True iff it exceeds the rolling threshold."""
        outlier = latency > self.threshold
        if outlier:
            self.kept += 1
        buf = self._buf
        idx = self._idx
        buf[idx] = latency
        idx += 1
        if idx == self.window:
            idx = 0
        self._idx = idx
        if self._filled < self.window:
            self._filled += 1
        self._since += 1
        if self._since >= self.refresh:
            self._refresh_threshold()
        return outlier

    def observe_many(self, latencies) -> Optional[List[int]]:
        """Batched :meth:`observe`; returns outlier indices or ``None``.

        Batch semantics differ from the scalar path in one documented
        way: every op in the batch is judged against the threshold as of
        the batch *start*, and the refresh check runs once at the batch
        *end*.  Decisions stay a pure function of the latency stream and
        its batching, so identical runs retain identical sets; the payoff
        is that the whole batch is one ``max``, at most one outlier
        comprehension, and two C-speed slice assignments -- no per-op
        Python in the hot path.
        """
        n = len(latencies)
        if not n:
            return None
        indices: Optional[List[int]] = None
        threshold = self.threshold
        if max(latencies) > threshold:
            indices = [
                i for i, lat in enumerate(latencies) if lat > threshold
            ]
            self.kept += len(indices)
        buf = self._buf
        idx = self._idx
        window = self.window
        if n >= window:
            # The batch overwrites the whole ring; keep the scalar
            # layout (newest item lands just before the final cursor).
            final = (idx + n) % window
            tail = latencies[n - window:]
            split = window - final
            buf[final:] = tail[:split]
            buf[:final] = tail[split:]
            self._idx = final
            self._filled = window
        else:
            end = idx + n
            if end <= window:
                buf[idx:end] = latencies
                self._idx = 0 if end == window else end
            else:
                split = window - idx
                buf[idx:] = latencies[:split]
                buf[:end - window] = latencies[split:]
                self._idx = end - window
            if self._filled < window:
                self._filled = min(window, self._filled + n)
        self._since += n
        if self._since >= self.refresh:
            self._refresh_threshold()
        return indices or None

    def _refresh_threshold(self) -> None:
        from repro.sim.latency import percentile as nearest_rank

        self._since = 0
        live = sorted(self._buf[: self._filled])
        self.threshold = nearest_rank(live, self.percentile)

    def as_dict(self) -> dict:
        return {
            "percentile": self.percentile,
            "window": self.window,
            "refresh": self.refresh,
            "threshold": self.threshold if self.threshold != float("inf")
            else None,
            "kept": self.kept,
        }
