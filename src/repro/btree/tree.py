"""An order-N B+-tree with simulation cost accounting.

Values live only in leaves; leaves are chained for range scans.  Every
method that touches the tree returns the number of node visits and node
writes it performed, so the caller can charge the machine's cost model
(for SLM-DB: NVM pointer chases and random NVM writes).
"""

import bisect
from typing import Iterator, List, Optional, Tuple

DEFAULT_ORDER = 64

#: Accounted size of one on-NVM tree node (header + fanout slots).
NODE_BYTES = 1024


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.keys: List[bytes] = []
        self.children: List["_Node"] = []
        self.values: List[object] = []
        self.next_leaf: Optional["_Node"] = None
        self.is_leaf = is_leaf


class BPlusTree:
    """Map from keys to opaque values (SLM-DB stores table locators)."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self.order = order
        self.root = _Node(is_leaf=True)
        self.size = 0
        self.height = 1
        self.node_count = 1

    # --------------------------------------------------------------- search

    def get(self, key: bytes) -> Tuple[Optional[object], int]:
        """Return ``(value_or_None, nodes_visited)``."""
        node = self.root
        visits = 1
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
            visits += 1
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx], visits
        return None, visits

    def range_from(self, key: bytes) -> Iterator[Tuple[bytes, object]]:
        """Iterate ``(key, value)`` pairs with ``k >= key`` in order."""
        node = self.root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        while node is not None:
            while idx < len(node.keys):
                yield node.keys[idx], node.values[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    # --------------------------------------------------------------- update

    def insert(self, key: bytes, value) -> Tuple[int, int]:
        """Insert or overwrite; returns ``(nodes_visited, nodes_written)``."""
        path: List[Tuple[_Node, int]] = []
        node = self.root
        visits = 1
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
            visits += 1

        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return visits, 1
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self.size += 1
        writes = 1
        # Split upward while nodes overflow.
        while len(node.keys) >= self.order:
            sibling, separator = self._split(node)
            writes += 2
            if not path:
                new_root = _Node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self.root = new_root
                self.height += 1
                self.node_count += 1
                writes += 1
                break
            parent, pidx = path.pop()
            parent.keys.insert(pidx, separator)
            parent.children.insert(pidx + 1, sibling)
            node = parent
        return visits, writes

    def delete(self, key: bytes) -> Tuple[bool, int]:
        """Remove ``key`` (no rebalancing -- index entries are re-created
        by compaction anyway).  Returns ``(removed, nodes_visited)``."""
        node = self.root
        visits = 1
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
            visits += 1
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.keys.pop(idx)
            node.values.pop(idx)
            self.size -= 1
            return True, visits
        return False, visits

    def _split(self, node: _Node) -> Tuple[_Node, bytes]:
        mid = len(node.keys) // 2
        sibling = _Node(node.is_leaf)
        self.node_count += 1
        if node.is_leaf:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        return sibling, separator

    # ----------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        keys = [k for k, __ in self.range_from(b"")]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self.size, "size counter drifted"
        self._check_node(self.root, None, None)

    def _check_node(self, node: _Node, low, high) -> None:
        for key in node.keys:
            assert low is None or key >= low
            assert high is None or key < high
        if node.is_leaf:
            return
        assert len(node.children) == len(node.keys) + 1
        bounds = [low] + node.keys + [high]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1])

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"BPlusTree(size={self.size}, height={self.height})"
