"""Persistent B+-tree substrate.

SLM-DB (Kaiyrakhmet et al., FAST'19) -- one of the NVM KV stores the
paper positions itself against -- keeps a B+-tree index in NVM over a
single-level LSM.  This package provides that index: an order-N B+-tree
with cost accounting compatible with the rest of the simulation (a node
traversal costs one NVM pointer chase; splits charge NVM writes).
"""

from repro.btree.tree import BPlusTree

__all__ = ["BPlusTree"]
