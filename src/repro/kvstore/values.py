"""Value representations.

The paper's datasets use values of 1-64 KB.  Materialising those payloads
in the interpreter would dominate runtime without affecting any result,
so benchmarks use :class:`SizedValue`: a tiny object carrying a *nominal*
size that the cost model charges for.  Correctness tests use real
``bytes`` values; both flow through the same store code.
"""


class SizedValue:
    """A value whose accounted size is decoupled from its payload."""

    __slots__ = ("tag", "nbytes")

    def __init__(self, tag, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"value size must be >= 0, got {nbytes}")
        self.tag = tag
        self.nbytes = nbytes

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SizedValue)
            and other.tag == self.tag
            and other.nbytes == self.nbytes
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.nbytes))

    def __repr__(self) -> str:
        return f"SizedValue({self.tag!r}, {self.nbytes}B)"


def value_nbytes(value) -> int:
    """Accounted size of a value: real length for bytes/str, nominal for
    :class:`SizedValue`."""
    if isinstance(value, SizedValue):
        return value.nbytes
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    raise TypeError(
        f"cannot size value of type {type(value).__name__}; "
        "pass bytes or SizedValue"
    )
