"""MemTables: skip lists in fixed-size arenas on DRAM or NVM.

Every store stages writes in a DRAM MemTable (NVM random-write bandwidth
is ~7x lower than DRAM's).  NoveLSM additionally keeps large *persistent*
MemTables on NVM -- same structure, different device, so inserts pay NVM
hop and write costs.
"""

from typing import Optional

from repro.persist.arena import Arena
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import NODE_OVERHEAD_BYTES
from repro.skiplist.skiplist import SkipList


def memtable_entries(table: "MemTable"):
    """All versions in a MemTable as SSTable entries.

    Entries are ``(key, seq, value, value_bytes)`` already sorted by
    (key ascending, seq descending) -- the skip list's native order.
    """
    return [
        (n.key, n.seq, n.value, max(0, n.nbytes - len(n.key) - NODE_OVERHEAD_BYTES))
        for n in table.skiplist.nodes()
    ]


class MemTable:
    """A bounded skip list staged on one device."""

    _ids = 0

    def __init__(
        self,
        system,
        capacity_bytes: int,
        rng: Optional[XorShiftRng] = None,
        placement: str = "dram",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"MemTable capacity must be positive: {capacity_bytes}")
        if placement not in ("dram", "nvm"):
            raise ValueError(f"unknown placement {placement!r}")
        MemTable._ids += 1
        self.table_id = MemTable._ids
        self.system = system
        self.capacity_bytes = capacity_bytes
        self.placement = placement
        self.device = system.dram if placement == "dram" else system.nvm
        self.skiplist = SkipList(rng or XorShiftRng(0xA5F0 + self.table_id))
        self.arena = Arena(
            self.device, capacity_bytes, system.now, f"memtable-{self.table_id}"
        )
        self.immutable = False

    @property
    def data_bytes(self) -> int:
        """Bytes of live entries currently staged."""
        return self.skiplist.data_bytes

    @property
    def is_full(self) -> bool:
        """True once the arena budget is exhausted."""
        return self.skiplist.footprint_bytes >= self.capacity_bytes

    def insert(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        """Stage one write; returns the simulated device cost."""
        if self.immutable:
            raise ValueError("insert into an immutable MemTable")
        node, hops = self.skiplist.insert(key, seq, value, value_bytes)
        seconds = self.system.cpu.skiplist_search_time(self.placement, max(hops, 1))
        seconds += self.device.write(node.nbytes, sequential=False)
        return seconds

    def get(self, key: bytes):
        """Look up the newest version; returns ``(node_or_None, cost)``.

        The cost covers the pointer chase plus, on a hit, reading the
        entry payload from the table's device.
        """
        node, hops = self.skiplist.lookup(key)
        seconds = self.system.cpu.skiplist_search_time(self.placement, max(hops, 1))
        if node is not None:
            seconds += self.device.read(node.nbytes, sequential=False)
        return node, seconds

    def mark_immutable(self) -> None:
        """Freeze the table prior to flushing."""
        self.immutable = True

    def release(self) -> None:
        """Free the arena once flushing (and swizzling) completed."""
        self.arena.release(self.system.now)

    def __len__(self) -> int:
        return len(self.skiplist)

    def __repr__(self) -> str:
        state = "immutable" if self.immutable else "active"
        return (
            f"MemTable(#{self.table_id}, {self.data_bytes}B on "
            f"{self.placement}, {state})"
        )
