"""Store configuration shared across engines.

Defaults are the paper's settings scaled down 64x (Section 5 uses 64 MB
MemTables/SSTables and 80 GB datasets; the reproduction defaults to 1 MB
tables so datasets of ~128 MB simulated bytes keep the same
dataset-to-MemTable ratio at tractable node counts).
"""

from dataclasses import dataclass

KB = 1 << 10
MB = 1 << 20


@dataclass
class StoreOptions:
    """Knobs common to every LSM-style engine in the reproduction.

    Attributes:
        memtable_bytes: DRAM MemTable capacity before it turns immutable.
        sstable_bytes: target size of one SSTable (baselines).
        level_fanout: capacity ratio between adjacent levels (paper: 10).
        num_levels: number of on-media levels.
        l0_slowdown_tables: L0 table count that triggers write slowdown.
        l0_stop_tables: L0 table count that blocks writes entirely.
        slowdown_delay_s: per-write delay while in slowdown (LevelDB: 1ms).
        wal_enabled: append to a write-ahead log before MemTable inserts.
        fsync_policy: WAL durability policy -- ``"sync"`` (every append
            is a device write), ``"batch:N"`` (group commit every N
            records), or ``"interval:T"`` (group commit every T
            simulated seconds).  See ``repro.persist.wal``.
        key_bytes: nominal key size used for capacity estimates.
    """

    memtable_bytes: int = 1 * MB
    sstable_bytes: int = 1 * MB
    level_fanout: int = 10
    num_levels: int = 7
    l0_slowdown_tables: int = 8
    l0_stop_tables: int = 12
    slowdown_delay_s: float = 1e-3
    wal_enabled: bool = True
    fsync_policy: str = "sync"
    key_bytes: int = 16

    def level_capacity_bytes(self, level: int) -> int:
        """Byte budget of ``level`` in a leveled LSM (L1 = fanout x L0)."""
        if level <= 0:
            return self.l0_slowdown_tables * self.sstable_bytes
        return self.sstable_bytes * (self.level_fanout ** level)
