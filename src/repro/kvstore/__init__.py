"""Common KV store interface shared by MioDB and all baselines.

Every store exposes ``put``/``get``/``delete``/``scan`` against a
:class:`~repro.mem.HybridMemorySystem`; operations advance the simulated
clock by their modelled cost and record their latency, so workloads can be
replayed identically across stores and compared on simulated time.
"""

from repro.kvstore.api import KVStore
from repro.kvstore.batch import WriteBatch
from repro.kvstore.options import StoreOptions
from repro.kvstore.values import SizedValue, value_nbytes

__all__ = ["KVStore", "StoreOptions", "SizedValue", "WriteBatch", "value_nbytes"]
