"""Write batches: a group of puts/deletes applied together.

Engines with batch-aware logging (MioDB) persist the whole batch under
one commit marker, so a crash mid-batch rolls the entire batch back --
the all-or-nothing contract LevelDB's ``WriteBatch`` provides.
"""

from typing import List, Tuple

from repro.kvstore.values import value_nbytes


class WriteBatch:
    """An ordered collection of put/delete operations.

    Contract (every engine's ``write`` honors it, including the WAL
    replay path after a crash):

    - **Iteration order**: ``ops`` holds operations exactly in the order
      ``put``/``delete`` were called, and engines apply them in that
      order with strictly increasing sequence numbers.
    - **Last write wins**: when the same key appears multiple times in
      one batch, the operation queued last determines the key's final
      state -- a later ``put`` shadows an earlier ``put`` or ``delete``,
      a later ``delete`` tombstones an earlier ``put``.  Earlier
      versions are still written (they cost what they cost); they are
      simply shadowed by the higher sequence number.
    - A batch can be reused after :meth:`clear`.
    """

    def __init__(self) -> None:
        self.ops: List[Tuple[str, bytes, object]] = []

    def put(self, key: bytes, value) -> "WriteBatch":
        """Queue an insert/update; returns self for chaining."""
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValueError(f"keys must be non-empty bytes, got {key!r}")
        value_nbytes(value)  # validate eagerly
        self.ops.append(("put", bytes(key), value))
        return self

    def delete(self, key: bytes) -> "WriteBatch":
        """Queue a delete; returns self for chaining."""
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValueError(f"keys must be non-empty bytes, got {key!r}")
        self.ops.append(("delete", bytes(key), None))
        return self

    def clear(self) -> "WriteBatch":
        """Drop every queued operation; returns self for chaining."""
        self.ops.clear()
        return self

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def is_empty(self) -> bool:
        return not self.ops

    def __repr__(self) -> str:
        return f"WriteBatch({len(self.ops)} ops)"
