"""The abstract KV store every engine implements."""

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.kvstore.values import value_nbytes
from repro.skiplist.node import TOMBSTONE

#: Per-op equivalence oracles for the batched entry points: each
#: ``multi_*`` method must be byte-identical (clock, stats, latency
#: samples, per-op trace events) to calling the mapped method once per
#: element.  ``repro.check.contracts`` verifies every ``multi_*`` an
#: engine exposes is registered here; ``tests/test_multi_ops.py`` checks
#: the behavioral equivalence itself.
BATCH_EQUIVALENCE = {
    "multi_put": "put",
    "multi_delete": "delete",
    "multi_get": "get",
}

#: Coarse shared-state region the race detector tracks for every
#: foreground op: the mutable MemTable (see repro.check.races).
_MEMTABLE_REGION = ("memtable:active",)


class KVStore(ABC):
    """Base class wiring operations to the simulated machine.

    Subclasses implement ``_put``/``_get``/``_scan`` returning the
    simulated duration of the operation; this base advances the clock,
    settles background work, records latency, and accounts user bytes.
    """

    #: Short engine name used in benchmark tables ("miodb", "matrixkv", ...).
    name = "abstract"

    def __init__(self, system, options) -> None:
        self.system = system
        self.options = options
        self.seq = 0

    # ------------------------------------------------------------ public API

    def put(self, key: bytes, value) -> float:
        """Insert or update ``key``; returns the operation latency.

        The latency includes any write stall the operation suffered
        (engines advance the clock directly while blocked on background
        flushes or compactions).
        """
        self._require_key(key)
        nbytes = value_nbytes(value)
        self.system.executor.settle()
        if self.system.race is not None:
            self.system.race.op("put", writes=_MEMTABLE_REGION)
        start = self.system.clock.now
        self.seq += 1
        seconds = self._put(key, self.seq, value, nbytes)
        self.system.stats.add("user.bytes_written", len(key) + nbytes)
        self.system.stats.add("op.put", 1)
        return self._finish("put", start, seconds)

    def delete(self, key: bytes) -> float:
        """Delete ``key`` by writing a tombstone; returns the latency."""
        self._require_key(key)
        self.system.executor.settle()
        if self.system.race is not None:
            self.system.race.op("delete", writes=_MEMTABLE_REGION)
        start = self.system.clock.now
        self.seq += 1
        seconds = self._put(key, self.seq, TOMBSTONE, 0)
        self.system.stats.add("user.bytes_written", len(key))
        self.system.stats.add("op.delete", 1)
        return self._finish("delete", start, seconds)

    def get(self, key: bytes) -> Tuple[Optional[object], float]:
        """Look up ``key``; returns ``(value_or_None, latency)``."""
        self._require_key(key)
        self.system.executor.settle()
        if self.system.race is not None:
            self.system.race.op("get", reads=_MEMTABLE_REGION)
        start = self.system.clock.now
        value, seconds = self._get(key)
        self.system.stats.add("op.get", 1)
        latency = self._finish("get", start, seconds)
        return value, latency

    def multi_put(self, items) -> List[float]:
        """Apply many puts in one call; returns per-op latencies.

        Byte-identical to calling :meth:`put` once per ``(key, value)``
        pair -- same simulated clock, stats totals, latency samples, and
        (unless the trace recorder's coalesced mode is on) the same
        trace events -- while the per-op Python dispatch floor (settle
        checks, clock/stat attribute chases, plumbing calls) is paid
        once per batch.  All keys are validated before any op runs.
        """
        ops = []
        require = self._require_key
        for key, value in items:
            require(key)
            ops.append((key, value, value_nbytes(value), len(key)))
        return self._apply_batch("put", ops)

    def multi_delete(self, keys) -> List[float]:
        """Write a tombstone for every key; returns per-op latencies.

        Equivalent to calling :meth:`delete` per key, with the same
        batched bookkeeping as :meth:`multi_put`.
        """
        ops = []
        require = self._require_key
        for key in keys:
            require(key)
            ops.append((key, TOMBSTONE, 0, len(key)))
        return self._apply_batch("delete", ops)

    def multi_get(self, keys) -> List[Tuple[Optional[object], float]]:
        """Look up many keys; returns ``(value_or_None, latency)`` pairs.

        Equivalent to calling :meth:`get` per key.  Engines supply a
        vectorized lookup via :meth:`_batch_lookup`; the base loop
        re-requests it whenever settled background work may have
        changed table structure, so mid-batch flushes and compactions
        land exactly where the one-op-at-a-time path would see them.
        """
        keys = list(keys)
        require = self._require_key
        for key in keys:
            require(key)
        system = self.system
        clock = system.clock
        executor = system.executor
        heap = executor._heap
        settle = executor.settle
        record = system.latency.record
        obs = system.obs
        race = system.race
        coalesce = obs is not None and obs.coalesce_ops
        fallback = self._get
        lookup = self._batch_lookup() or fallback
        results: List[Tuple[Optional[object], float]] = []
        starts: List[float] = []
        durs: List[float] = []
        for key in keys:
            if heap and heap[0][0] <= clock._now:
                if settle():
                    lookup = self._batch_lookup() or fallback
            if race is not None:
                race.op("get", reads=_MEMTABLE_REGION)
            start = clock._now
            value, seconds = lookup(key)
            clock.advance(seconds)
            now = clock._now
            latency = now - start
            record("get", now, latency)
            results.append((value, latency))
            if coalesce:
                starts.append(start)
                durs.append(latency)
            elif obs is not None:
                obs.span("foreground", "get", "op", start, now)
        if keys:
            system.stats.add("op.get", float(len(keys)))
            if coalesce:
                obs.op_batch("foreground", "get", starts, durs)
        return results

    def scan(self, start_key: bytes, count: int) -> Tuple[List[Tuple[bytes, object]], float]:
        """Range query: up to ``count`` live pairs from ``start_key`` on."""
        self._require_key(start_key)
        if count < 0:
            raise ValueError(f"scan count must be >= 0, got {count}")
        self.system.executor.settle()
        if self.system.race is not None:
            self.system.race.op("scan", reads=_MEMTABLE_REGION)
        start = self.system.clock.now
        pairs, seconds = self._scan(start_key, count)
        self.system.stats.add("op.scan", 1)
        latency = self._finish("scan", start, seconds)
        return pairs, latency

    def items(self, start_key: bytes = b"\x00", end_key: Optional[bytes] = None,
              page_size: int = 128):
        """Iterate live ``(key, value)`` pairs in key order.

        Yields from ``start_key`` (inclusive) to ``end_key`` (exclusive,
        unbounded when ``None``), fetching ``page_size`` pairs per
        underlying scan.  Each page is one simulated scan operation.
        """
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        cursor = start_key
        while True:
            pairs, __ = self.scan(cursor, page_size)
            for key, value in pairs:
                if end_key is not None and key >= end_key:
                    return
                yield key, value
            if len(pairs) < page_size:
                return
            cursor = pairs[-1][0] + b"\x00"

    def write(self, batch) -> float:
        """Apply a :class:`~repro.kvstore.batch.WriteBatch`.

        The base implementation applies the operations sequentially;
        engines with batch-aware logging (MioDB) override it to make the
        batch atomic under crashes.  Returns the total latency.
        """
        total = 0.0
        for op, key, value in batch.ops:
            if op == "put":
                total += self.put(key, value)
            else:
                total += self.delete(key)
        return total

    def quiesce(self) -> float:
        """Wait for all background flushing/compaction to finish."""
        return self.system.drain_background()

    # --------------------------------------------------------- engine hooks

    @abstractmethod
    def _put(self, key: bytes, seq: int, value, value_bytes: int) -> float:
        """Apply one versioned write; return its simulated duration."""

    @abstractmethod
    def _get(self, key: bytes) -> Tuple[Optional[object], float]:
        """Point lookup; return ``(value_or_None, duration)``."""

    @abstractmethod
    def _scan(self, start_key: bytes, count: int):
        """Range scan; return ``(pairs, duration)``."""

    def _batch_lookup(self):
        """Hook: a callable equivalent to ``_get`` with hot state hoisted.

        :meth:`multi_get` calls this once per batch and again whenever a
        settled background callback may have moved tables around; the
        returned closure must produce byte-identical ``(value, seconds)``
        pairs to ``_get``.  Returning ``None`` (the default) makes the
        batch loop fall back to ``_get`` per key.
        """
        return None

    # -------------------------------------------------------------- plumbing

    def _apply_batch(self, kind: str, ops) -> List[float]:
        """Shared loop behind :meth:`multi_put` and :meth:`multi_delete`.

        ``ops`` is a list of ``(key, value, value_bytes, key_len)``
        tuples that already passed validation.  Per op this replays the
        exact sequence of the unbatched path -- settle due background
        work, stamp the start time, allocate the sequence number, apply
        ``_put``, advance the clock, record the latency sample -- and
        defers only the stats-registry adds (pure integer sums, exact in
        float) and, in coalesced trace mode, the span emission.
        """
        system = self.system
        clock = system.clock
        executor = system.executor
        heap = executor._heap
        settle = executor.settle
        record = system.latency.record
        put_ = self._put
        obs = system.obs
        race = system.race
        coalesce = obs is not None and obs.coalesce_ops
        latencies: List[float] = []
        starts: List[float] = []
        durs: List[float] = []
        user_bytes = 0
        for key, value, value_bytes, key_len in ops:
            if heap and heap[0][0] <= clock._now:
                settle()
            if race is not None:
                race.op(kind, writes=_MEMTABLE_REGION)
            start = clock._now
            self.seq += 1
            seconds = put_(key, self.seq, value, value_bytes)
            clock.advance(seconds)
            now = clock._now
            latency = now - start
            record(kind, now, latency)
            latencies.append(latency)
            user_bytes += key_len + value_bytes
            if coalesce:
                starts.append(start)
                durs.append(latency)
            elif obs is not None:
                obs.span("foreground", kind, "op", start, now)
        if ops:
            stats = system.stats
            stats.add("user.bytes_written", user_bytes)
            stats.add("op." + kind, float(len(ops)))
            if coalesce:
                obs.op_batch("foreground", kind, starts, durs)
        return latencies

    def _finish(self, kind: str, start: float, seconds: float) -> float:
        self.system.clock.advance(seconds)
        latency = self.system.clock.now - start
        self.system.latency.record(kind, self.system.clock.now, latency)
        obs = self.system.obs
        if obs is not None:
            obs.span("foreground", kind, "op", start, self.system.clock.now)
        return latency

    def _stall_wait(self, cause: str, seconds: float) -> float:
        """Record an interval stall that just advanced the clock.

        Adds to ``stall.interval_s`` and, when tracing is on, emits a
        stall span covering the blocked window with its ``cause``
        (``repro.obs.events.STALL_CAUSES`` is the vocabulary).  Returns
        ``seconds`` so call sites can stay expression-shaped.
        """
        if seconds > 0.0:
            self.system.stats.add("stall.interval_s", seconds)
            obs = self.system.obs
            if obs is not None:
                now = self.system.clock.now
                obs.span(
                    "foreground", "stall", "stall", now - seconds, now,
                    {"cause": cause},
                )
        return seconds

    def _stall_delay(self, cause: str, seconds: float) -> float:
        """Record a cumulative slowdown delay applied to one write.

        Unlike an interval stall the clock has not advanced yet (the
        delay is folded into the operation's duration), so the trace
        gets an instant event carrying the delay in its args.  Returns
        ``seconds``.
        """
        self.system.stats.add("stall.cumulative_s", seconds)
        obs = self.system.obs
        if obs is not None:
            obs.instant(
                "foreground", "stall", "stall",
                {"cause": cause, "seconds": seconds},
            )
        return seconds

    @staticmethod
    def _require_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise ValueError(f"keys must be non-empty bytes, got {key!r}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seq={self.seq})"
