"""Lazy merged range scans shared by every store.

Fixed-size per-source windows under-collect when tombstones or duplicate
versions shadow entries, so scans are built from *lazy* per-source
streams merged globally: each source advances only as far as the merge
needs, and the simulated cost of every advance accumulates in a shared
:class:`CostCell`.
"""

import heapq
from typing import Iterable, Iterator, List, Tuple

from repro.skiplist.node import TOMBSTONE

#: Stream items are ``(key, seq, value, nbytes)``.
StreamItem = Tuple[bytes, int, object, int]


class CostCell:
    """Mutable accumulator for the simulated seconds a scan consumed."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


def skiplist_stream(
    system, skiplist, start_key: bytes, placement: str, cost: CostCell
) -> Iterator[StreamItem]:
    """Lazily walk a skip list from ``start_key``, charging hops + reads."""
    node, hops = skiplist.first_ge(start_key)
    cost.seconds += system.cpu.skiplist_search_time(placement, max(hops, 1))
    device = system.dram if placement == "dram" else system.nvm
    hop_cost = system.cpu.hop_time(placement)
    while node is not None:
        cost.seconds += hop_cost
        cost.seconds += device.read(node.nbytes, sequential=True)
        yield (node.key, node.seq, node.value, node.nbytes)
        node = node.next[0]


def entry_list_stream(
    system,
    entries: List[tuple],
    start_index: int,
    device,
    cost: CostCell,
    deserialize: bool = True,
) -> Iterator[StreamItem]:
    """Lazily read a sorted serialized run (SSTable / matrix row)."""
    from repro.sstable.table import entry_frame_bytes

    for entry in entries[start_index:]:
        nbytes = entry_frame_bytes(entry)
        cost.seconds += device.read(nbytes, sequential=True)
        if deserialize:
            cost.seconds += system.cpu.deserialize_time(nbytes)
        yield entry


def merged_entries(
    streams: Iterable[Iterator[StreamItem]], count: int
) -> List[StreamItem]:
    """Newest live version per key across streams, up to ``count`` keys.

    Tombstones shadow older versions and produce no output entry.
    """

    def keyed(stream):
        for item in stream:
            yield (item[0], -item[1]), item

    if count <= 0:
        return []
    out: List[StreamItem] = []
    last_key = None
    for __order, item in heapq.merge(*[keyed(s) for s in streams]):
        key, __seq, value, __nbytes = item
        if key == last_key:
            continue
        last_key = key
        if value is TOMBSTONE:
            continue
        out.append(item)
        if len(out) >= count:
            break
    return out


def merged_scan(
    streams: Iterable[Iterator[StreamItem]], count: int
) -> List[Tuple[bytes, object]]:
    """Like :func:`merged_entries` but returning ``(key, value)`` pairs."""
    return [(key, value) for key, __, value, __n in merged_entries(streams, count)]
