"""SSTable representation, building, and point reads."""

import bisect
from typing import List, Optional, Sequence, Tuple

BLOCK_BYTES = 4096

# Per-entry framing inside a block: shared-prefix headers, restarts, CRC.
ENTRY_OVERHEAD_BYTES = 24

#: An entry is ``(key, seq, value, value_bytes)`` sorted by (key, -seq).
Entry = Tuple[bytes, int, object, int]


def entry_frame_bytes(entry: Entry) -> int:
    """On-media size of one serialized entry."""
    key, __, __, value_bytes = entry
    return len(key) + value_bytes + ENTRY_OVERHEAD_BYTES


class SSTable:
    """An immutable sorted run on a persistent device."""

    _ids = 0

    def __init__(self, entries: Sequence[Entry], device, label: str = "") -> None:
        if not entries:
            raise ValueError("an SSTable cannot be empty")
        for prev, cur in zip(entries, entries[1:]):
            if not (prev[0] < cur[0] or (prev[0] == cur[0] and prev[1] > cur[1])):
                raise ValueError("SSTable entries not sorted by (key, -seq)")
        SSTable._ids += 1
        self.table_id = SSTable._ids
        self.entries: List[Entry] = list(entries)
        self.device = device
        self.label = label or f"sst-{self.table_id}"
        self._keys = [e[0] for e in self.entries]
        self.data_bytes = sum(entry_frame_bytes(e) for e in self.entries)
        self.min_key = self.entries[0][0]
        self.max_key = self.entries[-1][0]
        self.released = False
        device.allocate(self.data_bytes)

    def release(self) -> int:
        """Free the table's space after compaction; idempotent."""
        if self.released:
            return 0
        self.device.release(self.data_bytes)
        self.released = True
        return self.data_bytes

    def overlaps(self, min_key: bytes, max_key: bytes) -> bool:
        """Key-range overlap test used when picking compaction inputs."""
        return not (self.max_key < min_key or max_key < self.min_key)

    def get(self, key: bytes, cpu, stats=None) -> Tuple[Optional[Entry], float]:
        """Point lookup: returns the newest entry for ``key`` and its cost.

        Cost = one random block read (plus the value bytes, for large
        values spanning blocks) + deserialization of the bytes read.
        This is the per-read deserialization cost the paper measures at
        50-59% of total read time in the baselines; when ``stats`` is
        given, the deserialization share is recorded under
        ``deserialize.time_s``.
        """
        if self.released:
            raise ValueError(f"read from released SSTable {self.label}")
        idx = bisect.bisect_left(self._keys, key)
        found: Optional[Entry] = None
        if idx < len(self.entries) and self.entries[idx][0] == key:
            found = self.entries[idx]
        read_bytes = BLOCK_BYTES
        if found is not None:
            read_bytes = max(BLOCK_BYTES, entry_frame_bytes(found))
        deser = cpu.deserialize_time(read_bytes)
        if stats is not None:
            stats.add("deserialize.time_s", deser)
        seconds = self.device.read(read_bytes, sequential=False)
        return found, seconds + deser

    def scan_all(self, cpu) -> Tuple[List[Entry], float]:
        """Sequential full read (compaction input): returns entries + cost."""
        if self.released:
            raise ValueError(f"scan of released SSTable {self.label}")
        seconds = self.device.read(self.data_bytes, sequential=True)
        seconds += cpu.deserialize_time(self.data_bytes)
        return self.entries, seconds

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"SSTable({self.label!r}, n={len(self.entries)}, "
            f"{self.data_bytes}B on {self.device.name})"
        )


def build_sstable(
    entries: Sequence[Entry], device, cpu, label: str = ""
) -> Tuple[SSTable, float]:
    """Serialize ``entries`` into a new table on ``device``.

    Returns the table and the simulated build duration (CPU serialization
    + one sequential device write of the full table).
    """
    table = SSTable(entries, device, label)
    seconds = cpu.serialize_time(table.data_bytes)
    seconds += device.write(table.data_bytes, sequential=True)
    return table, seconds
