"""K-way merging of sorted entry streams for compaction."""

import heapq
from typing import Iterable, Iterator, List, Sequence

from repro.sstable.table import Entry


def merge_entry_streams(
    streams: Sequence[Iterable[Entry]],
    drop_shadowed: bool = True,
    drop_tombstones: bool = False,
    tombstone=None,
) -> Iterator[Entry]:
    """Merge entry streams sorted by (key, -seq) into one such stream.

    Earlier streams win ties only through sequence numbers -- sequence
    numbers are globally unique, so ordering is total.  With
    ``drop_shadowed`` only the newest version of each key survives (the
    normal compaction behaviour); ``drop_tombstones`` additionally removes
    delete markers (legal only when merging into the bottom level).
    """

    def keyed(stream):
        for key, seq, value, vbytes in stream:
            yield (key, -seq), (key, seq, value, vbytes)

    merged = heapq.merge(*[keyed(s) for s in streams])
    last_key = None
    for __, entry in merged:
        key, __, value, __ = entry
        if drop_shadowed and key == last_key:
            continue
        last_key = key
        if drop_tombstones and value is tombstone:
            continue
        yield entry


def merge_tables(
    tables: Sequence,
    drop_shadowed: bool = True,
    drop_tombstones: bool = False,
    tombstone=None,
) -> List[Entry]:
    """Merge whole SSTables' entries (device costs are charged separately
    by the caller via ``scan_all``)."""
    return list(
        merge_entry_streams(
            [t.entries for t in tables],
            drop_shadowed=drop_shadowed,
            drop_tombstones=drop_tombstones,
            tombstone=tombstone,
        )
    )
