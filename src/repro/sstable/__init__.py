"""Block-based Sorted String Tables.

SSTables are what the baselines (LevelDB-style engine, NoveLSM, MatrixKV)
keep on persistent media, and what MioDB's DRAM-NVM-SSD mode writes to the
SSD.  Building a table charges CPU serialization plus a sequential device
write; reading charges a random block read plus CPU deserialization --
the two costs the paper identifies as the baselines' bottleneck.
"""

from repro.sstable.table import BLOCK_BYTES, SSTable, build_sstable
from repro.sstable.merge import merge_entry_streams, merge_tables

__all__ = [
    "SSTable",
    "build_sstable",
    "merge_tables",
    "merge_entry_streams",
    "BLOCK_BYTES",
]
