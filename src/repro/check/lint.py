"""Determinism lint: AST rules that keep the simulation a pure function.

The repo's determinism contract -- byte-identical clocks, traces, and
fingerprints for the same seeded workload -- only holds while no code
path consults the host machine.  This module walks ``src/repro/**`` with
the stdlib ``ast`` module (no third-party deps) and flags escapes:

========  ========  =====================================================
rule      severity  what it flags
========  ========  =====================================================
DET001    error     wall-clock reads (``time.time``, ``time.monotonic``,
                    ``time.perf_counter``, ``datetime.now``, ...)
DET002    error     real-thread sleeps (``time.sleep``) -- simulated
                    waiting goes through the SimClock/executor
DET003    error     entropy outside ``repro.sim.rng`` (``import random``,
                    ``os.urandom``, ``uuid.uuid4``, ``secrets``)
ORD001    warning   iteration over a ``set``/``frozenset`` (hash order
                    feeds stats/trace output; sort or use a dict/list)
VOC001    error     stall-cause / drop-reason string literals outside the
                    closed vocabularies in ``repro.obs.events``
STAT001   error     ``stats.add/set/max`` keys whose family is not
                    registered in ``repro.sim.stats.KEY_FAMILIES``
========  ========  =====================================================

Suppression is explicit, never silent:

- ``# repro: allow[RULE] -- why`` on the flagged line (or the line
  directly above) suppresses that rule there;
- ``# repro: allow-file[RULE] -- why`` anywhere in a file suppresses the
  rule for the whole file (for modules whose *purpose* is the flagged
  behavior, e.g. wall-clock measurement in ``repro.bench.perf``);
- pre-existing findings can be recorded in the checked-in baseline file
  instead (see ``repro.check.baseline``).
"""

import ast
import pathlib
import re
from typing import Dict, List, Optional, Tuple

from repro.check.report import SEV_ERROR, SEV_WARNING, Finding, sort_findings
from repro.obs.events import CATEGORIES, DROP_CAUSES, STALL_CAUSES
from repro.sim.stats import KEY_FAMILIES


class Rule:
    """One lint rule: an ID, a severity, and a one-line summary."""

    __slots__ = ("id", "severity", "summary")

    def __init__(self, rule_id: str, severity: str, summary: str) -> None:
        self.id = rule_id
        self.severity = severity
        self.summary = summary

    def __repr__(self) -> str:
        return f"Rule({self.id}, {self.severity}: {self.summary})"


#: The rule registry, in report order.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule("DET001", SEV_ERROR,
             "wall-clock read; simulated time comes from the SimClock"),
        Rule("DET002", SEV_ERROR,
             "real-thread sleep; model waiting with the executor/clock"),
        Rule("DET003", SEV_ERROR,
             "entropy source outside repro.sim.rng; route randomness "
             "through XorShiftRng"),
        Rule("ORD001", SEV_WARNING,
             "iteration over a set; hash order is not part of the "
             "determinism contract -- sort it or keep a list/dict"),
        Rule("VOC001", SEV_ERROR,
             "stall/drop cause or trace-category literal outside the "
             "closed vocabularies in repro.obs.events"),
        Rule("STAT001", SEV_ERROR,
             "stats key family not registered in "
             "repro.sim.stats.KEY_FAMILIES"),
    )
}

#: Files exempt from DET003: the designated entropy seam itself.
_ENTROPY_SEAM = ("repro/sim/rng.py",)

# Dotted-call suffixes that read the host clock.
_WALLCLOCK_SUFFIXES = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
_SLEEP_SUFFIXES = {("time", "sleep")}
_ENTROPY_SUFFIXES = {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}
#: ``from <module> import <name>`` pairs flagged when the name is called.
_FROM_IMPORT_RULES = {
    ("time", "time"): "DET001",
    ("time", "time_ns"): "DET001",
    ("time", "monotonic"): "DET001",
    ("time", "perf_counter"): "DET001",
    ("time", "process_time"): "DET001",
    ("datetime", "datetime"): None,  # tracked; flagged via .now()/.utcnow()
    ("time", "sleep"): "DET002",
    ("os", "urandom"): "DET003",
    ("uuid", "uuid1"): "DET003",
    ("uuid", "uuid4"): "DET003",
}
_SET_WRAPPERS = ("list", "tuple", "enumerate")

_CAUSE_VOCAB = frozenset(STALL_CAUSES) | frozenset(DROP_CAUSES)

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")
_FILE_PRAGMA = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_\-, ]+)\]")


def _dotted(node) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


def _is_set_expr(node) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _const_str(node) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _LintVisitor(ast.NodeVisitor):
    """One file's AST walk; emits findings through :meth:`flag`."""

    def __init__(self, relpath: str, lines: List[str]) -> None:
        self.relpath = relpath
        self.lines = lines
        self.findings: List[Finding] = []
        self.entropy_exempt = any(relpath.endswith(s) for s in _ENTROPY_SEAM)
        #: Local names bound by ``from <mod> import <name>`` to a
        #: flagged symbol, mapped to the rule they trigger when called.
        self.flagged_names: Dict[str, str] = {}

    # ------------------------------------------------------------- helpers

    def flag(self, rule_id: str, node, message: str) -> None:
        rule = RULES[rule_id]
        line_no = getattr(node, "lineno", 1)
        snippet = self.lines[line_no - 1] if line_no <= len(self.lines) else ""
        self.findings.append(
            Finding(rule.id, rule.severity, self.relpath, line_no,
                    message, snippet)
        )

    def _check_iteration(self, iter_node) -> None:
        if _is_set_expr(iter_node):
            self.flag(
                "ORD001", iter_node,
                "iterating a set; wrap in sorted(...) or keep an ordered "
                "container",
            )

    # ------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random" and not self.entropy_exempt:
                self.flag(
                    "DET003", node,
                    "import of the global `random` module; use "
                    "repro.sim.rng.XorShiftRng",
                )
            elif root == "secrets":
                self.flag("DET003", node, "import of `secrets` (entropy)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if module == "random" and not self.entropy_exempt:
            self.flag(
                "DET003", node,
                "from-import of the global `random` module; use "
                "repro.sim.rng.XorShiftRng",
            )
        elif module == "secrets":
            self.flag("DET003", node, "from-import of `secrets` (entropy)")
        else:
            for alias in node.names:
                rule = _FROM_IMPORT_RULES.get((module, alias.name))
                if rule is not None:
                    self.flagged_names[alias.asname or alias.name] = rule
        self.generic_visit(node)

    # --------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted is not None and len(dotted) >= 2:
            suffix = dotted[-2:]
            if suffix in _WALLCLOCK_SUFFIXES:
                self.flag(
                    "DET001", node,
                    f"wall-clock call {'.'.join(dotted)}(); use the "
                    "simulated clock",
                )
            elif suffix in _SLEEP_SUFFIXES:
                self.flag(
                    "DET002", node,
                    "time.sleep(); model waiting with executor.wait_for "
                    "or clock.advance",
                )
            elif (
                suffix in _ENTROPY_SUFFIXES
                or dotted[0] in ("random", "secrets")
            ) and not self.entropy_exempt:
                self.flag(
                    "DET003", node,
                    f"entropy call {'.'.join(dotted)}(); use "
                    "repro.sim.rng.XorShiftRng",
                )
        elif isinstance(func, ast.Name):
            rule = self.flagged_names.get(func.id)
            if rule is not None:
                self.flag(
                    rule, node,
                    f"call of {func.id}() imported from a host-state "
                    "module",
                )
        # Unordered iteration through common eager wrappers.
        if isinstance(func, ast.Name) and func.id in _SET_WRAPPERS:
            if node.args and _is_set_expr(node.args[0]):
                self._check_iteration(node.args[0])
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if node.args and _is_set_expr(node.args[0]):
                self._check_iteration(node.args[0])
        # Stall-cause literals at the canonical call sites.
        if isinstance(func, ast.Attribute) and func.attr in (
            "_stall_wait", "_stall_delay"
        ):
            if node.args:
                cause = _const_str(node.args[0])
                if cause is not None and cause not in STALL_CAUSES:
                    self.flag(
                        "VOC001", node,
                        f"stall cause {cause!r} is not in "
                        "repro.obs.events.STALL_CAUSES",
                    )
        # Trace-category literals at span/instant emission sites: the
        # third positional argument is the category, and only the
        # closed vocabulary keeps analyzers and fingerprints total.
        if isinstance(func, ast.Attribute) and func.attr in (
            "span", "instant"
        ):
            if len(node.args) >= 3:
                cat = _const_str(node.args[2])
                if cat is not None and cat not in CATEGORIES:
                    self.flag(
                        "VOC001", node,
                        f"trace category {cat!r} is not in "
                        "repro.obs.events.CATEGORIES",
                    )
        # StatsRegistry keys must carry a registered family.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("add", "set", "max")
            and dotted is not None
            and len(dotted) >= 2
            and dotted[-2] == "stats"
            and node.args
        ):
            self._check_stats_key(node.args[0])
        self.generic_visit(node)

    def _check_stats_key(self, key_node) -> None:
        head = _const_str(key_node)
        if head is None and isinstance(key_node, ast.JoinedStr):
            # f"family.metric.{dynamic}" -- validate the constant head.
            if key_node.values:
                head = _const_str(key_node.values[0])
        if head is None:
            return  # fully dynamic key: nothing checkable statically
        if "." not in head:
            self.flag(
                "STAT001", key_node,
                f"stats key {head!r} has no family prefix "
                "(expected 'family.metric')",
            )
            return
        family = head.split(".", 1)[0]
        if family not in KEY_FAMILIES:
            self.flag(
                "STAT001", key_node,
                f"stats family {family!r} is not registered in "
                "repro.sim.stats.KEY_FAMILIES",
            )

    # ----------------------------------------------------- other contexts

    def visit_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if _const_str(key) == "cause":
                cause = _const_str(value)
                if cause is not None and cause not in _CAUSE_VOCAB:
                    self.flag(
                        "VOC001", value,
                        f"cause literal {cause!r} is not in the closed "
                        "STALL_CAUSES/DROP_CAUSES vocabularies",
                    )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


# ---------------------------------------------------------------- pragmas


def _pragma_allows(lines: List[str]):
    """Per-line and per-file suppression pragmas in a source file."""
    by_line: Dict[int, frozenset] = {}
    file_wide: set = set()
    for number, text in enumerate(lines, start=1):
        match = _FILE_PRAGMA.search(text)
        if match:
            file_wide.update(
                p.strip() for p in match.group(1).split(",") if p.strip()
            )
            continue
        match = _PRAGMA.search(text)
        if match:
            by_line[number] = frozenset(
                p.strip() for p in match.group(1).split(",") if p.strip()
            )
    return by_line, frozenset(file_wide)


def _suppressed(finding: Finding, by_line, file_wide) -> bool:
    if finding.rule in file_wide:
        return True
    for line in (finding.line, finding.line - 1):
        if finding.rule in by_line.get(line, ()):
            return True
    return False


# ----------------------------------------------------------------- driver


def package_root() -> pathlib.Path:
    """The ``src/repro`` directory of this installation."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def repo_root() -> pathlib.Path:
    """The repository root (parent of ``src``), best effort."""
    root = package_root()
    if root.parent.name == "src":
        return root.parent.parent
    return root.parent


def lint_text(
    source: str, relpath: str = "<memory>", respect_pragmas: bool = True
) -> List[Finding]:
    """Lint one source string; the unit under every rule test."""
    lines = source.splitlines()
    visitor = _LintVisitor(relpath, lines)
    visitor.visit(ast.parse(source, filename=relpath))
    findings = visitor.findings
    if respect_pragmas:
        by_line, file_wide = _pragma_allows(lines)
        findings = [
            f for f in findings if not _suppressed(f, by_line, file_wide)
        ]
    return sort_findings(findings)


def iter_source_files(root: pathlib.Path) -> List[pathlib.Path]:
    return sorted(root.rglob("*.py"))


def run_lint(
    root: Optional[pathlib.Path] = None, respect_pragmas: bool = True
) -> List[Finding]:
    """Lint every Python file under ``root`` (default: ``src/repro``).

    Paths in findings are repo-relative when possible, so fingerprints
    in the baseline file are stable across checkouts.
    """
    scan_root = package_root() if root is None else pathlib.Path(root)
    base = repo_root() if root is None else scan_root.parent
    findings: List[Finding] = []
    for path in iter_source_files(scan_root):
        try:
            rel = path.relative_to(base).as_posix()
        except ValueError:
            rel = path.as_posix()
        findings.extend(
            lint_text(path.read_text(), rel, respect_pragmas=respect_pragmas)
        )
    return sort_findings(findings)
