"""Simulated-concurrency race detector: happens-before over the SimClock.

The simulation is single-threaded Python, so nothing here is a data
race in the C sense.  What *can* go wrong is logical: a background
flush/compaction job occupies an interval of simulated time, and if the
state it reads is mutated by foreground operations inside that interval
(or by an overlapping job), the engine is claiming work against a
moving target -- exactly the class of bug the repo's determinism
fingerprints can mask until a reordering exposes it.

The detector is opt-in instrumentation over ``repro.sim.executor`` and
``repro.mem.system`` (``system.attach_race_detection()``).  It builds a
happens-before relation from the events the executor already has:

- foreground operations are totally ordered (one simulated thread);
- a job happens-after the operation that submitted it;
- a job happens-before every operation at or after the settle that
  applied its callback (``wait_for`` stall-release is a settle, so a
  foreground stall on a job synchronizes with it);
- jobs on one worker serialize (their spans cannot overlap);
- each job carries a vector clock joined from the foreground and its
  worker chain, ordering job pairs across workers.

Accesses are declared, not inferred, over coarse named regions of store
state: the :class:`~repro.kvstore.api.KVStore` base class records every
foreground op as a read or write of ``"memtable:active"``, and each
engine declares what its jobs touch via the ``accesses=`` argument of
``Executor.submit`` (e.g. a flush reads ``"memtable:imm"``).  A
conflicting pair (at least one write, same region) with no
happens-before edge is reported as a race.

Nothing about the simulation changes while a detector is attached: it
only observes submits/settles, so clocks, stats, and traces stay
byte-identical.
"""

from typing import Dict, List, Optional, Tuple

#: The mutable MemTable every foreground write lands in.  Engines must
#: rotate it to an immutable region before background work may read it.
REGION_MEMTABLE = "memtable:active"
#: A frozen (rotated) MemTable being flushed; foreground ops may read
#: the store through it but never write it.
REGION_IMMUTABLE = "memtable:imm"

READ = "r"
WRITE = "w"


class _JobNode:
    """Happens-before metadata for one background job."""

    __slots__ = (
        "name", "worker", "seq", "vc", "submit_at", "apply_at",
        "accesses", "cancelled",
    )

    def __init__(self, name, worker, seq, vc, submit_at, accesses) -> None:
        self.name = name
        self.worker = worker
        self.seq = seq
        self.vc = vc
        #: Foreground access counter when the job was submitted.
        self.submit_at = submit_at
        #: Counter when its callback applied (None while in flight).
        self.apply_at: Optional[int] = None
        self.accesses: Tuple[Tuple[str, str], ...] = tuple(accesses)
        self.cancelled = False

    @property
    def label(self) -> str:
        return f"{self.name}@{self.worker}#{self.seq}"


class Race:
    """One unsynchronized conflicting pair on a shared region."""

    __slots__ = ("region", "job", "job_mode", "other", "other_mode", "count")

    def __init__(self, region, job, job_mode, other, other_mode, count=1):
        self.region = region
        self.job = job
        self.job_mode = job_mode
        self.other = other
        self.other_mode = other_mode
        self.count = count

    def render(self) -> str:
        times = f" (x{self.count})" if self.count > 1 else ""
        return (
            f"race on {self.region!r}: {self.job} ({self.job_mode}) is "
            f"concurrent with {self.other} ({self.other_mode}){times}"
        )

    def __repr__(self) -> str:
        return f"Race({self.render()})"


def _vc_leq(a: Dict[str, int], b: Dict[str, int]) -> bool:
    return all(b.get(worker, 0) >= seq for worker, seq in a.items())


class RaceDetector:
    """Builds the happens-before graph and reports conflicting pairs."""

    def __init__(self) -> None:
        #: Monotonic foreground access counter (one tick per op).
        self._counter = 0
        #: region -> [(counter, mode, op-kind)] foreground accesses.
        self._fg: Dict[str, List[Tuple[int, str, str]]] = {}
        #: Foreground vector clock: joined from every applied job.
        self._fg_vc: Dict[str, int] = {}
        self._jobs: List[_JobNode] = []
        self._live: Dict[object, _JobNode] = {}
        self._worker_seq: Dict[str, int] = {}
        self._worker_last_vc: Dict[str, Dict[str, int]] = {}
        self._system = None

    # ------------------------------------------------------ attach/detach

    def attach(self, system) -> "RaceDetector":
        if self._system is not None:
            raise RuntimeError("detector is already attached")
        if system.race is not None:
            raise RuntimeError("system already has a race detector attached")
        self._system = system
        system.race = self
        system.executor.race = self
        return self

    def detach(self) -> None:
        system = self._system
        if system is None:
            return
        self._system = None
        system.race = None
        system.executor.race = None

    @property
    def attached(self) -> bool:
        return self._system is not None

    @property
    def jobs_observed(self) -> int:
        """Background jobs seen since attach (sanity for smoke runs)."""
        return len(self._jobs)

    # ------------------------------------------------------------- events

    def op(self, kind: str, reads=(), writes=()) -> None:
        """One foreground operation touching the named regions.

        Called by the KVStore base class after it settles due background
        work, so a job applied by that settle is ordered before this op.
        """
        self._counter += 1
        at = self._counter
        for region in reads:
            self._fg.setdefault(region, []).append((at, READ, kind))
        for region in writes:
            self._fg.setdefault(region, []).append((at, WRITE, kind))

    def on_submit(self, job, accesses) -> None:
        """Executor hook: a background job entered flight."""
        worker = job.worker.name
        seq = self._worker_seq.get(worker, 0) + 1
        self._worker_seq[worker] = seq
        vc = dict(self._fg_vc)
        last = self._worker_last_vc.get(worker)
        if last is not None:
            for name, value in last.items():
                if value > vc.get(name, 0):
                    vc[name] = value
        vc[worker] = seq
        node = _JobNode(job.name, worker, seq, vc, self._counter,
                        accesses or ())
        self._worker_last_vc[worker] = vc
        self._jobs.append(node)
        self._live[job] = node

    def on_apply(self, job) -> None:
        """Executor hook: a settle is about to apply the job's callback."""
        node = self._live.pop(job, None)
        if node is None:
            return
        node.apply_at = self._counter
        for name, value in node.vc.items():
            if value > self._fg_vc.get(name, 0):
                self._fg_vc[name] = value

    def on_cancel(self, job) -> None:
        """Executor hook: crash_reset discarded the job's effects.

        The in-flight interval still existed before the crash, so the
        node stays; it just stops being concurrent with anything later.
        A crash is not synchronization, so the foreground clock is *not*
        joined with the cancelled job.
        """
        node = self._live.pop(job, None)
        if node is None:
            return
        node.apply_at = self._counter
        node.cancelled = True

    # ------------------------------------------------------------ queries

    def races(self) -> List[Race]:
        """All unsynchronized conflicting pairs observed so far.

        Deterministic: jobs are visited in submit order and foreground
        accesses in program order.
        """
        out: List[Race] = []
        out.extend(self._fg_job_races())
        out.extend(self._job_job_races())
        return out

    def _fg_job_races(self) -> List[Race]:
        out: List[Race] = []
        for node in self._jobs:
            # The job is concurrent with foreground accesses strictly
            # after its submit and at-or-before the settle that applied
            # it (an op's own accesses are recorded after its settle,
            # so they land one tick past apply_at and are ordered).
            hi = node.apply_at if node.apply_at is not None else self._counter
            for job_mode, region in node.accesses:
                conflicts = [
                    (at, mode, kind)
                    for at, mode, kind in self._fg.get(region, ())
                    if node.submit_at < at <= hi
                    and (job_mode == WRITE or mode == WRITE)
                ]
                if not conflicts:
                    continue
                first = conflicts[0]
                out.append(
                    Race(
                        region,
                        node.label,
                        job_mode,
                        f"foreground {first[2]} (access #{first[0]})",
                        first[1],
                        count=len(conflicts),
                    )
                )
        return out

    def _job_job_races(self) -> List[Race]:
        out: List[Race] = []
        for i, a in enumerate(self._jobs):
            writes_a = {r for m, r in a.accesses if m == WRITE}
            regions_a = {r for __, r in a.accesses}
            if not regions_a:
                continue
            for b in self._jobs[i + 1:]:
                shared = [
                    (mode, region)
                    for mode, region in b.accesses
                    if region in regions_a
                    and (mode == WRITE or region in writes_a)
                ]
                if not shared:
                    continue
                if _vc_leq(a.vc, b.vc) or _vc_leq(b.vc, a.vc):
                    continue
                mode_b, region = shared[0]
                mode_a = WRITE if region in writes_a else READ
                out.append(
                    Race(region, a.label, mode_a, b.label, mode_b)
                )
        return out

    def report(self) -> str:
        races = self.races()
        if not races:
            return "race check: clean (0 conflicts)"
        lines = [f"race check: {len(races)} conflict(s)"]
        lines.extend(race.render() for race in races)
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "attached" if self.attached else "detached"
        return (
            f"RaceDetector({len(self._jobs)} jobs, "
            f"{self._counter} fg accesses, {state})"
        )


# -------------------------------------------------------------- smoke run

#: Engines with no background jobs by design (everything in place), so
#: the smoke run's zero-jobs vacuity check does not apply to them.
NO_BACKGROUND_STORES = ("novelsm-nosst",)


def race_smoke(
    store_names=None,
    n: int = 256,
    value_size: int = 256,
    reads: int = 64,
    seed: int = 1,
) -> Dict[str, List[Race]]:
    """Run every store under a small dbbench fill+read with detection on.

    Returns ``{store_name: [races...]}``; all lists empty means the real
    engines declare only synchronized accesses.  Small by design -- the
    CI gate runs it on every push -- but the MemTable is shrunk so the
    fill rotates, flushes, and compacts many times per store (a smoke
    run that schedules zero background jobs would be vacuous; callers
    can assert on ``jobs_observed``).
    """
    from repro.bench import BenchScale, STORE_NAMES, make_store
    from repro.workloads import fill_random, read_random

    scale = BenchScale(
        memtable_bytes=8 << 10,
        dataset_bytes=1 << 20,
        value_size=value_size,
        nvm_buffer_bytes=64 << 10,
    )
    results: Dict[str, List[Race]] = {}
    for name in store_names or STORE_NAMES:
        store, system = make_store(name, scale)
        detector = system.attach_race_detection()
        fill_random(store, n, value_size, seed=seed)
        store.quiesce()
        read_random(store, min(reads, n), n, seed=seed + 1)
        system.detach_race_detection()
        if not detector.jobs_observed and name not in NO_BACKGROUND_STORES:
            raise AssertionError(
                f"race smoke for {name!r} scheduled no background jobs; "
                "shrink the scale or grow the workload"
            )
        results[name] = detector.races()
    return results
