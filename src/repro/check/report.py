"""Findings: the common currency of every ``repro.check`` engine.

A :class:`Finding` is one diagnostic -- a lint hit, a contract
violation, or a race -- with a rule ID, a severity, and a location.
Findings render deterministically (sorted by path, line, rule) so check
output is byte-stable across runs, and each carries a *fingerprint*
(rule + path + a hash of the flagged source line, independent of line
numbers) used by the baseline workflow (see ``repro.check.baseline``).
"""

import hashlib
from typing import List, Optional

#: Finding that must be fixed (or explicitly suppressed) before merging.
SEV_ERROR = "error"
#: Finding worth a look; ``repro check --strict`` still fails on it.
SEV_WARNING = "warning"

SEVERITIES = (SEV_ERROR, SEV_WARNING)


class Finding:
    """One diagnostic emitted by a check engine."""

    __slots__ = ("rule", "severity", "path", "line", "message", "snippet")

    def __init__(
        self,
        rule: str,
        severity: str,
        path: str,
        line: int,
        message: str,
        snippet: str = "",
    ) -> None:
        if severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {severity!r}; expected one of {SEVERITIES}"
            )
        self.rule = rule
        self.severity = severity
        self.path = path
        self.line = line
        self.message = message
        self.snippet = snippet

    @property
    def fingerprint(self) -> str:
        """Stable identity for the baseline file.

        Hashes the stripped source line rather than the line number, so
        unrelated edits above a baselined finding do not invalidate it.
        """
        digest = hashlib.sha256(self.snippet.strip().encode()).hexdigest()[:12]
        return f"{self.rule} {self.path} {digest}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity}: "
            f"[{self.rule}] {self.message}"
        )

    def __repr__(self) -> str:
        return f"Finding({self.render()!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in self.__slots__
        )


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: by path, then line, then rule ID."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def render_findings(findings: List[Finding], title: Optional[str] = None) -> str:
    """A plain-text report, one finding per line, stable across runs."""
    lines = []
    if title is not None:
        lines.append(title)
    for finding in sort_findings(findings):
        lines.append(finding.render())
    return "\n".join(lines)
