"""Machine-checked invariants: lint, race detection, API contracts.

``repro.check`` is the correctness-tooling layer the rest of the repo
runs under (``repro check`` on the CLI, the ``check`` CI job):

- :mod:`repro.check.lint` -- AST determinism lint over ``src/repro``:
  wall-clock/entropy escapes, unordered set iteration, closed-vocabulary
  violations, unregistered stats families.  Rules have IDs and
  severities; suppression is via ``# repro: allow[...]`` pragmas or the
  checked-in baseline (:mod:`repro.check.baseline`).
- :mod:`repro.check.races` -- opt-in happens-before race detection over
  the simulated executor: unsynchronized read-write pairs between
  background flush/compaction jobs and foreground ops.
- :mod:`repro.check.contracts` -- reflection checks that all engines
  implement the full KVStore surface, batched paths have registered
  per-op oracles, and the trace-event schema matches its pinned hash.

See docs/static_analysis.md.
"""

from repro.check.baseline import (
    BASELINE_NAME,
    apply_baseline,
    default_baseline_path,
    load_baseline,
    save_baseline,
)
from repro.check.contracts import (
    PINNED_EVENT_SCHEMA,
    check_contracts,
    check_store_class,
    schema_fingerprint,
)
from repro.check.lint import RULES, lint_text, run_lint
from repro.check.races import Race, RaceDetector, race_smoke
from repro.check.report import (
    SEV_ERROR,
    SEV_WARNING,
    Finding,
    render_findings,
    sort_findings,
)

__all__ = [
    "BASELINE_NAME",
    "Finding",
    "PINNED_EVENT_SCHEMA",
    "Race",
    "RaceDetector",
    "RULES",
    "SEV_ERROR",
    "SEV_WARNING",
    "apply_baseline",
    "check_contracts",
    "check_store_class",
    "default_baseline_path",
    "lint_text",
    "load_baseline",
    "race_smoke",
    "render_findings",
    "run_lint",
    "save_baseline",
    "schema_fingerprint",
    "sort_findings",
]
