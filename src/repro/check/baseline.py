"""Baseline workflow: explicit suppression of pre-existing findings.

A baseline file records one finding *fingerprint* per line (rule ID,
repo-relative path, and a short hash of the flagged source line -- see
:attr:`repro.check.report.Finding.fingerprint`).  ``repro check``
subtracts baselined fingerprints from the live findings, so legacy debt
is visible and versioned instead of silently ignored, and any *new*
finding still fails ``--strict``.

The checked-in baseline lives at ``<repo>/.repro-check-baseline``.  It
ships empty: the repo lints clean, and the intent is that it stays that
way -- prefer a ``# repro: allow[...]`` pragma with a justification over
growing the baseline.  ``repro check --update-baseline`` rewrites the
file from the current findings when debt is deliberately accepted.
"""

import pathlib
from typing import Iterable, List, Optional, Set, Tuple

from repro.check.lint import repo_root
from repro.check.report import Finding

#: Conventional baseline filename at the repository root.
BASELINE_NAME = ".repro-check-baseline"

_HEADER = """\
# repro check baseline -- explicitly suppressed findings.
#
# One fingerprint per line: "<rule> <path> <line-hash>".  Regenerate
# with `repro check --update-baseline`; see docs/static_analysis.md.
"""


def default_baseline_path() -> pathlib.Path:
    return repo_root() / BASELINE_NAME


def load_baseline(path: Optional[pathlib.Path] = None) -> Set[str]:
    """Fingerprints recorded in the baseline file (empty when absent)."""
    target = default_baseline_path() if path is None else pathlib.Path(path)
    if not target.exists():
        return set()
    entries: Set[str] = set()
    for line in target.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def save_baseline(
    findings: Iterable[Finding], path: Optional[pathlib.Path] = None
) -> pathlib.Path:
    """Write the baseline file covering ``findings``; returns its path."""
    target = default_baseline_path() if path is None else pathlib.Path(path)
    body = "".join(
        fp + "\n" for fp in sorted({f.fingerprint for f in findings})
    )
    target.write_text(_HEADER + body)
    return target


def apply_baseline(
    findings: Iterable[Finding], baseline: Set[str]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline."""
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if finding.fingerprint in baseline:
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
