"""API-contract checker: the six engines must stay interchangeable.

Every benchmark, workload, and cluster component in this repo treats
stores as drop-in replacements behind :class:`repro.kvstore.api.KVStore`.
This module verifies, by reflection (no store is instantiated), that the
contract actually holds:

- **Surface** (API001): every registered engine class implements the
  full public KVStore surface and its abstract hooks, with signatures a
  base-class caller can rely on -- same required parameters, extras
  only with defaults, no leftover abstract methods.
- **Batch oracles** (API002): every ``multi_*`` entry point an engine
  exposes has a registered per-op equivalence oracle in
  :data:`repro.kvstore.api.BATCH_EQUIVALENCE` (the method each batched
  op must be byte-identical to), and the oracle method exists.
- **Event schema** (API003): the trace-event shape -- ``TraceEvent``
  slots, the category tuple, and the closed stall/drop vocabularies --
  hashes to the pinned fingerprint.  ``tests/test_obs_schema.py`` pins
  trace *content*; this pins the *schema*, so widening a vocabulary or
  renaming a field fails the check until the pin (and the docs) are
  deliberately updated together.
"""

import hashlib
import inspect
from typing import Dict, List, Optional

from repro.check.report import SEV_ERROR, Finding, sort_findings
from repro.kvstore.api import BATCH_EQUIVALENCE, KVStore

#: Public methods every engine must serve (the benchmark surface).
PUBLIC_API = (
    "put",
    "delete",
    "get",
    "multi_put",
    "multi_delete",
    "multi_get",
    "scan",
    "items",
    "write",
    "quiesce",
)

#: Engine hooks the base class dispatches to.
ENGINE_HOOKS = ("_put", "_get", "_scan", "_batch_lookup")

#: Pinned fingerprint of the trace-event schema (see
#: :func:`schema_fingerprint`).  Update deliberately, together with
#: docs/observability.md and the pinned traces in tests/test_obs_schema.py.
PINNED_EVENT_SCHEMA = (
    "7f4d3bfc6425a024feeda57e0df3909020e4b97fd2d405b236bd8fc66ad4c7b4"
)


def store_classes() -> Dict[str, type]:
    """The registered engine classes, keyed by benchmark store name."""
    from repro.baselines import (
        LevelDBStore,
        MatrixKVStore,
        NoveLSMNoSSTStore,
        NoveLSMStore,
        SLMDBStore,
    )
    from repro.core import MioDB

    return {
        "miodb": MioDB,
        "matrixkv": MatrixKVStore,
        "novelsm": NoveLSMStore,
        "novelsm-hier": NoveLSMStore,
        "novelsm-nosst": NoveLSMNoSSTStore,
        "leveldb": LevelDBStore,
        "slmdb": SLMDBStore,
    }


def _where(cls: type) -> str:
    module = inspect.getmodule(cls)
    path = getattr(module, "__file__", None) or f"<{cls.__module__}>"
    return path


def _finding(cls: type, rule: str, message: str) -> Finding:
    line = 1
    try:
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        pass
    return Finding(rule, SEV_ERROR, _where(cls), line, message,
                   snippet=f"class {cls.__name__}")


def _signature_compatible(base_fn, override_fn) -> Optional[str]:
    """None when ``override_fn`` can serve every base-signature call.

    Required: the base's parameters appear in the override with the
    same names, in the same order, and no stricter kinds; any extra
    parameters the override adds must carry defaults (or be ``*args``/
    ``**kwargs``).  Returns a human-readable mismatch description.
    """
    base_params = [
        p for p in inspect.signature(base_fn).parameters.values()
        if p.name != "self"
    ]
    over_params = [
        p for p in inspect.signature(override_fn).parameters.values()
        if p.name != "self"
    ]
    catch_all = {
        inspect.Parameter.VAR_POSITIONAL,
        inspect.Parameter.VAR_KEYWORD,
    }
    over_named = [p for p in over_params if p.kind not in catch_all]
    has_var = any(p.kind in catch_all for p in over_params)
    for at, base_param in enumerate(base_params):
        if at >= len(over_named):
            if has_var:
                continue
            return f"missing parameter {base_param.name!r}"
        over_param = over_named[at]
        if over_param.name != base_param.name:
            return (
                f"parameter {at + 1} is {over_param.name!r}, "
                f"expected {base_param.name!r}"
            )
        if (
            base_param.default is not inspect.Parameter.empty
            and over_param.default is inspect.Parameter.empty
        ):
            return f"parameter {base_param.name!r} lost its default"
    for extra in over_named[len(base_params):]:
        if extra.default is inspect.Parameter.empty:
            return f"extra required parameter {extra.name!r}"
    return None


def check_store_class(cls: type, name: Optional[str] = None) -> List[Finding]:
    """Contract findings for one engine class (empty when conformant)."""
    label = name or getattr(cls, "name", cls.__name__)
    findings: List[Finding] = []
    if not issubclass(cls, KVStore):
        findings.append(_finding(
            cls, "API001", f"{label}: {cls.__name__} is not a KVStore"
        ))
        return findings
    abstract = getattr(cls, "__abstractmethods__", frozenset())
    if abstract:
        findings.append(_finding(
            cls, "API001",
            f"{label}: abstract methods not implemented: "
            f"{', '.join(sorted(abstract))}",
        ))
    for method_name in PUBLIC_API + ENGINE_HOOKS:
        base_fn = getattr(KVStore, method_name, None)
        override_fn = getattr(cls, method_name, None)
        if override_fn is None:
            findings.append(_finding(
                cls, "API001", f"{label}: missing method {method_name}()"
            ))
            continue
        if base_fn is None or override_fn is base_fn:
            continue
        mismatch = _signature_compatible(base_fn, override_fn)
        if mismatch is not None:
            findings.append(_finding(
                cls, "API001",
                f"{label}: incompatible signature for {method_name}(): "
                f"{mismatch}",
            ))
    store_name = getattr(cls, "name", None)
    if not isinstance(store_name, str) or store_name in ("", "abstract"):
        findings.append(_finding(
            cls, "API001",
            f"{label}: class must set a concrete `name` attribute",
        ))
    # Every batched entry point needs a per-op equivalence oracle.
    for attr in sorted(dir(cls)):
        if not attr.startswith("multi_") or not callable(
            getattr(cls, attr, None)
        ):
            continue
        oracle = BATCH_EQUIVALENCE.get(attr)
        if oracle is None:
            findings.append(_finding(
                cls, "API002",
                f"{label}: batched path {attr}() has no per-op "
                "equivalence oracle registered in "
                "repro.kvstore.api.BATCH_EQUIVALENCE",
            ))
        elif not callable(getattr(cls, oracle, None)):
            findings.append(_finding(
                cls, "API002",
                f"{label}: {attr}()'s registered oracle {oracle}() "
                "does not exist",
            ))
    return findings


def schema_fingerprint(
    slots=None, categories=None, stall_causes=None, drop_causes=None,
    repl_names=None,
) -> str:
    """SHA-256 over the canonical trace-event schema description.

    Defaults to the live definitions in ``repro.obs.events``; the
    keyword arguments exist so tests can fingerprint hypothetical
    schemas and assert that any drift changes the hash.
    """
    from repro.obs.events import (
        CATEGORIES,
        DROP_CAUSES,
        REPL_EVENT_NAMES,
        STALL_CAUSES,
        TraceEvent,
    )

    names = REPL_EVENT_NAMES if repl_names is None else repl_names
    description = repr((
        tuple(TraceEvent.__slots__ if slots is None else slots),
        tuple(CATEGORIES if categories is None else categories),
        tuple(sorted(STALL_CAUSES if stall_causes is None else stall_causes)),
        tuple(DROP_CAUSES if drop_causes is None else drop_causes),
        tuple((cat, tuple(names[cat])) for cat in sorted(names)),
    ))
    return hashlib.sha256(description.encode()).hexdigest()


def check_event_schema() -> List[Finding]:
    """API003: the live event schema must match the pinned fingerprint."""
    live = schema_fingerprint()
    if live == PINNED_EVENT_SCHEMA:
        return []
    from repro.obs import events

    return [
        Finding(
            "API003", SEV_ERROR, events.__file__, 1,
            f"trace-event schema drifted: fingerprint {live[:16]}... != "
            f"pinned {PINNED_EVENT_SCHEMA[:16]}...; update "
            "repro.check.contracts.PINNED_EVENT_SCHEMA deliberately, "
            "together with docs and the pinned traces",
            snippet="trace-event schema",
        )
    ]


def check_contracts() -> List[Finding]:
    """All contract findings across the registered engines + the schema."""
    findings: List[Finding] = []
    for name, cls in store_classes().items():
        findings.extend(check_store_class(cls, name))
    findings.extend(check_event_schema())
    return sort_findings(findings)
