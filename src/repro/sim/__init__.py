"""Discrete-event simulation kernel.

All KV stores in this reproduction run against a simulated clock instead of
wall time.  Background work (MemTable flushing, compaction) is modelled as
jobs with computed durations executing on simulated workers; foreground
operations advance the clock and *stall* exactly where the real system
would (for example when the MemTable is full while the immutable MemTable
is still being flushed).

Public surface:

- :class:`SimClock` -- the simulated clock (seconds as ``float``).
- :class:`Executor` / :class:`Worker` / :class:`Job` -- background jobs.
- :class:`LatencyRecorder` -- per-operation latency percentiles and series.
- :class:`StatsRegistry` -- named counters and accumulated durations.
- :class:`XorShiftRng` -- deterministic pseudo random number generator.
"""

from repro.sim.clock import SimClock
from repro.sim.executor import Executor, Job, Worker
from repro.sim.latency import LatencyRecorder, LatencySummary
from repro.sim.rng import XorShiftRng
from repro.sim.stats import StatsRegistry

__all__ = [
    "SimClock",
    "Executor",
    "Job",
    "Worker",
    "LatencyRecorder",
    "LatencySummary",
    "StatsRegistry",
    "XorShiftRng",
]
