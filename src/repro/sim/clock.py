"""Simulated clock.

The clock only moves forward.  Foreground operations advance it by the
simulated duration of the work they perform; stalls advance it to the
completion time of the background job being waited on.
"""


class SimClock:
    """A monotonically non-decreasing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time.

        Negative durations are rejected: simulated work cannot take
        negative time, and silently clamping would hide cost-model bugs.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Move the clock to ``deadline`` if it lies in the future.

        Advancing to a past instant is a no-op (the clock never rewinds),
        which is the natural semantics for "wait until job X is done":
        if it already finished, there is nothing to wait for.
        """
        if deadline > self._now:
            self._now = deadline
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.9f})"
