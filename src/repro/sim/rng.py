"""Deterministic pseudo random number generation.

Everything stochastic in the reproduction (skip-list tower heights, zipfian
draws, key shuffles) goes through :class:`XorShiftRng` so that runs are
bit-for-bit reproducible from a seed, independent of Python's global
``random`` state.
"""

_MASK64 = (1 << 64) - 1


class XorShiftRng:
    """xorshift64* generator -- tiny, fast, and good enough for workloads."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        # A zero state would make xorshift degenerate; remap it.
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer."""
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_float(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def next_below(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, salt: int = 1) -> "XorShiftRng":
        """Derive an independent generator (for sub-streams)."""
        return XorShiftRng(self.next_u64() ^ (salt * 0xBF58476D1CE4E5B9))
