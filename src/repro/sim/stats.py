"""Named counters and duration accumulators shared by all KV stores.

Stores publish the cost breakdowns the paper reports (Table 1): interval
stalls, cumulative stalls, flushing time, (de)serialization time, bytes
written by the user versus bytes written to each device, and so on.
"""

from typing import Dict


class StatsRegistry:
    """A flat map of named floating-point accumulators.

    Conventional key families used across the reproduction:

    - ``stall.interval_s`` / ``stall.cumulative_s`` -- write stalls.
    - ``flush.time_s`` / ``flush.count`` / ``flush.bytes`` -- MemTable flushes.
    - ``serialize.time_s`` / ``deserialize.time_s`` -- SSTable (de)serialization.
    - ``compact.time_s`` / ``compact.count`` -- compaction work.
    - ``user.bytes_written`` -- logical bytes the client wrote (WA denominator).
    - ``gc.reclaimed_bytes`` -- memory reclaimed by lazy-copy GC.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> float:
        """Accumulate ``amount`` into ``key`` and return the new total."""
        total = self._values.get(key, 0.0) + amount
        self._values[key] = total
        return total

    def set(self, key: str, value: float) -> None:
        """Overwrite ``key`` with ``value``."""
        self._values[key] = float(value)

    def get(self, key: str, default: float = 0.0) -> float:
        """Current value of ``key`` (``default`` when never touched)."""
        return self._values.get(key, default)

    def max(self, key: str, value: float) -> float:
        """Keep the running maximum of ``key``."""
        current = self._values.get(key)
        if current is None or value > current:
            self._values[key] = value
            current = value
        return current

    def snapshot(self) -> Dict[str, float]:
        """A copy of every counter, for reporting."""
        return dict(self._values)

    def reset(self) -> None:
        """Zero out all counters."""
        self._values.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __repr__(self) -> str:
        return f"StatsRegistry({len(self._values)} counters)"
