"""Named counters and duration accumulators shared by all KV stores.

Stores publish the cost breakdowns the paper reports (Table 1): interval
stalls, cumulative stalls, flushing time, (de)serialization time, bytes
written by the user versus bytes written to each device, and so on.

Keys follow a ``family.metric`` convention; :data:`KEY_FAMILIES` is the
registry of conventional families, so stores stop inventing ad-hoc
names.  A registry built with ``strict=True`` rejects keys whose family
is unknown -- the tests run the stores under strict mode to keep the
vocabulary closed.
"""

from typing import Dict

#: The conventional key families and what belongs in each.  Metric names
#: use ``_s`` for accumulated seconds and ``_bytes``/``count`` suffixes
#: for byte and event counters.
KEY_FAMILIES: Dict[str, str] = {
    "stall": "foreground write stalls: interval_s (blocking) and "
             "cumulative_s (per-write slowdown delays)",
    "flush": "MemTable flushes: time_s, count, bytes",
    "swizzle": "MioDB background pointer swizzling: time_s",
    "serialize": "SSTable serialization: time_s",
    "deserialize": "SSTable/row deserialization: time_s",
    "compact": "compaction work: time_s, count, bytes_in, ptr_writes, "
               "lazy_count, lazy_time_s",
    "user": "logical client traffic: bytes_written (the WA denominator)",
    "gc": "lazy-copy garbage collection: reclaimed_bytes",
    "op": "operation counts: put, get, scan, delete, batch",
    "recover": "crash recovery: count, time_s, replayed, dropped_jobs",
    "cluster": "sharded serving layer: routed ops, drops by cause, "
               "rebalances, migrated_keys, migrated_bytes",
    "live": "live telemetry plane: ops_seen, ops_retained, windows, "
            "flight_dumps (flushed once at recorder detach)",
    "repl": "replication: shipped/applied records, ack_wait_s, lag peaks, "
            "elections, kills, restarts, degraded-quorum acks",
}


class StatsRegistry:
    """A flat map of named floating-point accumulators.

    Conventional key families are documented in :data:`KEY_FAMILIES`;
    :meth:`snapshot_grouped` returns the counters nested by family.
    With ``strict=True`` every update validates its key's family
    against the registry.
    """

    def __init__(self, strict: bool = False) -> None:
        self._values: Dict[str, float] = {}
        self.strict = strict

    def _check(self, key: str) -> None:
        if self.strict:
            family = key.partition(".")[0]
            if family not in KEY_FAMILIES:
                raise KeyError(
                    f"unknown stats family {family!r} (key {key!r}); "
                    f"register it in repro.sim.stats.KEY_FAMILIES"
                )

    def add(self, key: str, amount: float = 1.0) -> float:
        """Accumulate ``amount`` into ``key`` and return the new total."""
        self._check(key)
        total = self._values.get(key, 0.0) + amount
        self._values[key] = total
        return total

    def set(self, key: str, value: float) -> None:
        """Overwrite ``key`` with ``value``."""
        self._check(key)
        self._values[key] = float(value)

    def get(self, key: str, default: float = 0.0) -> float:
        """Current value of ``key`` (``default`` when never touched)."""
        return self._values.get(key, default)

    def max(self, key: str, value: float) -> float:
        """Keep the running maximum of ``key``."""
        self._check(key)
        current = self._values.get(key)
        if current is None or value > current:
            self._values[key] = value
            current = value
        return current

    def snapshot(self) -> Dict[str, float]:
        """A copy of every counter, for reporting."""
        return dict(self._values)

    def snapshot_grouped(self) -> Dict[str, Dict[str, float]]:
        """Counters nested by key family, metric names sorted.

        ``{"stall": {"interval_s": 1.2, "cumulative_s": 0.3}, ...}``;
        a key without a ``.`` lands under its own name with metric
        ``""``.
        """
        grouped: Dict[str, Dict[str, float]] = {}
        for key in sorted(self._values):
            family, __, metric = key.partition(".")
            grouped.setdefault(family, {})[metric] = self._values[key]
        return grouped

    def reset(self) -> None:
        """Zero out all counters."""
        self._values.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __repr__(self) -> str:
        return f"StatsRegistry({len(self._values)} counters)"
