"""Execution tracing for background work.

A :class:`JobTracer` attached to an :class:`~repro.sim.executor.Executor`
records every submitted job's (worker, name, start, end); the timeline
can be rendered as an ASCII gantt chart -- the easiest way to *see*
MioDB's parallel per-level compaction overlapping with flushing.
"""

from typing import List, Optional, Tuple


class JobTracer:
    """Records job spans from an executor it instruments."""

    def __init__(self, executor) -> None:
        self.executor = executor
        self.spans: List[Tuple[str, str, float, float]] = []
        self._original_submit = executor.submit
        executor.submit = self._traced_submit  # instrument in place

    def _traced_submit(self, worker, duration, callback=None, name="job",
                       not_before=None):
        job = self._original_submit(
            worker, duration, callback, name=name, not_before=not_before
        )
        self.spans.append((worker.name, name, job.start, job.end))
        return job

    def detach(self) -> None:
        """Stop tracing and restore the executor's submit method."""
        self.executor.submit = self._original_submit

    def busy_time(self, worker_name: Optional[str] = None) -> float:
        """Total simulated seconds spent in traced jobs."""
        return sum(
            end - start
            for wname, __, start, end in self.spans
            if worker_name is None or wname == worker_name
        )

    def concurrency_profile(self, samples: int = 200) -> List[Tuple[float, int]]:
        """(time, jobs-in-flight) samples over the traced window."""
        if not self.spans:
            return []
        t0 = min(s[2] for s in self.spans)
        t1 = max(s[3] for s in self.spans)
        span = (t1 - t0) or 1e-12
        profile = []
        for i in range(samples):
            t = t0 + span * i / samples
            running = sum(1 for __, __n, s, e in self.spans if s <= t < e)
            profile.append((t, running))
        return profile

    def max_concurrency(self) -> int:
        """Peak number of overlapping background jobs."""
        events = []
        for __, __n, start, end in self.spans:
            events.append((start, 1))
            events.append((end, -1))
        events.sort()
        peak = current = 0
        for __, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def gantt(self, width: int = 72) -> str:
        """ASCII gantt chart: one row per worker, '#' where busy."""
        if not self.spans:
            return "(no jobs traced)"
        t0 = min(s[2] for s in self.spans)
        t1 = max(s[3] for s in self.spans)
        span = (t1 - t0) or 1e-12
        workers = sorted({s[0] for s in self.spans})
        label_width = max(len(w) for w in workers)
        lines = []
        for worker in workers:
            cells = [" "] * width
            for wname, __, start, end in self.spans:
                if wname != worker:
                    continue
                lo = int((start - t0) / span * width)
                hi = max(lo + 1, int((end - t0) / span * width))
                for i in range(lo, min(hi, width)):
                    cells[i] = "#"
            lines.append(f"{worker.ljust(label_width)} |{''.join(cells)}|")
        lines.append(
            f"{' ' * label_width} t={t0 * 1e3:.2f}ms ... {t1 * 1e3:.2f}ms"
        )
        return "\n".join(lines)
