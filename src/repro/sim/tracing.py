"""Execution tracing for background work.

A :class:`JobTracer` attached to an :class:`~repro.sim.executor.Executor`
records every submitted job's (worker, name, start, end); the timeline
can be rendered as an ASCII gantt chart -- the easiest way to *see*
MioDB's parallel per-level compaction overlapping with flushing.

This is now a thin adapter over the executor's submit-listener API (the
same hook the full :class:`~repro.obs.recorder.TraceRecorder` uses); the
historical monkey-patching of ``executor.submit`` is gone.  For traces
that also cover foreground ops, stalls, and device traffic, attach a
recorder via ``system.attach_tracing()`` instead.
"""

from typing import List, Optional, Tuple


class JobTracer:
    """Records job spans from an executor it listens to."""

    def __init__(self, executor) -> None:
        self.executor = executor
        self.spans: List[Tuple[str, str, float, float]] = []
        executor.add_submit_listener(self._on_submit)

    def _on_submit(self, job, meta=None) -> None:
        self.spans.append((job.worker.name, job.name, job.start, job.end))

    def detach(self) -> None:
        """Stop tracing (the executor keeps running untouched)."""
        self.executor.remove_submit_listener(self._on_submit)

    def busy_time(self, worker_name: Optional[str] = None) -> float:
        """Total simulated seconds spent in traced jobs."""
        return sum(
            end - start
            for wname, __, start, end in self.spans
            if worker_name is None or wname == worker_name
        )

    def concurrency_profile(self, samples: int = 200) -> List[Tuple[float, int]]:
        """(time, jobs-in-flight) samples over the traced window.

        One sweep over the sorted span edges: the jobs running at ``t``
        are ``#{starts <= t} - #{ends <= t}``, and both counts only move
        forward as ``t`` does -- O(samples + spans log spans) instead of
        the old O(samples x spans) rescan.
        """
        if not self.spans:
            return []
        starts = sorted(s[2] for s in self.spans)
        ends = sorted(s[3] for s in self.spans)
        t0, t1 = starts[0], ends[-1]
        window = (t1 - t0) or 1e-12
        profile = []
        started = ended = 0
        for i in range(samples):
            t = t0 + window * i / samples
            while started < len(starts) and starts[started] <= t:
                started += 1
            while ended < len(ends) and ends[ended] <= t:
                ended += 1
            profile.append((t, started - ended))
        return profile

    def max_concurrency(self) -> int:
        """Peak number of overlapping background jobs."""
        events = []
        for __, __n, start, end in self.spans:
            events.append((start, 1))
            events.append((end, -1))
        events.sort()
        peak = current = 0
        for __, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def gantt(self, width: int = 72) -> str:
        """ASCII gantt chart: one row per worker, '#' where busy."""
        from repro.obs.export import ascii_gantt

        return ascii_gantt(
            [(wname, start, end) for wname, __, start, end in self.spans], width
        )
