"""Background workers and jobs for the discrete-event simulation.

A :class:`Worker` models one background thread (for example, one compaction
thread per LSM level in MioDB's parallel compaction).  Jobs submitted to the
same worker serialize; jobs on different workers overlap in simulated time.

A job's *effect* (its completion callback) is applied when the simulation is
"settled" up to a given instant, so foreground code observes exactly the
background work that would have finished by then.  Callbacks may submit
further jobs (compaction cascades); the settle loop keeps draining until no
job completes at or before the settle horizon.
"""

import heapq
import itertools
from typing import Callable, List, Optional


class Job:
    """A unit of background work with a fixed simulated duration."""

    __slots__ = (
        "name",
        "worker",
        "start",
        "end",
        "submitted_at",
        "_callback",
        "done",
        "cancelled",
    )

    def __init__(
        self,
        name: str,
        worker: "Worker",
        start: float,
        end: float,
        callback: Optional[Callable[[], None]],
        submitted_at: Optional[float] = None,
    ) -> None:
        self.name = name
        self.worker = worker
        self.start = start
        self.end = end
        #: Simulated time the job was submitted; ``start - submitted_at``
        #: is how long it queued behind its worker (tracing reports it).
        self.submitted_at = start if submitted_at is None else submitted_at
        self._callback = callback
        self.done = False
        self.cancelled = False

    @property
    def duration(self) -> float:
        """Simulated seconds the job occupies its worker."""
        return self.end - self.start

    def _complete(self) -> None:
        if self.done or self.cancelled:
            return
        self.done = True
        if self._callback is not None:
            self._callback()

    def __repr__(self) -> str:
        state = "done" if self.done else ("cancelled" if self.cancelled else "pending")
        return f"Job({self.name!r}, [{self.start:.6f}, {self.end:.6f}], {state})"


class Worker:
    """A simulated background thread; jobs on one worker run back to back."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.jobs_run = 0

    def __repr__(self) -> str:
        return f"Worker({self.name!r}, busy_until={self.busy_until:.6f})"


class Executor:
    """Schedules jobs on workers and applies their effects in time order."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self._heap: List = []
        self._tiebreak = itertools.count()
        self._workers = {}
        self._submit_listeners: List[Callable] = []
        #: The attached RaceDetector, or None (race checking off -- the
        #: default).  See ``repro.check.races``; every hook below guards
        #: on this, so the disabled cost is one attribute load per site.
        self.race = None

    def worker(self, name: str) -> Worker:
        """Return the named worker, creating it on first use."""
        existing = self._workers.get(name)
        if existing is None:
            existing = Worker(name)
            self._workers[name] = existing
        return existing

    @property
    def workers(self) -> List[Worker]:
        """All workers created so far, in creation order."""
        return list(self._workers.values())

    def add_submit_listener(self, listener: Callable) -> None:
        """Register ``listener(job, meta)``, called once per submitted job.

        This is the supported way to observe background work (tracing,
        accounting): listeners see every job with its precomputed start
        and end times.  They must not mutate the job.
        """
        self._submit_listeners.append(listener)

    def remove_submit_listener(self, listener: Callable) -> None:
        """Unregister a listener added with :meth:`add_submit_listener`."""
        self._submit_listeners.remove(listener)

    def submit(
        self,
        worker: Worker,
        duration: float,
        callback: Optional[Callable[[], None]] = None,
        name: str = "job",
        not_before: Optional[float] = None,
        meta: Optional[dict] = None,
        accesses: Optional[tuple] = None,
    ) -> Job:
        """Queue ``duration`` seconds of work on ``worker``.

        The job starts when the worker is free (but never before the
        current simulated time, nor before ``not_before`` when given) and
        its callback fires when the simulation settles past its end time.
        ``meta`` is opaque annotation passed through to submit listeners
        (e.g. the trace category and byte counts of a flush).

        ``accesses`` declares which shared store regions the job's
        in-flight work logically touches, as ``(mode, region)`` pairs
        with mode ``"r"`` or ``"w"`` (e.g. ``(("r", "memtable:imm"),)``
        for a flush reading the frozen MemTable).  It is consumed only
        by an attached :class:`~repro.check.races.RaceDetector` -- it is
        deliberately *not* part of ``meta`` so declaring accesses never
        changes the traced event stream.
        """
        if duration < 0:
            raise ValueError(f"job duration must be >= 0, got {duration}")
        start = max(worker.busy_until, self.clock.now)
        if not_before is not None and not_before > start:
            start = not_before
        end = start + duration
        worker.busy_until = end
        worker.total_busy += duration
        worker.jobs_run += 1
        job = Job(name, worker, start, end, callback, submitted_at=self.clock.now)
        heapq.heappush(self._heap, (end, next(self._tiebreak), job))
        if self._submit_listeners:
            for listener in list(self._submit_listeners):
                listener(job, meta)
        if self.race is not None:
            self.race.on_submit(job, accesses)
        return job

    def settle(self, until: Optional[float] = None) -> int:
        """Apply effects of every job ending at or before ``until``.

        Defaults to the current clock time.  Returns the number of job
        callbacks applied.  Callbacks may submit new jobs; those are
        drained too if they also finish within the horizon.
        """
        horizon = self.clock.now if until is None else until
        applied = 0
        while self._heap and self._heap[0][0] <= horizon:
            __, __, job = heapq.heappop(self._heap)
            if job.cancelled:
                continue
            if self.race is not None:
                self.race.on_apply(job)
            job._complete()
            applied += 1
        return applied

    def wait_for(self, job: Job) -> float:
        """Advance the clock to the job's completion and settle.

        This models a foreground stall: the caller blocks until the
        background job finishes.  Returns the stall duration (zero when
        the job had already completed).
        """
        before = self.clock.now
        self.clock.advance_to(job.end)
        self.settle()
        return self.clock.now - before

    def drain(self) -> float:
        """Run the simulation until no background work remains.

        Returns the simulated time at which the last job finished (or the
        current time when there was nothing pending).  Used at the end of
        workloads to let compactions quiesce before measuring state.
        """
        while self._heap:
            end = self._heap[0][0]
            self.clock.advance_to(end)
            self.settle()
        return self.clock.now

    def crash_reset(self) -> int:
        """Drop all pending jobs and free the workers (simulated reboot).

        Pending callbacks belong to the crashed process; recovery code
        rebuilds state from persistent structures instead.  Returns the
        number of jobs cancelled.
        """
        cancelled = 0
        for __, __, job in self._heap:
            if not job.done and not job.cancelled:
                job.cancelled = True
                if self.race is not None:
                    self.race.on_cancel(job)
                cancelled += 1
        self._heap.clear()
        for worker in self._workers.values():
            worker.busy_until = self.clock.now
        return cancelled

    @property
    def pending(self) -> int:
        """Number of jobs whose effects have not yet been applied."""
        return sum(1 for __, __, job in self._heap if not job.cancelled)

    def next_completion(self) -> Optional[float]:
        """End time of the earliest pending job, or ``None`` when idle.

        Lazy deletion: cancelled jobs found at the heap top are popped
        on the spot (their effects were already discarded), so the peek
        is O(1) amortised rather than sorting the whole heap -- this
        sits on the buffer-cap stall path, which calls it per stall.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                continue
            return entry[0]
        return None
