"""Per-operation latency recording and summarisation.

Reproduces the paper's latency metrics: average, 90th, 99th, and 99.9th
percentile latencies (Tables 2 and 3) and latency-over-time series
(Figure 8).
"""

import math
from typing import Dict, List, Optional, Sequence, Tuple


class LatencySummary:
    """Summary statistics over a set of latency samples, in seconds."""

    __slots__ = ("count", "mean", "p50", "p90", "p99", "p999", "max")

    def __init__(
        self,
        count: int,
        mean: float,
        p50: float,
        p90: float,
        p99: float,
        p999: float,
        max_: float,
    ) -> None:
        self.count = count
        self.mean = mean
        self.p50 = p50
        self.p90 = p90
        self.p99 = p99
        self.p999 = p999
        self.max = max_

    def as_micros(self) -> Dict[str, float]:
        """The summary converted to microseconds (the paper's unit)."""
        return {
            "avg": self.mean * 1e6,
            "p50": self.p50 * 1e6,
            "p90": self.p90 * 1e6,
            "p99": self.p99 * 1e6,
            "p99.9": self.p999 * 1e6,
            "max": self.max * 1e6,
        }

    def __repr__(self) -> str:
        us = self.as_micros()
        return (
            f"LatencySummary(n={self.count}, avg={us['avg']:.1f}us, "
            f"p90={us['p90']:.1f}us, p99={us['p99']:.1f}us, "
            f"p99.9={us['p99.9']:.1f}us)"
        )


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples, ``q`` in [0, 100]."""
    if not sorted_samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[rank - 1]


class LatencyRecorder:
    """Collects (timestamp, latency) samples grouped by operation kind."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[Tuple[float, float]]] = {}
        # Per-kind cursors for :meth:`window_snapshot`: index of the first
        # sample not yet consumed by a resetting snapshot.
        self._window_start: Dict[str, int] = {}

    def record(self, kind: str, at_time: float, latency: float) -> None:
        """Record one operation of ``kind`` finishing at ``at_time``."""
        self._samples.setdefault(kind, []).append((at_time, latency))

    def kinds(self) -> List[str]:
        """Operation kinds seen so far."""
        return sorted(self._samples)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of samples for ``kind`` (or across all kinds)."""
        if kind is not None:
            return len(self._samples.get(kind, ()))
        return sum(len(v) for v in self._samples.values())

    def samples_since(self, kind: str, index: int) -> List[Tuple[float, float]]:
        """The ``(at_time, latency)`` samples of ``kind`` from ``index`` on.

        ``index`` is a count previously returned by :meth:`count`; the
        slice is the samples recorded after that point.  This is the
        supported way to window samples (phase measurement) without
        reaching into the recorder's internals.
        """
        if index < 0:
            raise ValueError(f"sample index must be >= 0, got {index}")
        rows = self._samples.get(kind)
        if not rows:
            return []
        return list(rows[index:])

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        """Raw latency values for ``kind`` (or across all kinds)."""
        if kind is not None:
            return [lat for __, lat in self._samples.get(kind, ())]
        return [lat for rows in self._samples.values() for __, lat in rows]

    def percentile(self, q: float, kind: Optional[str] = None) -> Optional[float]:
        """Nearest-rank ``q``-th percentile for ``kind`` (or all kinds).

        Unlike the module-level :func:`percentile` (which reports 0.0
        for an empty sequence), the edge cases that rolling SLO windows
        hit routinely are made explicit: an empty recorder returns
        ``None`` (no data is not the same as a zero latency), and a
        single-sample recorder returns that sample for every ``q``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        values = self.latencies(kind)
        if not values:
            return None
        if len(values) == 1:
            return values[0]
        return percentile(sorted(values), q)

    def summary(self, kind: Optional[str] = None) -> LatencySummary:
        """Percentile summary for ``kind`` (or pooled across kinds)."""
        values = sorted(self.latencies(kind))
        if not values:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mean = sum(values) / len(values)
        return LatencySummary(
            count=len(values),
            mean=mean,
            p50=percentile(values, 50),
            p90=percentile(values, 90),
            p99=percentile(values, 99),
            p999=percentile(values, 99.9),
            max_=values[-1],
        )

    def series(
        self, kind: Optional[str] = None, buckets: int = 100
    ) -> List[Tuple[float, float]]:
        """Average latency per time bucket -- the Figure 8 style series.

        Returns ``(bucket_midpoint_time, mean_latency)`` pairs; empty
        buckets are skipped.
        """
        if kind is not None:
            rows = list(self._samples.get(kind, ()))
        else:
            rows = [pair for sub in self._samples.values() for pair in sub]
        if not rows:
            return []
        rows.sort()
        t0, t1 = rows[0][0], rows[-1][0]
        span = (t1 - t0) or 1e-12
        width = span / buckets
        sums = [0.0] * buckets
        counts = [0] * buckets
        for at, lat in rows:
            idx = min(buckets - 1, int((at - t0) / width))
            sums[idx] += lat
            counts[idx] += 1
        out = []
        for i in range(buckets):
            if counts[i]:
                out.append((t0 + (i + 0.5) * width, sums[i] / counts[i]))
        return out

    def window_snapshot(
        self, kind: Optional[str] = None, reset: bool = False
    ) -> LatencySummary:
        """Summary of the samples recorded since the last resetting snapshot.

        Rolling-window consumers (the live telemetry plane's windowed
        aggregation) call this once per tick.  Only the samples recorded
        after the previous ``reset=True`` call are summarised, via a
        per-kind cursor -- no per-tick copy of the full sample history.
        With ``reset=False`` the window is peeked without consuming it;
        with ``reset=True`` the cursor advances so the next snapshot
        starts fresh.  ``kind=None`` pools every kind (and resets every
        cursor when asked to).
        """
        if kind is not None:
            kinds = (kind,)
        else:
            kinds = tuple(self._samples)
        values: List[float] = []
        for k in kinds:
            rows = self._samples.get(k)
            if not rows:
                continue
            start = self._window_start.get(k, 0)
            values.extend(lat for __, lat in rows[start:])
            if reset:
                self._window_start[k] = len(rows)
        if not values:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        values.sort()
        mean = sum(values) / len(values)
        return LatencySummary(
            count=len(values),
            mean=mean,
            p50=percentile(values, 50),
            p90=percentile(values, 90),
            p99=percentile(values, 99),
            p999=percentile(values, 99.9),
            max_=values[-1],
        )

    def merge_from(self, other: "LatencyRecorder") -> None:
        """Absorb all samples from ``other``."""
        for kind, rows in other._samples.items():
            self._samples.setdefault(kind, []).extend(rows)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """A new recorder pooling this recorder's samples with ``other``'s.

        Neither input is mutated.  Percentiles of the merged recorder
        equal percentiles computed over the pooled sample list -- the
        property multi-shard runs rely on to report cluster-level tails
        without concatenating sample lists ad hoc.
        """
        merged = LatencyRecorder()
        merged.merge_from(self)
        merged.merge_from(other)
        return merged
