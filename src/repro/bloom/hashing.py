"""Hash functions for bloom filters.

Double hashing (Kirsch & Mitzenmacher) derives k probe positions from two
independent 64-bit hashes, matching what LevelDB-family filters do.
"""

from typing import List

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, tweaked by ``seed``."""
    h = _FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15 & _MASK64)
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def double_hashes(key: bytes, k: int, nbits: int) -> List[int]:
    """``k`` probe positions in ``[0, nbits)`` for ``key``."""
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    h1 = fnv1a_64(key, seed=1)
    h2 = fnv1a_64(key, seed=2) | 1  # odd stride hits all positions
    return [((h1 + i * h2) & _MASK64) % nbits for i in range(k)]
