"""Hash functions for bloom filters.

Double hashing (Kirsch & Mitzenmacher) derives k probe positions from two
independent 64-bit hashes, matching what LevelDB-family filters do.

The probe positions are pure functions of ``(key, k, nbits)`` and every
filter in a store shares one geometry (so compaction can OR-merge them),
so the positions are memoised: a get that probes eight PMTables hashes
the key once, not eight times.  The hash values themselves are pinned --
optimizing this module must never change a probe position, or simulated
false-positive behaviour (and every figure) would shift.
"""

from functools import lru_cache
from typing import List

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

# fnv1a_64 seeds its state as OFFSET ^ (seed * golden-ratio); the two
# probe hashes always use seeds 1 and 2, so their offsets are constants.
_OFFSET_SEED1 = _FNV_OFFSET ^ (1 * 0x9E3779B97F4A7C15 & _MASK64)
_OFFSET_SEED2 = _FNV_OFFSET ^ (2 * 0x9E3779B97F4A7C15 & _MASK64)


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, tweaked by ``seed``."""
    h = _FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15 & _MASK64)
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def fnv1a_pair(data: bytes) -> "tuple":
    """Both probe hashes (seeds 1 and 2) in a single pass over ``data``.

    Bit-identical to ``(fnv1a_64(data, 1), fnv1a_64(data, 2))`` but
    walks the key bytes once instead of twice.
    """
    h1 = _OFFSET_SEED1
    h2 = _OFFSET_SEED2
    prime = _FNV_PRIME
    mask = _MASK64
    for byte in data:
        h1 = ((h1 ^ byte) * prime) & mask
        h2 = ((h2 ^ byte) * prime) & mask
    return h1, h2


@lru_cache(maxsize=1 << 16)
def probe_positions(key: bytes, k: int, nbits: int) -> "tuple":
    """Memoised ``k`` probe positions in ``[0, nbits)`` for ``key``."""
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    h1, h2 = fnv1a_pair(key)
    h2 |= 1  # odd stride hits all positions
    # Accumulating h1 + i*h2 instead of multiplying keeps the exact same
    # integer sequence (exact int arithmetic) with one add per probe.
    positions = []
    append = positions.append
    h = h1
    for __ in range(k):
        append((h & _MASK64) % nbits)
        h += h2
    return tuple(positions)


def double_hashes(key: bytes, k: int, nbits: int) -> List[int]:
    """``k`` probe positions in ``[0, nbits)`` for ``key``."""
    return list(probe_positions(key, k, nbits))
