"""Fixed-size, OR-mergeable bloom filter."""

import math
from typing import Iterable

from repro.bloom.hashing import probe_positions

try:  # int.bit_count is 3.10+; fall back on the str-based popcount
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9
    def _popcount(x: int) -> int:
        return bin(x).count("1")


class BloomFilter:
    """A bloom filter whose size is fixed at creation so filters merge.

    ``nbits`` and ``k`` must match between filters that are merged; MioDB
    sizes every PMTable's filter identically (bits_per_key x the MemTable
    key budget), so compaction can OR filters without rebuilding them.
    The false-positive rate then degrades as merged tables grow -- the
    effect that caps the useful number of levels at ~8 in Figure 9.

    Bits live in a list of 64-bit words rather than one arbitrary-width
    int: ``x | (1 << pos)`` on a multi-KB int copies the whole integer
    per probe, and ``(x >> pos) & 1`` walks it, so both add and query
    scaled with filter size instead of with ``k``.  Probe positions and
    membership answers are unchanged -- only the bit-storage layout is.
    """

    __slots__ = ("nbits", "k", "_words", "added", "_ones")

    def __init__(self, nbits: int, k: int) -> None:
        if nbits <= 0:
            raise ValueError(f"nbits must be positive, got {nbits}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.nbits = nbits
        self.k = k
        self._words = [0] * ((nbits + 63) >> 6)
        self.added = 0
        # Cached popcount of the words; every query probe consults the
        # saturation, so recounting thousands of bits per get dominated
        # the read path.  Invalidated on every mutation.
        self._ones = 0

    @classmethod
    def for_capacity(cls, nkeys: int, bits_per_key: int = 16) -> "BloomFilter":
        """Size a filter for ``nkeys`` keys at ``bits_per_key`` (paper: 16)."""
        if nkeys <= 0:
            raise ValueError(f"nkeys must be positive, got {nkeys}")
        nbits = max(64, nkeys * bits_per_key)
        # Optimal k = ln(2) * bits/key, as in LevelDB's filter policy.
        k = max(1, min(30, round(bits_per_key * 0.69)))
        return cls(nbits, k)

    def add(self, key: bytes) -> None:
        """Insert ``key``."""
        words = self._words
        for pos in probe_positions(key, self.k, self.nbits):
            words[pos >> 6] |= 1 << (pos & 63)
        self._ones = None
        self.added += 1

    def add_all(self, keys: Iterable[bytes]) -> int:
        """Insert every key in ``keys``; returns how many were added.

        Batched: the hot locals are hoisted once for the whole batch
        (building a PMTable filter adds thousands of keys).
        """
        k, nbits = self.k, self.nbits
        words = self._words
        count = 0
        for key in keys:
            for pos in probe_positions(key, k, nbits):
                words[pos >> 6] |= 1 << (pos & 63)
            count += 1
        self._ones = None
        self.added += count
        return count

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        words = self._words
        for pos in probe_positions(key, self.k, self.nbits):
            if not (words[pos >> 6] >> (pos & 63)) & 1:
                return False
        return True

    def merge_from(self, other: "BloomFilter") -> None:
        """Bitwise-OR merge (used when two PMTables are compacted)."""
        if other.nbits != self.nbits or other.k != self.k:
            raise ValueError(
                "cannot merge bloom filters with different geometry: "
                f"({self.nbits},{self.k}) vs ({other.nbits},{other.k})"
            )
        words = self._words
        for i, w in enumerate(other._words):
            if w:
                words[i] |= w
        self._ones = None
        self.added += other.added

    @property
    def saturation(self) -> float:
        """Fraction of bits set (drives the false-positive estimate)."""
        if self._ones is None:
            self._ones = sum(map(_popcount, self._words))
        return self._ones / self.nbits

    def false_positive_rate(self) -> float:
        """Estimated FP rate from current saturation: (bits_set/m)^k."""
        return self.saturation ** self.k

    @property
    def nbytes(self) -> int:
        """Accounted size of the filter in simulated bytes."""
        return self.nbits // 8

    @staticmethod
    def expected_fp_rate(nkeys: int, nbits: int, k: int) -> float:
        """Textbook expectation: (1 - e^(-kn/m))^k."""
        if nkeys <= 0:
            return 0.0
        return (1.0 - math.exp(-k * nkeys / nbits)) ** k

    def __repr__(self) -> str:
        return (
            f"BloomFilter(nbits={self.nbits}, k={self.k}, added={self.added}, "
            f"fp~{self.false_positive_rate():.4f})"
        )
