"""Mergeable bloom filters (paper Section 4.6).

MioDB assigns a fixed-size bloom filter to every PMTable so a point query
can skip tables that cannot contain the key.  Filters of compacted tables
are merged with a bitwise OR, which is why every filter in one store uses
the same size and hash family.
"""

from repro.bloom.filter import BloomFilter
from repro.bloom.hashing import double_hashes, fnv1a_64, fnv1a_pair, probe_positions

__all__ = [
    "BloomFilter",
    "double_hashes",
    "fnv1a_64",
    "fnv1a_pair",
    "probe_positions",
]
