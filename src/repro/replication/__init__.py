"""Replication & failover: replica groups, WAL shipping, chaos harness.

See ``docs/replication.md`` for the model: one leader + K followers per
shard, simulated WAL shipping over per-follower link devices, ack and
read policies, deterministic failover elections, and the seeded chaos
harness that audits state equivalence after kill/restart schedules.
"""

from repro.replication.chaos import (
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
    chaos_report_json,
    run_chaos,
)
from repro.replication.config import (
    ACK_ALL,
    ACK_LEADER,
    ACK_POLICIES,
    ACK_QUORUM,
    READ_FOLLOWER_EVENTUAL,
    READ_FOLLOWER_RYW,
    READ_LEADER,
    READ_POLICIES,
    ReplicationConfig,
)
from repro.replication.group import Replica, ReplicaGroup, Session

__all__ = [
    "ACK_ALL",
    "ACK_LEADER",
    "ACK_POLICIES",
    "ACK_QUORUM",
    "READ_FOLLOWER_EVENTUAL",
    "READ_FOLLOWER_RYW",
    "READ_LEADER",
    "READ_POLICIES",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "Replica",
    "ReplicaGroup",
    "ReplicationConfig",
    "Session",
    "chaos_report_json",
    "run_chaos",
]
