"""Configuration for replica groups.

One :class:`ReplicationConfig` describes a group's shape (leader + K
followers), its durability contract (ack policy), its read routing
(read policy), and the simulated link the WAL ships over.
"""

from typing import Optional

from repro.mem.profiles import REPL_LINK_PROFILE

#: When is a write acknowledged back to the client?
ACK_LEADER = "leader"      #: leader WAL append alone (fastest, weakest)
ACK_QUORUM = "quorum"      #: a majority of the group holds it durably
ACK_ALL = "all"            #: every live follower holds it durably

ACK_POLICIES = (ACK_LEADER, ACK_QUORUM, ACK_ALL)

#: Where do reads go?
READ_LEADER = "leader"                    #: always the leader (linearizable)
READ_FOLLOWER_EVENTUAL = "follower-eventual"  #: round-robin followers, may lag
READ_FOLLOWER_RYW = "follower-ryw"        #: followers, but never behind the
#: session's own writes (blocks until the follower's applied LSN covers
#: the session's last acknowledged write).

READ_POLICIES = (READ_LEADER, READ_FOLLOWER_EVENTUAL, READ_FOLLOWER_RYW)


class ReplicationConfig:
    """Shape and policies of one replica group.

    Attributes:
        followers: K follower replicas per group (0 = unreplicated).
        ack_policy: one of :data:`ACK_POLICIES`.
        read_policy: one of :data:`READ_POLICIES`.
        ship_batch: max WAL frames bundled into one ship transfer.
        election_timeout_s: simulated seconds a failover election takes
            (detection + vote), serialized after the winner's pending
            tail replay.
        link_profile: device profile charging ship latency/bandwidth
            (one standalone link device per follower).
    """

    __slots__ = (
        "followers", "ack_policy", "read_policy", "ship_batch",
        "election_timeout_s", "link_profile",
    )

    def __init__(
        self,
        followers: int = 2,
        ack_policy: str = ACK_QUORUM,
        read_policy: str = READ_LEADER,
        ship_batch: int = 8,
        election_timeout_s: float = 200e-6,
        link_profile=None,
    ) -> None:
        if followers < 0:
            raise ValueError(f"followers must be >= 0, got {followers}")
        if ack_policy not in ACK_POLICIES:
            raise ValueError(
                f"unknown ack policy {ack_policy!r}; choose from {ACK_POLICIES}"
            )
        if read_policy not in READ_POLICIES:
            raise ValueError(
                f"unknown read policy {read_policy!r}; "
                f"choose from {READ_POLICIES}"
            )
        if ship_batch < 1:
            raise ValueError(f"ship_batch must be >= 1, got {ship_batch}")
        if election_timeout_s <= 0:
            raise ValueError(
                f"election_timeout_s must be positive, got {election_timeout_s}"
            )
        self.followers = followers
        self.ack_policy = ack_policy
        self.read_policy = read_policy
        self.ship_batch = ship_batch
        self.election_timeout_s = election_timeout_s
        self.link_profile = link_profile or REPL_LINK_PROFILE

    @property
    def group_size(self) -> int:
        """Members per group (leader + followers)."""
        return self.followers + 1

    @property
    def quorum_size(self) -> int:
        """Majority of the group (election gate; quorum-ack threshold)."""
        return self.group_size // 2 + 1

    def needed_follower_acks(self) -> int:
        """Followers that must hold a write durably before it acks."""
        if self.ack_policy == ACK_LEADER:
            return 0
        if self.ack_policy == ACK_QUORUM:
            return self.quorum_size - 1
        return self.followers

    def __repr__(self) -> str:
        return (
            f"ReplicationConfig(K={self.followers}, ack={self.ack_policy}, "
            f"read={self.read_policy})"
        )
