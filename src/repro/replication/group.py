"""Replica groups: one leader + K followers with simulated WAL shipping.

A :class:`ReplicaGroup` wraps K+1 full stores -- each on its own
:class:`~repro.mem.system.HybridMemorySystem`, all sharing one simulated
clock -- behind the single-store read/write surface.  Writes go to the
leader; the leader's fresh WAL frames are pulled into the group's
replicated log and shipped to each follower over a per-follower link
device (latency + bandwidth charged through a ``repro.mem`` profile).
Followers replay shipped frames through the existing WAL apply path
(append to their own WAL, insert into their MemTable, rotating/flushing
exactly like a recovering store would), so follower state converges to
the leader's byte-for-byte.

Three LSN watermarks order everything (LSN = 1-based index into the
group's replicated log):

- ``shipped_lsn`` -- frames handed to the link (in flight);
- ``durable_lsn`` -- frames received and appended to the follower's WAL;
- ``applied_lsn`` -- frames visible to reads on the follower.

Acks (:data:`~repro.replication.config.ACK_POLICIES`) gate the write
path on follower durability; replication lag is ``len(log) -
applied_lsn`` per follower.

Failover: killing the leader leaves the group leaderless until an
election completes.  The election requires a majority of members alive
(otherwise it stays blocked until a restart), picks the most-caught-up
follower by ``durable_lsn`` with a deterministic tie-break toward the
lowest replica id, truncates the replicated log to the winner's durable
prefix (counting any acknowledged write that would be lost -- zero under
quorum acks with majority elections), and replays the winner's tail: the
election job is serialized on the winner's apply worker, so every
already-shipped frame is applied before the new leader serves.
"""

from typing import Callable, List, Optional, Tuple

from repro.mem.device import Device
from repro.obs.events import (
    CAT_REPL,
    CAT_REPL_ACK,
    CAT_REPL_APPLY,
    CAT_REPL_ELECTION,
    CAT_REPL_SHIP,
)
from repro.persist.crash import PASSIVE_INJECTOR
from repro.replication.config import (
    ACK_LEADER,
    READ_FOLLOWER_RYW,
    READ_LEADER,
    ReplicationConfig,
)
from repro.sim.stats import StatsRegistry

ROLE_LEADER = "leader"
ROLE_FOLLOWER = "follower"

#: Attributes a store must expose for follower replay (the WAL apply
#: path shared with crash recovery).
_REQUIRED_STORE_ATTRS = ("wal", "memtable", "_rotate_memtable")


class Session:
    """Read-your-writes token: the last acked LSN per group.

    Pass the same session to ``put`` and ``get`` and the
    ``follower-ryw`` read policy will never serve a follower that has
    not yet applied this session's last acknowledged write.
    """

    __slots__ = ("_last_write",)

    def __init__(self) -> None:
        self._last_write = {}

    def note_write(self, group_id: int, lsn: int) -> None:
        if lsn > self._last_write.get(group_id, 0):
            self._last_write[group_id] = lsn

    def required_lsn(self, group_id: int) -> int:
        return self._last_write.get(group_id, 0)

    def __repr__(self) -> str:
        return f"Session({self._last_write})"


class Replica:
    """One group member: a full store on its own simulated machine."""

    __slots__ = (
        "replica_id", "store", "system", "link", "ship_worker",
        "apply_worker", "alive", "role", "shipped_lsn", "durable_lsn",
        "applied_lsn", "ship_job", "last_seq", "durable_t", "durable_span",
    )

    def __init__(self, replica_id: int, store, system, link) -> None:
        self.replica_id = replica_id
        self.store = store
        self.system = system
        self.link = link
        self.ship_worker = None
        self.apply_worker = None
        self.alive = True
        self.role = ROLE_FOLLOWER
        self.shipped_lsn = 0
        self.durable_lsn = 0
        self.applied_lsn = 0
        self.ship_job = None
        self.last_seq = 0
        # When this follower last advanced durable_lsn, and the span id
        # of the ship that delivered it -- the ack decision's causal
        # parent when this follower completes the quorum.
        self.durable_t = 0.0
        self.durable_span = None

    def __repr__(self) -> str:
        state = self.role if self.alive else "down"
        return (
            f"Replica({self.replica_id}, {state}, "
            f"durable={self.durable_lsn}, applied={self.applied_lsn})"
        )


class ReplicaGroup:
    """Leader + K followers behind the single-store API."""

    def __init__(
        self,
        group_id: int,
        clock,
        factory: Callable[[int], Tuple[object, object]],
        config: Optional[ReplicationConfig] = None,
        stats: Optional[StatsRegistry] = None,
        crash_injector=None,
    ) -> None:
        self.group_id = group_id
        self.clock = clock
        self.config = config or ReplicationConfig()
        self._factory = factory
        self.stats = stats if stats is not None else StatsRegistry()
        self.crash = crash_injector or PASSIVE_INJECTOR
        #: The replicated log: leader WAL records by LSN (index + 1).
        #: Retained in full so a rebuilt replacement node can bootstrap.
        self.log: List = []
        self.acked_lsn = 0
        self.epoch = 0
        self.elections = 0
        self.leader_idx: Optional[int] = 0
        #: Deterministic failover/kill/restart event list (chaos report).
        self.history: List[dict] = []
        #: Back-reference set by the cluster layer so failover can
        #: repoint the shard at the new leader's store/system.
        self.shard = None
        self._pulled_seq = 0
        self._rr = 0
        self._election_pending = False
        self._election_member: Optional[Replica] = None
        #: Causal replication tracing sink (a TraceRecorder), or None.
        #: Every emission site guards on this, so a group with tracing
        #: off pays one attribute load per site and never touches the
        #: clock -- simulated time is byte-identical either way.
        self.obs = None
        self._span_seq = 0
        self._append_span: Optional[int] = None
        self._kill_span: Optional[int] = None
        self.members: List[Replica] = []
        for rid in range(self.config.group_size):
            self.members.append(self._make_member(rid))
        self.members[0].role = ROLE_LEADER

    # ------------------------------------------------------------ building

    @classmethod
    def build(
        cls,
        store_name: str = "miodb",
        scale=None,
        config: Optional[ReplicationConfig] = None,
        ssd: bool = False,
        group_id: int = 0,
        stats: Optional[StatsRegistry] = None,
        crash_injector=None,
        clock=None,
        **overrides,
    ) -> "ReplicaGroup":
        """A standalone group of ``store_name`` stores on one fresh clock."""
        from repro.bench.factory import make_store
        from repro.mem.system import HybridMemorySystem
        from repro.sim.clock import SimClock

        shared_clock = clock or SimClock()

        def factory(rid: int):
            if ssd:
                system = HybridMemorySystem.with_ssd(clock=shared_clock)
            else:
                system = HybridMemorySystem(clock=shared_clock)
            return make_store(
                store_name, scale, system=system, ssd=ssd, **overrides
            )

        return cls(
            group_id, shared_clock, factory, config,
            stats=stats, crash_injector=crash_injector,
        )

    def _make_member(self, rid: int) -> Replica:
        store, system = self._factory(rid)
        for attr in _REQUIRED_STORE_ATTRS:
            if not hasattr(store, attr):
                raise ValueError(
                    f"store {store.name!r} cannot be replicated: follower "
                    f"replay needs {attr!r} (the WAL apply path)"
                )
        if not store.options.wal_enabled:
            raise ValueError(
                f"store {store.name!r} has wal_enabled=False; replication "
                "ships WAL frames and needs the log"
            )
        link = Device(self.config.link_profile)
        replica = Replica(rid, store, system, link)
        replica.ship_worker = system.executor.worker(
            f"repl-ship-g{self.group_id}-r{rid}"
        )
        replica.apply_worker = system.executor.worker(
            f"repl-apply-g{self.group_id}-r{rid}"
        )
        return replica

    # ------------------------------------------------------------- tracing

    def attach_tracing(self, recorder=None):
        """Start causal replication tracing (``repl.*`` events).

        Without a ``recorder``, attaches a fresh one to the current
        leader's system (so leader op/stall/transfer events land in the
        same trace).  Pass an existing recorder -- e.g. the cluster
        layer's per-shard recorder -- to share one event stream.
        """
        if recorder is None:
            recorder = self.system.attach_tracing()
        self.obs = recorder
        return recorder

    def detach_tracing(self) -> None:
        """Stop emitting ``repl.*`` events (recorded events stay readable)."""
        recorder = self.obs
        self.obs = None
        if recorder is not None and recorder.attached:
            recorder.detach()

    def _next_span(self) -> int:
        """The next causal span id (unique per group, emission-ordered)."""
        self._span_seq += 1
        return self._span_seq

    @property
    def _track(self) -> str:
        """The group-level track (appends, acks, failover machinery)."""
        return f"repl:g{self.group_id}"

    def _member_track(self, replica_id: int) -> str:
        """One member's track (ship/durable/apply events)."""
        return f"repl:g{self.group_id}:r{replica_id}"

    # ---------------------------------------------------------- membership

    @property
    def election_pending(self) -> bool:
        """True while a failover election job is in flight."""
        return self._election_pending

    @property
    def leader(self) -> Optional[Replica]:
        if self.leader_idx is None:
            return None
        return self.members[self.leader_idx]

    @property
    def system(self):
        """The current leader's system (workload/Phase compatibility)."""
        member = self.leader if self.leader_idx is not None else self.members[0]
        return member.system

    def alive_members(self) -> List[Replica]:
        return [m for m in self.members if m.alive]

    def alive_followers(self) -> List[Replica]:
        return [
            m for m in self.members
            if m.alive and m.role == ROLE_FOLLOWER
        ]

    def lag(self) -> int:
        """Worst replication lag (records) across live followers."""
        followers = self.alive_followers()
        if not followers:
            return 0
        return max(len(self.log) - f.applied_lsn for f in followers)

    # ------------------------------------------------------------- plumbing

    def _settle_members(self) -> None:
        for member in self.members:
            if member.alive:
                member.system.executor.settle()

    def _next_completion(self) -> Optional[float]:
        deadline = None
        for member in self.members:
            if not member.alive:
                continue
            end = member.system.executor.next_completion()
            if end is not None and (deadline is None or end < deadline):
                deadline = end
        return deadline

    def _advance_once(self, context: str) -> None:
        """Advance the shared clock to the next member completion."""
        deadline = self._next_completion()
        if deadline is None:
            self._pump_all()
            deadline = self._next_completion()
        if deadline is None:
            raise RuntimeError(
                f"replica group {self.group_id} stalled while {context}: "
                "no pending work on any live member"
            )
        self.clock.advance_to(deadline)
        self._settle_members()

    def _await_leader(self) -> float:
        """Block (advance simulated time) until the group has a leader."""
        if self.leader_idx is not None:
            return 0.0
        start = self.clock.now
        while self.leader_idx is None:
            self._advance_once("awaiting leader election")
        waited = self.clock.now - start
        self.stats.add("repl.leader_wait_s", waited)
        return waited

    # ----------------------------------------------------------- write path

    def put(self, key: bytes, value, session: Optional[Session] = None) -> float:
        """Replicated insert/update; returns latency including ack wait."""
        return self._write("put", key, value, session)

    def delete(self, key: bytes, session: Optional[Session] = None) -> float:
        """Replicated delete; returns latency including ack wait."""
        return self._write("delete", key, None, session)

    def _write(self, kind: str, key: bytes, value, session) -> float:
        self._settle_members()
        self._await_leader()
        self.crash.reach("repl.put")
        leader = self.members[self.leader_idx]
        if kind == "put":
            latency = leader.store.put(key, value)
        else:
            latency = leader.store.delete(key)
        self._pull_from_leader(leader)
        lsn = len(self.log)
        wait = self._await_acks(lsn)
        if lsn > self.acked_lsn:
            self.acked_lsn = lsn
        if session is not None:
            session.note_write(self.group_id, lsn)
        return latency + wait

    def _pull_from_leader(self, leader: Replica) -> None:
        """Move the leader's fresh WAL frames into the replicated log."""
        fresh = leader.store.wal.records_since(self._pulled_seq)
        if not fresh:
            return
        self.log.extend(fresh)
        self._pulled_seq = fresh[-1].seq
        if fresh[-1].seq > leader.last_seq:
            leader.last_seq = fresh[-1].seq
        leader.shipped_lsn = len(self.log)
        leader.durable_lsn = len(self.log)
        leader.applied_lsn = len(self.log)
        if self.obs is not None:
            span = self._next_span()
            self._append_span = span
            self.obs.instant(
                self._track, "append", CAT_REPL_SHIP,
                {"span": span, "lsn": len(self.log), "records": len(fresh)},
            )
        self._pump_all()

    def _await_acks(self, lsn: int) -> float:
        needed = self.config.needed_follower_acks()
        if needed == 0:
            return 0.0
        followers = self.alive_followers()
        if len(followers) < needed:
            # Degraded group: fewer live followers than the policy wants.
            # Ack with what is there (availability over the policy) and
            # count it so the chaos report surfaces the weakened window.
            self.stats.add("repl.degraded_acks", 1)
            needed = len(followers)
            if needed == 0:
                return 0.0
        start = self.clock.now
        while True:
            durable = 0
            for follower in followers:
                if follower.alive and follower.durable_lsn >= lsn:
                    durable += 1
            if durable >= needed:
                break
            self._advance_once(f"awaiting {needed} ack(s) for lsn {lsn}")
        waited = self.clock.now - start
        if waited > 0.0:
            self.stats.add("repl.ack_wait_s", waited)
        if self.obs is not None:
            self._trace_ack(lsn, needed, followers, start)
        return waited

    def _trace_ack(
        self, lsn: int, needed: int, followers: List[Replica], start: float
    ) -> None:
        """The ack decision as a span, naming the quorum straggler.

        The straggler is the ``needed``-th follower (by durability time,
        ties toward the lowest replica id) whose ``durable_lsn`` covers
        the write -- the member the leader actually waited for.  The
        span's parent is the ship that made the straggler durable, which
        chains the ack back through apply/ship/append to the client op.
        """
        reached = sorted(
            (f.durable_t, f.replica_id, f)
            for f in followers
            if f.alive and f.durable_lsn >= lsn
        )
        span = self._next_span()
        args = {"span": span, "lsn": lsn, "needed": needed}
        if reached:
            straggler = reached[min(needed, len(reached)) - 1][2]
            args["straggler"] = straggler.replica_id
            if straggler.durable_span is not None:
                args["parent"] = straggler.durable_span
        self.obs.span(
            self._track, "ack", CAT_REPL_ACK, start, self.clock.now, args
        )

    # ------------------------------------------------------------- shipping

    def _pump_all(self) -> None:
        for member in self.members:
            if member.role == ROLE_FOLLOWER:
                self._pump(member)

    def _pump(self, follower: Replica) -> None:
        """Start the follower's next ship transfer if one is due."""
        if (
            not follower.alive
            or follower.role != ROLE_FOLLOWER
            or follower.ship_job is not None
            or follower.shipped_lsn >= len(self.log)
        ):
            return
        start = follower.shipped_lsn
        end = min(len(self.log), start + self.config.ship_batch)
        frames = self.log[start:end]
        total = sum(r.frame_bytes for r in frames)
        seconds = follower.link.write(total, sequential=True)
        self.crash.reach("repl.ship")
        epoch = self.epoch
        ship_span = self._next_span() if self.obs is not None else None

        def delivered() -> None:
            follower.ship_job = None
            if not follower.alive or self.epoch != epoch:
                return
            self._deliver(follower, frames, end, ship_span)

        follower.ship_job = follower.system.executor.submit(
            follower.ship_worker,
            seconds,
            delivered,
            name=f"repl-ship-g{self.group_id}-r{follower.replica_id}",
            meta={
                "cat": CAT_REPL,
                "lsn": end,
                "replica": follower.replica_id,
                "bytes": total,
            },
        )
        if ship_span is not None:
            # The executor computes the job's start/end at submit time,
            # so the ship span carries exact simulated link timing.
            job = follower.ship_job
            args = {
                "span": ship_span,
                "lsn": end,
                "replica": follower.replica_id,
                "records": end - start,
                "bytes": total,
                "wait_s": job.start - job.submitted_at,
            }
            if self._append_span is not None:
                args["parent"] = self._append_span
            self.obs.span(
                self._member_track(follower.replica_id), "ship",
                CAT_REPL_SHIP, job.start, job.end, args,
            )
        follower.shipped_lsn = end
        self.stats.add("repl.shipped_records", end - start)
        self.stats.add("repl.shipped_bytes", total)

    def _deliver(
        self, follower: Replica, frames, end_lsn: int,
        ship_span: Optional[int] = None,
    ) -> None:
        """Shipped frames arrived: append to the follower's WAL and apply.

        The append/insert happen through the same WAL apply path crash
        recovery uses, so follower flushes and compactions fire exactly
        as they would on a recovering store.  Durability advances now;
        read visibility (``applied_lsn``) advances when the apply job --
        charged the replay's simulated cost -- completes.
        """
        store = follower.store
        seconds = 0.0
        for record in frames:
            seconds += store.wal.append(
                record.seq, record.key, record.value, record.value_bytes
            )
            if store.memtable.is_full:
                store._rotate_memtable()
            seconds += store.memtable.insert(
                record.key, record.seq, record.value, record.value_bytes
            )
            if record.seq > follower.last_seq:
                follower.last_seq = record.seq
        if end_lsn > follower.durable_lsn:
            follower.durable_lsn = end_lsn
        follower.durable_t = self.clock.now
        follower.durable_span = ship_span
        self.crash.reach("repl.apply")
        count = len(frames)
        if self.obs is not None:
            args = {
                "span": self._next_span(),
                "lsn": end_lsn,
                "replica": follower.replica_id,
            }
            if ship_span is not None:
                args["parent"] = ship_span
            self.obs.instant(
                self._member_track(follower.replica_id), "durable",
                CAT_REPL_APPLY, args,
            )

        def applied() -> None:
            if not follower.alive:
                return
            if end_lsn > follower.applied_lsn:
                follower.applied_lsn = end_lsn
            self.stats.add("repl.applied_records", count)
            self.stats.max("repl.lag_peak", len(self.log) - follower.applied_lsn)
            self._pump(follower)

        apply_job = follower.system.executor.submit(
            follower.apply_worker,
            seconds,
            applied,
            name=f"repl-apply-g{self.group_id}-r{follower.replica_id}",
            meta={
                "cat": CAT_REPL,
                "lsn": end_lsn,
                "replica": follower.replica_id,
                "records": count,
            },
        )
        if self.obs is not None:
            args = {
                "span": self._next_span(),
                "lsn": end_lsn,
                "replica": follower.replica_id,
                "records": count,
                "wait_s": apply_job.start - apply_job.submitted_at,
            }
            if ship_span is not None:
                args["parent"] = ship_span
            self.obs.span(
                self._member_track(follower.replica_id), "apply",
                CAT_REPL_APPLY, apply_job.start, apply_job.end, args,
            )
        # Ship/apply pipelining: the next transfer can start immediately.
        self._pump(follower)

    # ------------------------------------------------------------ read path

    def get(
        self, key: bytes, session: Optional[Session] = None
    ) -> Tuple[Optional[object], float]:
        """Policy-routed lookup; returns ``(value_or_None, latency)``."""
        self._settle_members()
        policy = self.config.read_policy
        if policy == READ_LEADER:
            self._await_leader()
            return self.members[self.leader_idx].store.get(key)
        follower = self._choose_follower()
        if follower is None:
            self._await_leader()
            return self.members[self.leader_idx].store.get(key)
        if policy == READ_FOLLOWER_RYW and session is not None:
            target = min(session.required_lsn(self.group_id), len(self.log))
            if not self._await_applied(follower, target):
                self._await_leader()
                return self.members[self.leader_idx].store.get(key)
        return follower.store.get(key)

    def _choose_follower(self) -> Optional[Replica]:
        followers = self.alive_followers()
        if not followers:
            return None
        follower = followers[self._rr % len(followers)]
        self._rr += 1
        return follower

    def _await_applied(self, follower: Replica, target: int) -> bool:
        """Block until ``follower.applied_lsn >= target``; False if it dies."""
        start = self.clock.now
        while follower.alive and follower.applied_lsn < target:
            self._pump(follower)
            deadline = self._next_completion()
            if deadline is None:
                return False
            self.clock.advance_to(deadline)
            self._settle_members()
        if not follower.alive:
            return False
        waited = self.clock.now - start
        if waited > 0.0:
            self.stats.add("repl.ryw_wait_s", waited)
        return True

    def scan(self, start_key: bytes, count: int):
        """Range query on the leader (linearizable)."""
        self._settle_members()
        self._await_leader()
        return self.members[self.leader_idx].store.scan(start_key, count)

    def items(self, start_key: bytes = b"\x00", end_key=None, page_size: int = 128):
        """Iterate live ``(key, value)`` pairs from the leader in key order."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        cursor = start_key
        while True:
            pairs, __ = self.scan(cursor, page_size)
            for key, value in pairs:
                if end_key is not None and key >= end_key:
                    return
                yield key, value
            if len(pairs) < page_size:
                return
            cursor = pairs[-1][0] + b"\x00"

    # ------------------------------------------------------------- failover

    def crash_replica(self, replica_id: int) -> None:
        """Kill one member: drop its pending work, trigger failover."""
        member = self.members[replica_id]
        if not member.alive:
            return
        member.alive = False
        member.system.executor.crash_reset()
        member.ship_job = None
        self.stats.add("repl.kills", 1)
        self.history.append({
            "t": self.clock.now,
            "event": "kill",
            "group": self.group_id,
            "replica": replica_id,
            "role": member.role,
        })
        if self.obs is not None:
            span = self._next_span()
            self._kill_span = span
            self.obs.instant(
                self._track, "kill", CAT_REPL_ELECTION,
                {
                    "span": span,
                    "group": self.group_id,
                    "replica": replica_id,
                    "role": member.role,
                },
            )
        if self._election_member is member:
            # The winner died mid-election; the pending election job was
            # cancelled with its executor.
            self._election_pending = False
            self._election_member = None
        if self.leader_idx == replica_id:
            self.leader_idx = None
            member.role = ROLE_FOLLOWER
        if self.leader_idx is None:
            self._maybe_elect()

    def _maybe_elect(self) -> None:
        if self.leader_idx is not None or self._election_pending:
            return
        alive = self.alive_members()
        if len(alive) < self.config.quorum_size:
            self.history.append({
                "t": self.clock.now,
                "event": "election-blocked",
                "group": self.group_id,
                "alive": len(alive),
                "quorum": self.config.quorum_size,
            })
            if self.obs is not None:
                args = {
                    "span": self._next_span(),
                    "group": self.group_id,
                    "alive": len(alive),
                    "quorum": self.config.quorum_size,
                }
                if self._kill_span is not None:
                    args["parent"] = self._kill_span
                self.obs.instant(
                    self._track, "election-blocked", CAT_REPL_ELECTION, args
                )
            return
        # Most-caught-up wins; ties break toward the lowest replica id.
        winner = alive[0]
        for member in alive[1:]:
            if member.durable_lsn > winner.durable_lsn:
                winner = member
        lost = self.acked_lsn - winner.durable_lsn
        if lost > 0:
            self.stats.add("repl.acked_lost", lost)
            self.acked_lsn = winner.durable_lsn
        truncated = len(self.log) - winner.durable_lsn
        if truncated > 0:
            del self.log[winner.durable_lsn:]
            self.stats.add("repl.truncated_records", truncated)
            if self.obs is not None:
                args = {
                    "span": self._next_span(),
                    "group": self.group_id,
                    "records": truncated,
                    "lsn": winner.durable_lsn,
                }
                if self._kill_span is not None:
                    args["parent"] = self._kill_span
                self.obs.instant(
                    self._track, "truncate", CAT_REPL_ELECTION, args
                )
        self.epoch += 1
        for member in alive:
            if member is not winner:
                member.shipped_lsn = member.durable_lsn
                member.ship_job = None
        self._election_pending = True
        self._election_member = winner
        elect_span = self._next_span() if self.obs is not None else None

        def elected() -> None:
            self._election_pending = False
            self._election_member = None
            if not winner.alive:
                self._maybe_elect()
                return
            winner.role = ROLE_LEADER
            self.leader_idx = winner.replica_id
            if winner.last_seq > winner.store.seq:
                winner.store.seq = winner.last_seq
            self._pulled_seq = winner.last_seq
            self.elections += 1
            self.stats.add("repl.elections", 1)
            self.history.append({
                "t": self.clock.now,
                "event": "elect",
                "group": self.group_id,
                "replica": winner.replica_id,
                "durable_lsn": winner.durable_lsn,
                "epoch": self.epoch,
            })
            if self.obs is not None:
                args = {
                    "span": self._next_span(),
                    "group": self.group_id,
                    "replica": winner.replica_id,
                    "epoch": self.epoch,
                }
                if elect_span is not None:
                    args["parent"] = elect_span
                self.obs.instant(
                    self._track, "repoint", CAT_REPL_ELECTION, args
                )
            if self.shard is not None:
                self.shard.store = winner.store
                self.shard.system = winner.system
            self._pump_all()

        # Serialized on the winner's apply worker: every frame already
        # shipped to the winner is applied (its tail replay) before it
        # takes over as leader.
        election_job = winner.system.executor.submit(
            winner.apply_worker,
            self.config.election_timeout_s,
            elected,
            name=f"repl-elect-g{self.group_id}-r{winner.replica_id}",
            meta={
                "cat": CAT_REPL,
                "replica": winner.replica_id,
                "durable_lsn": winner.durable_lsn,
            },
        )
        if elect_span is not None:
            args = {
                "span": elect_span,
                "group": self.group_id,
                "replica": winner.replica_id,
                "durable_lsn": winner.durable_lsn,
            }
            if self._kill_span is not None:
                args["parent"] = self._kill_span
            self.obs.span(
                self._track, "elect", CAT_REPL_ELECTION,
                election_job.start, election_job.end, args,
            )

    def restart_replica(self, replica_id: int) -> None:
        """Bring a killed member back as a fresh replacement node.

        The replacement bootstraps from LSN 0 out of the retained
        replicated log (the simulation's stand-in for a snapshot +
        catch-up transfer), so it rejoins with no divergence regardless
        of what its previous incarnation held.
        """
        member = self.members[replica_id]
        if member.alive:
            return
        store, system = self._factory(replica_id)
        member.store = store
        member.system = system
        member.link = Device(self.config.link_profile)
        member.ship_worker = system.executor.worker(
            f"repl-ship-g{self.group_id}-r{replica_id}"
        )
        member.apply_worker = system.executor.worker(
            f"repl-apply-g{self.group_id}-r{replica_id}"
        )
        member.alive = True
        member.role = ROLE_FOLLOWER
        member.shipped_lsn = 0
        member.durable_lsn = 0
        member.applied_lsn = 0
        member.ship_job = None
        member.last_seq = 0
        member.durable_t = 0.0
        member.durable_span = None
        self.stats.add("repl.restarts", 1)
        self.history.append({
            "t": self.clock.now,
            "event": "restart",
            "group": self.group_id,
            "replica": replica_id,
        })
        if self.obs is not None:
            self.obs.instant(
                self._track, "restart", CAT_REPL_ELECTION,
                {
                    "span": self._next_span(),
                    "group": self.group_id,
                    "replica": replica_id,
                },
            )
        if self.leader_idx is None:
            self._maybe_elect()
        self._pump(member)

    # ------------------------------------------------------------- draining

    def catch_up(self) -> float:
        """Run until every live follower has applied the whole log."""
        self._await_leader()
        start = self.clock.now
        while True:
            lagging = [
                f for f in self.alive_followers()
                if f.applied_lsn < len(self.log)
            ]
            if not lagging:
                break
            self._advance_once("catching followers up")
        return self.clock.now - start

    def quiesce(self) -> float:
        """Drain background work on every live member."""
        while True:
            pending = False
            for member in self.members:
                if member.alive and member.system.executor.pending:
                    member.system.executor.drain()
                    pending = True
            if not pending:
                return self.clock.now

    def snapshot(self) -> dict:
        """Deterministic metrics document for this group."""
        return {
            "group": self.group_id,
            "leader": self.leader_idx,
            "ack": self.config.ack_policy,
            "read_policy": self.config.read_policy,
            "log_lsn": len(self.log),
            "acked_lsn": self.acked_lsn,
            "epoch": self.epoch,
            "elections": self.elections,
            "members": [
                {
                    "replica": m.replica_id,
                    "role": m.role if m.alive else "down",
                    "alive": m.alive,
                    "shipped_lsn": m.shipped_lsn,
                    "durable_lsn": m.durable_lsn,
                    "applied_lsn": m.applied_lsn,
                    "lag": len(self.log) - m.applied_lsn,
                }
                for m in self.members
            ],
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup({self.group_id}, K={self.config.followers}, "
            f"leader={self.leader_idx}, lsn={len(self.log)})"
        )
