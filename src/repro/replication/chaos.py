"""Seeded chaos harness: kill/restart replicas mid-workload, then audit.

The harness drives a replicated cluster with the standard cluster
driver while a :class:`ChaosInjector` fires a seeded
:class:`ChaosSchedule` of replica kills (leaders and followers) and
delayed restarts, all keyed off completed-op counts -- so the whole
scenario is a pure function of its seed.  After the run it audits the
surviving state:

- **Oracle match** -- a fresh unreplicated store replays each group's
  replicated log (the acknowledged history) and must hold exactly the
  leader's live pairs.
- **Follower convergence** -- after catch-up, every live follower holds
  exactly the leader's live pairs.
- **No acked loss** -- under quorum acks the ``repl.acked_lost``
  counter (writes acknowledged but truncated by a failover election)
  must be zero.

:func:`run_chaos` returns a deterministic report document;
:func:`chaos_report_json` serializes it byte-identically for identical
seeds (only simulated times appear -- no wall clock).
"""

import json
from typing import List, Optional

from repro.replication.config import (
    ACK_QUORUM,
    READ_LEADER,
    ReplicationConfig,
)
from repro.sim.rng import XorShiftRng


class ChaosEvent:
    """One scheduled fault: kill a replica when ``at`` ops completed."""

    __slots__ = ("at", "group", "target")

    def __init__(self, at: int, group: int, target: str) -> None:
        self.at = at
        self.group = group
        self.target = target  # "leader" | "follower"

    def describe(self) -> dict:
        return {"at": self.at, "group": self.group, "target": self.target}

    def __repr__(self) -> str:
        return f"ChaosEvent(at={self.at}, g{self.group}, {self.target})"


class ChaosSchedule:
    """A seeded list of kill events plus the restart delay policy."""

    def __init__(self, events: List[ChaosEvent], restart_gap: int) -> None:
        if restart_gap < 1:
            raise ValueError(f"restart_gap must be >= 1, got {restart_gap}")
        self.events = sorted(events, key=lambda e: e.at)
        self.restart_gap = restart_gap

    @classmethod
    def generate(
        cls,
        seed: int,
        n_groups: int,
        kills: int = 3,
        span_ops: int = 400,
        restart_gap: int = 80,
    ) -> "ChaosSchedule":
        """Draw ``kills`` kill points inside the middle of the run.

        Kill times land in ``[span*0.1, span*0.9]`` so the run has a
        warm-up and a post-fault tail; each event picks its group and
        whether to target the leader or a follower from the same seeded
        stream.
        """
        if kills < 0:
            raise ValueError(f"kills must be >= 0, got {kills}")
        if span_ops < 10:
            raise ValueError(f"span_ops must be >= 10, got {span_ops}")
        rng = XorShiftRng(seed)
        lo = span_ops // 10
        hi = max(lo + 1, (span_ops * 9) // 10)
        points = set()
        while len(points) < kills:
            points.add(lo + rng.next_below(hi - lo))
        events = []
        for at in sorted(points):
            group = rng.next_below(n_groups)
            target = "leader" if rng.next_float() < 0.5 else "follower"
            events.append(ChaosEvent(at, group, target))
        return cls(events, restart_gap)

    def describe(self) -> List[dict]:
        return [event.describe() for event in self.events]


class ChaosInjector:
    """Fires a :class:`ChaosSchedule` against a router's replica groups.

    ``maybe_fire(completed)`` is called by the cluster driver after
    every completion.  A kill fires only when its target group is fully
    healthy (every member alive and durably caught up to the acked LSN)
    -- rolling, one-fault-at-a-time chaos, which is exactly the regime
    where quorum acks promise zero acknowledged-write loss.  Kills that
    find an unhealthy group are recorded as skipped, keeping the report
    honest about coverage.  Each kill schedules the victim's restart
    ``restart_gap`` completed ops later.
    """

    def __init__(self, router, schedule: ChaosSchedule) -> None:
        self.router = router
        self.schedule = schedule
        self.fired: List[dict] = []
        self.skipped: List[dict] = []
        self._next = 0
        self._restarts: List = []  # (at, group, replica), sorted

    def _group(self, group_id: int):
        group = self.router.cluster.shards[group_id].group
        if group is None:
            raise ValueError(f"shard {group_id} has no replica group")
        return group

    def _healthy(self, group) -> bool:
        if group.leader_idx is None:
            return False
        for member in group.members:
            if not member.alive or member.durable_lsn < group.acked_lsn:
                return False
        return True

    def _kill(self, event: ChaosEvent, completed: int) -> bool:
        group = self._group(event.group)
        if not self._healthy(group):
            self.skipped.append(
                {"at": completed, "group": event.group,
                 "target": event.target, "why": "group not healthy"}
            )
            return False
        if event.target == "leader":
            victim = group.leader_idx
        else:
            followers = group.alive_followers()
            if not followers:
                self.skipped.append(
                    {"at": completed, "group": event.group,
                     "target": event.target, "why": "no live follower"}
                )
                return False
            victim = min(f.replica_id for f in followers)
        group.crash_replica(victim)
        self.fired.append(
            {"at": completed, "group": event.group,
             "target": event.target, "replica": victim}
        )
        self._restarts.append(
            (completed + self.schedule.restart_gap, event.group, victim)
        )
        self._restarts.sort()
        return True

    def maybe_fire(self, completed: int) -> bool:
        """Fire every event due at ``completed``; True if any fired."""
        fired = False
        while self._restarts and self._restarts[0][0] <= completed:
            __, group_id, replica = self._restarts.pop(0)
            self._group(group_id).restart_replica(replica)
            fired = True
        while (
            self._next < len(self.schedule.events)
            and self.schedule.events[self._next].at <= completed
        ):
            event = self.schedule.events[self._next]
            self._next += 1
            if self._kill(event, completed):
                fired = True
        return fired

    def flush_restarts(self) -> int:
        """Fire every still-pending restart (end-of-run cleanup)."""
        count = 0
        while self._restarts:
            __, group_id, replica = self._restarts.pop(0)
            self._group(group_id).restart_replica(replica)
            count += 1
        return count


def _oracle_state(group, store_name: str, scale) -> dict:
    """Replay the group's acknowledged log into a fresh flat store."""
    from repro.bench.factory import make_store

    oracle, __ = make_store(store_name, scale)
    for record in group.log:
        if record.value is None:
            oracle.delete(record.key)
        else:
            oracle.put(record.key, record.value)
    oracle.quiesce()
    return dict(oracle.items())


def run_chaos(
    store_name: str = "miodb",
    seed: int = 1,
    shards: int = 2,
    followers: int = 2,
    ops: int = 400,
    kills: int = 3,
    restart_gap: int = 80,
    key_space: int = 512,
    read_fraction: float = 0.3,
    value_size: int = 128,
    ack_policy: str = ACK_QUORUM,
    read_policy: str = READ_LEADER,
    scale=None,
    schedule: Optional[ChaosSchedule] = None,
    trace: Optional[str] = None,
) -> dict:
    """One seeded kill/restart scenario; returns the audit report.

    With ``trace`` set, the scenario runs under full causal tracing:
    the merged multi-shard trace is written to that path, and every
    group document gains a ``failover_timeline`` (kill -> election ->
    truncation -> re-point, reconstructed from the ``repl.election``
    events' parent links).  Tracing adds zero simulated time, so the
    audit results and every simulated number in the report are
    byte-identical with tracing off.
    """
    from repro.cluster.driver import AdmissionControl, ClientSpec, run_cluster
    from repro.cluster.router import Cluster, ShardRouter

    config = ReplicationConfig(
        followers=followers, ack_policy=ack_policy, read_policy=read_policy
    )
    cluster = Cluster(
        store_name, n_shards=shards, scale=scale, replication=config
    )
    router = ShardRouter(cluster)
    recorders = cluster.attach_tracing() if trace is not None else None
    if schedule is None:
        schedule = ChaosSchedule.generate(
            seed, shards, kills=kills, span_ops=ops, restart_gap=restart_gap
        )
    injector = ChaosInjector(router, schedule)
    clients = [
        ClientSpec(
            n_ops=ops,
            rate_per_s=float("inf"),
            key_space=key_space,
            read_fraction=read_fraction,
            value_size=value_size,
            seed=seed,
        )
    ]
    sessions = [router.session() for __ in clients]
    result = run_cluster(
        router,
        clients,
        admission=AdmissionControl(policy="defer"),
        chaos=injector,
        sessions=sessions,
    )
    injector.flush_restarts()
    cluster.quiesce()
    groups = [shard.group for shard in cluster.shards]
    for group in groups:
        group.catch_up()
    cluster.quiesce()
    timelines = None
    if recorders is not None:
        from repro.cluster.metrics import write_cluster_trace
        from repro.obs.analyze import failover_timelines

        timelines = [failover_timelines(recorder) for recorder in recorders]
        cluster.detach_tracing()
        write_cluster_trace(cluster, recorders, trace)

    oracle_match = True
    followers_match = True
    group_docs = []
    for group in groups:
        leader_state = dict(group.items())
        oracle_state = _oracle_state(group, store_name, scale)
        g_oracle = leader_state == oracle_state
        g_followers = all(
            dict(follower.store.items()) == leader_state
            for follower in group.alive_followers()
        )
        oracle_match = oracle_match and g_oracle
        followers_match = followers_match and g_followers
        doc = group.snapshot()
        doc["live_keys"] = len(leader_state)
        doc["oracle_match"] = g_oracle
        doc["followers_match"] = g_followers
        doc["history"] = list(group.history)
        if timelines is not None:
            doc["failover_timeline"] = timelines[group.group_id]
        group_docs.append(doc)

    stats = cluster.stats
    acked_lost = stats.get("repl.acked_lost")
    no_acked_loss = acked_lost == 0.0
    checks = {
        "oracle_match": oracle_match,
        "followers_match": followers_match,
        "no_acked_loss": no_acked_loss,
    }
    return {
        "schema": 1,
        "store": store_name,
        "seed": seed,
        "shards": shards,
        "followers": followers,
        "ack": ack_policy,
        "read_policy": read_policy,
        "ops": ops,
        "schedule": schedule.describe(),
        "fired": injector.fired,
        "skipped": injector.skipped,
        "offered": result.offered,
        "completed": result.completed,
        "drops": result.drops,
        "sim_time_s": cluster.clock.now,
        "kills": stats.get("repl.kills"),
        "restarts": stats.get("repl.restarts"),
        "elections": stats.get("repl.elections"),
        "degraded_acks": stats.get("repl.degraded_acks"),
        "acked_lost": acked_lost,
        "groups": group_docs,
        "checks": checks,
        "ok": all(checks.values()),
    }


def chaos_report_json(report: dict) -> str:
    """The chaos report serialized deterministically (byte-identical
    across same-seed runs)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
