"""Device profiles calibrated to the numbers the paper relies on.

The absolute figures come from the Optane characterisation literature the
paper cites (Yang et al., FAST'20) and the paper's own statements:

- NVM random-write bandwidth is about 7x lower than DRAM (Section 2.1).
- NVM latency is up to 100x lower and bandwidth up to 10x higher than SSD
  (Section 1).

Only the *ratios* matter for reproducing the paper's shapes; the absolute
values set the time axis.
"""

from repro.mem.device import DeviceProfile

GB = 1 << 30
US = 1e-6
NS = 1e-9

DRAM_PROFILE = DeviceProfile(
    name="dram",
    read_latency=80 * NS,
    write_latency=80 * NS,
    seq_read_bw=15.0 * GB,
    seq_write_bw=12.0 * GB,
    rand_read_bw=10.0 * GB,
    rand_write_bw=8.4 * GB,
    persistent=False,
)

# Intel Optane DCPMM (per-thread figures): ~3x the read latency of DRAM,
# sequential write ~2.3 GB/s, and random write ~7x below DRAM.
OPTANE_NVM_PROFILE = DeviceProfile(
    name="nvm",
    read_latency=300 * NS,
    write_latency=100 * NS,
    seq_read_bw=6.6 * GB,
    seq_write_bw=2.3 * GB,
    rand_read_bw=2.4 * GB,
    rand_write_bw=1.2 * GB,
    persistent=True,
)

# NVMe SSD pinned at 10x lower bandwidth / 100x higher latency than the
# Optane profile, matching the relation the paper quotes.
NVME_SSD_PROFILE = DeviceProfile(
    name="ssd",
    read_latency=30 * US,
    write_latency=30 * US,
    seq_read_bw=0.66 * GB,
    seq_write_bw=0.23 * GB,
    rand_read_bw=0.24 * GB,
    rand_write_bw=0.12 * GB,
    persistent=True,
)


# Replica-to-replica WAL shipping link: a datacenter NIC-ish profile
# (~10us one-way latency, ~3 GB/s sustained).  Not a storage device --
# each follower's link is a standalone Device charging ship time, so the
# link never appears in any store's write-amplification denominator.
REPL_LINK_PROFILE = DeviceProfile(
    name="repl-link",
    read_latency=10 * US,
    write_latency=10 * US,
    seq_read_bw=3.0 * GB,
    seq_write_bw=3.0 * GB,
    rand_read_bw=3.0 * GB,
    rand_write_bw=3.0 * GB,
    persistent=False,
)


def scaled_profile(base: DeviceProfile, name: str, speedup: float) -> DeviceProfile:
    """A copy of ``base`` that is ``speedup`` times faster in every respect.

    Useful for sensitivity studies on the DRAM/NVM gap itself.
    """
    if speedup <= 0:
        raise ValueError(f"speedup must be positive, got {speedup}")
    return DeviceProfile(
        name=name,
        read_latency=base.read_latency / speedup,
        write_latency=base.write_latency / speedup,
        seq_read_bw=base.seq_read_bw * speedup,
        seq_write_bw=base.seq_write_bw * speedup,
        rand_read_bw=base.rand_read_bw * speedup,
        rand_write_bw=base.rand_write_bw * speedup,
        persistent=base.persistent,
    )
