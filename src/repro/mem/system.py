"""The simulated machine: devices + clock + executor + cost model + stats."""

from typing import Dict, Optional

from repro.mem.costs import CpuCostModel
from repro.mem.device import Device, DeviceProfile
from repro.mem.profiles import DRAM_PROFILE, NVME_SSD_PROFILE, OPTANE_NVM_PROFILE
from repro.sim.clock import SimClock
from repro.sim.executor import Executor
from repro.sim.latency import LatencyRecorder
from repro.sim.stats import StatsRegistry


class _NullJobScope:
    """No-op stand-in for the recorder's job-cost scope when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_JOB_SCOPE = _NullJobScope()


class HybridMemorySystem:
    """A DRAM/NVM(/SSD) machine that KV stores are instantiated on.

    One system corresponds to one experiment run: it owns the simulated
    clock, the background executor, the devices with their traffic
    counters, a latency recorder, and a stats registry.
    """

    def __init__(
        self,
        dram_profile: DeviceProfile = DRAM_PROFILE,
        nvm_profile: DeviceProfile = OPTANE_NVM_PROFILE,
        ssd_profile: Optional[DeviceProfile] = None,
        dram_capacity: Optional[int] = None,
        nvm_capacity: Optional[int] = None,
        ssd_capacity: Optional[int] = None,
        cpu: Optional[CpuCostModel] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        # ``clock`` lets several systems share one timeline -- the
        # repro.cluster layer builds N shard machines on one SimClock so
        # their foreground ops and background jobs are mutually ordered.
        self.clock = clock if clock is not None else SimClock()
        self.executor = Executor(self.clock)
        self.dram = Device(dram_profile, dram_capacity)
        self.nvm = Device(nvm_profile, nvm_capacity)
        self.ssd = Device(ssd_profile, ssd_capacity) if ssd_profile else None
        self.cpu = cpu or CpuCostModel()
        self.stats = StatsRegistry()
        self.latency = LatencyRecorder()
        #: The attached TraceRecorder, or None (tracing off -- the default).
        self.obs = None
        #: The attached RaceDetector, or None (race checking off -- the
        #: default).  Like ``obs``, every instrumentation site guards on
        #: this, so the disabled cost is one attribute load per op.
        self.race = None

    @classmethod
    def with_ssd(cls, **kwargs) -> "HybridMemorySystem":
        """A DRAM-NVM-SSD machine (the paper's Section 5.4 hierarchy)."""
        kwargs.setdefault("ssd_profile", NVME_SSD_PROFILE)
        return cls(**kwargs)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def devices(self):
        """Every device on this machine, DRAM first."""
        devices = [self.dram, self.nvm]
        if self.ssd is not None:
            devices.append(self.ssd)
        return devices

    def persistent_devices(self):
        """Devices whose writes count toward write amplification."""
        devices = [self.nvm]
        if self.ssd is not None:
            devices.append(self.ssd)
        return devices

    def attach_tracing(self, coalesce_ops: bool = False, strict: bool = False):
        """Attach a fresh :class:`~repro.obs.recorder.TraceRecorder`.

        Returns the recorder; every store on this system starts emitting
        op/stall/flush/compact/transfer events until
        :meth:`detach_tracing` (or ``recorder.detach()``) is called.
        With ``coalesce_ops`` the ``multi_*`` entry points emit one
        coalesced op span per batch instead of one span per op.  With
        ``strict`` recording an event with an unknown category, stall
        cause, or drop reason raises instead of widening the closed
        vocabularies (the event stream itself is unchanged).
        """
        from repro.obs.recorder import TraceRecorder

        recorder = TraceRecorder(
            self.clock, coalesce_ops=coalesce_ops, strict=strict
        )
        return recorder.attach(self)

    def detach_tracing(self) -> None:
        """Detach the current recorder, if any (idempotent)."""
        if self.obs is not None:
            self.obs.detach()

    def attach_live(self, config=None, **overrides):
        """Attach a :class:`~repro.obs.live.recorder.LiveRecorder`.

        The always-on telemetry posture: sampled op tracing (head +
        tail), a flight-recorder ring with incident-triggered dumps,
        and windowed aggregation -- at a fraction of full tracing's
        overhead.  ``config`` is a
        :class:`~repro.obs.live.recorder.LiveConfig`; keyword overrides
        build one (e.g. ``attach_live(head_rate=1/32,
        slo_threshold_s=5e-6)``).  Returns the attached recorder;
        detach via :meth:`detach_tracing` as usual.
        """
        from repro.obs.live.recorder import LiveConfig, LiveRecorder

        if config is None:
            config = LiveConfig(**overrides)
        elif overrides:
            raise ValueError("pass a LiveConfig or overrides, not both")
        recorder = LiveRecorder(self.clock, config)
        return recorder.attach(self)

    def attach_race_detection(self):
        """Attach a fresh :class:`~repro.check.races.RaceDetector`.

        Returns the detector; foreground ops and background jobs on this
        system start recording happens-before metadata until
        :meth:`detach_race_detection` (or ``detector.detach()``) is
        called.  Opt-in diagnostics only: nothing about the simulation
        (clock, stats, traces) changes while a detector is attached.
        """
        from repro.check.races import RaceDetector

        return RaceDetector().attach(self)

    def detach_race_detection(self) -> None:
        """Detach the current race detector, if any (idempotent)."""
        if self.race is not None:
            self.race.detach()

    def job_scope(self):
        """Context manager marking device traffic as background-job cost.

        Stores wrap the inline cost computation of each flush/compaction
        they schedule, so the transfer events it emits are tagged as job
        cost rather than foreground device time (latency attribution
        depends on the distinction).  With tracing detached this is a
        shared no-op scope.
        """
        if self.obs is None:
            return _NULL_JOB_SCOPE
        return self.obs.job_cost()

    def persistent_bytes_written(self) -> int:
        """Total bytes written to persistent media so far."""
        return sum(dev.bytes_written for dev in self.persistent_devices())

    def write_amplification(self) -> float:
        """Persistent traffic divided by logical user writes (Figure 11)."""
        user = self.stats.get("user.bytes_written")
        if user <= 0:
            return 0.0
        return self.persistent_bytes_written() / user

    def device_usage(self) -> Dict[str, int]:
        """Live bytes per device, for NVM-consumption reporting."""
        usage = {"dram": self.dram.bytes_in_use, "nvm": self.nvm.bytes_in_use}
        if self.ssd is not None:
            usage["ssd"] = self.ssd.bytes_in_use
        return usage

    def drain_background(self) -> float:
        """Let all pending flushes/compactions finish; returns final time."""
        return self.executor.drain()
