"""Simulated hybrid memory substrate (DRAM / NVM / SSD).

The paper evaluates on real Intel Optane DC Persistent Memory.  This
reproduction substitutes deterministic device models: each device has a
latency and sequential/random bandwidths, and counts every byte read and
written (the write counters are the numerator of the paper's write
amplification metric).

:class:`HybridMemorySystem` bundles the devices with the simulation kernel
and the CPU cost model into the "machine" every KV store runs on.
"""

from repro.mem.costs import CpuCostModel
from repro.mem.device import Device, DeviceProfile
from repro.mem.profiles import (
    DRAM_PROFILE,
    NVME_SSD_PROFILE,
    OPTANE_NVM_PROFILE,
    scaled_profile,
)
from repro.mem.system import HybridMemorySystem

__all__ = [
    "Device",
    "DeviceProfile",
    "CpuCostModel",
    "HybridMemorySystem",
    "DRAM_PROFILE",
    "OPTANE_NVM_PROFILE",
    "NVME_SSD_PROFILE",
    "scaled_profile",
]
