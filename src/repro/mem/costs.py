"""CPU-side cost model.

Device models charge for bytes moved; this model charges for the CPU work
around them: serializing KV pairs into SSTable blocks, deserializing them
back (the cost the paper measures at 50-59% of read time for the
baselines), skip-list traversal hops, and key comparisons.

Hop costs differ per device because a skip-list hop is a dependent pointer
chase -- its cost is dominated by the access latency of the medium holding
the node, which is exactly why the paper stages writes in DRAM.
"""

GB = 1 << 30
NS = 1e-9


class CpuCostModel:
    """Tunable CPU costs, all in seconds (or seconds per byte)."""

    def __init__(
        self,
        serialize_bw: float = 1.2 * GB,
        deserialize_bw: float = 0.9 * GB,
        dram_hop: float = 25 * NS,
        nvm_hop: float = 120 * NS,
        compare_cost: float = 10 * NS,
        bloom_base_cost: float = 150 * NS,
        bloom_probe_cost: float = 15 * NS,
        hash_bw: float = 3.0 * GB,
    ) -> None:
        self.serialize_bw = serialize_bw
        self.deserialize_bw = deserialize_bw
        self.dram_hop = dram_hop
        self.nvm_hop = nvm_hop
        self.compare_cost = compare_cost
        self.bloom_base_cost = bloom_base_cost
        self.bloom_probe_cost = bloom_probe_cost
        self.hash_bw = hash_bw

    def serialize_time(self, nbytes: int) -> float:
        """CPU seconds to encode ``nbytes`` of KV data into block format."""
        return nbytes / self.serialize_bw

    def deserialize_time(self, nbytes: int) -> float:
        """CPU seconds to decode ``nbytes`` of block data back into KVs."""
        return nbytes / self.deserialize_bw

    def hop_time(self, device_name: str) -> float:
        """CPU+latency cost of following one skip-list pointer."""
        if device_name == "dram":
            return self.dram_hop
        return self.nvm_hop

    def skiplist_search_time(self, device_name: str, hops: int) -> float:
        """Cost of a search that followed ``hops`` pointers."""
        return hops * (self.hop_time(device_name) + self.compare_cost)

    def bloom_build_time(self, nkeys: int, key_bytes: int = 16) -> float:
        """Cost of hashing ``nkeys`` keys into a bloom filter."""
        return nkeys * key_bytes / self.hash_bw

    def bloom_probe_time(self, probes: int = 1) -> float:
        """Cost of one membership test that evaluated ``probes`` hashes.

        One base fetch (the filter's cache lines, typically NVM-resident)
        plus a small per-hash cost; misses short-circuit after ~2 hashes,
        "maybe" answers evaluate all k.
        """
        return self.bloom_base_cost + probes * self.bloom_probe_cost
