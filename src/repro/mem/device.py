"""Device model: latency + bandwidth cost, byte accounting, space usage."""

from typing import Optional


class DeviceProfile:
    """Performance characteristics of one memory/storage device.

    Latencies are per-operation setup costs in seconds; bandwidths are in
    bytes per second.  Sequential and random accesses are distinguished
    because the DRAM/NVM gap the paper leans on is largest for random
    writes (about 7x).
    """

    __slots__ = (
        "name",
        "read_latency",
        "write_latency",
        "seq_read_bw",
        "seq_write_bw",
        "rand_read_bw",
        "rand_write_bw",
        "persistent",
    )

    def __init__(
        self,
        name: str,
        read_latency: float,
        write_latency: float,
        seq_read_bw: float,
        seq_write_bw: float,
        rand_read_bw: float,
        rand_write_bw: float,
        persistent: bool,
    ) -> None:
        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.seq_read_bw = seq_read_bw
        self.seq_write_bw = seq_write_bw
        self.rand_read_bw = rand_read_bw
        self.rand_write_bw = rand_write_bw
        self.persistent = persistent

    def read_time(self, nbytes: int, sequential: bool) -> float:
        """Seconds to read ``nbytes`` in one operation."""
        bw = self.seq_read_bw if sequential else self.rand_read_bw
        return self.read_latency + nbytes / bw

    def write_time(self, nbytes: int, sequential: bool) -> float:
        """Seconds to write ``nbytes`` in one operation."""
        bw = self.seq_write_bw if sequential else self.rand_write_bw
        return self.write_latency + nbytes / bw

    def __repr__(self) -> str:
        return f"DeviceProfile({self.name!r})"


class Device:
    """One simulated device: charges time and counts traffic and usage."""

    def __init__(self, profile: DeviceProfile, capacity: Optional[int] = None) -> None:
        self.profile = profile
        self.capacity = capacity
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_in_use = 0
        self.peak_bytes_in_use = 0
        # Time-weighted usage integral, for average-usage reporting.
        self._usage_area = 0.0
        self._usage_last_t = 0.0
        #: Attached TraceRecorder, or None (set by system.attach_tracing).
        self.obs = None

    @property
    def name(self) -> str:
        """The profile name, e.g. ``"dram"``, ``"nvm"``, ``"ssd"``."""
        return self.profile.name

    # ------------------------------------------------------------------ I/O

    def read(self, nbytes: int, sequential: bool = True) -> float:
        """Account a read and return its simulated duration in seconds."""
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        self.bytes_read += nbytes
        self.read_ops += 1
        seconds = self.profile.read_time(nbytes, sequential)
        if self.obs is not None:
            self.obs.transfer(self.profile.name, "read", nbytes, sequential, seconds)
        return seconds

    def write(self, nbytes: int, sequential: bool = True) -> float:
        """Account a write and return its simulated duration in seconds."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        self.bytes_written += nbytes
        self.write_ops += 1
        seconds = self.profile.write_time(nbytes, sequential)
        if self.obs is not None:
            self.obs.transfer(self.profile.name, "write", nbytes, sequential, seconds)
        return seconds

    def pointer_write(self) -> float:
        """An 8-byte random (in-place) write -- one pointer update.

        Zero-copy compaction's entire device traffic is made of these.
        """
        return self.write(8, sequential=False)

    # ---------------------------------------------------------------- space

    def allocate(self, nbytes: int, now: float = 0.0) -> None:
        """Account ``nbytes`` of live space on this device."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self._integrate_usage(now)
        self.bytes_in_use += nbytes
        if self.capacity is not None and self.bytes_in_use > self.capacity:
            raise MemoryError(
                f"device {self.name} over capacity: "
                f"{self.bytes_in_use} > {self.capacity}"
            )
        if self.bytes_in_use > self.peak_bytes_in_use:
            self.peak_bytes_in_use = self.bytes_in_use

    def release(self, nbytes: int, now: float = 0.0) -> None:
        """Return ``nbytes`` of live space to the device."""
        if nbytes < 0:
            raise ValueError(f"negative release: {nbytes}")
        self._integrate_usage(now)
        self.bytes_in_use -= nbytes
        if self.bytes_in_use < 0:
            raise ValueError(f"device {self.name} released more than allocated")

    def _integrate_usage(self, now: float) -> None:
        if now > self._usage_last_t:
            self._usage_area += self.bytes_in_use * (now - self._usage_last_t)
            self._usage_last_t = now

    def average_usage(self, now: float) -> float:
        """Time-weighted average of live bytes from t=0 to ``now``."""
        self._integrate_usage(now)
        if self._usage_last_t <= 0:
            return float(self.bytes_in_use)
        return self._usage_area / self._usage_last_t

    def reset_counters(self) -> None:
        """Zero the traffic counters (space usage is left intact)."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0

    def __repr__(self) -> str:
        return (
            f"Device({self.name!r}, written={self.bytes_written}, "
            f"read={self.bytes_read}, in_use={self.bytes_in_use})"
        )
