"""Plain-text table formatting for benchmark output."""

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (headers + separator + rows)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(val.ljust(widths[i]) for i, val in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    return str(value)
