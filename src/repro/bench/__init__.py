"""Benchmark harness helpers: store factory, scaling, table formatting."""

from repro.bench.config import BenchScale, default_scale
from repro.bench.factory import STORE_NAMES, make_store, make_system
from repro.bench.report import format_table

__all__ = [
    "BenchScale",
    "default_scale",
    "STORE_NAMES",
    "make_store",
    "make_system",
    "format_table",
]
