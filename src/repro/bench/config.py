"""Benchmark scaling.

The paper runs 80-200 GB datasets with 64 MB MemTables.  The reproduction
keeps the governing ratios (dataset/MemTable, value/key size, buffer/
MemTable) but shrinks absolute sizes so a full figure regenerates in
seconds of wall time.  Set ``REPRO_BENCH_SCALE=large`` for a 4x bigger
run when more fidelity is wanted.
"""

import os
from dataclasses import dataclass

KB = 1 << 10
MB = 1 << 20


@dataclass
class BenchScale:
    """Sizes every benchmark derives its workload from."""

    memtable_bytes: int = 1 * MB
    dataset_bytes: int = 32 * MB
    value_size: int = 4 * KB
    rw_ops: int = 2000
    nvm_buffer_bytes: int = 16 * MB  # NoveLSM/MatrixKV fixed NVM buffer

    @property
    def n_records(self) -> int:
        """Records in the loaded dataset at the default value size."""
        return self.dataset_bytes // self.value_size

    def records_for(self, value_size: int) -> int:
        """Records needed to keep the dataset byte size constant."""
        return max(64, self.dataset_bytes // value_size)


def default_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (small unless set)."""
    mode = os.environ.get("REPRO_BENCH_SCALE", "small")
    if mode == "large":
        return BenchScale(dataset_bytes=128 * MB, rw_ops=8000)
    if mode == "small":
        return BenchScale()
    raise ValueError(f"unknown REPRO_BENCH_SCALE={mode!r} (use small|large)")
