"""Construction of comparable store instances for benchmarks.

Every store gets its own fresh :class:`HybridMemorySystem` so device
counters, stalls, and latencies are attributable to that store alone --
the paper likewise deploys each KV store on the same server separately.
"""

from typing import Optional, Tuple

from repro.baselines import (
    LevelDBStore,
    MatrixKVOptions,
    MatrixKVStore,
    NoveLSMNoSSTStore,
    NoveLSMOptions,
    NoveLSMStore,
    SLMDBOptions,
    SLMDBStore,
)
from repro.bench.config import BenchScale
from repro.core import MioDB, MioOptions
from repro.kvstore.options import StoreOptions
from repro.mem.system import HybridMemorySystem

STORE_NAMES = (
    "miodb",
    "matrixkv",
    "novelsm",
    "novelsm-hier",
    "novelsm-nosst",
    "leveldb",
    "slmdb",
)


def make_system(ssd: bool = False) -> HybridMemorySystem:
    """A fresh simulated machine (optionally with an SSD)."""
    return HybridMemorySystem.with_ssd() if ssd else HybridMemorySystem()


def make_store(
    name: str,
    scale: Optional[BenchScale] = None,
    system: Optional[HybridMemorySystem] = None,
    ssd: bool = False,
    **overrides,
) -> Tuple[object, HybridMemorySystem]:
    """Build a store (and its machine) configured at benchmark scale.

    ``overrides`` are applied to the store's options dataclass -- e.g.
    ``make_store("miodb", num_levels=4)``.
    """
    if not isinstance(name, str):
        raise TypeError(
            f"store name must be a str, got {type(name).__name__}; "
            f"choose from {STORE_NAMES}"
        )
    if scale is not None and not isinstance(scale, BenchScale):
        # The classic mistake is passing the system positionally where
        # the scale goes; without this check it surfaces much later as
        # an AttributeError deep inside option construction.
        hint = (
            " (did you mean make_store(name, system=...)?)"
            if isinstance(scale, HybridMemorySystem)
            else ""
        )
        raise TypeError(
            f"scale must be a BenchScale or None, got {type(scale).__name__}{hint}"
        )
    if system is not None and not isinstance(system, HybridMemorySystem):
        raise TypeError(
            f"system must be a HybridMemorySystem or None, "
            f"got {type(system).__name__}"
        )
    scale = scale or BenchScale()
    system = system or make_system(ssd=ssd)
    common = dict(memtable_bytes=scale.memtable_bytes,
                  sstable_bytes=scale.memtable_bytes)

    if name == "miodb":
        options = MioOptions(**common, ssd_mode=ssd)
        _apply(options, overrides)
        return MioDB(system, options), system
    if name == "matrixkv":
        options = MatrixKVOptions(
            **common,
            container_bytes=scale.nvm_buffer_bytes,
            column_target_bytes=max(scale.memtable_bytes, scale.nvm_buffer_bytes // 4),
        )
        _apply(options, overrides)
        return MatrixKVStore(system, options, media="ssd" if ssd else "nvm"), system
    if name in ("novelsm", "novelsm-hier"):
        options = NoveLSMOptions(
            **common,
            nvm_memtable_bytes=scale.nvm_buffer_bytes // 2,
            mutable_nvm=name == "novelsm",
        )
        _apply(options, overrides)
        return NoveLSMStore(system, options, media="ssd" if ssd else "nvm"), system
    if name == "novelsm-nosst":
        options = StoreOptions(**common)
        _apply(options, overrides)
        return NoveLSMNoSSTStore(system, options), system
    if name == "leveldb":
        options = StoreOptions(**common)
        _apply(options, overrides)
        return LevelDBStore(system, options, media="ssd" if ssd else "nvm"), system
    if name == "slmdb":
        options = SLMDBOptions(**common)
        _apply(options, overrides)
        return SLMDBStore(system, options), system
    raise ValueError(f"unknown store {name!r}; choose from {STORE_NAMES}")


def _apply(options, overrides: dict) -> None:
    for key, value in overrides.items():
        if not hasattr(options, key):
            raise AttributeError(f"{type(options).__name__} has no option {key!r}")
        setattr(options, key, value)
