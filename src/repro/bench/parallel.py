"""Parallel regeneration of the figure/table benchmark suite.

Every file under ``benchmarks/`` regenerates one paper artifact against
its own fresh :class:`HybridMemorySystem`, so the files are mutually
independent and embarrassingly parallel.  This module fans them across a
``concurrent.futures.ProcessPoolExecutor`` (one pytest subprocess per
file -- full isolation, no shared interpreter state) and reports
per-file wall time plus the aggregate speedup over serial execution.

Entry points::

    python -m repro bench --jobs 8
    python benchmarks/run_all.py --jobs 8
"""

# repro: allow-file[DET001] -- wall-clock timing of subprocess fan-out
# is this module's purpose; nothing simulated runs in this process.
import argparse
import os
import pathlib
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import List, Optional, Tuple


def discover(bench_dir: pathlib.Path, match: str = "") -> List[str]:
    """Benchmark files (``test_*.py``) in ``bench_dir``, optionally filtered."""
    names = sorted(p.name for p in bench_dir.glob("test_*.py"))
    if match:
        names = [n for n in names if match in n]
    return names


def run_one(bench_dir: str, filename: str) -> Tuple[str, int, float, str]:
    """Run one benchmark file in a pytest subprocess.

    Top-level (picklable) so a ``ProcessPoolExecutor`` can ship it to a
    worker.  Returns ``(filename, returncode, wall_seconds, tail)``
    where ``tail`` is the last part of captured output for diagnostics.
    """
    directory = pathlib.Path(bench_dir)
    src = str(directory.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(directory / filename),
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(directory.parent),
    )
    wall = time.perf_counter() - t0
    tail = (proc.stdout[-2000:] + proc.stderr[-2000:]) if proc.returncode else ""
    return filename, proc.returncode, wall, tail


def run_suite(
    bench_dir: pathlib.Path, jobs: int, match: str = ""
) -> Tuple[int, float, float]:
    """Fan the suite across ``jobs`` workers.

    Returns ``(failures, wall_seconds, serial_seconds)`` where
    ``serial_seconds`` is the sum of per-file times (what a serial run
    would have cost, ignoring interpreter startup savings).
    """
    names = discover(bench_dir, match)
    if not names:
        print(f"no benchmark files matching {match!r} under {bench_dir}")
        return 0, 0.0, 0.0
    jobs = max(1, min(jobs, len(names)))
    print(f"regenerating {len(names)} artifacts with {jobs} worker(s)")
    failures = 0
    serial = 0.0
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(run_one, str(bench_dir), name): name for name in names
        }
        for future in as_completed(futures):
            filename, code, wall, tail = future.result()
            serial += wall
            status = "ok" if code == 0 else f"FAIL rc={code}"
            print(f"  {filename:<40} {wall:7.2f}s  {status}")
            if code != 0:
                failures += 1
                if tail.strip():
                    print(tail)
    total = time.perf_counter() - t0
    print(
        f"done in {total:.2f}s wall ({serial:.2f}s of benchmark work, "
        f"{serial / total:.2f}x parallel speedup); {failures} failure(s)"
    )
    return failures, total, serial


def default_bench_dir() -> pathlib.Path:
    """``benchmarks/`` next to the repo's ``src`` tree (or under cwd)."""
    here = pathlib.Path(__file__).resolve()
    for base in (here.parents[3], pathlib.Path.cwd()):
        candidate = base / "benchmarks"
        if candidate.is_dir():
            return candidate
    return pathlib.Path.cwd() / "benchmarks"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="regenerate all figure/table artifacts in parallel",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=os.cpu_count() or 1,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--match", default="",
        help="only run benchmark files whose name contains this substring",
    )
    parser.add_argument(
        "--bench-dir", type=pathlib.Path, default=None,
        help="benchmarks directory (default: autodetected)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    bench_dir = args.bench_dir or default_bench_dir()
    if not bench_dir.is_dir():
        print(f"benchmarks directory not found: {bench_dir}", file=sys.stderr)
        return 2
    failures, __, __ = run_suite(bench_dir, args.jobs, args.match)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
