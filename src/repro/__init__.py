"""MioDB reproduction: LSM-tree KV stores for hybrid DRAM/NVM memory.

Reproduces *Revisiting Log-Structured Merging for KV Stores in Hybrid
Memory Systems* (ASPLOS 2023) as a pure-Python library: MioDB itself,
the baselines it is evaluated against (LevelDB-style LSM, NoveLSM,
NoveLSM-NoSST, MatrixKV), and the simulated hybrid-memory substrate they
all run on.

Quickstart::

    from repro import HybridMemorySystem, MioDB

    system = HybridMemorySystem()
    db = MioDB(system)
    db.put(b"hello", b"world")
    value, latency = db.get(b"hello")
"""

from repro.baselines import (
    LevelDBStore,
    MatrixKVOptions,
    MatrixKVStore,
    NoveLSMNoSSTStore,
    NoveLSMOptions,
    NoveLSMStore,
)
from repro.core import MioDB, MioOptions, recover
from repro.kvstore import KVStore, SizedValue, StoreOptions, WriteBatch
from repro.mem import HybridMemorySystem

__version__ = "1.0.0"

__all__ = [
    "HybridMemorySystem",
    "KVStore",
    "SizedValue",
    "StoreOptions",
    "MioDB",
    "MioOptions",
    "WriteBatch",
    "recover",
    "LevelDBStore",
    "NoveLSMStore",
    "NoveLSMOptions",
    "NoveLSMNoSSTStore",
    "MatrixKVStore",
    "MatrixKVOptions",
    "__version__",
]
