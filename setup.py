"""Shim so `pip install -e .` works without the wheel package installed.

The environment is offline; editable installs fall back to setup.py
develop when wheel is unavailable.
"""

from setuptools import setup

setup()
