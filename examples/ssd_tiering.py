#!/usr/bin/env python3
"""MioDB in a DRAM-NVM-SSD hierarchy (paper Section 5.4).

The elastic NVM buffer absorbs a write burst while the slow SSD
repository drains it in the background: writes never stall, NVM usage
swells and then shrinks back as lazy flushes to the SSD complete.

Run:  python examples/ssd_tiering.py
"""

from repro import HybridMemorySystem, MioDB, MioOptions, SizedValue

KB = 1 << 10
MB = 1 << 20


def main() -> None:
    system = HybridMemorySystem.with_ssd()
    db = MioDB(
        system,
        MioOptions(memtable_bytes=256 * KB, num_levels=4, ssd_mode=True),
    )

    print("burst-writing 24 MB of 4 KB values against an SSD-backed store...")
    checkpoints = []
    n = 6144
    for i in range(n):
        db.put(b"user%012d" % i, SizedValue(i, 4096))
        if i % (n // 8) == 0:
            checkpoints.append(
                (system.now * 1e3, system.nvm.bytes_in_use / MB,
                 (system.ssd.bytes_in_use if system.ssd else 0) / MB)
            )

    print("\n  time_ms   nvm_in_use_MB   ssd_in_use_MB")
    for t, nvm_mb, ssd_mb in checkpoints:
        print(f"  {t:8.2f}   {nvm_mb:13.2f}   {ssd_mb:13.2f}")

    peak_nvm = system.nvm.peak_bytes_in_use / MB
    print(f"\nwrite stalls during the burst: "
          f"{system.stats.get('stall.interval_s'):.6f} s  (elastic buffer!)")
    print(f"peak NVM usage: {peak_nvm:.1f} MB")

    db.quiesce()
    print(f"after quiescing: NVM {system.nvm.bytes_in_use / MB:.1f} MB, "
          f"SSD {system.ssd.bytes_in_use / MB:.1f} MB")
    print(f"SSD repository now holds {db.repository.entry_count} entries "
          f"across levels {[len(l) for l in db.repository.lsm.levels]}")

    value, latency = db.get(b"user%012d" % 123)
    print(f"\nread through NVM buffer + SSD levels: tag={value.tag} "
          f"({latency * 1e6:.1f} us)")
    print(f"write amplification (NVM+SSD traffic / user bytes): "
          f"{system.write_amplification():.2f}x")


if __name__ == "__main__":
    main()
