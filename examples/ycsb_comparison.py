#!/usr/bin/env python3
"""Compare every KV store in the library on YCSB workloads.

This is the paper's Figure 7 experiment in miniature: load a dataset,
run YCSB A (update-heavy), C (read-only), and E (scan-heavy) against
MioDB and all four baselines, and print throughput plus tail latency.

Run:  python examples/ycsb_comparison.py
"""

from repro.bench import STORE_NAMES, default_scale, format_table, make_store
from repro.workloads import YCSB_WORKLOADS, load_phase, run_workload


def main() -> None:
    scale = default_scale()
    value_size = 4096
    n = scale.records_for(value_size) // 2  # keep the demo snappy
    ops = 1000

    rows = []
    for name in STORE_NAMES:
        store, system = make_store(name, scale)
        load = load_phase(store, n, value_size)
        a = run_workload(store, YCSB_WORKLOADS["A"], ops, n, value_size)
        c = run_workload(store, YCSB_WORKLOADS["C"], ops, n, value_size)
        e = run_workload(store, YCSB_WORKLOADS["E"], ops // 10, n, value_size)
        rows.append(
            [
                name,
                load.kiops,
                a.kiops,
                c.kiops,
                e.kiops,
                a.latency.p999 * 1e6,
                system.write_amplification(),
            ]
        )

    print(f"{n} records loaded, {ops} ops per workload, 4 KB values\n")
    print(
        format_table(
            ["store", "load_KIOPS", "A_KIOPS", "C_KIOPS", "E_KIOPS",
             "A_p99.9_us", "WA"],
            rows,
        )
    )
    print(
        "\nExpected shapes (paper Figure 7 / Tables 1-2): MioDB leads load,"
        "\nA and C; NoveLSM-NoSST leads the scan-heavy E; MioDB's tail"
        "\nlatency and write amplification are the lowest."
    )


if __name__ == "__main__":
    main()
