#!/usr/bin/env python3
"""Visualise MioDB's parallel compaction as an ASCII gantt chart.

Traces every background job during a write burst and renders one row per
worker: the one-piece flush worker stays continuously busy while the
per-level zero-copy workers overlap below it (paper Section 4.5).  For
contrast, the same burst on LevelDB shows a single compaction worker
serialising everything.

Run:  python examples/compaction_timeline.py
"""

from repro import HybridMemorySystem, LevelDBStore, MioDB, MioOptions, SizedValue
from repro.kvstore.options import StoreOptions
from repro.sim.tracing import JobTracer

KB = 1 << 10


def burst(store, n: int) -> None:
    for i in range(n):
        store.put(b"user%012d" % ((i * 7919) % n), SizedValue(i, 1024))
    store.quiesce()


def main() -> None:
    system = HybridMemorySystem()
    tracer = JobTracer(system.executor)
    store = MioDB(system, MioOptions(memtable_bytes=32 * KB, num_levels=6))
    burst(store, 4000)
    print("MioDB: flush + per-level parallel compaction")
    print(tracer.gantt())
    print(f"peak background concurrency: {tracer.max_concurrency()}\n")

    system = HybridMemorySystem()
    tracer = JobTracer(system.executor)
    store = LevelDBStore(
        system, StoreOptions(memtable_bytes=32 * KB, sstable_bytes=32 * KB)
    )
    burst(store, 4000)
    print("LevelDB: one flush worker + one compaction worker")
    print(tracer.gantt())
    print(f"peak background concurrency: {tracer.max_concurrency()}")


if __name__ == "__main__":
    main()
