#!/usr/bin/env python3
"""Where every byte of write amplification comes from, store by store.

Writes the same dataset into MioDB, MatrixKV, and LevelDB, then breaks
each store's persistent-device traffic down into its sources: WAL,
MemTable flushing, and compaction rewrites.  MioDB's decomposition makes
the paper's "theoretical upper bound is 3" concrete: one WAL write, one
one-piece flush, one lazy copy -- and pointer updates too small to see.

Run:  python examples/write_amplification_tour.py
"""

from repro.bench import format_table, make_store
from repro.bench.config import BenchScale
from repro.workloads import fill_random

KB = 1 << 10
MB = 1 << 20


def main() -> None:
    scale = BenchScale(memtable_bytes=128 * KB, dataset_bytes=24 * MB,
                       value_size=4096, nvm_buffer_bytes=4 * MB)
    n = scale.n_records
    rows = []
    for name in ("miodb", "matrixkv", "leveldb"):
        store, system = make_store(name, scale)
        fill_random(store, n, scale.value_size)
        store.quiesce()
        user = system.stats.get("user.bytes_written")
        total = system.persistent_bytes_written()
        wal = store.wal.appended_bytes
        flush = system.stats.get("flush.bytes")
        ptr = 8 * system.stats.get("compact.ptr_writes")
        # everything else on the persistent devices is compaction rewrite
        # (plus, for MioDB, the lazy copy into the repository)
        other = max(0.0, total - wal - flush - ptr)
        rows.append(
            [
                name,
                user / MB,
                total / MB,
                total / user,
                wal / user,
                flush / user,
                ptr / user,
                other / user,
            ]
        )
    print(f"fillrandom, {n} x 4 KB values, quiesced\n")
    print(
        format_table(
            ["store", "user_MB", "device_MB", "WA", "wal_x", "flush_x",
             "ptr_x", "compact_x"],
            rows,
        )
    )
    print(
        "\nMioDB's WA decomposes into ~1x WAL + ~1x one-piece flush + <1x"
        "\nlazy copy (deduplicated) + a negligible ptr_x from zero-copy"
        "\ncompaction.  The baselines' compact_x term is what multi-level"
        "\nSSTable rewriting costs them."
    )


if __name__ == "__main__":
    main()
