#!/usr/bin/env python3
"""Anatomy of a zero-copy compaction (paper Figure 5).

Reconstructs the paper's worked example at the data-structure level: two
PMTables with overlapping keys merge purely by pointer updates, with the
insertion mark keeping every key readable mid-merge.

Run:  python examples/zero_copy_anatomy.py
"""

from repro.sim.rng import XorShiftRng
from repro.skiplist.merge import ZeroCopyMerge
from repro.skiplist.skiplist import SkipList


def show(label: str, table: SkipList) -> None:
    nodes = ", ".join(f"{n.key.decode()}@{n.seq}" for n in table.nodes())
    print(f"  {label:10s} [{nodes}]")


def main() -> None:
    # The paper's Figure 5: oldtable has c@1, d@4, d@3; newtable has
    # b@6, d@7, d@5 (same key d, three generations across both tables).
    old = SkipList(XorShiftRng(1))
    for key, seq in [(b"c", 1), (b"d", 4), (b"d", 3)]:
        old.insert(key, seq, b"v%d" % seq, 8)
    new = SkipList(XorShiftRng(2))
    for key, seq in [(b"b", 6), (b"d", 7), (b"d", 5)]:
        new.insert(key, seq, b"v%d" % seq, 8)

    print("before the merge:")
    show("newtable", new)
    show("oldtable", old)

    merge = ZeroCopyMerge(new, old)
    step = 0
    while True:
        more = merge.step()
        step += 1
        print(f"\nafter step {step}:")
        show("newtable", new)
        show("oldtable", old)
        # mid-merge queries go newtable -> insertion mark -> oldtable
        for key in (b"b", b"c", b"d"):
            node, __ = merge.get(key)
            print(f"    query {key.decode()} -> seq {node.seq}")
        if not more:
            break

    print(f"\nmerge complete: {merge.nodes_moved} nodes moved, "
          f"{merge.nodes_dropped} stale versions dropped,")
    print(f"{merge.pointer_writes} pointer writes and ZERO bytes of KV data copied.")
    print(f"garbage awaiting lazy reclamation: {old.garbage_bytes} bytes")


if __name__ == "__main__":
    main()
