#!/usr/bin/env python3
"""Quickstart: MioDB on a simulated DRAM/NVM machine.

Creates a store, writes and reads a few thousand KV pairs, and shows the
store-level picture: elastic-buffer levels, the data repository, write
amplification, and operation latencies -- all in deterministic simulated
time.

Run:  python examples/quickstart.py
"""

from repro import HybridMemorySystem, MioDB, SizedValue


def main() -> None:
    system = HybridMemorySystem()
    db = MioDB(system)

    # Real byte values work for small data...
    db.put(b"greeting", b"hello, hybrid memory!")
    value, latency = db.get(b"greeting")
    print(f"get(greeting) -> {value!r}  ({latency * 1e6:.2f} us simulated)")

    # ...and SizedValue carries a *nominal* size for realistic workloads
    # without materialising megabytes in the interpreter.
    print("\nloading 5,000 4 KB values...")
    for i in range(5000):
        db.put(b"user%012d" % (i % 2000), SizedValue(i, 4096))

    db.delete(b"user%012d" % 7)
    db.quiesce()  # let background compaction finish

    value, __ = db.get(b"user%012d" % 42)
    print(f"newest version of user42 tag: {value.tag}")
    value, __ = db.get(b"user%012d" % 7)
    print(f"deleted key user7 -> {value}")

    pairs, __ = db.scan(b"user%012d" % 100, 5)
    print("scan from user100:", [key.decode() for key, __v in pairs])

    print("\n-- store state ------------------------------------------")
    print("elastic buffer tables per level:", db.level_table_counts())
    print("data repository keys:           ", db.repository.entry_count)
    print(f"write amplification:             {system.write_amplification():.2f}x")
    print(f"simulated time elapsed:          {system.now * 1e3:.2f} ms")
    print(f"interval write stalls:           {system.stats.get('stall.interval_s'):.6f} s")
    put = system.latency.summary("put").as_micros()
    get = system.latency.summary("get").as_micros()
    print(f"put latency  avg/p99.9:          {put['avg']:.2f} / {put['p99.9']:.2f} us")
    print(f"get latency  avg/p99.9:          {get['avg']:.2f} / {get['p99.9']:.2f} us")


if __name__ == "__main__":
    main()
