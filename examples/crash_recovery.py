#!/usr/bin/env python3
"""Crash a MioDB mid-flush and recover it (paper Section 4.7).

Arms a cooperative crash point so the store dies between the one-piece
memcpy and the pointer swizzling, then rebuilds the store from its
persistent pieces: swizzled PMTables, the data repository, and the
write-ahead log.  Every acknowledged write must survive.

Run:  python examples/crash_recovery.py
"""

from repro import HybridMemorySystem, MioDB, MioOptions, SizedValue, recover
from repro.persist.crash import CrashInjector, SimulatedCrash

KB = 1 << 10


def main() -> None:
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(
        system,
        MioOptions(memtable_bytes=16 * KB, num_levels=4),
        crash_injector=injector,
    )

    # Crash on the 5th flush, after the memcpy but before swizzling: the
    # half-baked PMTable must be discarded and re-covered from the WAL.
    injector.arm("flush.after_copy", after_hits=5)

    acked = {}
    crashed_at = None
    try:
        for i in range(5000):
            key = b"user%012d" % (i % 800)
            store.put(key, SizedValue(i, 1024))
            acked[key] = i
    except SimulatedCrash as crash:
        crashed_at = crash.point
    print(f"simulated crash at point {crashed_at!r} after {len(acked)} keys acked")
    print(f"WAL records pending at crash: {store.wal.record_count}")

    recovered, seconds = recover(store)
    print(f"recovered in {seconds * 1e3:.3f} ms simulated")
    print(f"WAL records replayed: {int(system.stats.get('recover.replayed'))}")
    print(f"background jobs dropped: {int(system.stats.get('recover.dropped_jobs'))}")

    lost = 0
    for key, tag in acked.items():
        value, __ = recovered.get(key)
        if value is None or value.tag < tag:
            lost += 1
    print(f"acknowledged writes lost: {lost} / {len(acked)}")
    assert lost == 0, "recovery must not lose acknowledged writes"

    recovered.put(b"post-recovery", b"works")
    value, __ = recovered.get(b"post-recovery")
    print(f"store accepts new writes after recovery: {value!r}")


if __name__ == "__main__":
    main()
