"""Race detector: happens-before over foreground ops and background jobs.

The synthetic fixtures pin the detector's model: a store whose flush
reads the *active* MemTable without rotating is flagged, while the
correct shape (freeze, then flush the immutable region) passes.  The
smoke test then runs every real engine under a flush-heavy dbbench fill
and asserts they all declare only synchronized accesses.
"""

import pytest

from repro.bench.factory import STORE_NAMES
from repro.check.races import (
    NO_BACKGROUND_STORES,
    REGION_IMMUTABLE,
    REGION_MEMTABLE,
    RaceDetector,
    race_smoke,
)
from repro.kvstore.api import KVStore
from repro.kvstore.options import StoreOptions
from repro.mem.system import HybridMemorySystem


class _DictStore(KVStore):
    """Minimal engine: a dict plus a periodic background 'flush' job."""

    FLUSH_EVERY = 8

    def __init__(self, system, options=None):
        super().__init__(system, options or StoreOptions())
        self.data = {}
        self.puts = 0
        self.flush_worker = system.executor.worker("flush")

    def _put(self, key, seq, value, value_bytes):
        self.data[key] = value
        self.puts += 1
        if self.puts % self.FLUSH_EVERY == 0:
            self._submit_flush()
        return 1e-6

    def _get(self, key):
        return self.data.get(key), 1e-6

    def _scan(self, start_key, count):
        keys = sorted(k for k in self.data if k >= start_key)[:count]
        return [(k, self.data[k]) for k in keys], 1e-6

    def _submit_flush(self):
        raise NotImplementedError


class RacyStore(_DictStore):
    """BUG under test: the flush reads the *active* MemTable in flight,
    so every foreground put that lands before the flush applies mutates
    the state the job is reading."""

    name = "racy"

    def _submit_flush(self):
        self.system.executor.submit(
            self.flush_worker, 1e-5, None, name="racy-flush",
            accesses=(("r", REGION_MEMTABLE),),
        )


class CleanStore(_DictStore):
    """The correct shape: the MemTable is (notionally) frozen at submit
    time and the flush reads only the immutable region."""

    name = "clean"

    def _submit_flush(self):
        self.system.executor.submit(
            self.flush_worker, 1e-5, None, name="flush",
            accesses=(("r", REGION_IMMUTABLE),),
        )


def _drive(store_cls, n=32):
    system = HybridMemorySystem()
    store = store_cls(system)
    detector = system.attach_race_detection()
    for i in range(n):
        store.put(b"key%04d" % i, b"v" * 16)
    store.quiesce()
    system.detach_race_detection()
    return detector


def test_racy_store_is_flagged():
    detector = _drive(RacyStore)
    races = detector.races()
    assert races, "unrotated-MemTable flush must be reported"
    first = races[0]
    assert first.region == REGION_MEMTABLE
    assert first.job.startswith("racy-flush@")
    assert "foreground put" in first.other
    assert "racy-flush" in first.render()


def test_clean_store_passes():
    detector = _drive(CleanStore)
    assert detector.jobs_observed > 0
    assert detector.races() == []


def test_detach_restores_uninstrumented_state():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    assert system.race is detector
    assert system.executor.race is detector
    system.detach_race_detection()
    assert system.race is None
    assert system.executor.race is None
    assert not detector.attached


def test_double_attach_rejected():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    with pytest.raises(RuntimeError):
        RaceDetector().attach(system)
    with pytest.raises(RuntimeError):
        detector.attach(HybridMemorySystem())


# ------------------------------------------------- happens-before edges


def test_foreground_write_during_flight_is_concurrent():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    executor = system.executor
    executor.submit(executor.worker("a"), 1.0, name="job",
                    accesses=(("r", "tables:L0"),))
    detector.op("put", writes=("tables:L0",))
    system.drain_background()
    races = detector.races()
    assert len(races) == 1
    assert races[0].region == "tables:L0"


def test_read_read_pairs_do_not_conflict():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    executor = system.executor
    executor.submit(executor.worker("a"), 1.0, name="job",
                    accesses=(("r", "tables:L0"),))
    detector.op("get", reads=("tables:L0",))
    system.drain_background()
    assert detector.races() == []


def test_overlapping_jobs_on_different_workers_race():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    executor = system.executor
    executor.submit(executor.worker("a"), 1.0, name="writer",
                    accesses=(("w", "tables:L1"),))
    executor.submit(executor.worker("b"), 1.0, name="reader",
                    accesses=(("r", "tables:L1"),))
    system.drain_background()
    races = detector.races()
    assert len(races) == 1
    assert races[0].region == "tables:L1"
    assert {races[0].job, races[0].other} == {"writer@a#1", "reader@b#1"}


def test_same_worker_jobs_serialize():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    executor = system.executor
    worker = executor.worker("a")
    executor.submit(worker, 1.0, name="first",
                    accesses=(("w", "tables:L1"),))
    executor.submit(worker, 1.0, name="second",
                    accesses=(("w", "tables:L1"),))
    system.drain_background()
    assert detector.races() == []


def test_applied_job_happens_before_later_submit():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    executor = system.executor
    executor.submit(executor.worker("a"), 1.0, name="first",
                    accesses=(("w", "tables:L1"),))
    system.drain_background()  # applies `first`; its clock joins the fg
    executor.submit(executor.worker("b"), 1.0, name="second",
                    accesses=(("w", "tables:L1"),))
    system.drain_background()
    assert detector.races() == []


def test_crash_cancel_closes_the_interval():
    system = HybridMemorySystem()
    detector = system.attach_race_detection()
    executor = system.executor
    executor.submit(executor.worker("a"), 1.0, name="doomed",
                    accesses=(("r", "tables:L0"),))
    executor.crash_reset()
    detector.op("put", writes=("tables:L0",))  # post-crash: ordered
    assert detector.races() == []


# ------------------------------------------------------------ smoke run


def test_real_stores_race_clean():
    """Every engine's declared accesses are synchronized under dbbench."""
    results = race_smoke()
    assert set(results) == set(STORE_NAMES)
    for name, races in results.items():
        rendered = [race.render() for race in races]
        assert races == [], f"{name}: {rendered}"


def test_smoke_rejects_vacuous_runs():
    # 4 puts never fill the smoke-scale MemTable: zero background jobs
    # would make a "clean" verdict meaningless, so the smoke refuses.
    with pytest.raises(AssertionError, match="no background jobs"):
        race_smoke(store_names=("leveldb",), n=4)


def test_smoke_exempts_stores_without_background_work():
    assert "novelsm-nosst" in NO_BACKGROUND_STORES
    results = race_smoke(store_names=("novelsm-nosst",))
    assert results["novelsm-nosst"] == []
