"""Direct unit tests for MatrixKV's matrix container rows."""

import pytest

from repro.baselines.matrixkv import MatrixRow, _next_key
from repro.mem.system import HybridMemorySystem
from repro.sstable.table import entry_frame_bytes


@pytest.fixture
def system():
    return HybridMemorySystem()


def entries_for(keys, start_seq=1, vbytes=100):
    return [(k, start_seq + i, b"v" + k, vbytes) for i, k in enumerate(keys)]


def test_row_allocates_nvm(system):
    row = MatrixRow(system, entries_for([b"a", b"b"]))
    assert system.nvm.bytes_in_use == row.data_bytes
    assert row.data_bytes == sum(entry_frame_bytes(e) for e in row.entries)


def test_row_get_hit_and_miss(system):
    row = MatrixRow(system, entries_for([b"a", b"c"]))
    entry, cost = row.get(b"a", system.cpu)
    assert entry[0] == b"a"
    assert cost > 0
    entry, cost = row.get(b"b", system.cpu)
    assert entry is None


def test_row_get_charges_deserialization(system):
    row = MatrixRow(system, entries_for([b"a"]))
    before = system.stats.get("deserialize.time_s")
    row.get(b"a", system.cpu)
    assert system.stats.get("deserialize.time_s") > before


def test_take_range_removes_and_shrinks(system):
    row = MatrixRow(system, entries_for([b"a", b"b", b"c", b"d"]))
    taken = row.take_range(b"b", b"c")
    assert [e[0] for e in taken] == [b"b", b"c"]
    assert [e[0] for e in row.entries] == [b"a", b"d"]
    assert system.nvm.bytes_in_use == row.data_bytes
    assert not row.is_empty


def test_take_range_open_bounds(system):
    row = MatrixRow(system, entries_for([b"a", b"b", b"c"]))
    taken = row.take_range(None, b"a")
    assert [e[0] for e in taken] == [b"a"]
    taken = row.take_range(b"b", row.entries[-1][0])
    assert [e[0] for e in taken] == [b"b", b"c"]
    assert row.is_empty


def test_take_range_empty_slice(system):
    row = MatrixRow(system, entries_for([b"a", b"d"]))
    assert row.take_range(b"b", b"c") == []
    assert len(row.entries) == 2


def test_next_key_is_successor():
    assert _next_key(b"abc") == b"abc\x00"
    assert b"abc" < _next_key(b"abc") < b"abd"
