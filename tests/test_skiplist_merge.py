"""Unit tests for zero-copy merging (paper Section 4.3)."""

import pytest

from repro.sim.rng import XorShiftRng
from repro.skiplist.merge import ZeroCopyMerge
from repro.skiplist.node import TOMBSTONE
from repro.skiplist.skiplist import SkipList


def make(entries, seed=1):
    sl = SkipList(XorShiftRng(seed))
    for key, seq, value in entries:
        sl.insert(key, seq, value, 10)
    return sl


def test_merge_disjoint_tables():
    old = make([(b"a", 1, b"a1"), (b"c", 2, b"c1")])
    new = make([(b"b", 3, b"b1"), (b"d", 4, b"d1")], seed=2)
    merge = ZeroCopyMerge(new, old).run()
    assert merge.done
    assert new.is_empty
    assert [n.key for n in old.nodes()] == [b"a", b"b", b"c", b"d"]
    assert merge.nodes_moved == 2
    assert merge.nodes_dropped == 0


def test_merge_keeps_newest_version():
    old = make([(b"k", 1, b"old")])
    new = make([(b"k", 9, b"new")], seed=2)
    merge = ZeroCopyMerge(new, old).run()
    node, __ = old.get(b"k")
    assert node.seq == 9
    assert node.value == b"new"
    assert merge.nodes_dropped == 1
    assert old.entries == 1


def test_merge_drops_duplicates_within_newtable():
    # Paper Figure 5(c): N_d7 shadows N_d5 inside the newtable too.
    old = make([(b"d", 3, b"d3"), (b"d", 4, b"d4")])
    new = make([(b"d", 7, b"d7"), (b"d", 5, b"d5")], seed=2)
    merge = ZeroCopyMerge(new, old).run()
    assert old.entries == 1
    node, __ = old.get(b"d")
    assert node.seq == 7
    assert merge.nodes_dropped == 3  # d5 (new side), d4 and d3 (old side)


def test_merge_moves_garbage_accounting_to_old():
    old = make([(b"k", 1, b"old")])
    new = make([(b"k", 9, b"new"), (b"k", 5, b"mid")], seed=2)
    ZeroCopyMerge(new, old).run()
    assert new.garbage_bytes == 0
    # one dup dropped on the new side, one on the old side
    assert old.garbage_bytes > 0
    assert old.entries == 1


def test_merge_counts_pointer_writes_not_bytes():
    old = make([(b"a", 1, b"x")])
    new = make([(b"b", 2, b"y")], seed=2)
    merge = ZeroCopyMerge(new, old).run()
    # unlink from new (height) + splice into old (height)
    assert merge.pointer_writes >= 2
    assert merge.search_hops >= 0


def test_merge_empty_newtable_is_immediately_done():
    old = make([(b"a", 1, b"x")])
    new = SkipList(XorShiftRng(3))
    merge = ZeroCopyMerge(new, old)
    assert merge.step() is False
    assert merge.done


def test_merge_into_empty_oldtable():
    old = SkipList(XorShiftRng(3))
    new = make([(b"a", 1, b"x"), (b"b", 2, b"y")], seed=2)
    ZeroCopyMerge(new, old).run()
    assert [n.key for n in old.nodes()] == [b"a", b"b"]


def test_stepwise_merge_is_resumable():
    old = make([(b"a", 1, b"x"), (b"c", 3, b"z")])
    new = make([(b"b", 2, b"y"), (b"d", 4, b"w")], seed=2)
    merge = ZeroCopyMerge(new, old)
    assert merge.step() is True  # b moved, d remains
    assert old.entries == 3
    assert new.entries == 1
    merge.run()
    assert merge.done
    assert old.entries == 4


def test_query_mid_merge_sees_in_flight_node():
    old = make([(b"a", 1, b"x")])
    new = make([(b"b", 2, b"y"), (b"c", 3, b"z")], seed=2)
    merge = ZeroCopyMerge(new, old)
    # Simulate the insertion-mark window by hand: unlink b from new but
    # query before the step completes -- get() must still find every key.
    merge.step()
    for key in (b"a", b"b", b"c"):
        node, __ = merge.get(key)
        assert node is not None, key


def test_query_respects_snapshot_across_tables():
    old = make([(b"k", 1, b"v1")])
    new = make([(b"k", 9, b"v9")], seed=2)
    merge = ZeroCopyMerge(new, old)
    node, __ = merge.get(b"k", max_seq=5)
    assert node.seq == 1
    node, __ = merge.get(b"k")
    assert node.seq == 9


def test_merge_preserves_tombstones():
    old = make([(b"k", 1, b"v1")])
    new = SkipList(XorShiftRng(5))
    new.insert(b"k", 9, TOMBSTONE, 0)
    ZeroCopyMerge(new, old).run()
    node, __ = old.get(b"k")
    assert node.is_tombstone  # shadowing delete survives the merge


def test_merge_interleaved_runs():
    old = make([(b"b", 1, b"b1"), (b"d", 2, b"d1"), (b"f", 3, b"f1")])
    new = make([(b"a", 4, b"a1"), (b"c", 5, b"c1"), (b"e", 6, b"e1"),
                (b"g", 7, b"g1")], seed=2)
    ZeroCopyMerge(new, old).run()
    assert [n.key for n in old.nodes()] == [b"a", b"b", b"c", b"d", b"e", b"f", b"g"]


def test_merged_result_supports_further_merges():
    t1 = make([(b"a", 1, b"v")])
    t2 = make([(b"b", 2, b"v")], seed=2)
    t3 = make([(b"a", 3, b"v2"), (b"c", 4, b"v")], seed=3)
    ZeroCopyMerge(t2, t1).run()
    ZeroCopyMerge(t3, t1).run()
    assert [n.key for n in t1.nodes()] == [b"a", b"b", b"c"]
    node, __ = t1.get(b"a")
    assert node.seq == 3
