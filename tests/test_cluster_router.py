"""Tests for the cluster topology and the shard router."""

import math

import pytest

from repro.bench.config import BenchScale
from repro.cluster import (
    DROP_NO_LEADER,
    AdmissionControl,
    ClientSpec,
    Cluster,
    HashRingPlacement,
    ShardRouter,
    run_cluster,
)
from repro.kvstore.values import SizedValue
from repro.replication import READ_FOLLOWER_RYW, ReplicationConfig
from repro.workloads.keys import key_for

pytestmark = pytest.mark.cluster_smoke

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def make_router(n_shards=4, store_name="miodb", **kwargs):
    cluster = Cluster(store_name, n_shards=n_shards, scale=SCALE)
    return ShardRouter(cluster, **kwargs)


def test_shards_share_one_clock():
    cluster = Cluster("miodb", n_shards=3, scale=SCALE)
    clocks = {id(shard.system.clock) for shard in cluster.shards}
    assert clocks == {id(cluster.clock)}


def test_cluster_validation():
    with pytest.raises(ValueError):
        Cluster("miodb", n_shards=0, scale=SCALE)
    cluster = Cluster("miodb", n_shards=2, scale=SCALE)
    with pytest.raises(ValueError):
        ShardRouter(cluster, placement=HashRingPlacement(4))


def test_put_get_delete_route_consistently():
    router = make_router()
    for i in range(300):
        router.put(key_for(i), SizedValue(i, 256))
    router.quiesce()
    for i in range(300):
        value, __ = router.get(key_for(i))
        assert value is not None and value.tag == i, i
    router.delete(key_for(7))
    value, __ = router.get(key_for(7))
    assert value is None


def test_keys_are_spread_across_shards():
    router = make_router()
    for i in range(2000):
        router.put(key_for(i), SizedValue(i, 256))
    assert all(ops > 0 for ops in router.shard_ops)


def test_scan_scatter_gather_matches_flat_order():
    router = make_router()
    model = {}
    for i in range(500):
        router.put(key_for(i), SizedValue(i, 256))
        model[key_for(i)] = i
    router.quiesce()
    start = key_for(123)
    pairs, elapsed = router.scan(start, 50)
    expected = sorted(k for k in model if k >= start)[:50]
    assert [k for k, __v in pairs] == expected
    assert all(v.tag == model[k] for k, v in pairs)
    assert elapsed >= 0


def test_scan_validation():
    router = make_router(n_shards=2)
    with pytest.raises(ValueError):
        router.scan(b"a", -1)


def test_items_iterates_cluster_in_key_order():
    router = make_router()
    for i in range(300):
        router.put(key_for(i), SizedValue(i, 256))
    router.quiesce()
    keys = [k for k, __v in router.items(page_size=37)]
    assert keys == [key_for(i) for i in range(300)]
    bounded = [
        k for k, __v in router.items(start_key=key_for(10), end_key=key_for(20))
    ]
    assert bounded == [key_for(i) for i in range(10, 20)]


def test_window_counts_and_reset():
    router = make_router(n_shards=2)
    for i in range(100):
        router.get(key_for(i))
    assert sum(router.shard_ops) == 100
    assert sum(router.slot_ops.values()) == 100
    assert router.cluster.stats.get("cluster.routed_ops") == 100
    router.reset_window()
    assert router.shard_ops == [0, 0]
    assert router.slot_ops == {}
    # the cumulative stat survives the window reset
    assert router.cluster.stats.get("cluster.routed_ops") == 100


def test_quiesce_drains_every_shard():
    router = make_router()
    for i in range(800):
        router.put(key_for(i), SizedValue(i, 1024))
    router.quiesce()
    for shard in router.cluster.shards:
        assert not shard.system.executor.pending


def make_replicated_router(n_shards=2, followers=2, **config_kwargs):
    config = ReplicationConfig(followers=followers, **config_kwargs)
    cluster = Cluster("miodb", n_shards=n_shards, scale=SCALE, replication=config)
    return ShardRouter(cluster)


def test_replicated_router_routes_through_groups():
    router = make_replicated_router()
    assert all(shard.group is not None for shard in router.cluster.shards)
    for i in range(200):
        router.put(key_for(i), SizedValue(i, 256))
    router.quiesce()
    for i in range(200):
        value, __ = router.get(key_for(i))
        assert value is not None and value.tag == i, i
    pairs, __ = router.scan(key_for(0), 200)
    assert len(pairs) == 200


def test_replicated_router_session_reads_own_writes():
    router = make_replicated_router(read_policy=READ_FOLLOWER_RYW)
    session = router.session()
    for i in range(60):
        router.put(key_for(i), SizedValue(i, 256), session=session)
        value, __ = router.get(key_for(i), session=session)
        assert value is not None and value.tag == i, i


def test_router_blocks_through_pending_election():
    router = make_replicated_router()
    for i in range(50):
        router.put(key_for(i), SizedValue(i, 256))
    for group in router.cluster.groups:
        group.catch_up()
    victim = router.cluster.groups[0]
    victim.crash_replica(victim.leader_idx)
    assert victim.election_pending
    # Direct router ops on the electing shard block through the
    # election (simulated time is charged) and then succeed.
    for i in range(50, 100):
        router.put(key_for(i), SizedValue(i, 256))
    assert victim.leader_idx is not None
    router.quiesce()
    for i in range(100):
        value, __ = router.get(key_for(i))
        assert value is not None and value.tag == i, i


def _kill_below_majority(group):
    """Leave one alive member: below the quorum of 2, election blocked."""
    alive = [m.replica_id for m in group.alive_members()]
    group.crash_replica(group.leader_idx)
    for rid in alive:
        if len(list(group.alive_members())) <= 1:
            break
        if group.members[rid].alive:
            group.crash_replica(rid)
    assert group.leader_idx is None and not group.election_pending


def test_leaderless_shard_sheds_with_no_leader_cause():
    router = make_replicated_router(n_shards=2, followers=2)
    for group in router.cluster.groups:
        _kill_below_majority(group)
    spec = ClientSpec(n_ops=100, rate_per_s=math.inf, key_space=200, seed=1)
    result = run_cluster(
        router, [spec], admission=AdmissionControl(policy="reject")
    )
    # Every request ends as an accounted no_leader drop -- never silent.
    assert result.completed == 0
    assert result.drops.get(DROP_NO_LEADER) == result.offered
    assert result.completed + result.dropped == result.offered


def test_leaderless_shard_defers_before_shedding():
    router = make_replicated_router(n_shards=2, followers=2)
    _kill_below_majority(router.cluster.groups[0])
    spec = ClientSpec(n_ops=100, rate_per_s=math.inf, key_space=200, seed=1)
    result = run_cluster(
        router,
        [spec],
        admission=AdmissionControl(policy="defer", max_retries=2),
    )
    # The healthy shard serves; the dead shard defers then sheds.
    assert result.completed > 0
    assert result.drops.get(DROP_NO_LEADER, 0) > 0
    assert router.cluster.stats.get("cluster.deferred") > 0
    assert result.completed + result.dropped == result.offered


def test_range_placement_router():
    router = make_router(placement_name="range", key_space=400)
    for i in range(400):
        router.put(key_for(i), SizedValue(i, 256))
    router.quiesce()
    # locality: each quarter of the key space lands wholly on one shard
    assert router.placement.shard_for(key_for(0)) == 0
    assert router.placement.shard_for(key_for(399)) == 3
    pairs, __ = router.scan(key_for(0), 400)
    assert len(pairs) == 400
