"""Sampling determinism for the live telemetry plane.

The contract under test: head/tail sampling decisions are pure functions
of ``(seed, op sequence number)`` and the simulated latency stream, so
two identical runs retain identical op sets, produce identical
OpenMetrics text, and never perturb the simulation itself.  Stalled ops
are retained at 100% regardless of the sampling rate.
"""

import pytest

from repro.obs.events import CAT_OP, CAT_STALL
from repro.obs.live import (
    HeadSampler,
    TailSampler,
    head_keep,
    openmetrics_text,
    splitmix64,
)
from repro.obs.runner import run_traced

pytestmark = pytest.mark.obs_live

LIVE = {"seed": 1, "stall_alert_s": 1e-5, "slo_threshold_s": 5e-6}


def _op_events(recorder):
    return [
        (e.name, e.ts, e.dur) for e in recorder.events if e.cat == CAT_OP
    ]


# ------------------------------------------------------------ pure functions


def test_splitmix64_is_a_64bit_pure_function():
    assert splitmix64(0) == splitmix64(0)
    seen = {splitmix64(x) for x in range(256)}
    assert len(seen) == 256, "finalizer collided on trivially small inputs"
    assert all(0 <= v < 2**64 for v in seen)


def test_head_keep_depends_only_on_seed_and_run():
    run_len = 16
    for seq in range(0, 512):
        assert head_keep(7, seq, 0.25, run_len) == head_keep(
            7, seq, 0.25, run_len
        )
        # Every seq in one run shares the run's decision.
        assert head_keep(7, seq, 0.25, run_len) == head_keep(
            7, (seq // run_len) * run_len, 0.25, run_len
        )
    # Different seeds disagree somewhere.
    assert any(
        head_keep(1, s, 0.25) != head_keep(2, s, 0.25) for s in range(512)
    )


def test_head_keep_rate_edges():
    assert not any(head_keep(3, s, 0.0) for s in range(256))
    assert all(head_keep(3, s, 1.0) for s in range(256))


def test_head_sampler_matches_head_keep_and_counts_exactly():
    sampler = HeadSampler(seed=5, rate=0.25, run_len=8)
    decisions = [sampler.advance() for _ in range(400)]
    expected = [head_keep(5, s, 0.25, 8) for s in range(400)]
    assert decisions == expected
    assert sampler.seen == 400
    assert sampler.kept == sum(expected)


def test_head_sampler_take_chunks_equal_scalar_walk():
    scalar = HeadSampler(seed=9, rate=1.0 / 64.0, run_len=16)
    flags = [scalar.advance() for _ in range(1000)]
    chunked = HeadSampler(seed=9, rate=1.0 / 64.0, run_len=16)
    rebuilt = []
    remaining = 1000
    while remaining:
        count, live = chunked.take(remaining)
        rebuilt.extend([live] * count)
        remaining -= count
    assert rebuilt == flags
    assert (chunked.seen, chunked.kept) == (scalar.seen, scalar.kept)


# ------------------------------------------------------------- tail sampler


def test_tail_batches_are_deterministic():
    stream = [((i * 37) % 100) / 1e6 for i in range(2000)]

    def run():
        tail = TailSampler(99.0, 512, 256)
        out = []
        for i in range(0, len(stream), 256):
            out.append(tail.observe_many(stream[i:i + 256]))
        return out, tail.threshold, tail.kept

    assert run() == run()


def test_tail_judges_batch_against_threshold_at_batch_start():
    tail = TailSampler(50.0, 8, 4)
    assert tail.observe_many([1.0, 2.0, 3.0, 4.0]) is None  # threshold inf
    assert tail.threshold == 2.0  # refreshed at batch end (p50 of buffer)
    # Everything above 2.0 in the next batch is an outlier, judged
    # against 2.0 even though the batch itself shifts the distribution.
    assert tail.observe_many([1.0, 5.0, 2.5, 0.5]) == [1, 2]
    assert tail.kept == 2


def test_tail_scalar_observe_matches_manual_threshold():
    tail = TailSampler(50.0, 4, 2)
    assert not tail.observe(1.0)  # threshold still inf
    assert not tail.observe(3.0)  # refresh fires after this op
    assert tail.threshold > 0
    assert tail.observe(tail.threshold + 1.0)


# ------------------------------------------------------- end-to-end retention


def test_identical_runs_retain_identical_op_sets_and_metrics():
    __, __, a = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    __, __, b = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    assert _op_events(a) == _op_events(b)
    assert a.sampling_meta() == b.sampling_meta()
    assert openmetrics_text(a) == openmetrics_text(b)


def test_retained_ops_are_a_subset_of_the_full_trace():
    __, __, live = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    __, __, full = run_traced("miodb", n=512, reads=64)
    full_ops = set(_op_events(full))
    retained = _op_events(live)
    assert retained, "live run retained nothing"
    assert len(retained) < len(full_ops), "sampling retained everything"
    missing = [op for op in retained if op not in full_ops]
    assert not missing, f"retained ops absent from the full trace: {missing[:3]}"


def test_every_stalled_op_is_retained():
    __, __, live = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    __, __, full = run_traced("miodb", n=512, reads=64)
    stall_times = [e.ts for e in full.events if e.cat == CAT_STALL]
    assert stall_times, "scenario produced no stalls; test is vacuous"
    ops = sorted(
        (e.ts, e.dur) for e in full.events if e.cat == CAT_OP
    )
    retained_starts = {ts for __, ts, __ in _op_events(live)}
    for stall_ts in stall_times:
        containing = [
            (ts, dur) for ts, dur in ops if ts <= stall_ts <= ts + dur
        ]
        assert containing, f"no op span contains stall at {stall_ts}"
        assert any(ts in retained_starts for ts, __ in containing), (
            f"op containing stall at {stall_ts} was not retained"
        )


def test_live_plane_never_perturbs_the_simulation():
    __, sys_live, live = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    __, sys_full, __ = run_traced("miodb", n=512, reads=64)
    assert sys_live.clock.now == sys_full.clock.now
    live_stats = {
        k: v for k, v in sys_live.stats.snapshot().items()
        if not k.startswith("live.")
    }
    assert live_stats == sys_full.stats.snapshot()
    meta = live.sampling_meta()
    assert meta["ops_seen"] == 576  # 512 puts + 64 reads
    assert meta["ops_retained"] == len(_op_events(live))
    assert meta["ops_retained"] == (
        meta["retained_head"] + meta["retained_tail"] + meta["retained_stall"]
    )
