"""Tests for replica groups: shipping, acks, reads, failover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.config import BenchScale
from repro.bench.factory import make_store
from repro.kvstore.values import SizedValue
from repro.persist.crash import CrashInjector, SimulatedCrash
from repro.replication import (
    ACK_ALL,
    ACK_LEADER,
    ACK_QUORUM,
    READ_FOLLOWER_EVENTUAL,
    READ_FOLLOWER_RYW,
    ReplicaGroup,
    ReplicationConfig,
    Session,
)
from repro.workloads.keys import key_for

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def make_group(followers=2, store_name="miodb", **config_kwargs):
    config = ReplicationConfig(followers=followers, **config_kwargs)
    return ReplicaGroup.build(store_name, SCALE, config=config)


# ------------------------------------------------------------ configuration


def test_config_validation():
    with pytest.raises(ValueError):
        ReplicationConfig(followers=-1)
    with pytest.raises(ValueError):
        ReplicationConfig(ack_policy="paxos")
    with pytest.raises(ValueError):
        ReplicationConfig(read_policy="nearest")
    with pytest.raises(ValueError):
        ReplicationConfig(ship_batch=0)
    with pytest.raises(ValueError):
        ReplicationConfig(election_timeout_s=0.0)


def test_quorum_math():
    assert ReplicationConfig(followers=0).quorum_size == 1
    assert ReplicationConfig(followers=2).quorum_size == 2
    assert ReplicationConfig(followers=4).quorum_size == 3
    assert ReplicationConfig(followers=2, ack_policy=ACK_LEADER).needed_follower_acks() == 0
    assert ReplicationConfig(followers=2, ack_policy=ACK_QUORUM).needed_follower_acks() == 1
    assert ReplicationConfig(followers=2, ack_policy=ACK_ALL).needed_follower_acks() == 2


def test_unreplicable_stores_are_rejected():
    # novelsm-nosst has no WAL at all; novelsm replays into a persistent
    # MemTable the generic apply path does not drive.
    for name in ("novelsm", "novelsm-nosst"):
        with pytest.raises(ValueError):
            make_group(followers=1, store_name=name)


# ------------------------------------------------------- shipping and acks


def test_followers_converge_after_catch_up():
    group = make_group(followers=2)
    for i in range(200):
        group.put(key_for(i), SizedValue(i, 256))
    group.delete(key_for(3))
    group.catch_up()
    group.quiesce()
    assert group.lag() == 0
    leader_state = dict(group.items())
    assert key_for(3) not in leader_state
    for follower in group.alive_followers():
        assert dict(follower.store.items()) == leader_state


def test_ack_quorum_bounds_follower_lag():
    group = make_group(followers=2, ack_policy=ACK_QUORUM)
    bound = 2 * group.config.ship_batch
    for i in range(150):
        group.put(key_for(i), SizedValue(i, 256))
        durable = sorted(f.durable_lsn for f in group.alive_followers())
        # Quorum ack: at least one follower holds the write durably.
        assert durable[-1] >= len(group.log)
        assert group.lag() <= bound
    assert group.stats.get("repl.lag_peak") <= bound


def test_ack_all_waits_for_every_follower():
    group = make_group(followers=2, ack_policy=ACK_ALL)
    for i in range(60):
        group.put(key_for(i), SizedValue(i, 256))
        assert all(
            f.durable_lsn >= len(group.log) for f in group.alive_followers()
        )


def test_ack_leader_never_waits():
    group = make_group(followers=2, ack_policy=ACK_LEADER)
    for i in range(60):
        group.put(key_for(i), SizedValue(i, 256))
    assert "repl.ack_wait_s" not in group.stats
    group.catch_up()
    assert group.lag() == 0


def test_k0_group_is_fingerprint_identical_to_flat_store():
    group = make_group(followers=0, ack_policy=ACK_LEADER)
    store, system = make_store("miodb", SCALE)
    for i in range(200):
        group.put(key_for(i), SizedValue(i, 256))
        store.put(key_for(i), SizedValue(i, 256))
    for i in range(200):
        group.get(key_for(i))
        store.get(key_for(i))
    group.quiesce()
    store.quiesce()
    assert group.clock.now == system.clock.now


# ----------------------------------------------------------------- failover


def test_leader_kill_elects_most_caught_up_follower():
    group = make_group(followers=2)
    for i in range(100):
        group.put(key_for(i), SizedValue(i, 256))
    group.catch_up()  # both followers equally caught up
    group.crash_replica(0)
    assert group.leader_idx is None and group.election_pending
    # The next write blocks through the election; lowest id breaks the tie.
    group.put(key_for(100), SizedValue(100, 256))
    assert group.leader_idx == 1
    assert group.members[1].role == "leader"
    assert group.elections == 1
    assert group.stats.get("repl.acked_lost") == 0.0
    group.catch_up()
    value, __ = group.get(key_for(42))
    assert value is not None and value.tag == 42


def test_failover_is_deterministic():
    def run():
        group = make_group(followers=2)
        for i in range(80):
            group.put(key_for(i), SizedValue(i, 256))
        group.crash_replica(0)
        for i in range(80, 120):
            group.put(key_for(i), SizedValue(i, 256))
        group.catch_up()
        group.quiesce()
        return group.leader_idx, group.clock.now, list(group.history)

    leader_a, clock_a, history_a = run()
    leader_b, clock_b, history_b = run()
    assert leader_a == leader_b
    assert clock_a == clock_b
    assert history_a == history_b


def test_crash_injector_kills_leader_mid_run():
    injector = CrashInjector()
    config = ReplicationConfig(followers=2)
    group = ReplicaGroup.build(
        "miodb", SCALE, config=config, crash_injector=injector
    )
    injector.arm("repl.put", after_hits=50)
    crashed_at = None
    for i in range(120):
        try:
            group.put(key_for(i), SizedValue(i, 256))
        except SimulatedCrash as crash:
            assert crash.point == "repl.put"
            crashed_at = i
            group.crash_replica(group.leader_idx)
            group.put(key_for(i), SizedValue(i, 256))  # blocks, then serves
    assert crashed_at is not None
    assert group.leader_idx == 1
    group.catch_up()
    leader_state = dict(group.items())
    for follower in group.alive_followers():
        assert dict(follower.store.items()) == leader_state


def test_election_blocked_below_majority_until_restart():
    group = make_group(followers=2)
    for i in range(40):
        group.put(key_for(i), SizedValue(i, 256))
    group.catch_up()
    group.crash_replica(1)
    group.crash_replica(0)  # leader down, one live member < quorum of 2
    assert group.leader_idx is None and not group.election_pending
    assert any(e["event"] == "election-blocked" for e in group.history)
    group.restart_replica(1)
    assert group.election_pending
    group.put(key_for(40), SizedValue(40, 256))
    assert group.leader_idx is not None
    group.catch_up()
    assert dict(group.items())[key_for(40)].tag == 40


def test_restarted_follower_rebuilds_from_the_group_log():
    group = make_group(followers=2)
    for i in range(60):
        group.put(key_for(i), SizedValue(i, 256))
    group.crash_replica(2)
    for i in range(60, 120):
        group.put(key_for(i), SizedValue(i, 256))
    group.restart_replica(2)
    assert group.members[2].durable_lsn == 0  # fresh replacement node
    group.catch_up()
    assert dict(group.members[2].store.items()) == dict(group.items())


# --------------------------------------------------------------- read paths


def test_follower_eventual_reads_round_robin():
    group = make_group(
        followers=2, read_policy=READ_FOLLOWER_EVENTUAL, ack_policy=ACK_ALL
    )
    for i in range(80):
        group.put(key_for(i), SizedValue(i, 256))
    group.catch_up()
    for i in range(80):
        value, __ = group.get(key_for(i))
        assert value is not None and value.tag == i


def test_follower_ryw_sees_own_write_immediately():
    group = make_group(followers=2, read_policy=READ_FOLLOWER_RYW)
    session = Session()
    for i in range(50):
        group.put(key_for(i), SizedValue(i, 256), session=session)
        value, __ = group.get(key_for(i), session=session)
        assert value is not None and value.tag == i, i


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=2**31),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=31)),
        min_size=1,
        max_size=60,
    ),
)
def test_follower_ryw_never_stale_for_own_writes(seed, ops):
    """Property: under follower-ryw a session's reads always reflect its
    own latest acknowledged write, whatever the seeded history."""
    from repro.sim.rng import XorShiftRng

    rng = XorShiftRng(seed)
    group = make_group(
        followers=2, read_policy=READ_FOLLOWER_RYW,
        ack_policy=ACK_LEADER,  # weakest acks: followers lag the most
    )
    session = Session()
    model = {}
    version = 0
    for is_put, key_index in ops:
        key = key_for(key_index)
        if is_put or key not in model:
            version += 1
            value = SizedValue((key_index, version), 256)
            group.put(key, value, session=session)
            model[key] = value
            # Occasionally stack unacked writes before reading back.
            if rng.next_float() < 0.5:
                continue
        value, __ = group.get(key, session=session)
        assert value is model[key]


# ------------------------------------------------------------ observability


def test_group_snapshot_reports_roles_and_lag():
    group = make_group(followers=2)
    for i in range(30):
        group.put(key_for(i), SizedValue(i, 256))
    doc = group.snapshot()
    assert doc["leader"] == 0
    assert doc["log_lsn"] == 31 or doc["log_lsn"] == 30
    roles = [m["role"] for m in doc["members"]]
    assert roles.count("leader") == 1
    assert all(m["lag"] >= 0 for m in doc["members"])
