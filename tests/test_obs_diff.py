"""Differential trace analysis (``repro diff``): ranking and verdicts.

Two pinned behaviors anchor the module: a same-seed self-diff reports
exactly zero deltas (analysis documents are byte-identical, so nothing
can differ), and diffing the repo's own recorded perf history across
the batching PR ranks the put/get kernel improvements exactly as the
history shows them.
"""

import json
import pathlib

import pytest

from repro.obs.analyze import (
    diff_analysis,
    diff_json,
    diff_perf,
    diff_verdict,
    render_diff,
)

pytestmark = pytest.mark.obs_diff

REPO = pathlib.Path(__file__).resolve().parent.parent


def analysis_doc(**overrides):
    doc = {
        "store": "miodb",
        "sim_time_s": 2.0,
        "events": 100,
        "attribution": {
            "ops": 50,
            "measured_s": 1.0,
            "queue_s": 0.25,
            "stall_s": {"memtable-full": 0.1},
            "slowest": {"index": 3, "measured_s": 0.5},
        },
        "stall_seconds_by_cause": {"memtable-full": 0.1},
        "conservation": {"ok": True},
    }
    doc.update(overrides)
    return doc


# ------------------------------------------------------------ analysis mode


def test_self_diff_reports_exactly_zero_deltas():
    doc = analysis_doc()
    diff = diff_analysis(doc, doc, "run-a", "run-b")
    assert diff["deltas"] == []
    assert diff_verdict(diff).startswith("no differences")


def test_self_diff_is_byte_stable():
    doc = analysis_doc()
    first = diff_json(diff_analysis(doc, doc))
    second = diff_json(diff_analysis(json.loads(json.dumps(doc)), doc))
    assert first == second


def test_deltas_rank_by_relative_magnitude():
    a = analysis_doc()
    b = analysis_doc(sim_time_s=2.2)  # 10% shift
    b["attribution"] = dict(a["attribution"], queue_s=0.75)  # 3x shift
    diff = diff_analysis(a, b)
    metrics = [row["metric"] for row in diff["deltas"]]
    assert metrics == ["attribution.queue_s", "sim_time_s"]
    top = diff["deltas"][0]
    assert top["a"] == 0.25 and top["b"] == 0.75
    assert top["delta"] == 0.5
    assert top["ratio"] == 3.0


def test_metrics_absent_on_one_side_diff_against_zero():
    a = analysis_doc()
    b = analysis_doc()
    b["stall_seconds_by_cause"] = {}
    diff = diff_analysis(a, b)
    rows = {row["metric"]: row for row in diff["deltas"]}
    assert rows["stall_seconds_by_cause.memtable-full"]["b"] == 0.0


def test_bookkeeping_and_examples_never_alarm_a_diff():
    a = analysis_doc()
    b = analysis_doc()
    b["conservation"] = {"ok": False}  # not a compared section
    b["attribution"] = dict(a["attribution"],
                            slowest={"index": 9, "measured_s": 9.0})
    assert diff_analysis(a, b)["deltas"] == []


def test_verdict_names_the_biggest_mover():
    a = analysis_doc()
    b = analysis_doc(events=200)
    verdict = diff_verdict(diff_analysis(a, b, "old", "new"))
    assert "events" in verdict
    assert "100" in verdict and "200" in verdict
    assert "from old to new" in verdict


# ---------------------------------------------------------------- perf mode


def perf_run(label, wall_by_kernel, fingerprints=None):
    kernels = {}
    for name, wall in wall_by_kernel.items():
        kernels[name] = {
            "ops": 1000,
            "wall_s": wall,
            "kops_wall": 1.0 / wall,
            "fingerprint": (fingerprints or {}).get(name, f"fp-{name}"),
        }
    return {"label": label, "store": "miodb", "ops_scale": "default",
            "kernels": kernels}


def test_perf_self_diff_is_empty():
    run = perf_run("base", {"put": 0.1, "get": 0.05})
    diff = diff_perf(run, run)
    assert diff["deltas"] == []
    assert diff_verdict(diff).startswith("no differences")


def test_perf_diff_ranks_by_speedup_magnitude():
    a = perf_run("old", {"put": 0.1, "get": 0.1, "scan": 0.1})
    b = perf_run("new", {"put": 0.05, "get": 0.1, "scan": 0.08})
    diff = diff_perf(a, b)
    kernels = [row["kernel"] for row in diff["deltas"]]
    assert kernels == ["put", "scan"]  # get unchanged -> dropped
    assert diff["deltas"][0]["speedup"] == pytest.approx(2.0)
    assert "put 2.00x faster" in diff_verdict(diff)


def test_perf_diff_flags_fingerprint_drift_first():
    a = perf_run("old", {"put": 0.1, "get": 0.1})
    b = perf_run("new", {"put": 0.01, "get": 0.1},
                 fingerprints={"get": "drifted"})
    diff = diff_perf(a, b)
    assert diff["deltas"][0]["kernel"] == "get"
    assert diff["deltas"][0]["fingerprint_match"] is False
    verdict = diff_verdict(diff)
    assert "drifted" in verdict and "get" in verdict


def test_repo_history_ranks_the_batching_pr_correctly():
    """The recorded trajectory must diff exactly as history happened:
    the batching PR's biggest wins were the get and put kernels."""
    from repro.bench.perf import find_run, load_results

    doc = load_results(REPO / "BENCH_perf.json")
    a = find_run(doc, "miodb", "default", "pr5-obs")
    b = find_run(doc, "miodb", "default", "pr6-batch")
    if a is None or b is None:
        pytest.skip("perf history lacks the pr5-obs/pr6-batch runs")
    diff = diff_perf(a, b)
    kernels = [row["kernel"] for row in diff["deltas"]]
    assert kernels[0] == "get"
    assert kernels[1] == "put"
    for row in diff["deltas"]:
        assert row["fingerprint_match"] is True
    assert "get" in diff_verdict(diff)
    assert "faster" in diff_verdict(diff)


# ------------------------------------------------------- band-check verdict


def test_check_band_embeds_the_diff_verdict():
    from repro.bench.perf import check_band

    ref = perf_run("base", {"put": 0.1, "get": 0.1})
    cur = perf_run("current", {"put": 0.9, "get": 0.1})["kernels"]
    violations = check_band(cur, ref, factor=3.0)
    assert len(violations) == 1
    assert "kernel put" in violations[0]
    assert "; diff: " in violations[0]
    assert "9.00x slower" in violations[0]
    assert check_band(ref["kernels"], ref, factor=3.0) == []


# -------------------------------------------------------------- CLI surface


def test_cli_diff_analysis_mode(tmp_path, capsys):
    from repro.cli import main

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    out = tmp_path / "diff.json"
    a.write_text(json.dumps(analysis_doc()))
    b.write_text(json.dumps(analysis_doc(sim_time_s=3.0)))
    rc = main(["diff", str(a), str(b), "--out", str(out)])
    assert rc == 0
    shown = capsys.readouterr().out
    assert "repro diff (analysis)" in shown
    assert "sim_time_s" in shown
    saved = json.loads(out.read_text())
    assert saved["mode"] == "analysis"
    assert saved["deltas"][0]["metric"] == "sim_time_s"


def test_cli_diff_self_is_silent_about_deltas(tmp_path, capsys):
    from repro.cli import main

    a = tmp_path / "a.json"
    a.write_text(json.dumps(analysis_doc()))
    rc = main(["diff", str(a), str(a)])
    assert rc == 0
    assert "no differences" in capsys.readouterr().out


def test_cli_diff_perf_mode_unknown_label_fails(tmp_path, capsys):
    from repro.cli import main

    history = tmp_path / "perf.json"
    history.write_text(json.dumps({"schema": 1, "runs": [
        perf_run("only", {"put": 0.1}),
    ]}))
    rc = main(["diff", "--perf", "--json", str(history), "only", "missing"])
    assert rc == 2
    assert "no recorded run" in capsys.readouterr().err


def test_cli_diff_perf_mode(tmp_path, capsys):
    from repro.cli import main

    history = tmp_path / "perf.json"
    history.write_text(json.dumps({"schema": 1, "runs": [
        perf_run("old", {"put": 0.1}),
        perf_run("new", {"put": 0.05}),
    ]}))
    rc = main(["diff", "--perf", "--json", str(history), "old", "new"])
    assert rc == 0
    shown = capsys.readouterr().out
    assert "repro diff (perf)" in shown
    assert "put 2.00x faster" in shown


def test_render_diff_truncates_with_a_pointer():
    a = analysis_doc()
    b = analysis_doc()
    b["stall_seconds_by_cause"] = {f"cause{i}": float(i + 1) for i in range(9)}
    # Not in the stall vocabulary, but diff inputs are plain documents.
    diff = diff_analysis(a, b)
    text = render_diff(diff, top=3)
    assert "more rows" in text
