"""Direct unit tests for MioDB's repository backends (lazy-copy targets)."""

import pytest

from repro.core.pmtable import PMTable
from repro.core.repository import NvmRepository, SsdRepository, newest_versions
from repro.core.options import MioOptions
from repro.persist.arena import Arena
from repro.sim.rng import XorShiftRng
from repro.skiplist.node import TOMBSTONE
from repro.skiplist.skiplist import SkipList

KB = 1 << 10


def make_pmtable(system, entries):
    """A swizzled PMTable holding ``(key, seq, value)`` entries."""
    sl = SkipList(XorShiftRng(3))
    nbytes = 0
    for key, seq, value in entries:
        vb = 0 if value is TOMBSTONE else 32
        node, __ = sl.insert(key, seq, value, vb)
        nbytes += node.nbytes
    arena = Arena(system.nvm, max(nbytes, 1), system.now, "test-pmtable")
    table = PMTable(system, sl, [arena], bloom=None, level=0)
    table.swizzled = True
    return table


def test_newest_versions_dedups():
    sl = SkipList(XorShiftRng(1))
    sl.insert(b"a", 3, b"new", 3)
    sl.insert(b"a", 1, b"old", 3)
    sl.insert(b"b", 2, b"x", 1)
    assert [(n.key, n.seq) for n in newest_versions(sl)] == [(b"a", 3), (b"b", 2)]


def test_nvm_ingest_inserts_and_counts(system):
    repo = NvmRepository(system)
    table = make_pmtable(system, [(b"a", 1, b"va"), (b"b", 2, b"vb")])
    seconds, apply = repo.ingest(table)
    assert seconds > 0
    assert apply is None  # eager mutation
    assert repo.entry_count == 2
    value, __ = repo.get(b"a")
    assert value == b"va"
    assert repo.lazy_copies == 1
    assert repo.arena.size == repo.data_bytes


def test_nvm_ingest_in_place_update(system):
    repo = NvmRepository(system)
    repo.ingest(make_pmtable(system, [(b"k", 1, b"old")]))
    repo.ingest(make_pmtable(system, [(b"k", 5, b"new")]))
    assert repo.entry_count == 1
    value, __ = repo.get(b"k")
    assert value == b"new"


def test_nvm_ingest_ignores_stale_versions(system):
    """A later-ingested table can hold an older version (force-drain can
    reorder levels); the repository must keep the newer value."""
    repo = NvmRepository(system)
    repo.ingest(make_pmtable(system, [(b"k", 9, b"newest")]))
    repo.ingest(make_pmtable(system, [(b"k", 2, b"stale")]))
    value, __ = repo.get(b"k")
    assert value == b"newest"


def test_nvm_ingest_tombstone_deletes(system):
    repo = NvmRepository(system)
    repo.ingest(make_pmtable(system, [(b"k", 1, b"v")]))
    size_before = repo.arena.size
    repo.ingest(make_pmtable(system, [(b"k", 5, TOMBSTONE)]))
    assert repo.entry_count == 0
    value, __ = repo.get(b"k")
    assert value is None
    assert repo.arena.size < size_before


def test_nvm_ingest_tombstone_without_target_is_dropped(system):
    repo = NvmRepository(system)
    repo.ingest(make_pmtable(system, [(b"ghost", 4, TOMBSTONE)]))
    assert repo.entry_count == 0


def test_nvm_scan_streams(system):
    from repro.kvstore.scans import CostCell

    repo = NvmRepository(system)
    repo.ingest(
        make_pmtable(system, [(b"a", 1, b"1"), (b"b", 2, b"2"), (b"c", 3, b"3")])
    )
    cost = CostCell()
    streams = repo.scan_streams(b"b", cost)
    items = [item[0] for s in streams for item in s]
    assert items == [b"b", b"c"]
    assert cost.seconds > 0


def test_ssd_repository_requires_ssd(system):
    with pytest.raises(ValueError):
        SsdRepository(system, MioOptions())


def test_ssd_ingest_builds_tables_with_apply(ssd_system):
    options = MioOptions(memtable_bytes=4 * KB, sstable_bytes=4 * KB)
    repo = SsdRepository(ssd_system, options)
    table = make_pmtable(
        ssd_system, [(b"k%02d" % i, i + 1, b"v") for i in range(30)]
    )
    seconds, apply = repo.ingest(table)
    assert seconds > 0
    assert apply is not None
    assert repo.entry_count == 0  # not visible until apply
    apply()
    assert repo.entry_count == 30
    value, __ = repo.get(b"k05")
    assert value == b"v"
    assert ssd_system.ssd.bytes_written > 0


def test_ssd_ingest_charges_serialization(ssd_system):
    options = MioOptions(memtable_bytes=4 * KB, sstable_bytes=4 * KB)
    repo = SsdRepository(ssd_system, options)
    before = ssd_system.stats.get("serialize.time_s")
    seconds, apply = repo.ingest(
        make_pmtable(ssd_system, [(b"a", 1, b"v"), (b"b", 2, b"v")])
    )
    apply()
    assert ssd_system.stats.get("serialize.time_s") > before
