"""Batched multi-op entry points (``multi_put``/``multi_get``/``multi_delete``).

The batched execution engine's core contract, asserted for every store
in the library: running an op sequence through the ``multi_*`` entry
points is **byte-identical** to running it one op at a time -- same
return values, same final store contents, same stats snapshot, same
simulated clock, and the same trace artifact.  Batching buys wall-clock
time only (docs/performance.md); nothing simulated may move.
"""

import pytest

from repro.bench.config import BenchScale
from repro.bench.factory import STORE_NAMES, make_store
from repro.kvstore.values import SizedValue
from repro.obs import chrome_trace_json
from repro.sim.rng import XorShiftRng

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def _op_sequence(n=700, key_space=220, seed=11):
    """A deterministic mixed put/get/delete sequence."""
    rng = XorShiftRng(seed)
    ops = []
    for i in range(n):
        draw = rng.next_below(100)
        key = b"key%05d" % rng.next_below(key_space)
        if draw < 55:
            ops.append(("put", key, SizedValue(("v", i), 256)))
        elif draw < 90:
            ops.append(("get", key, None))
        else:
            ops.append(("delete", key, None))
    return ops


def _run(name, batched, chunk=48, trace=False):
    """One run of the sequence; returns every observable artifact."""
    store, system = make_store(name, SCALE)
    recorder = system.attach_tracing() if trace else None
    ops = _op_sequence()
    outs = []
    if not batched:
        for kind, key, value in ops:
            if kind == "put":
                outs.append(store.put(key, value))
            elif kind == "get":
                outs.append(store.get(key))
            else:
                outs.append(store.delete(key))
    else:
        # Coalesce runs of consecutive same-kind ops, capped at `chunk`.
        i = 0
        while i < len(ops):
            j = i
            kind = ops[i][0]
            while j < len(ops) and ops[j][0] == kind and j - i < chunk:
                j += 1
            block = ops[i:j]
            if kind == "put":
                outs.extend(store.multi_put([(k, v) for __, k, v in block]))
            elif kind == "get":
                outs.extend(store.multi_get([k for __, k, __v in block]))
            else:
                outs.extend(store.multi_delete([k for __, k, __v in block]))
            i = j
    store.quiesce()
    items = list(store.items())
    snapshot = system.stats.snapshot()
    clock = system.clock.now
    if recorder is not None:
        recorder.detach()
        trace_text = chrome_trace_json(recorder, name)
    else:
        trace_text = ""
    return outs, items, snapshot, clock, trace_text


@pytest.mark.parametrize("name", STORE_NAMES)
def test_batched_run_is_byte_identical(name):
    unbatched = _run(name, batched=False)
    batched = _run(name, batched=True)
    labels = ("outputs", "items", "stats", "clock", "trace")
    for label, (a, b) in zip(labels, zip(unbatched, batched)):
        assert a == b, f"{name}: batched run diverged on {label}"


def test_batched_trace_is_byte_identical_miodb():
    # Trace comparison is expensive; one store with full background
    # machinery (flush + zero-copy + lazy-copy) covers the event stream.
    unbatched = _run("miodb", batched=False, trace=True)
    batched = _run("miodb", batched=True, trace=True)
    assert unbatched[4] == batched[4]
    assert unbatched[:4] == batched[:4]


def test_odd_chunk_sizes_do_not_matter():
    reference = _run("miodb", batched=False)
    for chunk in (1, 7, 700):
        assert _run("miodb", batched=True, chunk=chunk) == reference


# ----------------------------------------------------------- small contracts


def _mio():
    store, system = make_store("miodb", SCALE)
    return store, system


def test_multi_put_returns_per_op_latencies():
    store, __ = _mio()
    items = [(b"key%03d" % i, SizedValue(i, 128)) for i in range(10)]
    latencies = store.multi_put(items)
    assert len(latencies) == 10
    assert all(lat > 0 for lat in latencies)
    singles = [store.put(b"more%03d" % i, SizedValue(i, 128)) for i in range(3)]
    assert all(lat > 0 for lat in singles)


def test_multi_get_matches_get():
    store, __ = _mio()
    store.multi_put([(b"key%03d" % i, SizedValue(i, 128)) for i in range(40)])
    keys = [b"key%03d" % i for i in (0, 39, 17)] + [b"missing"]
    results = store.multi_get(keys)
    assert [v.tag for v, __lat in results[:3]] == [0, 39, 17]
    assert results[3][0] is None
    assert all(lat > 0 for __v, lat in results)


def test_multi_delete_writes_tombstones():
    store, __ = _mio()
    store.multi_put([(b"key%03d" % i, SizedValue(i, 128)) for i in range(6)])
    store.multi_delete([b"key000", b"key003"])
    assert store.get(b"key000")[0] is None
    assert store.get(b"key003")[0] is None
    assert store.get(b"key001")[0].tag == 1


def test_empty_batches_are_free():
    store, system = _mio()
    before = system.clock.now
    assert store.multi_put([]) == []
    assert store.multi_get([]) == []
    assert store.multi_delete([]) == []
    assert system.clock.now == before
    assert system.stats.get("op.put") == 0.0
    assert system.stats.get("op.get") == 0.0


def test_multi_put_validates_before_applying():
    store, system = _mio()
    with pytest.raises(ValueError):
        store.multi_put([(b"good", b"v"), (b"", b"v")])
    # Validation happens before any op runs: nothing was applied.
    assert store.get(b"good")[0] is None
    assert system.stats.get("op.put") == 0.0
    with pytest.raises(ValueError):
        store.multi_delete([b"ok", b""])
    reads_before = system.stats.get("op.get")
    with pytest.raises(ValueError):
        store.multi_get([b"ok", b""])
    assert system.stats.get("op.get") == reads_before


# -------------------------------------------------- workload-level batching


def test_dbbench_batch_size_is_equivalent():
    from repro.workloads.dbbench import (
        delete_random,
        fill_random,
        overwrite,
        read_random,
        read_seq,
    )

    def drive(batch):
        store, system = make_store("miodb", SCALE)
        fill_random(store, 300, 256, batch_size=batch)
        read_random(store, 120, 300, batch_size=batch)
        read_seq(store, 80, 300, batch_size=batch)
        overwrite(store, 90, 300, 256, batch_size=batch)
        delete_random(store, 40, 300, batch_size=batch)
        store.quiesce()
        snapshot = system.stats.snapshot()
        return list(store.items()), snapshot, system.clock.now

    assert drive(None) == drive(37)


def test_ycsb_batch_size_is_equivalent():
    from repro.workloads.ycsb import YCSB_WORKLOADS, load_phase, run_workload

    def drive(batch, wl):
        store, system = make_store("miodb", SCALE)
        load_phase(store, 200, 256, batch_size=batch)
        run_workload(
            store, YCSB_WORKLOADS[wl], 300, 200, 256,
            batch_size=batch, check_reads=(wl != "D"),
        )
        store.quiesce()
        snapshot = system.stats.snapshot()
        return list(store.items()), snapshot, system.clock.now

    for wl in ("A", "D", "E", "F"):
        assert drive(None, wl) == drive(29, wl), wl


def test_workload_batch_size_validation():
    from repro.workloads.dbbench import fill_random
    from repro.workloads.ycsb import YCSB_WORKLOADS, load_phase, run_workload

    store, __ = _mio()
    with pytest.raises(ValueError):
        fill_random(store, 10, 128, batch_size=0)
    with pytest.raises(ValueError):
        load_phase(store, 10, 128, batch_size=-1)
    with pytest.raises(ValueError):
        run_workload(store, YCSB_WORKLOADS["A"], 10, 10, 128, batch_size=0)
