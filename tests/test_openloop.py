"""Tests for the open-loop load generator."""

import pytest

from repro.bench import make_store
from repro.bench.config import BenchScale
from repro.kvstore.values import SizedValue
from repro.workloads.openloop import run_open_loop

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=64 * KB, dataset_bytes=1 << 20, value_size=1024)


def writer(store, value_size=1024):
    def op(i):
        store.put(b"key%08d" % (i % 4000), SizedValue(i, value_size))

    return op


def test_rate_validation():
    store, __ = make_store("miodb", SCALE)
    with pytest.raises(ValueError):
        run_open_loop(store, writer(store), 10, 0)


def test_low_rate_response_equals_service_time():
    store, __ = make_store("miodb", SCALE)
    result = run_open_loop(store, writer(store), 500, rate_per_s=1000,
                           poisson=False)
    # far below capacity: no queueing, response ~ a few microseconds
    assert not result.saturated
    assert result.response.p999 < 1e-3
    assert result.max_queue_delay < 1e-3


def test_overload_saturates_and_queues():
    store, system = make_store("leveldb", SCALE)
    # LevelDB sustains well under 100K writes/s at this scale; offer 10x
    result = run_open_loop(store, writer(store), 3000, rate_per_s=2_000_000)
    assert result.saturated
    assert result.achieved_rate < result.offered_rate
    # queueing delay dwarfs the per-op service time
    assert result.response.p999 > 10 * result.response.p50 or (
        result.max_queue_delay > 1e-3
    )


def test_miodb_sustains_higher_open_loop_rate_than_leveldb():
    achieved = {}
    for name in ("miodb", "leveldb"):
        store, __ = make_store(name, SCALE)
        result = run_open_loop(store, writer(store), 3000, rate_per_s=500_000)
        achieved[name] = result.achieved_rate
    assert achieved["miodb"] > achieved["leveldb"]


def test_poisson_and_fixed_arrivals_differ():
    store, __ = make_store("miodb", SCALE)
    fixed = run_open_loop(store, writer(store), 400, 50_000, poisson=False)
    store2, __ = make_store("miodb", SCALE)
    pois = run_open_loop(store2, writer(store2), 400, 50_000, poisson=True)
    # bursty arrivals produce a worse tail than a perfectly paced stream
    assert pois.response.p999 >= fixed.response.p999


def test_infinite_rate_runs_closed_loop():
    import math

    store, __ = make_store("miodb", SCALE)
    result = run_open_loop(store, writer(store), 500, rate_per_s=math.inf)
    # Closed loop: each op is issued the instant the previous one
    # completes, so there is never queueing delay.
    assert result.ops == 500
    assert result.max_queue_delay == 0.0
    assert math.isinf(result.offered_rate)
    # "Achieved < offered" is meaningless at an infinite offered rate.
    assert not result.saturated
    assert result.achieved_rate > 0


def test_closed_loop_matches_back_to_back_service_times():
    import math

    store, __ = make_store("miodb", SCALE)
    closed = run_open_loop(store, writer(store), 300, rate_per_s=math.inf)
    # A second store driven back-to-back (no pacing at all) takes the
    # same simulated time as the closed-loop run.
    store2, system2 = make_store("miodb", SCALE)
    op = writer(store2)
    t0 = system2.clock.now
    for i in range(300):
        op(i)
        system2.executor.settle()
    assert closed.achieved_rate == pytest.approx(300 / (system2.clock.now - t0))
