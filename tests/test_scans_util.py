"""Property tests for the shared lazy-scan machinery."""

from hypothesis import given, settings, strategies as st

from repro.kvstore.scans import merged_entries, merged_scan
from repro.skiplist.node import TOMBSTONE

entry_lists = st.lists(
    st.tuples(st.binary(min_size=1, max_size=4), st.booleans()),
    max_size=40,
)


def build_streams(spec_lists):
    """Turn key/tombstone specs into sorted streams with global seqs."""
    seq = 0
    streams = []
    model = {}
    for spec in spec_lists:
        rows = []
        for key, is_tombstone in spec:
            seq += 1
            value = TOMBSTONE if is_tombstone else ("v", seq)
            rows.append((key, seq, value, 10))
        rows.sort(key=lambda e: (e[0], -e[1]))
        streams.append(rows)
    # model applies streams in creation order; later seq wins per key
    flat = sorted((e for rows in streams for e in rows), key=lambda e: e[1])
    for key, __, value, __n in flat:
        if value is TOMBSTONE:
            model.pop(key, None)
        else:
            model[key] = value
    return streams, model


@settings(max_examples=80)
@given(st.lists(entry_lists, max_size=5))
def test_merged_scan_matches_model(spec_lists):
    streams, model = build_streams(spec_lists)
    pairs = merged_scan([iter(s) for s in streams], count=10**6)
    assert pairs == sorted(model.items())


@settings(max_examples=60)
@given(st.lists(entry_lists, max_size=4), st.integers(min_value=0, max_value=8))
def test_merged_scan_count_is_prefix(spec_lists, count):
    streams, model = build_streams(spec_lists)
    limited = merged_scan([iter(s) for s in streams], count)
    full = sorted(model.items())
    assert limited == full[:count]


def test_merged_entries_keeps_seq_and_bytes():
    a = [(b"k", 5, ("v", 5), 10)]
    b = [(b"k", 1, ("v", 1), 10), (b"z", 2, ("v", 2), 7)]
    out = merged_entries([iter(a), iter(b)], 10)
    assert out == [(b"k", 5, ("v", 5), 10), (b"z", 2, ("v", 2), 7)]


def test_merged_scan_laziness():
    """Streams advance only as far as the requested count requires."""
    pulled = []

    def stream(name, rows):
        for row in rows:
            pulled.append(name)
            yield row

    a = stream("a", [(b"a%03d" % i, 1000 + i, "v", 1) for i in range(100)])
    b = stream("b", [(b"z", 1, "v", 1)])
    merged_scan([a, b], count=3)
    # stream b yields once (its head enters the heap); stream a advances
    # only a handful of entries, not all 100
    assert pulled.count("a") <= 6
