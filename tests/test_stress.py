"""Deterministic mixed stress across every store, with invariant checks.

A longer, adversarial operation stream: hot keys, overwrites, deletes,
scans, and bursts, verified against a dict model at checkpoints.  MioDB
additionally runs its internal invariant verifier mid-stream.
"""

import pytest

from repro.bench import STORE_NAMES, make_store
from repro.bench.config import BenchScale
from repro.core import MioDB
from repro.core.verifier import verify_store
from repro.kvstore.values import SizedValue
from repro.sim.rng import XorShiftRng

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=512,
                   nvm_buffer_bytes=64 * KB)
KEYSPACE = 250
OPS = 2500


def run_stress(store, seed=97):
    rng = XorShiftRng(seed)
    model = {}
    for i in range(OPS):
        draw = rng.next_below(100)
        # zipf-ish hotspot: half the traffic hits 10% of the keys
        if rng.next_below(2):
            idx = rng.next_below(KEYSPACE // 10)
        else:
            idx = rng.next_below(KEYSPACE)
        key = b"key%06d" % idx
        if draw < 55:
            store.put(key, SizedValue(i, 512))
            model[key] = i
        elif draw < 70:
            store.delete(key)
            model.pop(key, None)
        elif draw < 90:
            value, __ = store.get(key)
            expected = model.get(key)
            if expected is None:
                assert value is None, (key, i)
            else:
                assert value is not None and value.tag == expected, (key, i)
        else:
            count = 1 + rng.next_below(8)
            pairs, __ = store.scan(key, count)
            expected_keys = sorted(k for k in model if k >= key)[:count]
            assert [k for k, __v in pairs] == expected_keys, (key, i)
        if i % 500 == 499 and isinstance(store, MioDB):
            verify_store(store)
    store.quiesce()
    for key, tag in model.items():
        value, __ = store.get(key)
        assert value is not None and value.tag == tag, key
    return model


@pytest.mark.parametrize("name", STORE_NAMES)
def test_mixed_stress(name):
    store, __ = make_store(name, SCALE)
    model = run_stress(store)
    assert model  # the stream definitely left data behind


def test_stress_is_deterministic():
    times = []
    for __ in range(2):
        store, system = make_store("miodb", SCALE)
        run_stress(store)
        times.append(system.now)
    assert times[0] == times[1]
