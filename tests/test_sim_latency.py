"""Unit tests for latency recording and percentile summaries."""

import pytest

from repro.sim.latency import LatencyRecorder, percentile


def test_percentile_empty():
    assert percentile([], 99) == 0.0


def test_percentile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(samples, 50) == 5.0
    assert percentile(samples, 90) == 9.0
    assert percentile(samples, 100) == 10.0
    assert percentile(samples, 10) == 1.0


def test_percentile_out_of_range():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_recorder_percentile_empty_returns_none():
    rec = LatencyRecorder()
    assert rec.percentile(99) is None
    assert rec.percentile(99, kind="get") is None
    rec.record("put", 1.0, 2e-6)
    # A kind with no samples is still empty even if others have data.
    assert rec.percentile(50, kind="get") is None


def test_recorder_percentile_single_sample_returns_it():
    rec = LatencyRecorder()
    rec.record("get", 1.0, 7e-6)
    for q in (0.0, 50.0, 99.0, 100.0):
        assert rec.percentile(q, kind="get") == 7e-6
    assert rec.percentile(99) == 7e-6


def test_recorder_percentile_matches_module_function():
    rec = LatencyRecorder()
    values = [5e-6, 1e-6, 3e-6, 2e-6, 4e-6]
    for i, v in enumerate(values):
        rec.record("get", float(i), v)
    assert rec.percentile(50, kind="get") == percentile(sorted(values), 50)
    assert rec.percentile(100) == 5e-6


def test_recorder_percentile_out_of_range():
    rec = LatencyRecorder()
    rec.record("get", 1.0, 1e-6)
    with pytest.raises(ValueError):
        rec.percentile(-0.1)
    with pytest.raises(ValueError):
        rec.percentile(100.1)


def test_summary_basic():
    rec = LatencyRecorder()
    for i in range(1, 101):
        rec.record("get", float(i), i * 1e-6)
    s = rec.summary("get")
    assert s.count == 100
    assert s.p90 == pytest.approx(90e-6)
    assert s.p99 == pytest.approx(99e-6)
    assert s.max == pytest.approx(100e-6)
    assert s.mean == pytest.approx(50.5e-6)


def test_summary_p999_catches_tail():
    rec = LatencyRecorder()
    for i in range(999):
        rec.record("put", float(i), 1e-6)
    rec.record("put", 1000.0, 1.0)  # one huge stall
    s = rec.summary("put")
    assert s.p999 == 1.0
    assert s.p90 == 1e-6


def test_summary_empty():
    s = LatencyRecorder().summary()
    assert s.count == 0
    assert s.mean == 0.0


def test_kinds_and_counts():
    rec = LatencyRecorder()
    rec.record("get", 0.0, 1e-6)
    rec.record("put", 0.0, 1e-6)
    rec.record("put", 0.1, 2e-6)
    assert rec.kinds() == ["get", "put"]
    assert rec.count("put") == 2
    assert rec.count() == 3


def test_pooled_summary_across_kinds():
    rec = LatencyRecorder()
    rec.record("get", 0.0, 1e-6)
    rec.record("put", 0.0, 3e-6)
    assert rec.summary().count == 2
    assert rec.summary().mean == pytest.approx(2e-6)


def test_as_micros():
    rec = LatencyRecorder()
    rec.record("get", 0.0, 15.7e-6)
    micros = rec.summary("get").as_micros()
    assert micros["avg"] == pytest.approx(15.7)


def test_series_buckets_average():
    rec = LatencyRecorder()
    for i in range(100):
        rec.record("put", float(i), 1e-6 if i < 50 else 3e-6)
    series = rec.series("put", buckets=2)
    assert len(series) == 2
    assert series[0][1] == pytest.approx(1e-6)
    assert series[1][1] == pytest.approx(3e-6)


def test_series_empty():
    assert LatencyRecorder().series() == []


def test_merge_from():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record("get", 0.0, 1e-6)
    b.record("get", 1.0, 2e-6)
    a.merge_from(b)
    assert a.count("get") == 2


def test_merge_returns_new_recorder_equal_to_pooled_samples():
    from repro.sim.rng import XorShiftRng

    rng = XorShiftRng(42)
    a = LatencyRecorder()
    b = LatencyRecorder()
    pooled = LatencyRecorder()
    for i in range(500):
        sample = (rng.next_below(1000) + 1) * 1e-7
        target = a if i % 3 else b
        target.record("response", i * 1e-4, sample)
        pooled.record("response", i * 1e-4, sample)
    merged = a.merge(b)
    # ``merge`` is pure: a new recorder, inputs untouched.
    assert merged is not a and merged is not b
    assert a.count("response") + b.count("response") == 500
    got = merged.summary("response")
    want = pooled.summary("response")
    assert got.count == want.count == 500
    for attr in ("mean", "p50", "p90", "p99", "p999", "max"):
        assert getattr(got, attr) == getattr(want, attr), attr


def test_merge_keeps_kinds_separate():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record("get", 0.0, 1e-6)
    b.record("put", 0.0, 2e-6)
    merged = a.merge(b)
    assert merged.kinds() == ["get", "put"]
    assert merged.count("get") == 1
    assert merged.count("put") == 1


def test_window_snapshot_peek_does_not_consume():
    rec = LatencyRecorder()
    for i in range(10):
        rec.record("put", i * 1e-4, (i + 1) * 1e-6)
    peek = rec.window_snapshot()
    assert peek.count == 10
    again = rec.window_snapshot()
    assert again.count == 10
    assert again.p50 == peek.p50


def test_window_snapshot_reset_advances_the_cursor():
    rec = LatencyRecorder()
    for i in range(4):
        rec.record("put", i * 1e-4, 1e-6)
    first = rec.window_snapshot(reset=True)
    assert first.count == 4
    assert rec.window_snapshot().count == 0
    rec.record("put", 1.0, 5e-6)
    second = rec.window_snapshot(reset=True)
    assert second.count == 1
    assert second.p50 == 5e-6
    assert second.max == 5e-6


def test_window_snapshot_per_kind_cursors_are_independent():
    rec = LatencyRecorder()
    rec.record("put", 0.0, 1e-6)
    rec.record("get", 0.0, 3e-6)
    assert rec.window_snapshot(kind="put", reset=True).count == 1
    # Resetting "put" leaves "get"'s window untouched.
    assert rec.window_snapshot(kind="get").count == 1
    pooled = rec.window_snapshot(reset=True)
    assert pooled.count == 1  # only the unconsumed "get" sample
    assert pooled.p50 == 3e-6
    assert rec.window_snapshot().count == 0


def test_window_snapshot_empty_recorder_is_a_zero_summary():
    rec = LatencyRecorder()
    snap = rec.window_snapshot()
    assert snap.count == 0
    assert snap.mean == snap.p50 == snap.p99 == snap.max == 0.0


def test_window_snapshot_matches_summary_over_the_same_samples():
    from repro.sim.rng import XorShiftRng

    rng = XorShiftRng(9)
    rec = LatencyRecorder()
    rec.record("put", 0.0, 1e-3)  # consumed before the window under test
    rec.window_snapshot(reset=True)
    control = LatencyRecorder()
    for i in range(200):
        sample = (rng.next_below(1000) + 1) * 1e-7
        rec.record("put", i * 1e-4, sample)
        control.record("put", i * 1e-4, sample)
    got = rec.window_snapshot(reset=True)
    want = control.summary("put")
    assert got.count == want.count == 200
    for attr in ("mean", "p50", "p90", "p99", "p999", "max"):
        assert getattr(got, attr) == getattr(want, attr), attr
