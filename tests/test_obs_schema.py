"""Schema and determinism tests for the repro.obs tracing layer.

Three contracts from docs/observability.md are pinned here:

- **event schema**: every store emits the event vocabulary it is
  capable of (op spans always; flush/compact/stall for stores with
  background work), timestamps are simulated and monotone, and every
  stall carries a documented ``cause``;
- **exporter schema**: the Chrome trace-event JSON document has the
  structure Perfetto expects;
- **determinism**: a seeded ``repro trace`` run is byte-identical
  across invocations, down to a pinned content hash.
"""

import hashlib
import json

import pytest

from repro.bench.factory import STORE_NAMES
from repro.obs import (
    CAT_COMPACT,
    CAT_FLUSH,
    CAT_OP,
    CAT_STALL,
    CAT_TRANSFER,
    STALL_CAUSES,
    chrome_trace_json,
    run_traced,
    to_chrome_trace,
)

#: Which event categories each store's background machinery can emit.
#: novelsm-nosst persists everything in its NVM skip list: no flushes,
#: no compactions, and therefore nothing to stall on.
BACKGROUND_STORES = tuple(n for n in STORE_NAMES if n != "novelsm-nosst")

_RUNS = {}


def _traced(name):
    """One traced run per store, shared across the schema tests."""
    if name not in _RUNS:
        _RUNS[name] = run_traced(name, n=2048, value_size=1024, reads=256)
    return _RUNS[name]


# ------------------------------------------------------------ event schema


@pytest.mark.parametrize("name", STORE_NAMES)
def test_every_store_emits_op_spans_with_monotone_timestamps(name):
    store, system, recorder = _traced(name)
    ops = recorder.spans(CAT_OP)
    assert len(ops) == 2048 + 256
    assert {e.name for e in ops} == {"put", "get"}
    last = 0.0
    for event in ops:
        # Foreground ops are serial: spans are ordered and non-negative.
        assert event.ts >= last
        assert event.dur >= 0.0
        last = event.ts
    assert all(e.track == "foreground" for e in ops)
    # Every timestamp is simulated: nothing beyond the final clock.
    horizon = system.clock.now
    for event in recorder.events:
        assert 0.0 <= event.ts <= horizon
        if event.dur is not None:
            assert event.ts + event.dur <= horizon + 1e-12


@pytest.mark.parametrize("name", STORE_NAMES)
def test_transfers_carry_byte_counts_per_device(name):
    __, system, recorder = _traced(name)
    transfers = recorder.instants(CAT_TRANSFER)
    assert transfers
    for event in transfers:
        assert event.track.startswith("dev:")
        assert event.name in ("read", "write")
        assert event.args["bytes"] > 0
        assert isinstance(event.args["seq"], bool)
    device_names = {d.name for d in system.devices()}
    assert {e.track[len("dev:"):] for e in transfers} <= device_names


@pytest.mark.parametrize("name", BACKGROUND_STORES)
def test_background_stores_emit_flush_compact_and_stalls(name):
    __, __, recorder = _traced(name)
    flushes = recorder.spans(CAT_FLUSH)
    assert flushes, f"{name} traced no flush jobs"
    assert all(e.track.startswith("worker:") for e in flushes)
    assert all(
        e.args["bytes"] > 0 for e in flushes if e.args and "bytes" in e.args
    )

    compacts = recorder.spans(CAT_COMPACT)
    assert compacts, f"{name} traced no compactions"
    for event in compacts:
        assert event.track.startswith("worker:")
        assert event.args["level"] >= 0
        assert event.args["bytes"] > 0

    stalls = recorder.select(cat=CAT_STALL)
    assert stalls, f"{name} traced no stalls at trace scale"
    for event in stalls:
        assert event.args["cause"] in STALL_CAUSES
    assert sum(recorder.stall_seconds_by_cause().values()) > 0.0


def test_nosst_store_emits_no_background_events():
    __, __, recorder = _traced("novelsm-nosst")
    counts = recorder.counts_by_category()
    assert set(counts) == {CAT_OP, CAT_TRANSFER}


def test_miodb_compactions_cover_multiple_levels():
    __, __, recorder = _traced("miodb")
    levels = {e.args["level"] for e in recorder.spans(CAT_COMPACT)}
    assert len(levels) >= 2


# --------------------------------------------------------- exporter schema


def test_chrome_trace_document_schema():
    __, __, recorder = _traced("leveldb")
    doc = to_chrome_trace(recorder, process_name="leveldb")
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["generator"] == "repro.obs"
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
    assert "foreground" in names
    assert any(n.startswith("worker:") for n in names)
    assert any(n.startswith("dev:") for n in names)
    assert {e["args"]["name"] for e in metadata if e["name"] == "process_name"} == {
        "leveldb"
    }
    tids = {e["tid"] for e in metadata if e["name"] == "thread_name"}
    for event in events:
        if event["ph"] == "M":
            continue
        assert event["ph"] in ("X", "i")
        assert event["pid"] == 1
        assert event["tid"] in tids
        assert event["ts"] >= 0.0
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
        else:
            assert event["s"] == "t"
    # The serialized form is valid JSON and round-trips.
    assert json.loads(chrome_trace_json(recorder, "leveldb")) == json.loads(
        json.dumps(doc)
    )


# ------------------------------------------------------------- determinism

#: Pinned fingerprint of `run_traced("miodb", n=512, value_size=1024,
#: reads=64, seed=1)`.  The trace layer promises byte-reproducible
#: artifacts; if an intentional change to the simulated model or the
#: event vocabulary moves these, re-pin them alongside BENCH_perf.json.
PINNED_COUNTS = {"transfer": 1476, "op": 576, "flush": 16, "compact": 7, "stall": 5}
PINNED_CLOCK = 0.0017989877593358522
PINNED_SHA256 = "20bae2caa49a92e3a29d55eb6184d3168c0166ca96e7ade942db6bd0e9d0915b"

#: Pinned fingerprint of the 3-shard cluster trace built by
#: :func:`_traced_cluster` below -- one recorder (one Perfetto process)
#: per shard, merged by ``cluster_trace_json``.
PINNED_CLUSTER_SHA256 = (
    "321864ed6c04d78335d2791d4f9fdd77c0c2858ae8d327a8573eb250c2ac9d0c"
)


def test_trace_run_matches_pinned_fingerprint():
    __, system, recorder = run_traced("miodb", n=512, value_size=1024, reads=64)
    assert recorder.counts_by_category() == PINNED_COUNTS
    assert system.clock.now == PINNED_CLOCK
    text = chrome_trace_json(recorder, process_name="miodb")
    assert hashlib.sha256(text.encode()).hexdigest() == PINNED_SHA256


def _coalesced_run():
    """A deterministic batched run traced in coalesced op-span mode."""
    from repro.bench.config import BenchScale
    from repro.bench.factory import make_store
    from repro.kvstore.values import SizedValue
    from repro.workloads.keys import key_for

    scale = BenchScale(
        memtable_bytes=8 << 10, dataset_bytes=1 << 20, value_size=256
    )
    store, system = make_store("miodb", scale)
    recorder = system.attach_tracing(coalesce_ops=True)
    for at in range(0, 256, 64):
        store.multi_put([
            (key_for(i), SizedValue(("c", i), 256)) for i in range(at, at + 64)
        ])
    for at in range(0, 64, 32):
        store.multi_get([key_for(i) for i in range(at, at + 32)])
    store.multi_delete([key_for(i) for i in range(8)])
    store.quiesce()
    recorder.detach()
    return store, system, recorder


#: Pinned fingerprint of the coalesced-mode trace built by
#: :func:`_coalesced_run`: 256 puts in 4 batches, 64 gets in 2, 8
#: deletes in 1 -- exactly 7 op spans, each carrying the batched-args
#: schema.  Re-pin alongside PINNED_SHA256 on intentional model changes.
PINNED_COALESCED_SHA256 = (
    "8699e33c5b69e8b425aefe71f4cfa4b5387a1cb450cdbfc55fa372309a966d15"
)


def test_coalesced_op_span_schema():
    __, system, recorder = _coalesced_run()
    ops = recorder.spans(CAT_OP)
    assert [(e.name, e.args["batch"]) for e in ops] == [
        ("put", 64), ("put", 64), ("put", 64), ("put", 64),
        ("get", 32), ("get", 32), ("delete", 8),
    ]
    horizon = system.clock.now
    for event in ops:
        starts, durs = event.args["starts"], event.args["durs"]
        n = event.args["batch"]
        assert len(starts) == len(durs) == n
        # The span covers the batch exactly...
        assert event.track == "foreground"
        assert event.ts == starts[0]
        assert event.ts + event.dur == starts[-1] + durs[-1] <= horizon
        # ...and batched ops are contiguous on the simulated clock:
        # nothing advances time between two ops of one batch.
        for i in range(n - 1):
            assert starts[i] + durs[i] == starts[i + 1]
        assert all(d >= 0.0 for d in durs)


def test_coalesced_trace_matches_pinned_fingerprint():
    __, __, recorder = _coalesced_run()
    text = chrome_trace_json(recorder, process_name="miodb")
    digest = hashlib.sha256(text.encode()).hexdigest()
    assert digest == PINNED_COALESCED_SHA256


def test_coalesced_mode_changes_no_simulated_state():
    """Coalescing rewrites the trace, never the simulated run."""
    from repro.bench.config import BenchScale
    from repro.bench.factory import make_store
    from repro.kvstore.values import SizedValue
    from repro.workloads.keys import key_for

    scale = BenchScale(
        memtable_bytes=8 << 10, dataset_bytes=1 << 20, value_size=256
    )

    def drive(coalesce):
        store, system = make_store("miodb", scale)
        system.attach_tracing(coalesce_ops=coalesce)
        for at in range(0, 256, 64):
            store.multi_put([
                (key_for(i), SizedValue(("c", i), 256))
                for i in range(at, at + 64)
            ])
        store.quiesce()
        system.detach_tracing()
        return system.clock.now, system.stats.snapshot(), list(store.items())

    assert drive(False) == drive(True)


def _traced_cluster():
    """A small traced 3-shard cluster run (one recorder per shard)."""
    import math

    from repro.bench.config import BenchScale
    from repro.cluster import ClientSpec, Cluster, ShardRouter, run_cluster
    from repro.kvstore.values import SizedValue
    from repro.workloads.keys import key_for

    scale = BenchScale(
        memtable_bytes=8 << 10, dataset_bytes=1 << 20, value_size=256
    )
    cluster = Cluster("miodb", n_shards=3, scale=scale)
    router = ShardRouter(cluster)
    recorders = cluster.attach_tracing()
    for i in range(300):
        router.put(key_for(i), SizedValue(("seed", i), 256))
    router.quiesce()
    router.reset_window()
    specs = [
        ClientSpec(n_ops=150, rate_per_s=math.inf, key_space=300, seed=s)
        for s in (1, 2)
    ]
    run_cluster(router, specs)
    router.quiesce()
    cluster.detach_tracing()
    return cluster, recorders


def test_multi_shard_trace_matches_pinned_fingerprint():
    from repro.cluster import cluster_trace_json

    cluster, recorders = _traced_cluster()
    # One process per shard: every recorder contributed its own tracks.
    assert len(recorders) == 3
    assert all(len(r) > 0 for r in recorders)
    text = cluster_trace_json(cluster, recorders)
    assert hashlib.sha256(text.encode()).hexdigest() == PINNED_CLUSTER_SHA256
    doc = json.loads(text)
    pids = {
        e["pid"]
        for e in doc["traceEvents"]
        if e.get("name") == "process_name"
    }
    assert len(pids) == 3


def test_trace_cli_is_byte_identical_across_runs(tmp_path):
    from repro.cli import main

    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    argv = ["trace", "--store", "miodb", "--n", "512", "--reads", "64"]
    assert main(argv + ["--out", str(first)]) == 0
    assert main(argv + ["--out", str(second)]) == 0
    a, b = first.read_bytes(), second.read_bytes()
    assert a == b
    assert json.loads(a)["traceEvents"]


# ---------------------------------------------------------------------------
# Schema fingerprint and strict-mode vocabulary enforcement
# ---------------------------------------------------------------------------


def test_schema_fingerprint_is_pinned():
    """The contract checker's schema pin tracks this file's vocabulary.

    tests/test_check_contracts.py owns the drift cases; this cross-check
    keeps the two pins (trace *content* here, trace *schema* there) from
    diverging silently.
    """
    from repro.check.contracts import PINNED_EVENT_SCHEMA, schema_fingerprint

    assert schema_fingerprint() == PINNED_EVENT_SCHEMA


def _strict_recorder():
    from repro.obs import TraceRecorder
    from repro.sim.clock import SimClock

    return TraceRecorder(SimClock(), strict=True)


def test_strict_recorder_rejects_unknown_category():
    recorder = _strict_recorder()
    with pytest.raises(ValueError, match="unknown trace category"):
        recorder.span("foreground", "op", "bogus-cat", 0.0, 1.0)


def test_strict_recorder_rejects_unknown_stall_cause():
    recorder = _strict_recorder()
    with pytest.raises(ValueError, match="unknown stall cause"):
        recorder.span(
            "foreground", "stall", CAT_STALL, 0.0, 1.0,
            {"cause": "novel-cause"},
        )
    with pytest.raises(ValueError, match="unknown stall cause"):
        recorder.instant(
            "foreground", "stall", CAT_STALL, {"cause": "novel-cause"}
        )


def test_strict_recorder_rejects_unknown_drop_reason():
    from repro.obs import CAT_QUEUE

    recorder = _strict_recorder()
    with pytest.raises(ValueError, match="unknown drop reason"):
        recorder.instant(
            "shard0", "drop", CAT_QUEUE, {"cause": "cosmic-rays"}
        )


def test_strict_recorder_accepts_the_closed_vocabularies():
    from repro.obs import CAT_QUEUE, DROP_CAUSES

    recorder = _strict_recorder()
    for cause in sorted(STALL_CAUSES):
        recorder.span(
            "foreground", "stall", CAT_STALL, 0.0, 1.0, {"cause": cause}
        )
    for cause in DROP_CAUSES:
        recorder.instant("shard0", "drop", CAT_QUEUE, {"cause": cause})
    assert len(recorder) == len(STALL_CAUSES) + len(DROP_CAUSES)


def test_lenient_recorder_still_accepts_anything():
    """Default mode is unchanged: validation is strictly opt-in."""
    from repro.obs import TraceRecorder
    from repro.sim.clock import SimClock

    recorder = TraceRecorder(SimClock())
    recorder.span("foreground", "stall", CAT_STALL, 0.0, 1.0,
                  {"cause": "novel-cause"})
    assert len(recorder) == 1
