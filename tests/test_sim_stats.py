"""Unit tests for the stats registry."""

from repro.sim.stats import StatsRegistry


def test_add_accumulates():
    stats = StatsRegistry()
    assert stats.add("x", 1.0) == 1.0
    assert stats.add("x", 2.5) == 3.5
    assert stats.get("x") == 3.5


def test_add_default_increment():
    stats = StatsRegistry()
    stats.add("count")
    stats.add("count")
    assert stats.get("count") == 2.0


def test_get_default():
    stats = StatsRegistry()
    assert stats.get("missing") == 0.0
    assert stats.get("missing", -1.0) == -1.0


def test_set_overwrites():
    stats = StatsRegistry()
    stats.add("x", 5.0)
    stats.set("x", 1.0)
    assert stats.get("x") == 1.0


def test_max_keeps_running_maximum():
    stats = StatsRegistry()
    stats.max("peak", 3.0)
    stats.max("peak", 1.0)
    assert stats.get("peak") == 3.0
    stats.max("peak", 7.0)
    assert stats.get("peak") == 7.0


def test_snapshot_is_a_copy():
    stats = StatsRegistry()
    stats.add("x", 1.0)
    snap = stats.snapshot()
    snap["x"] = 99.0
    assert stats.get("x") == 1.0


def test_contains():
    stats = StatsRegistry()
    assert "x" not in stats
    stats.add("x")
    assert "x" in stats


def test_reset():
    stats = StatsRegistry()
    stats.add("x", 1.0)
    stats.reset()
    assert stats.get("x") == 0.0
    assert "x" not in stats
