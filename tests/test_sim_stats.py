"""Unit tests for the stats registry."""

import pytest

from repro.sim.stats import KEY_FAMILIES, StatsRegistry


def test_add_accumulates():
    stats = StatsRegistry()
    assert stats.add("x", 1.0) == 1.0
    assert stats.add("x", 2.5) == 3.5
    assert stats.get("x") == 3.5


def test_add_default_increment():
    stats = StatsRegistry()
    stats.add("count")
    stats.add("count")
    assert stats.get("count") == 2.0


def test_get_default():
    stats = StatsRegistry()
    assert stats.get("missing") == 0.0
    assert stats.get("missing", -1.0) == -1.0


def test_set_overwrites():
    stats = StatsRegistry()
    stats.add("x", 5.0)
    stats.set("x", 1.0)
    assert stats.get("x") == 1.0


def test_max_keeps_running_maximum():
    stats = StatsRegistry()
    stats.max("peak", 3.0)
    stats.max("peak", 1.0)
    assert stats.get("peak") == 3.0
    stats.max("peak", 7.0)
    assert stats.get("peak") == 7.0


def test_snapshot_is_a_copy():
    stats = StatsRegistry()
    stats.add("x", 1.0)
    snap = stats.snapshot()
    snap["x"] = 99.0
    assert stats.get("x") == 1.0


def test_contains():
    stats = StatsRegistry()
    assert "x" not in stats
    stats.add("x")
    assert "x" in stats


def test_reset():
    stats = StatsRegistry()
    stats.add("x", 1.0)
    stats.reset()
    assert stats.get("x") == 0.0
    assert "x" not in stats


def test_snapshot_grouped_nests_by_family():
    stats = StatsRegistry()
    stats.add("flush.count", 2.0)
    stats.add("flush.time_s", 0.5)
    stats.add("op.put", 10.0)
    assert stats.snapshot_grouped() == {
        "flush": {"count": 2.0, "time_s": 0.5},
        "op": {"put": 10.0},
    }


def test_strict_mode_rejects_unknown_family():
    stats = StatsRegistry(strict=True)
    with pytest.raises(KeyError, match="unknown stats family"):
        stats.add("made_up.metric")
    with pytest.raises(KeyError):
        stats.set("nor_this.one", 1.0)
    with pytest.raises(KeyError):
        stats.max("nope.peak", 1.0)


def test_strict_mode_accepts_every_registered_family():
    stats = StatsRegistry(strict=True)
    for family in KEY_FAMILIES:
        stats.add(f"{family}.probe", 1.0)
    assert len(stats.snapshot()) == len(KEY_FAMILIES)


def test_stores_emit_only_registered_families():
    """Every store's counters stay inside the documented vocabulary."""
    from repro.bench.config import BenchScale
    from repro.bench.factory import STORE_NAMES, make_store
    from repro.workloads import fill_random

    KB = 1 << 10
    scale = BenchScale(
        memtable_bytes=32 * KB, dataset_bytes=128 * KB, value_size=KB
    )
    for name in STORE_NAMES:
        store, system = make_store(name, scale)
        system.stats.strict = True  # raise on any unregistered key
        fill_random(store, 128, scale.value_size, seed=1)
        store.quiesce()
        families = set(system.stats.snapshot_grouped())
        assert families <= set(KEY_FAMILIES), (name, families)
