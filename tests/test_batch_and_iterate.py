"""Tests for WriteBatch atomicity and the items() iterator."""

import pytest

from repro.core import MioDB, MioOptions, recover
from repro.kvstore.batch import WriteBatch
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem
from repro.persist.crash import CrashInjector, SimulatedCrash

KB = 1 << 10


# ------------------------------------------------------------- WriteBatch


def test_batch_builder_validation():
    batch = WriteBatch()
    with pytest.raises(ValueError):
        batch.put(b"", b"v")
    with pytest.raises(TypeError):
        batch.put(b"k", 123)
    with pytest.raises(ValueError):
        batch.delete(b"")
    batch.put(b"k", b"v").delete(b"k2")
    assert len(batch) == 2
    assert not batch.is_empty


def test_batch_applies_all_ops(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    store.put(b"victim", b"old")
    batch = WriteBatch()
    for i in range(20):
        batch.put(b"batch%03d" % i, SizedValue(i, 128))
    batch.delete(b"victim")
    latency = store.write(batch)
    assert latency > 0
    for i in range(20):
        value, __ = store.get(b"batch%03d" % i)
        assert value.tag == i
    value, __ = store.get(b"victim")
    assert value is None


def test_empty_batch_is_free(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    assert store.write(WriteBatch()) == 0.0


def test_base_class_batch_on_baselines(system, tiny_options):
    from repro.baselines import LevelDBStore

    store = LevelDBStore(system, tiny_options)
    batch = WriteBatch().put(b"a", b"1").put(b"b", b"2").delete(b"a")
    store.write(batch)
    assert store.get(b"a")[0] is None
    assert store.get(b"b")[0] == b"2"


def test_batch_is_atomic_across_torn_crash():
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(
        system,
        MioOptions(memtable_bytes=8 * KB, num_levels=3),
        crash_injector=injector,
    )
    for i in range(50):
        store.put(b"pre%03d" % i, SizedValue(i, 128))

    batch = WriteBatch()
    for i in range(10):
        batch.put(b"atomic%03d" % i, SizedValue(i, 128))
    injector.arm("write.after_wal_batch")
    with pytest.raises(SimulatedCrash):
        store.write(batch)
    # the crash tore the commit record away: the whole batch must vanish
    store.wal.tear_tail(1)
    recovered, __ = recover(store)
    for i in range(10):
        value, __lat = recovered.get(b"atomic%03d" % i)
        assert value is None, i
    for i in range(50):
        value, __lat = recovered.get(b"pre%03d" % i)
        assert value is not None, i


def test_batch_survives_crash_after_commit():
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(
        system,
        MioOptions(memtable_bytes=8 * KB, num_levels=3),
        crash_injector=injector,
    )
    batch = WriteBatch()
    for i in range(10):
        batch.put(b"atomic%03d" % i, SizedValue(i, 128))
    injector.arm("write.after_wal_batch")
    with pytest.raises(SimulatedCrash):
        store.write(batch)
    # commit record intact (no torn tail): replay surfaces the batch
    recovered, __ = recover(store)
    for i in range(10):
        value, __lat = recovered.get(b"atomic%03d" % i)
        assert value is not None and value.tag == i


# ---------------------------------------------------------------- items()


def test_items_full_iteration(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    keys = [b"key%04d" % i for i in range(300)]
    for i, key in enumerate(keys):
        store.put(key, SizedValue(i, 128))
    store.quiesce()
    got = [k for k, __ in store.items()]
    assert got == keys


def test_items_bounds(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    for i in range(100):
        store.put(b"key%04d" % i, SizedValue(i, 128))
    window = list(store.items(b"key0010", b"key0020"))
    assert [k for k, __ in window] == [b"key%04d" % i for i in range(10, 20)]
    assert all(v.tag == i for i, (__, v) in zip(range(10, 20), window))


def test_items_skips_deletes(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    for i in range(30):
        store.put(b"key%04d" % i, SizedValue(i, 128))
    store.delete(b"key0005")
    keys = [k for k, __ in store.items()]
    assert b"key0005" not in keys
    assert len(keys) == 29


def test_items_page_size_validation(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    with pytest.raises(ValueError):
        list(store.items(page_size=0))


def test_items_works_on_every_store(tiny_options):
    from repro.bench import STORE_NAMES, make_store
    from repro.bench.config import BenchScale

    scale = BenchScale(memtable_bytes=8 * KB)
    for name in STORE_NAMES:
        store, __ = make_store(name, scale)
        for i in range(60):
            store.put(b"key%04d" % i, SizedValue(i, 128))
        got = [k for k, __v in store.items(page_size=17)]
        assert got == [b"key%04d" % i for i in range(60)], name
