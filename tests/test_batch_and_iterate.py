"""Tests for WriteBatch atomicity and the items() iterator."""

import pytest

from repro.core import MioDB, MioOptions, recover
from repro.kvstore.batch import WriteBatch
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem
from repro.persist.crash import CrashInjector, SimulatedCrash

KB = 1 << 10


# ------------------------------------------------------------- WriteBatch


def test_batch_builder_validation():
    batch = WriteBatch()
    with pytest.raises(ValueError):
        batch.put(b"", b"v")
    with pytest.raises(TypeError):
        batch.put(b"k", 123)
    with pytest.raises(ValueError):
        batch.delete(b"")
    batch.put(b"k", b"v").delete(b"k2")
    assert len(batch) == 2
    assert not batch.is_empty


def test_batch_applies_all_ops(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    store.put(b"victim", b"old")
    batch = WriteBatch()
    for i in range(20):
        batch.put(b"batch%03d" % i, SizedValue(i, 128))
    batch.delete(b"victim")
    latency = store.write(batch)
    assert latency > 0
    for i in range(20):
        value, __ = store.get(b"batch%03d" % i)
        assert value.tag == i
    value, __ = store.get(b"victim")
    assert value is None


def test_empty_batch_is_free(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    assert store.write(WriteBatch()) == 0.0


def test_base_class_batch_on_baselines(system, tiny_options):
    from repro.baselines import LevelDBStore

    store = LevelDBStore(system, tiny_options)
    batch = WriteBatch().put(b"a", b"1").put(b"b", b"2").delete(b"a")
    store.write(batch)
    assert store.get(b"a")[0] is None
    assert store.get(b"b")[0] == b"2"


def test_batch_is_atomic_across_torn_crash():
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(
        system,
        MioOptions(memtable_bytes=8 * KB, num_levels=3),
        crash_injector=injector,
    )
    for i in range(50):
        store.put(b"pre%03d" % i, SizedValue(i, 128))

    batch = WriteBatch()
    for i in range(10):
        batch.put(b"atomic%03d" % i, SizedValue(i, 128))
    injector.arm("write.after_wal_batch")
    with pytest.raises(SimulatedCrash):
        store.write(batch)
    # the crash tore the commit record away: the whole batch must vanish
    store.wal.tear_tail(1)
    recovered, __ = recover(store)
    for i in range(10):
        value, __lat = recovered.get(b"atomic%03d" % i)
        assert value is None, i
    for i in range(50):
        value, __lat = recovered.get(b"pre%03d" % i)
        assert value is not None, i


def test_batch_survives_crash_after_commit():
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(
        system,
        MioOptions(memtable_bytes=8 * KB, num_levels=3),
        crash_injector=injector,
    )
    batch = WriteBatch()
    for i in range(10):
        batch.put(b"atomic%03d" % i, SizedValue(i, 128))
    injector.arm("write.after_wal_batch")
    with pytest.raises(SimulatedCrash):
        store.write(batch)
    # commit record intact (no torn tail): replay surfaces the batch
    recovered, __ = recover(store)
    for i in range(10):
        value, __lat = recovered.get(b"atomic%03d" % i)
        assert value is not None and value.tag == i


def test_batch_clear_allows_reuse(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    batch = WriteBatch().put(b"a", b"1").delete(b"b")
    assert batch.clear() is batch
    assert batch.is_empty and len(batch) == 0
    batch.put(b"c", b"2")
    store.write(batch)
    assert store.get(b"a")[0] is None  # cleared op never ran
    assert store.get(b"c")[0] == b"2"


def test_batch_iteration_order_is_insertion_order():
    batch = WriteBatch()
    batch.put(b"x", b"1").delete(b"y").put(b"x", b"2")
    assert [(op, key) for op, key, __ in batch.ops] == [
        ("put", b"x"), ("delete", b"y"), ("put", b"x"),
    ]


@pytest.mark.parametrize(
    "ops,expect",
    [
        # last write wins: the op queued last determines the final state
        ([("put", b"1"), ("put", b"2")], b"2"),
        ([("put", b"1"), ("delete", None), ("put", b"3")], b"3"),
        ([("put", b"1"), ("delete", None)], None),
        ([("delete", None), ("put", b"4")], b"4"),
    ],
)
def test_batch_duplicate_keys_last_write_wins(ops, expect):
    from repro.bench import STORE_NAMES
    from repro.bench.config import BenchScale
    from repro.bench.factory import make_store

    scale = BenchScale(memtable_bytes=8 * KB)
    for name in STORE_NAMES:
        store, __ = make_store(name, scale)
        store.put(b"dup", b"seed")
        batch = WriteBatch()
        for op, value in ops:
            if op == "put":
                batch.put(b"dup", value)
            else:
                batch.delete(b"dup")
        store.write(batch)
        assert store.get(b"dup")[0] == expect, name
        store.quiesce()
        assert store.get(b"dup")[0] == expect, (name, "after quiesce")


def test_batch_duplicate_keys_lww_survives_crash_replay():
    """WAL replay applies duplicate-key batch ops in order (LWW holds)."""
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(
        system,
        MioOptions(memtable_bytes=8 * KB, num_levels=3),
        crash_injector=injector,
    )
    batch = WriteBatch()
    batch.put(b"dup", SizedValue("old", 128))
    batch.delete(b"dup")
    batch.put(b"dup", SizedValue("new", 128))
    batch.put(b"gone", SizedValue("x", 128)).delete(b"gone")
    injector.arm("write.after_wal_batch")
    with pytest.raises(SimulatedCrash):
        store.write(batch)
    recovered, __ = recover(store)
    value, __lat = recovered.get(b"dup")
    assert value is not None and value.tag == "new"
    assert recovered.get(b"gone")[0] is None


# ---------------------------------------------------------------- items()


def test_items_full_iteration(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    keys = [b"key%04d" % i for i in range(300)]
    for i, key in enumerate(keys):
        store.put(key, SizedValue(i, 128))
    store.quiesce()
    got = [k for k, __ in store.items()]
    assert got == keys


def test_items_bounds(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    for i in range(100):
        store.put(b"key%04d" % i, SizedValue(i, 128))
    window = list(store.items(b"key0010", b"key0020"))
    assert [k for k, __ in window] == [b"key%04d" % i for i in range(10, 20)]
    assert all(v.tag == i for i, (__, v) in zip(range(10, 20), window))


def test_items_skips_deletes(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    for i in range(30):
        store.put(b"key%04d" % i, SizedValue(i, 128))
    store.delete(b"key0005")
    keys = [k for k, __ in store.items()]
    assert b"key0005" not in keys
    assert len(keys) == 29


def test_items_page_size_validation(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    with pytest.raises(ValueError):
        list(store.items(page_size=0))


def test_items_works_on_every_store(tiny_options):
    from repro.bench import STORE_NAMES, make_store
    from repro.bench.config import BenchScale

    scale = BenchScale(memtable_bytes=8 * KB)
    for name in STORE_NAMES:
        store, __ = make_store(name, scale)
        for i in range(60):
            store.put(b"key%04d" % i, SizedValue(i, 128))
        got = [k for k, __v in store.items(page_size=17)]
        assert got == [b"key%04d" % i for i in range(60)], name
