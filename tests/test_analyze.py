"""Tests for the trace-analysis engine (repro.obs.analyze).

The load-bearing property is *conservation*: every traced foreground
op's latency decomposes into queue wait + stalls by cause + device time
by device + other, and the components sum back to the measured simulated
latency exactly -- not approximately -- for every op in dbbench-style,
YCSB, and cluster runs.  The rest pins the cross-checks: attribution
stall totals match the recorder's, trace-derived persistent bytes match
the system's fig-11 write-amplification accounting, and the assembled
reports are byte-identical across same-seed runs.
"""

import math

import pytest

from repro.bench.config import BenchScale
from repro.obs import run_traced
from repro.obs.analyze import (
    analysis_json,
    analyze_cluster,
    analyze_run,
    attribute_ops,
    critical_paths,
    per_level_bytes,
    persistent_write_bytes,
    render_analysis,
    render_cluster_analysis,
    stall_blame,
    summarize,
    time_profile,
    write_amplification,
)
from repro.obs.events import STALL_CAUSES

pytestmark = pytest.mark.obs_smoke

_RUNS = {}


def _traced(name, mode="fillrandom"):
    """One traced run per (store, mode), shared across the tests."""
    key = (name, mode)
    if key not in _RUNS:
        _RUNS[key] = run_traced(name, n=512, value_size=1024, reads=64, mode=mode)
    return _RUNS[key]


def _traced_cluster():
    """A traced 3-shard cluster run; returns (cluster, recorders)."""
    if "cluster" not in _RUNS:
        from repro.cluster import ClientSpec, Cluster, ShardRouter, run_cluster
        from repro.kvstore.values import SizedValue
        from repro.workloads.keys import key_for

        scale = BenchScale(
            memtable_bytes=8 << 10, dataset_bytes=1 << 20, value_size=256
        )
        cluster = Cluster("miodb", n_shards=3, scale=scale)
        router = ShardRouter(cluster)
        recorders = cluster.attach_tracing()
        for i in range(300):
            router.put(key_for(i), SizedValue(("seed", i), 256))
        router.quiesce()
        router.reset_window()
        specs = [
            ClientSpec(n_ops=200, rate_per_s=200000.0, key_space=300, seed=s)
            for s in (1, 2)
        ]
        run_cluster(router, specs)
        router.quiesce()
        cluster.detach_tracing()
        _RUNS["cluster"] = (cluster, recorders)
    return _RUNS["cluster"]


# ------------------------------------------------------------ conservation


def _assert_conserves(attrs):
    assert attrs
    for attr in attrs:
        # Exact equality, not isclose: other_s is defined as the
        # difference, so the decomposition must conserve to the bit.
        assert attr.residual_s() == 0.0
        assert attr.components_total() == attr.measured_s
        assert attr.measured_s >= 0.0
        assert attr.queue_s >= 0.0
        assert all(v >= 0.0 for v in attr.stall_s.values())
        assert all(v >= 0.0 for v in attr.device_s.values())


@pytest.mark.parametrize(
    "name", ["miodb", "leveldb", "novelsm", "matrixkv", "slmdb", "novelsm-nosst"]
)
def test_attribution_conserves_exactly_dbbench(name):
    __, __, recorder = _traced(name)
    attrs = attribute_ops(recorder)
    assert len(attrs) == 512 + 64
    _assert_conserves(attrs)


@pytest.mark.parametrize("name", ["miodb", "leveldb"])
def test_attribution_conserves_exactly_ycsb(name):
    __, __, recorder = _traced(name, mode="ycsb-a")
    attrs = attribute_ops(recorder)
    assert len(attrs) == 512 + 64
    _assert_conserves(attrs)


def test_attribution_conserves_exactly_cluster():
    cluster, recorders = _traced_cluster()
    total_ops = 0
    for recorder in recorders:
        attrs = attribute_ops(recorder)
        total_ops += len(attrs)
        _assert_conserves(attrs)
    # 300 preload puts + 2 clients x 200 driven ops, all completed.
    assert total_ops == 700


def test_cluster_queue_wait_is_attributed():
    __, recorders = _traced_cluster()
    merged = [a for r in recorders for a in attribute_ops(r)]
    assert sum(a.queue_s for a in merged) > 0.0
    for attr in merged:
        # Measured latency includes the admission wait: response time.
        assert attr.measured_s >= attr.queue_s


def test_attribution_stall_totals_match_recorder():
    __, __, recorder = _traced("miodb")
    attrs = attribute_ops(recorder)
    totals = {}
    for attr in attrs:
        for cause, seconds in attr.stall_s.items():
            totals[cause] = totals.get(cause, 0.0) + seconds
    expected = recorder.stall_seconds_by_cause()
    assert set(totals) == set(expected)
    assert set(totals) <= STALL_CAUSES
    for cause in expected:
        assert totals[cause] == pytest.approx(expected[cause], abs=1e-15)


def test_job_transfers_excluded_from_foreground_device_time():
    __, system, recorder = _traced("miodb")
    attrs = attribute_ops(recorder)
    fg_device = sum(sum(a.device_s.values()) for a in attrs)
    all_transfer = sum(
        (e.args or {}).get("seconds", 0.0)
        for e in recorder.events
        if e.cat == "transfer"
    )
    # Background flush/compaction traffic exists and is excluded.
    assert 0.0 < fg_device < all_transfer


def test_summarize_totals_equal_per_op_sums():
    __, __, recorder = _traced("leveldb")
    attrs = attribute_ops(recorder)
    doc = summarize(attrs)
    assert doc["ops"] == len(attrs)
    assert doc["measured_s"] == pytest.approx(
        sum(a.measured_s for a in attrs), rel=1e-12
    )
    assert sum(b["ops"] for b in doc["by_kind"].values()) == len(attrs)
    assert doc["slowest"]["measured_s"] == max(a.measured_s for a in attrs)


def _batched_pair():
    """The same batched op sequence traced with and without coalescing."""
    if "coalesce" not in _RUNS:
        from repro.bench.factory import make_store
        from repro.kvstore.values import SizedValue
        from repro.workloads.keys import key_for

        scale = BenchScale(
            memtable_bytes=8 << 10, dataset_bytes=1 << 20, value_size=256
        )

        def drive(coalesce):
            store, system = make_store("miodb", scale)
            recorder = system.attach_tracing(coalesce_ops=coalesce)
            for at in range(0, 384, 64):
                store.multi_put([
                    (key_for(i), SizedValue(("c", i), 256))
                    for i in range(at, at + 64)
                ])
            for at in range(0, 96, 32):
                store.multi_get([key_for(i) for i in range(at, at + 32)])
            store.quiesce()
            recorder.detach()
            return recorder

        _RUNS["coalesce"] = (drive(False), drive(True))
    return _RUNS["coalesce"]


def test_attribution_conserves_exactly_on_coalesced_spans():
    __, coalesced = _batched_pair()
    attrs = attribute_ops(coalesced)
    # Every op inside every coalesced span is decomposed individually.
    assert len(attrs) == 384 + 96
    _assert_conserves(attrs)


def test_coalesced_attribution_matches_per_op_attribution():
    plain, coalesced = _batched_pair()
    a = [attr.as_dict() for attr in attribute_ops(plain)]
    b = [attr.as_dict() for attr in attribute_ops(coalesced)]
    # Same ops, same measured latencies, same queue/stall/device split:
    # coalescing changes the trace encoding, never the analysis.
    assert a == b


# ---------------------------------------------------------- critical paths


@pytest.mark.parametrize("name", ["miodb", "leveldb", "slmdb"])
def test_every_interval_stall_names_its_releasing_job(name):
    __, __, recorder = _traced(name)
    interval_stalls = [
        e for e in recorder.events if e.cat == "stall" and e.dur is not None
    ]
    chains = critical_paths(recorder)
    assert len(chains) == len(interval_stalls)
    assert interval_stalls, f"{name} traced no interval stalls at this scale"
    for chain in chains:
        assert chain.cause in STALL_CAUSES
        assert chain.chain, "stall ended but no job completion matched"
        releasing = chain.chain[0]
        # The releasing job completes exactly when the stall ends.
        assert releasing["start_s"] + releasing["duration_s"] == pytest.approx(
            chain.start + chain.duration_s, abs=1e-15
        )


def test_stall_blame_accounts_every_stalled_second():
    __, __, recorder = _traced("miodb")
    chains = critical_paths(recorder)
    blame = stall_blame(chains)
    blamed = sum(s for per in blame.values() for s in per.values())
    assert blamed == pytest.approx(
        sum(c.duration_s for c in chains), rel=1e-12
    )


# ------------------------------------------------- profile and byte totals


def test_profile_foreground_plus_idle_covers_the_run():
    __, system, recorder = _traced("miodb")
    attrs = attribute_ops(recorder)
    profile = time_profile(attrs, recorder, system.clock.now)
    fg = profile["foreground"]
    assert fg["seconds"] + fg["idle_s"] == pytest.approx(
        profile["total_s"], rel=1e-12
    )
    assert fg["seconds"] == pytest.approx(
        sum(a.measured_s for a in attrs), rel=1e-12
    )
    assert profile["workers"], "no background workers profiled"
    for worker in profile["workers"].values():
        assert worker["busy_s"] == pytest.approx(
            sum(j["seconds"] for j in worker["jobs"].values()), rel=1e-12
        )


def test_persistent_bytes_match_system_accounting_exactly():
    for name in ("miodb", "leveldb", "matrixkv"):
        __, system, recorder = _traced(name)
        assert persistent_write_bytes(recorder) == system.persistent_bytes_written()
        user = system.stats.get("user.bytes_written")
        assert write_amplification(recorder, user) == system.write_amplification()


def test_per_level_bytes_cover_all_background_jobs():
    __, __, recorder = _traced("miodb")
    levels = per_level_bytes(recorder)
    assert "flush" in levels
    assert any(label.startswith("L") for label in levels)
    spans = [
        s for s in recorder.worker_spans() if s.cat in ("flush", "compact")
    ]
    assert sum(node["jobs"] for node in levels.values()) == len(spans)
    assert sum(node["bytes"] for node in levels.values()) == sum(
        (s.args or {}).get("bytes", 0) for s in spans
    )


# ------------------------------------------------------ report determinism


def test_analysis_report_is_byte_identical_across_runs():
    docs = []
    for __ in range(2):
        __s, system, recorder = run_traced(
            "miodb", n=512, value_size=1024, reads=64
        )
        doc = analyze_run(recorder, system, "miodb")
        docs.append((analysis_json(doc), render_analysis(doc)))
    assert docs[0] == docs[1]
    assert docs[0][0].endswith("\n")
    assert "conservation" in docs[0][0]


def test_cluster_analysis_merges_shards_and_conserves():
    cluster, recorders = _traced_cluster()
    doc = analyze_cluster(cluster, recorders)
    assert doc["n_shards"] == 3
    assert doc["conservation"]["exact"]
    assert doc["conservation"]["ops"] == doc["attribution"]["ops"] == 700
    shard_ops = sum(
        d["attribution"]["ops"] for d in doc["shards"].values()
    )
    assert shard_ops == 700
    text = render_cluster_analysis(doc)
    assert "cluster attribution" in text
    assert analysis_json(doc) == analysis_json(analyze_cluster(cluster, recorders))


def test_cluster_analysis_rejects_mismatched_recorders():
    cluster, recorders = _traced_cluster()
    with pytest.raises(ValueError):
        analyze_cluster(cluster, recorders[:-1])


def test_ycsb_trace_mode_validation():
    with pytest.raises(ValueError):
        run_traced("miodb", n=16, mode="ycsb-z")
    with pytest.raises(ValueError):
        run_traced("miodb", n=16, mode="bogus")
