"""Unit tests for workload generators and runners."""

import pytest

from repro.bench import make_store
from repro.bench.config import BenchScale
from repro.sim.rng import XorShiftRng
from repro.workloads import (
    YCSB_WORKLOADS,
    LatestGenerator,
    Phase,
    ScrambledZipfian,
    UniformGenerator,
    ZipfianGenerator,
    fill_random,
    fill_seq,
    key_for,
    load_phase,
    read_random,
    read_seq,
    run_workload,
)
from repro.workloads.ycsb import YcsbSpec

KB = 1 << 10
SMALL = BenchScale(memtable_bytes=8 * KB, dataset_bytes=256 * KB, value_size=512,
                   nvm_buffer_bytes=64 * KB)


# ------------------------------------------------------------------- keys


def test_key_for_is_16_bytes_and_ordered():
    assert len(key_for(0)) == 16
    assert key_for(1) < key_for(2) < key_for(10)


def test_key_for_rejects_negative():
    with pytest.raises(ValueError):
        key_for(-1)


# ---------------------------------------------------------------- zipfian


def test_zipfian_range_and_skew():
    rng = XorShiftRng(1)
    gen = ZipfianGenerator(1000, rng)
    draws = [gen.next() for __ in range(5000)]
    assert all(0 <= d < 1000 for d in draws)
    top = sum(1 for d in draws if d < 10)
    assert top > len(draws) * 0.3  # heavy head


def test_zipfian_validation():
    rng = XorShiftRng(1)
    with pytest.raises(ValueError):
        ZipfianGenerator(0, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, rng, theta=1.0)


def test_scrambled_zipfian_spreads_hot_keys():
    rng = XorShiftRng(1)
    gen = ScrambledZipfian(1000, rng)
    draws = [gen.next() for __ in range(5000)]
    assert all(0 <= d < 1000 for d in draws)
    # hot items are hashed away from rank 0
    low_hits = sum(1 for d in draws if d < 10)
    assert low_hits < len(draws) * 0.5


def test_latest_generator_tracks_inserts():
    rng = XorShiftRng(1)
    gen = LatestGenerator(100, rng)
    gen.observe_insert(500)
    draws = [gen.next() for __ in range(2000)]
    assert all(0 <= d <= 500 for d in draws)
    recent = sum(1 for d in draws if d > 400)
    assert recent > len(draws) * 0.5


def test_uniform_generator():
    gen = UniformGenerator(50, XorShiftRng(2))
    assert all(0 <= gen.next() < 50 for __ in range(500))
    with pytest.raises(ValueError):
        UniformGenerator(0, XorShiftRng(1))


# ------------------------------------------------------------------ phases


def test_phase_measures_window_only(system, tiny_mio_options):
    from repro.core import MioDB
    from repro.kvstore.values import SizedValue

    store = MioDB(system, tiny_mio_options)
    store.put(b"warmup", SizedValue(0, 128))
    with Phase("test", system) as phase:
        for i in range(10):
            store.put(b"key%03d" % i, SizedValue(i, 128))
    result = phase.result()
    assert result.ops == 10
    assert result.duration_s > 0
    assert result.kiops > 0
    assert result.per_kind["put"].count == 10


def test_phase_result_before_exit_raises(system):
    phase = Phase("x", system)
    with pytest.raises(RuntimeError):
        phase.result()


# ---------------------------------------------------------------- db_bench


def test_fill_random_writes_all_keys():
    store, system = make_store("miodb", SMALL)
    result = fill_random(store, 200, 512)
    assert result.ops == 200
    store.quiesce()
    value, __ = store.get(key_for(123))
    assert value is not None


def test_fill_seq_ordered():
    store, system = make_store("miodb", SMALL)
    result = fill_seq(store, 100, 512)
    assert result.ops == 100
    pairs, __ = store.scan(key_for(0), 5)
    assert [k for k, __v in pairs] == [key_for(i) for i in range(5)]


def test_read_random_asserts_hits():
    store, system = make_store("miodb", SMALL)
    fill_random(store, 100, 512)
    result = read_random(store, 50, 100)
    assert result.ops == 50
    with pytest.raises(AssertionError):
        read_random(store, 10, 100000)  # mostly-missing key space


def test_read_seq():
    store, system = make_store("miodb", SMALL)
    fill_seq(store, 100, 512)
    result = read_seq(store, 50, 100)
    assert result.ops == 50


# -------------------------------------------------------------------- YCSB


def test_ycsb_specs_mix_sums_to_one():
    for spec in YCSB_WORKLOADS.values():
        total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
        assert total == pytest.approx(1.0)


def test_ycsb_bad_mix_rejected():
    store, system = make_store("miodb", SMALL)
    bad = YcsbSpec("bad", read=0.5)
    with pytest.raises(ValueError):
        run_workload(store, bad, 10, 100, 512)


def test_ycsb_load_and_a():
    store, system = make_store("miodb", SMALL)
    load = load_phase(store, 300, 512)
    assert load.ops == 300
    result = run_workload(
        store, YCSB_WORKLOADS["A"], 200, 300, 512, check_reads=True
    )
    assert result.ops == 200
    assert "get" in result.per_kind and "put" in result.per_kind


def test_ycsb_d_inserts_extend_keyspace():
    store, system = make_store("miodb", SMALL)
    load_phase(store, 200, 512)
    run_workload(store, YCSB_WORKLOADS["D"], 300, 200, 512, check_reads=True)
    # some inserts beyond the loaded range must exist now
    value, __ = store.get(key_for(200))
    assert value is not None


def test_ycsb_e_scans():
    store, system = make_store("miodb", SMALL)
    load_phase(store, 200, 512)
    result = run_workload(store, YCSB_WORKLOADS["E"], 100, 200, 512)
    assert result.per_kind["scan"].count > 50


def test_ycsb_f_rmw_counts_two_ops():
    store, system = make_store("miodb", SMALL)
    load_phase(store, 100, 512)
    result = run_workload(store, YCSB_WORKLOADS["F"], 100, 100, 512)
    # RMW issues a get and a put, so recorded ops exceed the request count
    assert result.ops > 100


def test_same_seed_same_simulated_time():
    t = []
    for __ in range(2):
        store, system = make_store("miodb", SMALL)
        load_phase(store, 200, 512, seed=7)
        run_workload(store, YCSB_WORKLOADS["A"], 100, 200, 512, seed=9)
        t.append(system.now)
    assert t[0] == t[1]
