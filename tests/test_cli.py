"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "miodb" in out
    assert "nvm" in out
    assert "bench scale" in out


def test_dbbench_single_store(capsys):
    assert main(["dbbench", "--store", "miodb", "--n", "300", "--reads", "50"]) == 0
    out = capsys.readouterr().out
    assert "miodb" in out
    assert "write_KIOPS" in out


def test_dbbench_multiple_stores(capsys):
    rc = main(
        ["dbbench", "--store", "miodb,leveldb", "--n", "200", "--reads", "20"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "miodb" in out and "leveldb" in out


def test_dbbench_fillseq_mode(capsys):
    rc = main(
        ["dbbench", "--store", "miodb", "--mode", "fillseq", "--n", "200",
         "--reads", "20"]
    )
    assert rc == 0


def test_ycsb(capsys):
    rc = main(
        ["ycsb", "--store", "miodb", "--workloads", "A,C", "--records", "200",
         "--ops", "100"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "A_KIOPS" in out and "C_KIOPS" in out


def test_ycsb_rejects_unknown_workload(capsys):
    rc = main(
        ["ycsb", "--store", "miodb", "--workloads", "Z", "--records", "100",
         "--ops", "10"]
    )
    assert rc == 2


def test_unknown_store_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["dbbench", "--store", "rocksdb"])


def test_store_all_expands():
    parser = build_parser()
    args = parser.parse_args(["dbbench", "--store", "all"])
    assert len(args.store) >= 6


def test_ssd_flag(capsys):
    rc = main(
        ["dbbench", "--store", "miodb", "--ssd", "--n", "200", "--reads", "20"]
    )
    assert rc == 0


def test_perf_subcommand_writes_trajectory(tmp_path, capsys):
    path = tmp_path / "BENCH_perf.json"
    rc = main(
        ["perf", "--label", "cli-smoke", "--ops-scale", "tiny",
         "--repeats", "1", "--kernels", "compact", "--json", str(path)]
    )
    assert rc == 0
    assert path.exists()
    assert "cli-smoke" in capsys.readouterr().out


def test_perf_subcommand_rejects_unknown_kernel(tmp_path):
    rc = main(
        ["perf", "--kernels", "fsync", "--json", str(tmp_path / "p.json")]
    )
    assert rc == 2


def test_bench_subcommand_rejects_missing_dir(tmp_path, capsys):
    rc = main(["bench", "--bench-dir", str(tmp_path / "nope")])
    assert rc == 2


def test_analyze_subcommand_is_byte_identical(tmp_path, capsys):
    argv = ["analyze", "--store", "miodb", "--n", "512", "--reads", "64"]
    outs, jsons = [], []
    for stem in ("a", "b"):
        path = tmp_path / f"{stem}.json"
        assert main(argv + ["--json", str(path)]) == 0
        outs.append(capsys.readouterr().out)
        jsons.append(path.read_bytes())
    assert outs[0] == outs[1]
    assert jsons[0] == jsons[1]
    assert "conservation: exact" in outs[0]
    assert "latency attribution" in outs[0]


def test_analyze_subcommand_ycsb_mode(capsys):
    rc = main(
        ["analyze", "--store", "leveldb", "--n", "300", "--reads", "50",
         "--mode", "ycsb-a", "--no-profile"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "leveldb" in out
    assert "conservation: exact" in out


def test_slo_subcommand_is_byte_identical(tmp_path, capsys):
    argv = [
        "slo", "--store", "miodb", "--n", "512", "--reads", "64",
        "--threshold-us", "5",
    ]
    outs, jsons = [], []
    for stem in ("a", "b"):
        path = tmp_path / f"{stem}.json"
        assert main(argv + ["--json", str(path)]) == 0
        outs.append(capsys.readouterr().out)
        jsons.append(path.read_bytes())
    assert outs[0] == outs[1]
    assert jsons[0] == jsons[1]
    assert "SLO: op-latency" in outs[0]
    assert "alert log" in outs[0]


def test_compare_analyze_flag(capsys):
    rc = main(["compare", "--store", "miodb", "--analyze"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "write_KIOPS" in out
    assert "latency attribution" in out


def test_cluster_analyze_flag(tmp_path, capsys):
    path = tmp_path / "cluster-analysis.json"
    rc = main(
        ["cluster", "--store", "miodb", "--shards", "2", "--clients", "2",
         "--ops", "100", "--preload", "200", "--key-space", "200",
         "--analyze", "--analyze-json", str(path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "cluster attribution" in out
    assert "conservation: exact" in out
    doc = json.loads(path.read_text())
    assert doc["n_shards"] == 2
    assert doc["conservation"]["exact"]


def test_check_strict_is_clean(capsys):
    assert main(["check", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "check: 0 finding(s)" in out


def test_check_races_one_store(capsys):
    rc = main(
        ["check", "--skip-lint", "--skip-contracts", "--races",
         "--store", "leveldb", "--races-n", "128"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "races [leveldb]: clean" in out


def test_check_fails_on_fresh_findings(tmp_path, capsys):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "mod.py").write_text("import time\nt = time.time()\n")
    rc = main(
        ["check", "--strict", "--skip-contracts", "--path", str(bad),
         "--baseline", str(tmp_path / "baseline")]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "[DET001]" in out


def test_check_update_baseline_then_clean(tmp_path, capsys):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "mod.py").write_text("import time\nt = time.time()\n")
    baseline = tmp_path / "baseline"
    argv = [
        "check", "--strict", "--skip-contracts", "--path", str(bad),
        "--baseline", str(baseline),
    ]
    assert main(argv + ["--update-baseline"]) == 0
    capsys.readouterr()
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


# ------------------------------------------------------------- live telemetry


@pytest.mark.obs_live
def test_trace_live_writes_sampled_artifacts(tmp_path, capsys):
    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.om"
    rc = main([
        "trace", "--store", "miodb", "--n", "512", "--reads", "64",
        "--live", "--slo-threshold-us", "5", "--stall-alert-us", "10",
        "--openmetrics", str(metrics), "--flight-dir", str(tmp_path),
        "--out", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().err
    assert "# sampled:" in printed
    assert out.exists()
    text = metrics.read_text()
    assert text.endswith("# EOF\n")
    assert "repro_ops_seen_total" in text
    dumps = sorted(tmp_path.glob("flight-*.json"))
    assert dumps, "seeded stall/SLO scenario produced no flight dumps"
    doc = json.loads(dumps[0].read_text())
    assert doc["schema"] == "repro-flight-v1"


@pytest.mark.obs_live
def test_trace_live_is_byte_identical_across_runs(tmp_path):
    texts = []
    for tag in ("a", "b"):
        metrics = tmp_path / f"{tag}.om"
        rc = main([
            "trace", "--store", "miodb", "--n", "256", "--reads", "32",
            "--live", "--openmetrics", str(metrics),
            "--out", str(tmp_path / f"{tag}.json"),
        ])
        assert rc == 0
        texts.append(metrics.read_text())
    assert texts[0] == texts[1]


@pytest.mark.obs_live
def test_cluster_live_renders_dashboard_frames(tmp_path, capsys):
    metrics = tmp_path / "cluster.om"
    rc = main([
        "cluster", "--store", "miodb", "--shards", "2", "--clients", "2",
        "--ops", "300", "--live", "--live-refresh-us", "500",
        "--openmetrics", str(metrics),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "live telemetry @" in printed
    assert "p99" in printed
    text = metrics.read_text()
    assert 'shard="1"' in text


@pytest.mark.obs_live
def test_cluster_live_conflicts_with_trace_and_analyze(tmp_path):
    assert main([
        "cluster", "--shards", "2", "--clients", "1", "--ops", "10",
        "--live", "--trace", str(tmp_path / "t"),
    ]) == 2
    assert main([
        "cluster", "--shards", "2", "--clients", "1", "--ops", "10",
        "--live", "--analyze",
    ]) == 2


def test_perf_history_subcommand(tmp_path, capsys):
    path = tmp_path / "perf.json"
    rc = main([
        "perf", "--label", "r0", "--ops-scale", "tiny", "--repeats", "1",
        "--kernels", "put", "--json", str(path),
    ])
    assert rc == 0
    capsys.readouterr()
    rc = main(["perf", "--history", "--ops-scale", "tiny", "--json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "perf history" in out
    assert "-- put --" in out
    assert "r0" in out
