"""Windowed aggregation, OpenMetrics export, and the live dashboard."""

import pytest

from repro.mem.system import HybridMemorySystem
from repro.obs.live import (
    LiveDashboard,
    WindowAggregator,
    openmetrics_text,
)
from repro.obs.live.dashboard import render_frame, sparkline
from repro.obs.runner import run_traced

pytestmark = pytest.mark.obs_live

LIVE = {"seed": 1, "stall_alert_s": 1e-5, "slo_threshold_s": 5e-6}


def _fill(system, t0, n, kind="put", lat=1e-6, step=1e-5):
    for i in range(n):
        system.latency.record(kind, t0 + i * step, lat)


# --------------------------------------------------------------- aggregation


def test_windows_align_to_multiples_of_window_size():
    system = HybridMemorySystem()
    wa = WindowAggregator(system, window_s=1e-3)
    _fill(system, 0.0, 10)
    assert wa.maybe_tick(9e-4) is False  # edge not crossed yet
    assert wa.maybe_tick(1e-3) is True
    row = wa.rows[-1]
    assert row["t_s"] == 1e-3
    assert row["ops"] == 10
    assert row["kiops"] == pytest.approx(10 / 1e-3 / 1e3)
    assert row["p50_us"] == pytest.approx(1.0)


def test_empty_windows_produce_no_rows():
    system = HybridMemorySystem()
    wa = WindowAggregator(system, window_s=1e-3)
    _fill(system, 0.0, 4)
    assert wa.maybe_tick(1e-3)
    # A long idle stretch then one op: exactly one more row, no zeros.
    _fill(system, 7e-3, 1)
    assert wa.maybe_tick(8e-3)
    assert len(wa.rows) == 2
    assert wa.rows[-1]["ops"] == 1
    assert wa.next_edge == pytest.approx(9e-3)


def test_finalize_flushes_the_partial_window():
    system = HybridMemorySystem()
    wa = WindowAggregator(system, window_s=1e-3)
    _fill(system, 0.0, 3)
    wa.finalize(4.5e-4)
    assert len(wa.rows) == 1
    assert wa.rows[0]["t_s"] == 4.5e-4
    assert wa.rows[0]["ops"] == 3
    wa.finalize(5e-4)  # nothing new: no extra row
    assert len(wa.rows) == 1


def test_row_cap_drops_oldest_and_counts():
    system = HybridMemorySystem()
    wa = WindowAggregator(system, window_s=1e-3, max_rows=2)
    for i in range(4):
        _fill(system, i * 1e-3, 2)
        wa.maybe_tick((i + 1) * 1e-3)
    assert len(wa.rows) == 2
    assert wa.dropped_rows == 2
    assert wa.rows[0]["t_s"] == pytest.approx(3e-3)


def test_window_listener_receives_bad_counts():
    system = HybridMemorySystem()
    wa = WindowAggregator(system, window_s=1e-3, slo_threshold_s=1e-6)
    seen = []
    wa.set_window_listener(lambda t_s, ops, bad: seen.append((t_s, ops, bad)))
    _fill(system, 0.0, 5)
    wa.bad_in_window = 2  # maintained by the recorder in production
    wa.maybe_tick(1e-3)
    assert seen == [(1e-3, 5, 2)]
    assert wa.bad_in_window == 0  # consumed at tick


# --------------------------------------------------------------- openmetrics


def test_openmetrics_document_shape():
    __, __, rec = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    text = openmetrics_text(rec, labels=["0"])
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")
    # Every family declares TYPE then HELP, counters sample as _total.
    assert "# TYPE repro_ops_seen counter" in lines
    assert "# HELP repro_ops_seen Foreground ops observed." in lines
    assert any(
        line.startswith('repro_ops_seen_total{shard="0"} ') for line in lines
    )
    assert "# TYPE repro_window_p99_seconds gauge" in lines
    assert any(
        line.startswith('repro_ops_retained_total{shard="0",decision="head"} ')
        for line in lines
    )
    # The scenario stalls: stall seconds must be exported by cause.
    assert any(
        line.startswith('repro_stall_seconds_total{shard="0",cause=')
        for line in lines
    )
    assert any(
        line.startswith('repro_flight_dumps_total{shard="0",trigger=')
        for line in lines
    )


def test_openmetrics_rejects_label_mismatch():
    __, __, rec = run_traced("miodb", n=256, reads=0, live={})
    with pytest.raises(ValueError):
        openmetrics_text([rec], labels=["0", "1"])


def test_cluster_openmetrics_is_deterministic():
    from repro.cluster import (
        ClientSpec,
        Cluster,
        ShardRouter,
        cluster_openmetrics_text,
        run_cluster,
    )

    def drive():
        cluster = Cluster("miodb", n_shards=2)
        router = ShardRouter(cluster)
        recorders = cluster.attach_live(seed=3)
        run_cluster(
            router,
            [
                ClientSpec(n_ops=200, rate_per_s=float("inf"),
                           key_space=400, seed=s)
                for s in (1, 2)
            ],
        )
        for rec in recorders:
            rec.detach()
        return cluster_openmetrics_text(cluster, recorders)

    a, b = drive(), drive()
    assert a == b
    assert 'shard="1"' in a


class _StubMember:
    def __init__(self, replica_id, applied_lsn):
        self.replica_id = replica_id
        self.applied_lsn = applied_lsn


class _StubGroup:
    """Just enough replica-group surface for the lag gauge."""

    def __init__(self, log_len, applied_by_replica):
        self.log = [None] * log_len
        self._members = [
            _StubMember(rid, lsn) for rid, lsn in applied_by_replica
        ]

    def alive_followers(self):
        return self._members


def test_openmetrics_repl_lag_samples_are_pinned():
    __, __, rec = run_traced("miodb", n=128, reads=0, live={})
    groups = [_StubGroup(10, [(1, 10), (2, 7)])]
    text = openmetrics_text(rec, labels=["0"], groups=groups)
    lag_lines = [line for line in text.splitlines() if "repro_repl_lag" in line]
    assert lag_lines == [
        "# TYPE repro_repl_lag gauge",
        "# HELP repro_repl_lag Acked log records not yet applied, "
        "per live follower.",
        'repro_repl_lag{shard="0",replica="1"} 0',
        'repro_repl_lag{shard="0",replica="2"} 3',
    ]


def test_openmetrics_without_groups_has_no_lag_family():
    __, __, rec = run_traced("miodb", n=128, reads=0, live={})
    assert "repro_repl_lag" not in openmetrics_text(rec, labels=["0"])
    # A shard without a replica group contributes no samples either.
    with_empty = openmetrics_text(rec, labels=["0"], groups=[None])
    assert "# TYPE repro_repl_lag gauge" in with_empty
    assert 'repro_repl_lag{' not in with_empty


def test_replicated_cluster_openmetrics_exports_follower_lag():
    from repro.cluster import (
        ClientSpec,
        Cluster,
        ShardRouter,
        cluster_openmetrics_text,
        run_cluster,
    )
    from repro.replication import ReplicationConfig

    def drive():
        cluster = Cluster(
            "miodb", n_shards=2,
            replication=ReplicationConfig(followers=2),
        )
        router = ShardRouter(cluster)
        recorders = cluster.attach_live(seed=3)
        run_cluster(
            router,
            [ClientSpec(n_ops=100, rate_per_s=float("inf"),
                        key_space=200, seed=1)],
            sessions=[router.session()],
        )
        for rec in recorders:
            rec.detach()
        return cluster_openmetrics_text(cluster, recorders)

    a, b = drive(), drive()
    assert a == b
    assert 'repro_repl_lag{shard="0",replica="1"}' in a
    assert 'repro_repl_lag{shard="1",replica="2"}' in a


# ----------------------------------------------------------------- dashboard


def test_sparkline_renders_last_width_values_monotonically():
    assert sparkline([], width=6) == ""
    assert len(sparkline([0.0, 0.5, 1.0], width=6)) == 3
    assert len(sparkline([float(i) for i in range(40)], width=6)) == 6
    from repro.obs.live.dashboard import SPARK_CHARS

    chars = sparkline([float(i) for i in range(8)], width=8)
    ranks = [SPARK_CHARS.index(c) for c in chars]
    assert ranks == sorted(ranks), "ramp should render monotonically"


def test_dashboard_frames_are_deterministic():
    def drive():
        __, __, rec = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
        return render_frame([rec], ["0"], now=rec.clock.now)

    a, b = drive(), drive()
    assert a == b
    assert "live telemetry" in a
    assert "p99" in a


def test_dashboard_refresh_cadence():
    __, __, rec = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    frames = []
    dash = LiveDashboard([rec], refresh_s=1e-3, sink=frames.append)
    assert dash.maybe_refresh(5e-4) is False
    assert dash.maybe_refresh(1e-3) is True
    assert dash.maybe_refresh(1.2e-3) is False  # within the refresh period
    assert dash.maybe_refresh(2.5e-3) is True
    assert len(frames) == 2
    assert len(dash.frames) == 2
