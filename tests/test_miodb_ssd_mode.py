"""Tests for MioDB's DRAM-NVM-SSD mode (paper Section 5.4)."""

import pytest

from repro.core import MioDB, MioOptions

from repro.kvstore.values import SizedValue

KB = 1 << 10


@pytest.fixture
def ssd_store(ssd_system):
    options = MioOptions(memtable_bytes=4 * KB, num_levels=3, ssd_mode=True)
    return MioDB(ssd_system, options)


def fill(store, n, value_size=256, key_space=None):
    space = key_space or n
    for i in range(n):
        store.put(b"key%06d" % ((i * 7919) % space), SizedValue(i, value_size))


def test_ssd_mode_requires_ssd(system):
    with pytest.raises(ValueError):
        MioDB(system, MioOptions(ssd_mode=True))


def test_lazy_copy_serializes_to_ssd(ssd_store, ssd_system):
    fill(ssd_store, 1000)
    ssd_store.quiesce()
    assert ssd_system.ssd.bytes_written > 0
    assert ssd_store.repository.data_bytes > 0
    assert ssd_system.stats.get("serialize.time_s") > 0


def test_reads_fall_through_to_ssd(ssd_store, ssd_system):
    fill(ssd_store, 900, key_space=300)
    ssd_store.quiesce()
    for i in range(300):
        value, __ = ssd_store.get(b"key%06d" % i)
        assert value is not None, i


def test_elastic_buffer_absorbs_ssd_slowness(ssd_store, ssd_system):
    fill(ssd_store, 2000)
    # the SSD repository is slow, but writes never stall: the buffer grows
    assert ssd_system.stats.get("stall.interval_s") == pytest.approx(0.0, abs=1e-6)


def test_nvm_reclaimed_after_flush_to_ssd(ssd_store, ssd_system):
    fill(ssd_store, 1500)
    peak = ssd_system.nvm.peak_bytes_in_use
    ssd_store.quiesce()
    assert ssd_system.nvm.bytes_in_use < peak


def test_ssd_mode_scan(ssd_store):
    for i in range(300):
        ssd_store.put(b"key%06d" % i, SizedValue(i, 256))
    ssd_store.quiesce()
    pairs, __ = ssd_store.scan(b"key000050", 10)
    assert [k for k, __ in pairs] == [b"key%06d" % i for i in range(50, 60)]


def test_deletes_respected_through_ssd_levels(ssd_store):
    for i in range(200):
        ssd_store.put(b"key%06d" % i, SizedValue(i, 256))
    ssd_store.quiesce()
    ssd_store.delete(b"key000007")
    ssd_store.quiesce()
    value, __ = ssd_store.get(b"key000007")
    assert value is None
