"""Smoke tests: the example scripts must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "zero_copy_anatomy.py",
    "crash_recovery.py",
    "compaction_timeline.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_exist():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts >= set(FAST_EXAMPLES) | {
        "ycsb_comparison.py",
        "ssd_tiering.py",
        "write_amplification_tour.py",
    }
