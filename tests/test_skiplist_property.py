"""Property-based tests (hypothesis) for skip-list invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim.rng import XorShiftRng
from repro.skiplist.merge import ZeroCopyMerge
from repro.skiplist.skiplist import SkipList

keys = st.binary(min_size=1, max_size=6)
ops = st.lists(st.tuples(keys, st.binary(max_size=4)), max_size=80)


def build(pairs, seed=1, start_seq=1):
    sl = SkipList(XorShiftRng(seed))
    seq = start_seq
    for key, value in pairs:
        sl.insert(key, seq, value, len(value))
        seq += 1
    return sl, seq


def is_sorted(sl):
    nodes = list(sl.nodes())
    for a, b in zip(nodes, nodes[1:]):
        if a.key > b.key:
            return False
        if a.key == b.key and a.seq <= b.seq:
            return False
    return True


@given(ops)
def test_insert_keeps_order_invariant(pairs):
    sl, __ = build(pairs)
    assert is_sorted(sl)
    assert len(sl) == len(pairs)


@given(ops)
def test_get_returns_latest_write(pairs):
    sl, __ = build(pairs)
    model = {}
    for key, value in pairs:
        model[key] = value
    for key, value in model.items():
        node, __ = sl.get(key)
        assert node is not None
        assert node.value == value


@given(ops)
def test_items_match_dict_model(pairs):
    sl, __ = build(pairs)
    model = {}
    for key, value in pairs:
        model[key] = value
    assert dict(sl.items()) == model


@settings(max_examples=60)
@given(ops, ops)
def test_zero_copy_merge_equals_dict_union(old_pairs, new_pairs):
    """Merging two tables must equal applying old writes then new ones."""
    old, next_seq = build(old_pairs, seed=1)
    new, __ = build(new_pairs, seed=2, start_seq=next_seq)
    merge = ZeroCopyMerge(new, old).run()
    model = {}
    for key, value in old_pairs:
        model[key] = value
    for key, value in new_pairs:
        model[key] = value
    assert dict(old.items()) == model
    assert is_sorted(old)
    assert new.is_empty
    # every key the newtable touched is fully deduplicated (the merge
    # drops versions shadowed by a migrating node; purely-old keys keep
    # their internal versions until lazy-copy compaction)
    touched = {key for key, __ in new_pairs}
    counts = {}
    for node in old.nodes():
        counts[node.key] = counts.get(node.key, 0) + 1
    for key in touched:
        assert counts.get(key, 0) == 1


@settings(max_examples=40)
@given(ops, ops, st.integers(min_value=0, max_value=200))
def test_mid_merge_queries_never_lose_data(old_pairs, new_pairs, steps):
    old, next_seq = build(old_pairs, seed=3)
    new, __ = build(new_pairs, seed=4, start_seq=next_seq)
    model = {}
    for key, value in old_pairs:
        model[key] = value
    for key, value in new_pairs:
        model[key] = value
    merge = ZeroCopyMerge(new, old)
    for __step in range(steps):
        if not merge.step():
            break
        for key, value in model.items():
            node, __ = merge.get(key)
            assert node is not None
            assert node.value == value


@settings(max_examples=40)
@given(ops)
def test_bytes_accounting_is_conserved(pairs):
    sl, __ = build(pairs)
    total = sl.data_bytes
    # unlink everything; data should flow to garbage, not vanish
    while not sl.is_empty:
        node = sl.first_node()
        sl.unlink(node, sl.predecessors_of(node))
    assert sl.data_bytes == 0
    assert sl.garbage_bytes == total
