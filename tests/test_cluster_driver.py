"""Tests for the multi-client cluster driver and admission control."""

import math

import pytest

from repro.bench.config import BenchScale
from repro.cluster import (
    DROP_CAUSES,
    DROP_QUEUE_FULL,
    DROP_RETRY_EXHAUSTED,
    AdmissionControl,
    ClientSpec,
    Cluster,
    ShardRouter,
    cluster_metrics_json,
    run_cluster,
)
from repro.kvstore.values import SizedValue
from repro.workloads.keys import key_for

pytestmark = pytest.mark.cluster_smoke

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def make_router(n_shards=4, store_name="miodb"):
    cluster = Cluster(store_name, n_shards=n_shards, scale=SCALE)
    return ShardRouter(cluster)


def preload(router, n=500):
    for i in range(n):
        router.put(key_for(i), SizedValue(("seed", i), 256))
    router.quiesce()
    router.reset_window()


def spec(**kwargs):
    defaults = dict(n_ops=200, rate_per_s=math.inf, key_space=500, seed=1)
    defaults.update(kwargs)
    return ClientSpec(**defaults)


def test_spec_and_admission_validation():
    with pytest.raises(ValueError):
        ClientSpec(n_ops=-1, rate_per_s=1.0, key_space=10)
    with pytest.raises(ValueError):
        ClientSpec(n_ops=1, rate_per_s=0.0, key_space=10)
    with pytest.raises(ValueError):
        ClientSpec(n_ops=1, rate_per_s=1.0, key_space=0)
    with pytest.raises(ValueError):
        ClientSpec(n_ops=1, rate_per_s=1.0, key_space=10, read_fraction=1.5)
    with pytest.raises(ValueError):
        AdmissionControl(max_queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionControl(policy="drop-all")
    with pytest.raises(ValueError):
        AdmissionControl(max_retries=-1)
    assert spec().closed_loop
    assert not spec(rate_per_s=1000.0).closed_loop


def test_closed_loop_completes_every_op():
    router = make_router()
    preload(router)
    result = run_cluster(router, [spec(seed=s) for s in (1, 2, 3)])
    assert result.offered == result.completed == 600
    assert result.dropped == 0
    assert result.throughput_kiops > 0
    assert result.response.count == 600


def test_open_loop_low_rate_no_queueing():
    router = make_router()
    preload(router)
    result = run_cluster(
        router, [spec(rate_per_s=10_000.0, n_ops=150, seed=s) for s in (1, 2)]
    )
    assert result.completed == 300
    assert result.dropped == 0
    # at 1/10000 s spacing the queue never builds: response ~ service time
    assert result.response.p99 < 1e-3


def test_same_seed_produces_identical_metrics_json():
    docs = []
    for __ in range(2):
        router = make_router()
        preload(router)
        result = run_cluster(
            router,
            [spec(seed=s, theta=0.6, n_ops=300) for s in (1, 2)],
            rebalance_every=100,
        )
        docs.append(
            cluster_metrics_json(router.cluster, router, result)
        )
    assert docs[0] == docs[1]


def test_different_seed_changes_the_run():
    results = []
    for seed in (1, 99):
        router = make_router()
        preload(router)
        results.append(run_cluster(router, [spec(seed=seed)]))
    assert (
        results[0].merged_recorder().summary("response").mean
        != results[1].merged_recorder().summary("response").mean
    )


def test_reject_policy_sheds_with_queue_full_cause():
    router = make_router(n_shards=2)
    preload(router)
    admission = AdmissionControl(max_queue_depth=2, policy="reject")
    # a burst far above service capacity must overflow the tiny queues
    result = run_cluster(
        router,
        [spec(rate_per_s=5_000_000.0, n_ops=400, seed=s) for s in (1, 2)],
        admission=admission,
    )
    assert result.dropped > 0
    assert set(result.drops) == {DROP_QUEUE_FULL}
    assert result.completed + result.dropped == result.offered
    assert all(d["max_queue_depth"] <= 2 for d in result.per_shard)


def test_defer_policy_retries_then_exhausts():
    router = make_router(n_shards=2)
    preload(router)
    admission = AdmissionControl(
        max_queue_depth=2, policy="defer", max_retries=2, defer_s=1e-7
    )
    result = run_cluster(
        router,
        [spec(rate_per_s=5_000_000.0, n_ops=400, seed=s) for s in (1, 2)],
        admission=admission,
    )
    assert router.cluster.stats.get("cluster.deferred") > 0
    # every shed request went through the retry ladder first
    assert set(result.drops) <= {DROP_RETRY_EXHAUSTED}
    assert result.completed + result.dropped == result.offered


def test_drop_causes_vocabulary_is_closed():
    router = make_router(n_shards=2)
    preload(router)
    result = run_cluster(
        router,
        [spec(rate_per_s=5_000_000.0, n_ops=300)],
        admission=AdmissionControl(max_queue_depth=1),
    )
    for cause in result.drops:
        assert cause in DROP_CAUSES
    for shard in result.per_shard:
        for cause in shard["drops"]:
            assert cause in DROP_CAUSES


def test_per_shard_accounting_sums_to_totals():
    router = make_router()
    preload(router)
    result = run_cluster(router, [spec(seed=s) for s in (3, 4)])
    assert sum(d["ops"] for d in result.per_shard) == result.completed
    merged = result.merged_recorder()
    assert merged.count("response") == result.completed
    assert merged.summary("response").p99 == result.response.p99


def test_batch_limit_validation():
    router = make_router(n_shards=2)
    with pytest.raises(ValueError):
        run_cluster(router, [spec()], batch_limit=0)


def test_batch_limit_does_not_change_simulated_results():
    """Queue-drain coalescing is wall-clock only: every simulated number
    -- metrics document, final clock, and store contents -- is identical
    whether the driver serves one request per scheduler scan or drains
    whole runs."""

    def drive(limit):
        router = make_router()
        preload(router)
        result = run_cluster(
            router,
            [spec(seed=s, n_ops=300) for s in (1, 2)],
            batch_limit=limit,
        )
        doc = cluster_metrics_json(router.cluster, router, result)
        items = [(k, v.tag) for k, v in router.items()]
        return doc, router.cluster.clock.now, items

    reference = drive(1)  # the one-request-at-a-time loop
    for limit in (None, 4, 33):
        assert drive(limit) == reference, limit


def test_batched_driver_matches_flat_store_oracle():
    """With one closed-loop client nothing reorders: the batched driver
    must leave the cluster in exactly the state a flat store reaches by
    replaying the client's deterministic op stream."""
    from repro.bench.factory import make_store
    from repro.cluster.driver import _ClientState

    client = spec(n_ops=400, seed=7, read_fraction=0.4)
    router = make_router()
    preload(router)
    result = run_cluster(router, [client], batch_limit=16)
    assert result.completed == 400 and result.dropped == 0
    router.quiesce()

    flat, __ = make_store("miodb", SCALE)
    for i in range(500):
        flat.put(key_for(i), SizedValue(("seed", i), 256))
    state = _ClientState(0, client)
    for __n in range(client.n_ops):
        request = state.make_request(0.0)
        if request.kind == "get":
            flat.get(request.key)
        else:
            flat.put(request.key, SizedValue(request.tag, client.value_size))
    flat.quiesce()
    assert [(k, v.tag) for k, v in router.items()] == [
        (k, v.tag) for k, v in flat.items()
    ]


def test_skew_concentrates_traffic():
    router = make_router()
    preload(router)
    run_cluster(router, [spec(theta=0.99, n_ops=600)])
    counts = sorted(router.shard_ops)
    assert counts[-1] > 2 * counts[0]
