"""Unit tests for background workers and job settlement."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.executor import Executor


@pytest.fixture
def executor():
    return Executor(SimClock())


def test_worker_is_created_once(executor):
    a = executor.worker("w")
    b = executor.worker("w")
    assert a is b
    assert len(executor.workers) == 1


def test_submit_returns_job_with_times(executor):
    job = executor.submit(executor.worker("w"), 2.0, name="j")
    assert job.start == 0.0
    assert job.end == 2.0
    assert job.duration == 2.0
    assert not job.done


def test_jobs_on_one_worker_serialize(executor):
    worker = executor.worker("w")
    first = executor.submit(worker, 1.0)
    second = executor.submit(worker, 1.0)
    assert second.start == first.end
    assert second.end == 2.0


def test_jobs_on_different_workers_overlap(executor):
    a = executor.submit(executor.worker("a"), 1.0)
    b = executor.submit(executor.worker("b"), 1.0)
    assert a.start == b.start == 0.0


def test_job_starts_no_earlier_than_clock(executor):
    executor.clock.advance(5.0)
    job = executor.submit(executor.worker("w"), 1.0)
    assert job.start == 5.0


def test_not_before_delays_start(executor):
    job = executor.submit(executor.worker("w"), 1.0, not_before=4.0)
    assert job.start == 4.0
    assert job.end == 5.0


def test_negative_duration_rejected(executor):
    with pytest.raises(ValueError):
        executor.submit(executor.worker("w"), -1.0)


def test_settle_applies_only_completed_jobs(executor):
    fired = []
    executor.submit(executor.worker("w"), 1.0, lambda: fired.append(1))
    executor.submit(executor.worker("w"), 1.0, lambda: fired.append(2))
    executor.clock.advance(1.0)
    executor.settle()
    assert fired == [1]
    executor.clock.advance(1.0)
    executor.settle()
    assert fired == [1, 2]


def test_settle_order_is_completion_order(executor):
    fired = []
    executor.submit(executor.worker("slow"), 3.0, lambda: fired.append("slow"))
    executor.submit(executor.worker("fast"), 1.0, lambda: fired.append("fast"))
    executor.clock.advance(10.0)
    executor.settle()
    assert fired == ["fast", "slow"]


def test_settle_drains_cascading_jobs(executor):
    fired = []

    def first():
        fired.append("first")
        executor.submit(executor.worker("w2"), 0.0, lambda: fired.append("second"))

    executor.submit(executor.worker("w"), 1.0, first)
    executor.clock.advance(1.0)
    executor.settle()
    assert fired == ["first", "second"]


def test_wait_for_advances_clock_and_reports_stall(executor):
    job = executor.submit(executor.worker("w"), 2.0)
    stall = executor.wait_for(job)
    assert stall == 2.0
    assert executor.clock.now == 2.0
    assert job.done


def test_wait_for_completed_job_is_free(executor):
    job = executor.submit(executor.worker("w"), 1.0)
    executor.clock.advance(5.0)
    executor.settle()
    assert executor.wait_for(job) == 0.0


def test_drain_runs_everything(executor):
    fired = []
    for i in range(5):
        executor.submit(executor.worker("w"), 1.0, lambda i=i: fired.append(i))
    end = executor.drain()
    assert fired == [0, 1, 2, 3, 4]
    assert end == 5.0
    assert executor.pending == 0


def test_next_completion(executor):
    assert executor.next_completion() is None
    executor.submit(executor.worker("w"), 2.5)
    assert executor.next_completion() == 2.5


def test_next_completion_skips_cancelled_jobs_at_heap_top(executor):
    doomed = executor.submit(executor.worker("a"), 1.0)
    survivor = executor.submit(executor.worker("b"), 2.0)
    doomed.cancelled = True
    # The lazy-deletion peek must look past the cancelled entry at the
    # top of the heap and report the first live completion.
    assert executor.next_completion() == survivor.end
    assert executor.pending == 1


def test_next_completion_all_cancelled_is_idle(executor):
    jobs = [executor.submit(executor.worker(f"w{i}"), float(i + 1)) for i in range(3)]
    for job in jobs:
        job.cancelled = True
    assert executor.next_completion() is None
    assert executor.pending == 0
    # Lazily-popped cancelled jobs must never fire once time passes.
    executor.clock.advance(10.0)
    assert executor.settle() == 0


def test_next_completion_pops_lazily_without_losing_live_jobs(executor):
    fired = []
    doomed = executor.submit(executor.worker("a"), 1.0, lambda: fired.append("doomed"))
    executor.submit(executor.worker("b"), 2.0, lambda: fired.append("live"))
    doomed.cancelled = True
    executor.next_completion()  # pops the cancelled top entry
    executor.clock.advance(5.0)
    executor.settle()
    assert fired == ["live"]


def test_crash_reset_cancels_pending_jobs(executor):
    fired = []
    executor.submit(executor.worker("w"), 1.0, lambda: fired.append(1))
    cancelled = executor.crash_reset()
    assert cancelled == 1
    executor.clock.advance(10.0)
    executor.settle()
    assert fired == []
    assert executor.pending == 0


def test_crash_reset_frees_workers(executor):
    worker = executor.worker("w")
    executor.submit(worker, 10.0)
    executor.crash_reset()
    assert worker.busy_until == executor.clock.now
    job = executor.submit(worker, 1.0)
    assert job.start == executor.clock.now


def test_crash_reset_leaves_heap_usable(executor):
    fired = []
    executor.submit(executor.worker("w"), 5.0, lambda: fired.append("old"))
    executor.crash_reset()
    assert executor.next_completion() is None
    # Post-reboot work schedules, peeks, and settles normally.
    job = executor.submit(executor.worker("w"), 1.0, lambda: fired.append("new"))
    assert executor.next_completion() == job.end
    end = executor.drain()
    assert fired == ["new"]
    assert end == job.end
    assert executor.pending == 0


def test_worker_accounting(executor):
    worker = executor.worker("w")
    executor.submit(worker, 2.0)
    executor.submit(worker, 3.0)
    assert worker.total_busy == 5.0
    assert worker.jobs_run == 2
