"""Tiny-scale smoke tests for tracing overhead and the perf band guard.

Marked ``trace_smoke``: tier-1 companions to the ``perf_smoke`` tests
that pin the observability layer's cost model:

- tracing must add **zero simulated time** -- a traced run and an
  untraced run of the same seeded workload land on the same clock and
  the same counters;
- with tracing disabled (the default), the perf kernels must stay
  within the wall-time band of the runs recorded in ``BENCH_perf.json``
  and reproduce their simulated fingerprints exactly.
"""

import os
import pathlib

import pytest

from repro.bench.config import KB, BenchScale
from repro.bench.factory import make_store
from repro.bench.perf import check_band, find_run, load_results, run_kernels
from repro.workloads import fill_random, read_random

pytestmark = pytest.mark.trace_smoke

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

TINY = BenchScale(
    memtable_bytes=64 * KB, dataset_bytes=512 * KB, value_size=KB, rw_ops=64
)


def _drive(store, system):
    fill_random(store, 512, TINY.value_size, seed=1)
    read_random(store, 64, 512, seed=2)
    store.quiesce()
    return system.clock.now, system.stats.snapshot()


@pytest.mark.parametrize("name", ["miodb", "leveldb"])
def test_tracing_adds_zero_simulated_time(name):
    store, system = make_store(name, TINY)
    plain_clock, plain_stats = _drive(store, system)

    store, system = make_store(name, TINY)
    recorder = system.attach_tracing()
    traced_clock, traced_stats = _drive(store, system)
    recorder.detach()

    assert recorder.events, "traced run recorded nothing"
    assert traced_clock == plain_clock
    assert traced_stats == plain_stats


def test_detached_system_pays_no_tracing_cost():
    store, system = make_store("miodb", TINY)
    recorder = system.attach_tracing()
    system.detach_tracing()
    _drive(store, system)
    assert len(recorder.events) == 0
    assert system.obs is None
    assert all(d.obs is None for d in system.devices())


def test_kernels_stay_within_recorded_band():
    """The overhead guard: tracing-off kernels match BENCH_perf.json.

    Fingerprints must be bit-identical to the recorded tiny-scale run;
    wall time must stay within ``REPRO_PERF_BAND`` (default 3x, loose on
    purpose -- this guards against always-on instrumentation cost, not
    machine noise).
    """
    path = REPO_ROOT / "BENCH_perf.json"
    if not path.exists():
        pytest.skip("no BENCH_perf.json recorded in this checkout")
    reference = find_run(load_results(path), "miodb", "tiny")
    if reference is None:
        pytest.skip("no tiny-scale perf run recorded for miodb")
    factor = float(os.environ.get("REPRO_PERF_BAND", "3.0"))
    kernels = run_kernels(store_name="miodb", ops_scale="tiny", repeats=2)
    violations = check_band(kernels, reference, factor=factor)
    assert not violations, "\n".join(violations)
