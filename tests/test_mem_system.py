"""Unit tests for the machine wrapper and the scaled/cost helpers."""

import pytest

from repro.mem.costs import CpuCostModel
from repro.mem.profiles import OPTANE_NVM_PROFILE, scaled_profile
from repro.mem.system import HybridMemorySystem


def test_default_system_has_no_ssd(system):
    assert system.ssd is None
    assert [d.name for d in system.persistent_devices()] == ["nvm"]


def test_with_ssd(ssd_system):
    assert ssd_system.ssd is not None
    names = [d.name for d in ssd_system.persistent_devices()]
    assert names == ["nvm", "ssd"]


def test_write_amplification_zero_without_user_writes(system):
    system.nvm.write(1000)
    assert system.write_amplification() == 0.0


def test_write_amplification_ratio(system):
    system.stats.add("user.bytes_written", 100)
    system.nvm.write(250)
    assert system.write_amplification() == pytest.approx(2.5)


def test_write_amplification_includes_ssd(ssd_system):
    ssd_system.stats.add("user.bytes_written", 100)
    ssd_system.nvm.write(100)
    ssd_system.ssd.write(100)
    assert ssd_system.write_amplification() == pytest.approx(2.0)


def test_device_usage_keys(ssd_system):
    usage = ssd_system.device_usage()
    assert set(usage) == {"dram", "nvm", "ssd"}


def test_drain_background_runs_jobs(system):
    fired = []
    system.executor.submit(system.executor.worker("w"), 1.0, lambda: fired.append(1))
    system.drain_background()
    assert fired == [1]
    assert system.now == 1.0


def test_scaled_profile():
    fast = scaled_profile(OPTANE_NVM_PROFILE, "fast-nvm", 2.0)
    assert fast.seq_write_bw == OPTANE_NVM_PROFILE.seq_write_bw * 2
    assert fast.read_latency == OPTANE_NVM_PROFILE.read_latency / 2
    assert fast.persistent


def test_scaled_profile_rejects_nonpositive():
    with pytest.raises(ValueError):
        scaled_profile(OPTANE_NVM_PROFILE, "bad", 0)


def test_cpu_cost_model_hops():
    cpu = CpuCostModel()
    assert cpu.hop_time("nvm") > cpu.hop_time("dram")
    assert cpu.skiplist_search_time("dram", 10) == pytest.approx(
        10 * (cpu.dram_hop + cpu.compare_cost)
    )


def test_cpu_serialize_faster_than_deserialize_per_byte():
    cpu = CpuCostModel()
    n = 1 << 20
    assert cpu.serialize_time(n) < cpu.deserialize_time(n)


def test_bloom_costs_positive():
    cpu = CpuCostModel()
    assert cpu.bloom_build_time(100) > 0
    assert cpu.bloom_probe_time(3) == pytest.approx(
        cpu.bloom_base_cost + 3 * cpu.bloom_probe_cost
    )
    # a short-circuited miss is cheaper than a full k-hash "maybe"
    assert cpu.bloom_probe_time(2) < cpu.bloom_probe_time(11)
