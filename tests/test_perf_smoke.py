"""Tiny-scale smoke tests for the perf microbenchmark kernels.

Marked ``perf_smoke``: they run every kernel at the tiny preset inside
the tier-1 time budget and pin the property that makes wall-clock
optimization safe -- the *simulated* model is bit-deterministic, so the
same operations always yield the same simulated seconds (or merge work
counters).  An optimization that changes a fingerprint changes the
paper's figures and must fail here.
"""

import json

import pytest

from repro.bench.perf import (
    KERNELS,
    load_results,
    record_run,
    run_kernel,
    run_kernels,
    speedup_table,
)

pytestmark = pytest.mark.perf_smoke


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_is_deterministic_across_fresh_runs(kernel):
    first = run_kernel(kernel, ops_scale="tiny", repeats=1)
    second = run_kernel(kernel, ops_scale="tiny", repeats=1)
    assert first["ops"] == second["ops"] > 0
    assert first["wall_s"] > 0
    # Same ops -> same simulated seconds (or exact merge counters).
    assert first["fingerprint"] == second["fingerprint"]


def test_repeats_cross_check_fingerprints():
    # repeats>1 re-runs the kernel and asserts fingerprint equality
    # internally; surviving it is itself a determinism check.
    metrics = run_kernel("put", ops_scale="tiny", repeats=2)
    assert metrics["kops_wall"] > 0


def test_unknown_kernel_and_preset_rejected():
    with pytest.raises(ValueError):
        run_kernel("fsync")
    with pytest.raises(ValueError):
        run_kernel("put", ops_scale="huge")
    with pytest.raises(ValueError):
        run_kernel("put", repeats=0)


def test_record_run_roundtrip(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    kernels = run_kernels(("compact",), ops_scale="tiny", repeats=1)
    doc = record_run(path, "smoke", kernels, "miodb", "tiny")
    assert json.loads(path.read_text()) == doc
    assert doc["runs"][0]["label"] == "smoke"
    # Re-recording the same label replaces the run instead of duplicating.
    doc = record_run(path, "smoke", kernels, "miodb", "tiny")
    assert len(doc["runs"]) == 1
    assert load_results(path) == doc
    table = speedup_table(doc)
    assert "smoke" in table and "compact_ms" in table


def test_speedup_table_empty():
    assert "no perf runs" in speedup_table({"runs": []})


@pytest.mark.parametrize("base", ["put", "get"])
def test_instrumented_kernels_share_the_plain_fingerprint(base):
    """Tracing (full or live) must add zero simulated time."""
    plain = run_kernel(base, ops_scale="tiny", repeats=1)
    traced = run_kernel(f"{base}-traced", ops_scale="tiny", repeats=1)
    live = run_kernel(f"{base}-live", ops_scale="tiny", repeats=1)
    assert traced["fingerprint"] == plain["fingerprint"]
    assert live["fingerprint"] == plain["fingerprint"]
    assert traced["ops"] == live["ops"] == plain["ops"]


def test_check_band_violation_names_kernel_kops_and_band_edges():
    from repro.bench.perf import check_band

    ref = {"kernels": {"put": {
        "wall_s": 0.01, "kops_wall": 100.0, "fingerprint": 1.0,
    }}}
    fresh = {"put": {"wall_s": 0.05, "kops_wall": 20.0, "fingerprint": 1.0}}
    violations = check_band(fresh, ref, 3.0)
    assert len(violations) == 1
    line = violations[0]
    assert "\n" not in line
    assert "kernel put" in line
    assert "20.000 kops" in line          # observed throughput
    assert "0.010000s recorded" in line   # band lower edge
    assert "0.030000s max" in line        # band upper edge
    assert "3x" in line


def test_history_table_renders_trajectory_and_flags_regressions():
    from repro.bench.perf import history_table

    doc = {"runs": [
        {"label": "v0", "store": "miodb", "ops_scale": "tiny",
         "kernels": {"put": {"wall_s": 0.010, "kops_wall": 100.0}}},
        {"label": "v1", "store": "miodb", "ops_scale": "tiny",
         "kernels": {"put": {"wall_s": 0.050, "kops_wall": 20.0}}},
        {"label": "other-scale", "store": "miodb", "ops_scale": "default",
         "kernels": {"put": {"wall_s": 1.0, "kops_wall": 1.0}}},
    ]}
    text = history_table(doc, "miodb", "tiny", band_factor=3.0)
    assert "-- put --" in text
    assert "v0" in text and "v1" in text
    assert "other-scale" not in text  # filtered by ops_scale
    lines = {l.split()[0]: l for l in text.splitlines() if l.startswith("  ")}
    assert "REGRESSION" not in lines["v0"]  # first run is the baseline
    assert "REGRESSION" in lines["v1"]      # 5x the best prior wall
    assert text == history_table(doc, "miodb", "tiny", band_factor=3.0)


def test_history_table_empty_doc():
    from repro.bench.perf import history_table

    assert "no perf runs" in history_table({"runs": []}, "miodb", "tiny")
