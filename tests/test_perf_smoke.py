"""Tiny-scale smoke tests for the perf microbenchmark kernels.

Marked ``perf_smoke``: they run every kernel at the tiny preset inside
the tier-1 time budget and pin the property that makes wall-clock
optimization safe -- the *simulated* model is bit-deterministic, so the
same operations always yield the same simulated seconds (or merge work
counters).  An optimization that changes a fingerprint changes the
paper's figures and must fail here.
"""

import json

import pytest

from repro.bench.perf import (
    KERNELS,
    load_results,
    record_run,
    run_kernel,
    run_kernels,
    speedup_table,
)

pytestmark = pytest.mark.perf_smoke


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_is_deterministic_across_fresh_runs(kernel):
    first = run_kernel(kernel, ops_scale="tiny", repeats=1)
    second = run_kernel(kernel, ops_scale="tiny", repeats=1)
    assert first["ops"] == second["ops"] > 0
    assert first["wall_s"] > 0
    # Same ops -> same simulated seconds (or exact merge counters).
    assert first["fingerprint"] == second["fingerprint"]


def test_repeats_cross_check_fingerprints():
    # repeats>1 re-runs the kernel and asserts fingerprint equality
    # internally; surviving it is itself a determinism check.
    metrics = run_kernel("put", ops_scale="tiny", repeats=2)
    assert metrics["kops_wall"] > 0


def test_unknown_kernel_and_preset_rejected():
    with pytest.raises(ValueError):
        run_kernel("fsync")
    with pytest.raises(ValueError):
        run_kernel("put", ops_scale="huge")
    with pytest.raises(ValueError):
        run_kernel("put", repeats=0)


def test_record_run_roundtrip(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    kernels = run_kernels(("compact",), ops_scale="tiny", repeats=1)
    doc = record_run(path, "smoke", kernels, "miodb", "tiny")
    assert json.loads(path.read_text()) == doc
    assert doc["runs"][0]["label"] == "smoke"
    # Re-recording the same label replaces the run instead of duplicating.
    doc = record_run(path, "smoke", kernels, "miodb", "tiny")
    assert len(doc["runs"]) == 1
    assert load_results(path) == doc
    table = speedup_table(doc)
    assert "smoke" in table and "compact_ms" in table


def test_speedup_table_empty():
    assert "no perf runs" in speedup_table({"runs": []})
