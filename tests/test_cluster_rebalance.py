"""Tests for hot-shard detection and keyrange rebalancing."""

import pytest

from repro.bench.config import BenchScale
from repro.cluster import (
    Cluster,
    ShardRouter,
    detect_hot_shard,
    maybe_rebalance,
    rebalance_hot_shard,
)
from repro.kvstore.values import SizedValue
from repro.workloads.keys import key_for

pytestmark = pytest.mark.cluster_smoke

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def make_router(n_shards=4, **kwargs):
    cluster = Cluster("miodb", n_shards=n_shards, scale=SCALE)
    return ShardRouter(cluster, **kwargs)


def load_skewed(router, hot_shard=None, n=2000):
    """Route traffic so one shard is clearly hot; returns that shard."""
    for i in range(n):
        router.put(key_for(i), SizedValue(i, 256))
    if hot_shard is None:
        hot_shard = max(
            range(router.cluster.n_shards), key=lambda s: router.shard_ops[s]
        )
    # hammer keys owned by the hot shard to push it past the threshold
    hot_keys = [
        key_for(i)
        for i in range(n)
        if router.placement.shard_for(key_for(i)) == hot_shard
    ]
    for __ in range(3):
        for key in hot_keys:
            router.get(key)
    return hot_shard


def test_detect_hot_shard():
    router = make_router()
    hot = load_skewed(router)
    report = detect_hot_shard(router, factor=1.5)
    assert report.hot == hot
    assert report.shares[hot] > 1.5 / 4
    assert sum(report.counts) == report.total


def test_detect_nothing_hot_on_uniform_traffic():
    router = make_router()
    for i in range(2000):
        router.get(key_for(i))
    assert detect_hot_shard(router, factor=1.5).hot is None


def test_detect_factor_validation():
    router = make_router()
    with pytest.raises(ValueError):
        detect_hot_shard(router, factor=1.0)


def test_rebalance_moves_arcs_keys_and_bytes():
    router = make_router()
    hot = load_skewed(router)
    router.quiesce()
    before_time = router.cluster.clock.now
    result = rebalance_hot_shard(router, hot)
    assert result.from_shard == hot
    assert result.to_shard != hot
    assert result.moved_slots
    assert result.moved_keys > 0
    assert result.moved_bytes > result.moved_keys * 256
    # migration runs through the stores: simulated time was charged
    router.quiesce()
    assert router.cluster.clock.now > before_time
    stats = router.cluster.stats
    assert stats.get("cluster.rebalances") == 1
    assert stats.get("cluster.migrated_keys") == result.moved_keys
    assert stats.get("cluster.migrated_bytes") == result.moved_bytes


def test_rebalance_preserves_every_key():
    router = make_router()
    n = 1500
    hot = load_skewed(router, n=n)
    rebalance_hot_shard(router, hot)
    router.quiesce()
    for i in range(n):
        value, __ = router.get(key_for(i))
        assert value is not None and value.tag == i, i


def test_rebalance_reduces_hot_share():
    router = make_router()
    hot = load_skewed(router)
    before = detect_hot_shard(router, factor=1.5)
    rebalance_hot_shard(router, hot)
    router.quiesce()
    router.reset_window()
    # replay the same traffic pattern against the new ownership map
    load_skewed(router, hot_shard=hot)
    after = detect_hot_shard(router, factor=1.5)
    assert after.shares[hot] < before.shares[hot]


def test_rebalance_validation():
    router = make_router()
    load_skewed(router)
    with pytest.raises(ValueError):
        rebalance_hot_shard(router, 99)
    with pytest.raises(ValueError):
        rebalance_hot_shard(router, 1, to_shard=1)
    single = make_router(n_shards=1)
    with pytest.raises(ValueError):
        rebalance_hot_shard(single, 0)


def test_rebalance_requires_hash_ring():
    router = make_router(placement_name="range", key_space=1000)
    load_skewed(router, hot_shard=0, n=1000)
    with pytest.raises(TypeError):
        rebalance_hot_shard(router, 0)
    # maybe_rebalance degrades to a no-op instead of raising
    assert maybe_rebalance(router) is None


def test_maybe_rebalance_noop_when_balanced():
    router = make_router()
    for i in range(2000):
        router.get(key_for(i))
    assert maybe_rebalance(router) is None


def test_maybe_rebalance_moves_when_hot():
    router = make_router()
    load_skewed(router)
    result = maybe_rebalance(router)
    assert result is not None
    assert result.moved_slots
