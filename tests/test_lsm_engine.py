"""Unit tests for the shared leveled SSTable engine."""

import pytest

from repro.baselines.lsm import L0_COMPACTION_TRIGGER, LeveledLSM
from repro.kvstore.options import StoreOptions

KB = 1 << 10


@pytest.fixture
def engine(system):
    options = StoreOptions(memtable_bytes=4 * KB, sstable_bytes=4 * KB, num_levels=4)
    return LeveledLSM(system, options, system.nvm, nworkers=1, label="t")


def entries_for(keys, start_seq=1, vbytes=200):
    return [(k, start_seq + i, b"v" + k, vbytes) for i, k in enumerate(keys)]


def add_l0(engine, keys, start_seq):
    table, __ = engine.build_table(entries_for(keys, start_seq))
    engine.add_table(0, table)
    return table


def test_build_table_has_bloom(engine):
    table, seconds = engine.build_table(entries_for([b"a", b"b"]))
    assert seconds > 0
    assert engine._blooms[table.table_id].may_contain(b"a")


def test_add_table_out_of_range_level(engine):
    table, __ = engine.build_table(entries_for([b"a"]))
    with pytest.raises(ValueError):
        engine.add_table(9, table)


def test_get_from_l0_newest_table_wins(engine):
    add_l0(engine, [b"k"], start_seq=1)
    add_l0(engine, [b"k"], start_seq=10)
    entry, cost = engine.get(b"k")
    assert entry[1] == 10
    assert cost > 0


def test_get_miss(engine):
    add_l0(engine, [b"a"], start_seq=1)
    entry, __ = engine.get(b"zzz")
    assert entry is None


def test_compaction_triggers_at_l0_threshold(engine, system):
    for i in range(L0_COMPACTION_TRIGGER):
        add_l0(engine, [b"k%02d" % i], start_seq=i + 1)
    assert system.executor.pending > 0
    system.drain_background()
    assert engine.l0_table_count() == 0
    assert len(engine.levels[1]) >= 1
    assert engine.compactions_done >= 1


def test_compaction_preserves_all_data(engine, system):
    keys = [b"k%02d" % i for i in range(12)]
    for i, key in enumerate(keys):
        add_l0(engine, [key], start_seq=i + 1)
    system.drain_background()
    for key in keys:
        entry, __ = engine.get(key)
        assert entry is not None, key


def test_compaction_dedups_versions(engine, system):
    for round_ in range(6):
        add_l0(engine, [b"same"], start_seq=round_ + 1)
    system.drain_background()
    entry, __ = engine.get(b"same")
    assert entry[1] == 6
    # the compacted run holds exactly one version; only L0 leftovers
    # (tables added after the compaction was scheduled) may remain
    l1_entries = sum(len(t) for t in engine.levels[1])
    assert l1_entries == 1
    total = sum(len(t) for level in engine.levels for t in level)
    assert total <= 3


def test_compaction_releases_inputs(engine, system):
    tables = [add_l0(engine, [b"k%02d" % i], start_seq=i + 1) for i in range(4)]
    system.drain_background()
    assert all(t.released for t in tables)


def test_scan_from_merges_levels(engine, system):
    add_l0(engine, [b"a", b"c"], start_seq=1)
    add_l0(engine, [b"b", b"d"], start_seq=10)
    entries, cost = engine.scan_from(b"a", 3)
    assert [e[0] for e in entries] == [b"a", b"b", b"c"]
    assert cost > 0


def test_try_reserve_and_replace(engine, system):
    table, __ = engine.build_table(entries_for([b"a"]))
    engine.add_table(1, table)
    assert engine.try_reserve([table])
    assert not engine.try_reserve([table])  # already busy
    newer, __ = engine.build_table(entries_for([b"a"], start_seq=5))
    engine.replace_tables(1, [table], [newer])
    assert table.released
    assert engine.levels[1] == [newer]


def test_completion_listener_fires(engine, system):
    fired = []
    engine.add_completion_listener(lambda: fired.append(1))
    for i in range(4):
        add_l0(engine, [b"k%02d" % i], start_seq=i + 1)
    system.drain_background()
    assert fired


def test_write_amplification_accumulates(engine, system):
    for i in range(8):
        add_l0(engine, [b"k%02d" % (i % 3)], start_seq=i + 1)
    system.drain_background()
    # L0 bytes + compaction rewrites: strictly more written than stored
    assert system.nvm.bytes_written > engine.total_data_bytes()


def test_table_counts_shape(engine):
    assert engine.table_counts() == [0, 0, 0, 0]


def test_split_entries_respects_size(engine):
    entries = entries_for([b"k%03d" % i for i in range(40)], vbytes=500)
    chunks = engine.split_entries(entries)
    assert len(chunks) > 1
    assert sum(len(c) for c in chunks) == 40


def test_split_entries_never_splits_a_key_run(engine):
    """Regression: a chunk boundary inside one key's version run lets an
    older version land in a younger L0 table and serves stale reads."""
    entries = []
    seq = 1000
    for i in range(6):
        key = b"key%02d" % i
        for version in range(10):  # 10 versions per key, seq descending
            entries.append((key, seq - version, b"v", 500))
        seq += 100
    entries.sort(key=lambda e: (e[0], -e[1]))
    chunks = engine.split_entries(entries)
    assert len(chunks) > 1
    seen = set()
    for chunk in chunks:
        chunk_keys = {e[0] for e in chunk}
        assert not (chunk_keys & seen), "key spans two chunks"
        seen |= chunk_keys
