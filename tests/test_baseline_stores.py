"""Behavioural tests for the baseline stores.

Functional equivalence across every store is covered by
``test_store_equivalence.py``; these tests pin down the *design*
behaviours the paper attributes to each baseline.
"""

import pytest

from repro.baselines import (
    LevelDBStore,
    MatrixKVOptions,
    MatrixKVStore,
    NoveLSMNoSSTStore,
    NoveLSMOptions,
    NoveLSMStore,
)
from repro.kvstore.options import StoreOptions
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem

KB = 1 << 10


def fill(store, n, value_size=256, key_space=None):
    space = key_space or n
    for i in range(n):
        store.put(b"key%06d" % ((i * 7919) % space), SizedValue(i, value_size))


# ---------------------------------------------------------------- LevelDB


def test_leveldb_flushes_on_memtable_full(system, tiny_options):
    store = LevelDBStore(system, tiny_options)
    fill(store, 80)
    assert system.stats.get("flush.count") >= 1


def test_leveldb_wal_truncated_after_flush(system, tiny_options):
    store = LevelDBStore(system, tiny_options)
    fill(store, 200)
    store.quiesce()
    # only the live MemTable's records remain
    assert store.wal.record_count <= 80


def test_leveldb_read_through_all_layers(system, tiny_options):
    store = LevelDBStore(system, tiny_options)
    fill(store, 300, key_space=100)
    store.quiesce()
    for i in range(100):
        value, __ = store.get(b"key%06d" % i)
        assert value is not None


def test_leveldb_suffers_write_stalls(system, tiny_options):
    store = LevelDBStore(system, tiny_options)
    fill(store, 1500)
    stalls = system.stats.get("stall.interval_s") + system.stats.get(
        "stall.cumulative_s"
    )
    assert stalls > 0


def test_leveldb_media_validation(system):
    with pytest.raises(ValueError):
        LevelDBStore(system, media="ssd")  # no SSD on this system
    with pytest.raises(ValueError):
        LevelDBStore(system, media="tape")


def test_leveldb_scan_includes_memtable_and_tables(system, tiny_options):
    store = LevelDBStore(system, tiny_options)
    for i in range(60):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    pairs, __ = store.scan(b"key000010", 5)
    assert [k for k, __ in pairs] == [b"key%06d" % i for i in range(10, 15)]


# ---------------------------------------------------------------- NoveLSM


def test_novelsm_uses_nvm_memtable_when_dram_busy(system):
    options = NoveLSMOptions(
        memtable_bytes=8 * KB, sstable_bytes=8 * KB, nvm_memtable_bytes=64 * KB
    )
    store = NoveLSMStore(system, options)
    fill(store, 400)
    # flat mode: some writes bypassed the DRAM buffer into the NVM table
    assert len(store.nvm_mt.skiplist) > 0 or store.nvm_imm is not None


def test_novelsm_hierarchical_stalls_instead_of_bypassing(system):
    options = NoveLSMOptions(
        memtable_bytes=8 * KB,
        sstable_bytes=8 * KB,
        nvm_memtable_bytes=64 * KB,
        mutable_nvm=False,
    )
    store = NoveLSMStore(system, options)
    fill(store, 400)
    assert system.stats.get("stall.interval_s") > 0


def test_novelsm_big_flush_reaches_sstables(system):
    options = NoveLSMOptions(
        memtable_bytes=4 * KB, sstable_bytes=4 * KB, nvm_memtable_bytes=16 * KB
    )
    store = NoveLSMStore(system, options)
    fill(store, 600)
    store.quiesce()
    assert sum(len(level) for level in store.lsm.levels) > 0


def test_novelsm_reads_resolve_newest_across_buffers(system):
    options = NoveLSMOptions(
        memtable_bytes=8 * KB, sstable_bytes=8 * KB, nvm_memtable_bytes=64 * KB
    )
    store = NoveLSMStore(system, options)
    for round_ in range(5):
        for i in range(60):
            store.put(b"key%06d" % i, SizedValue((round_, i), 256))
    for i in range(60):
        value, __ = store.get(b"key%06d" % i)
        assert value is not None
        assert value.tag[0] == 4  # newest round


# ------------------------------------------------------------ NoveLSM-NoSST


def test_nosst_single_skiplist_no_flushes(system, tiny_options):
    store = NoveLSMNoSSTStore(system, tiny_options)
    fill(store, 500)
    assert system.stats.get("flush.count") == 0
    assert len(store.skiplist) <= 500


def test_nosst_in_place_updates_drop_old_versions(system, tiny_options):
    store = NoveLSMNoSSTStore(system, tiny_options)
    for round_ in range(4):
        store.put(b"k", SizedValue(round_, 256))
    assert len(store.skiplist) == 1
    value, __ = store.get(b"k")
    assert value.tag == 3


def test_nosst_write_amplification_is_one(system, tiny_options):
    store = NoveLSMNoSSTStore(system, tiny_options)
    fill(store, 300)
    # data is written exactly once; the small excess over 1.0 is the
    # per-node metadata (tower pointers etc.), not rewritten user data
    assert 1.0 <= system.write_amplification() <= 1.3


def test_nosst_scan_fast_and_ordered(system, tiny_options):
    store = NoveLSMNoSSTStore(system, tiny_options)
    for i in range(100):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    pairs, __ = store.scan(b"key000050", 10)
    assert [k for k, __ in pairs] == [b"key%06d" % i for i in range(50, 60)]


# --------------------------------------------------------------- MatrixKV


@pytest.fixture
def matrix_options():
    return MatrixKVOptions(
        memtable_bytes=8 * KB,
        sstable_bytes=8 * KB,
        container_bytes=64 * KB,
        column_target_bytes=16 * KB,
    )


def test_matrixkv_rows_accumulate_in_container(system, matrix_options):
    store = MatrixKVStore(system, matrix_options)
    fill(store, 200)
    store.quiesce()
    assert system.stats.get("flush.count") >= 1


def test_matrixkv_column_compaction_moves_data_to_l1(system, matrix_options):
    store = MatrixKVStore(system, matrix_options)
    fill(store, 1500)
    store.quiesce()
    assert store.column_compactions >= 1
    assert len(store.lsm.levels[1]) + len(store.lsm.levels[2]) > 0


def test_matrixkv_no_interval_stalls_under_load(system, matrix_options):
    store = MatrixKVStore(system, matrix_options)
    fill(store, 1500)
    assert system.stats.get("stall.interval_s") == pytest.approx(0.0, abs=1e-9)
    assert system.stats.get("stall.cumulative_s") > 0


def test_matrixkv_reads_see_container_and_levels(system, matrix_options):
    store = MatrixKVStore(system, matrix_options)
    fill(store, 1200, key_space=300)
    store.quiesce()
    for i in range(300):
        value, __ = store.get(b"key%06d" % i)
        assert value is not None, i


def test_matrixkv_container_bytes_bounded(system, matrix_options):
    store = MatrixKVStore(system, matrix_options)
    fill(store, 2000)
    assert store.container_bytes() <= matrix_options.container_bytes * 1.1
