"""Tests for the ``repro cluster`` CLI and cluster artifact export."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.cluster_smoke

FAST = [
    "--ops", "100", "--preload", "200", "--key-space", "200",
    "--value-size", "128",
]


def run_cluster_cli(tmp_path, tag, *extra):
    metrics = tmp_path / f"metrics-{tag}.json"
    rc = main(["cluster", *FAST, "--metrics", str(metrics), *extra])
    assert rc == 0
    return metrics.read_text()


def test_cluster_cli_prints_per_shard_table(capsys):
    assert main(["cluster", *FAST, "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shard" in out and "p99_us" in out
    assert "completed 400/400" in out
    assert "placement=hash-ring" in out


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_cluster_cli_metrics_deterministic(tmp_path, shards, capsys):
    texts = [
        run_cluster_cli(tmp_path, f"{shards}-{i}", "--shards", str(shards))
        for i in range(2)
    ]
    assert texts[0] == texts[1]
    doc = json.loads(texts[0])
    assert doc["n_shards"] == shards
    assert len(doc["shards"]) == shards
    assert doc["driver"]["completed"] == 400
    capsys.readouterr()


def test_cluster_cli_skew_and_rebalance(tmp_path, capsys):
    text = run_cluster_cli(
        tmp_path, "skew", "--shards", "4", "--theta", "0.99",
        "--rebalance-every", "50",
    )
    doc = json.loads(text)
    assert doc["driver"]["rebalances"]
    assert doc["cluster"]["cluster"]["rebalances"] >= 1
    capsys.readouterr()


def test_cluster_cli_range_placement(tmp_path, capsys):
    text = run_cluster_cli(tmp_path, "range", "--placement", "range")
    doc = json.loads(text)
    assert doc["placement"]["policy"] == "range"
    capsys.readouterr()


def test_cluster_cli_trace_artifact(tmp_path, capsys):
    trace = tmp_path / "cluster-trace.json"
    rc = main([
        "cluster", *FAST, "--shards", "2", "--trace", str(trace),
    ])
    assert rc == 0
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    pids = {e["pid"] for e in events}
    assert pids == {1, 2}
    names = {
        e["args"]["name"] for e in events if e["name"] == "process_name"
    }
    assert names == {"shard0:miodb", "shard1:miodb"}
    shard_tags = {
        e["args"]["shard"] for e in events if e["ph"] in ("X", "i")
    }
    assert shard_tags == {0, 1}
    capsys.readouterr()


def test_cluster_cli_rejects_multiple_stores(capsys):
    assert main(["cluster", "--store", "miodb,leveldb", *FAST]) == 2


def test_info_lists_placement_policies(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "placement policies: hash-ring, range" in out
