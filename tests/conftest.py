"""Shared fixtures: a fresh simulated machine and tiny store options."""

import pytest
from hypothesis import HealthCheck, settings

# Store-level property tests run thousands of simulated operations per
# example; wall-clock deadlines would make them flaky on slow machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.core import MioOptions
from repro.kvstore.options import StoreOptions
from repro.mem.system import HybridMemorySystem

KB = 1 << 10


@pytest.fixture
def system():
    """A fresh DRAM+NVM machine."""
    return HybridMemorySystem()


@pytest.fixture
def ssd_system():
    """A fresh DRAM+NVM+SSD machine."""
    return HybridMemorySystem.with_ssd()


@pytest.fixture
def tiny_options():
    """Small tables so flushing/compaction triggers in a few dozen puts."""
    return StoreOptions(memtable_bytes=8 * KB, sstable_bytes=8 * KB)


@pytest.fixture
def tiny_mio_options():
    """MioDB options matched to the tiny baseline options."""
    return MioOptions(memtable_bytes=8 * KB, sstable_bytes=8 * KB, num_levels=4)
