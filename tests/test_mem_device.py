"""Unit tests for device models and traffic/space accounting."""

import pytest

from repro.mem.device import Device, DeviceProfile
from repro.mem.profiles import DRAM_PROFILE, NVME_SSD_PROFILE, OPTANE_NVM_PROFILE


@pytest.fixture
def nvm():
    return Device(OPTANE_NVM_PROFILE)


def test_read_time_is_latency_plus_bandwidth(nvm):
    profile = nvm.profile
    t = nvm.read(1 << 20, sequential=True)
    assert t == pytest.approx(profile.read_latency + (1 << 20) / profile.seq_read_bw)


def test_random_write_slower_than_sequential(nvm):
    seq = nvm.write(1 << 20, sequential=True)
    rand = nvm.write(1 << 20, sequential=False)
    assert rand > seq


def test_traffic_counters(nvm):
    nvm.read(100)
    nvm.read(50)
    nvm.write(200)
    assert nvm.bytes_read == 150
    assert nvm.bytes_written == 200
    assert nvm.read_ops == 2
    assert nvm.write_ops == 1


def test_pointer_write_is_8_bytes(nvm):
    nvm.pointer_write()
    assert nvm.bytes_written == 8


def test_negative_sizes_rejected(nvm):
    with pytest.raises(ValueError):
        nvm.read(-1)
    with pytest.raises(ValueError):
        nvm.write(-1)


def test_allocate_release_and_peak(nvm):
    nvm.allocate(100)
    nvm.allocate(200)
    assert nvm.bytes_in_use == 300
    assert nvm.peak_bytes_in_use == 300
    nvm.release(150)
    assert nvm.bytes_in_use == 150
    assert nvm.peak_bytes_in_use == 300


def test_release_more_than_allocated_rejected(nvm):
    nvm.allocate(10)
    with pytest.raises(ValueError):
        nvm.release(11)


def test_capacity_enforced():
    dev = Device(OPTANE_NVM_PROFILE, capacity=100)
    dev.allocate(100)
    with pytest.raises(MemoryError):
        dev.allocate(1)


def test_average_usage_time_weighted(nvm):
    nvm.allocate(100, now=0.0)
    nvm.allocate(100, now=1.0)  # 100 bytes for [0,1)
    avg = nvm.average_usage(now=2.0)  # then 200 bytes for [1,2)
    assert avg == pytest.approx(150.0)


def test_reset_counters_preserves_space(nvm):
    nvm.allocate(100)
    nvm.write(50)
    nvm.reset_counters()
    assert nvm.bytes_written == 0
    assert nvm.bytes_in_use == 100


def test_paper_ratio_nvm_random_write_much_slower_than_dram():
    ratio = DRAM_PROFILE.rand_write_bw / OPTANE_NVM_PROFILE.rand_write_bw
    assert 5 <= ratio <= 9  # the paper says ~7x


def test_paper_ratio_ssd_vs_nvm():
    bw_ratio = OPTANE_NVM_PROFILE.seq_write_bw / NVME_SSD_PROFILE.seq_write_bw
    lat_ratio = NVME_SSD_PROFILE.read_latency / OPTANE_NVM_PROFILE.read_latency
    assert bw_ratio == pytest.approx(10.0, rel=0.01)
    assert lat_ratio == pytest.approx(100.0, rel=0.01)
