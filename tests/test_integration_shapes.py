"""Integration tests asserting the paper's headline *shapes*.

These are the claims the benchmarks regenerate in full; here they are
pinned at reduced scale so the suite stays fast while guarding against
regressions that would silently invert a conclusion:

- MioDB has the highest random-write throughput (Figure 6 / Table 1);
- MioDB eliminates interval stalls and nearly all cumulative stalls;
- write amplification: MioDB < MatrixKV < NoveLSM, MioDB near 3 (Fig 11);
- MioDB's p99.9 put latency is at least an order of magnitude below the
  SSTable-based baselines (Table 2);
- MioDB flushes MemTables much faster than both baselines (Figure 12).
"""

import pytest

from repro.bench import make_store
from repro.bench.config import BenchScale
from repro.workloads import fill_random

KB = 1 << 10
MB = 1 << 20

SCALE = BenchScale(
    memtable_bytes=256 * KB,
    dataset_bytes=8 * MB,
    value_size=4 * KB,
    nvm_buffer_bytes=4 * MB,
)
N = SCALE.n_records  # 2048 puts


@pytest.fixture(scope="module")
def loaded():
    """Load the same fillrandom dataset into every store once."""
    results = {}
    for name in ("miodb", "matrixkv", "novelsm", "leveldb"):
        store, system = make_store(name, SCALE)
        run = fill_random(store, N, SCALE.value_size)
        store.quiesce()
        results[name] = (store, system, run)
    return results


def test_miodb_wins_random_write_throughput(loaded):
    kiops = {name: run.kiops for name, (__, __s, run) in loaded.items()}
    assert kiops["miodb"] > 1.5 * kiops["matrixkv"]
    assert kiops["miodb"] > 4 * kiops["novelsm"]
    assert kiops["miodb"] > 4 * kiops["leveldb"]


def test_miodb_has_no_write_stalls(loaded):
    __, system, __r = loaded["miodb"]
    assert system.stats.get("stall.interval_s") == pytest.approx(0.0, abs=1e-6)
    assert system.stats.get("stall.cumulative_s") == 0.0


def test_matrixkv_has_no_interval_stalls_but_cumulative(loaded):
    __, system, __r = loaded["matrixkv"]
    assert system.stats.get("stall.interval_s") == pytest.approx(0.0, abs=1e-9)
    assert system.stats.get("stall.cumulative_s") > 0


def test_novelsm_has_interval_stalls(loaded):
    __, system, __r = loaded["novelsm"]
    total = system.stats.get("stall.interval_s") + system.stats.get(
        "stall.cumulative_s"
    )
    assert total > 0


def test_write_amplification_ordering(loaded):
    wa = {name: system.write_amplification() for name, (__, system, __r) in loaded.items()}
    assert wa["miodb"] < wa["matrixkv"] < wa["novelsm"] * 1.5
    assert wa["miodb"] < wa["leveldb"]
    assert wa["miodb"] <= 3.2  # theoretical bound 3 (log + flush + lazy copy)


def test_miodb_tail_latency_is_orders_lower(loaded):
    p999 = {
        name: system.latency.summary("put").p999
        for name, (__, system, __r) in loaded.items()
    }
    assert p999["miodb"] * 10 < p999["matrixkv"]
    assert p999["miodb"] * 10 < p999["novelsm"]


def test_miodb_flushes_fastest(loaded):
    per_flush = {}
    for name, (__, system, __r) in loaded.items():
        flushes = system.stats.get("flush.count")
        if flushes:
            per_flush[name] = system.stats.get("flush.time_s") / flushes
    assert per_flush["miodb"] < per_flush["matrixkv"]
    assert per_flush["miodb"] < per_flush["novelsm"]


def test_miodb_read_beats_baselines_after_load(loaded):
    from repro.workloads import read_random

    tputs = {}
    for name, (store, system, __r) in loaded.items():
        result = read_random(store, 400, N)
        tputs[name] = result.kiops
    assert tputs["miodb"] > tputs["matrixkv"]
    assert tputs["miodb"] > tputs["novelsm"]
