"""Unit and property tests for the B+-tree substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree.tree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    value, visits = tree.get(b"a")
    assert value is None
    assert visits >= 1


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_insert_and_get():
    tree = BPlusTree(order=4)
    tree.insert(b"b", 2)
    tree.insert(b"a", 1)
    tree.insert(b"c", 3)
    for key, expected in [(b"a", 1), (b"b", 2), (b"c", 3)]:
        value, __ = tree.get(key)
        assert value == expected
    assert len(tree) == 3


def test_insert_overwrites():
    tree = BPlusTree(order=4)
    tree.insert(b"k", "old")
    tree.insert(b"k", "new")
    assert len(tree) == 1
    value, __ = tree.get(b"k")
    assert value == "new"


def test_splits_maintain_order():
    tree = BPlusTree(order=4)
    keys = [b"k%03d" % i for i in range(200)]
    import random

    random.Random(7).shuffle(keys)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    assert tree.height > 1
    assert [k for k, __ in tree.range_from(b"")] == sorted(keys)
    tree.check_invariants()


def test_insert_reports_visits_and_writes():
    tree = BPlusTree(order=4)
    visits, writes = tree.insert(b"a", 1)
    assert visits >= 1
    assert writes >= 1
    # fill until a split happens: writes spike above 1
    saw_split = False
    for i in range(50):
        __, writes = tree.insert(b"k%02d" % i, i)
        if writes > 1:
            saw_split = True
    assert saw_split


def test_visits_grow_with_height():
    small = BPlusTree(order=4)
    small.insert(b"a", 1)
    __, shallow_visits = small.get(b"a")
    big = BPlusTree(order=4)
    for i in range(500):
        big.insert(b"k%04d" % i, i)
    __, deep_visits = big.get(b"k0250")
    assert deep_visits > shallow_visits


def test_delete():
    tree = BPlusTree(order=4)
    for i in range(40):
        tree.insert(b"k%02d" % i, i)
    removed, __ = tree.delete(b"k05")
    assert removed
    assert len(tree) == 39
    value, __ = tree.get(b"k05")
    assert value is None
    removed, __ = tree.delete(b"absent")
    assert not removed


def test_range_from_middle():
    tree = BPlusTree(order=4)
    for i in range(50):
        tree.insert(b"k%02d" % i, i)
    window = list(tree.range_from(b"k45"))
    assert [k for k, __ in window] == [b"k%02d" % i for i in range(45, 50)]


keys_values = st.lists(
    st.tuples(st.binary(min_size=1, max_size=8), st.integers()),
    max_size=150,
)


@settings(max_examples=50)
@given(keys_values)
def test_matches_dict_model(pairs):
    tree = BPlusTree(order=4)
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    for key, value in model.items():
        got, __ = tree.get(key)
        assert got == value
    assert [k for k, __ in tree.range_from(b"")] == sorted(model)
    tree.check_invariants()


@settings(max_examples=30)
@given(keys_values, st.sets(st.binary(min_size=1, max_size=8)))
def test_delete_matches_dict_model(pairs, to_delete):
    tree = BPlusTree(order=4)
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    for key in to_delete:
        removed, __ = tree.delete(key)
        assert removed == (key in model)
        model.pop(key, None)
    for key, value in model.items():
        got, __ = tree.get(key)
        assert got == value
    assert [k for k, __ in tree.range_from(b"")] == sorted(model)
