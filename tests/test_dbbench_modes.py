"""Tests for the extra db_bench modes and metamorphic store properties."""

import pytest

from repro.bench import make_store
from repro.bench.config import BenchScale
from repro.kvstore.values import SizedValue
from repro.sim.rng import XorShiftRng
from repro.workloads import (
    delete_random,
    fill_random,
    key_for,
    overwrite,
    seek_random,
)

KB = 1 << 10
SMALL = BenchScale(memtable_bytes=16 * KB, dataset_bytes=512 * KB, value_size=512,
                   nvm_buffer_bytes=128 * KB)


def test_overwrite_replaces_values():
    store, __ = make_store("miodb", SMALL)
    fill_random(store, 300, 512)
    result = overwrite(store, 200, 300, 512, seed=9)
    assert result.ops == 200
    store.quiesce()
    # at least some keys now carry overwrite tags
    rng = XorShiftRng(9)
    overwritten = {rng.next_below(300) for __ in range(200)}
    hits = 0
    for idx in overwritten:
        value, __lat = store.get(key_for(idx))
        if isinstance(value.tag, tuple) and value.tag[0] == "ow":
            hits += 1
    assert hits == len(overwritten)


def test_delete_random_removes_keys():
    store, __ = make_store("miodb", SMALL)
    fill_random(store, 200, 512)
    delete_random(store, 100, 200, seed=4)
    store.quiesce()
    rng = XorShiftRng(4)
    deleted = {rng.next_below(200) for __ in range(100)}
    for idx in deleted:
        value, __lat = store.get(key_for(idx))
        assert value is None
    survivors = set(range(200)) - deleted
    for idx in list(survivors)[:20]:
        value, __lat = store.get(key_for(idx))
        assert value is not None


def test_seek_random_scans():
    store, __ = make_store("miodb", SMALL)
    fill_random(store, 300, 512)
    result = seek_random(store, 50, 300, scan_length=5)
    assert result.ops == 50
    assert result.per_kind["scan"].count == 50


@pytest.mark.parametrize("name", ["miodb", "leveldb", "matrixkv"])
def test_metamorphic_insert_order_irrelevant_for_final_state(name):
    """Writing a set of distinct keys in two different orders must leave
    identical visible contents (the per-key newest write wins and no key
    interferes with another)."""
    keys = [key_for(i) for i in range(150)]
    contents = {}
    for run, seed in enumerate((11, 23)):
        store, __ = make_store(name, SMALL)
        order = list(range(150))
        XorShiftRng(seed).shuffle(order)
        for idx in order:
            store.put(keys[idx], SizedValue(idx, 512))
        store.quiesce()
        contents[run] = {
            k: v.tag for k, v in ((key, store.get(key)[0]) for key in keys)
        }
    assert contents[0] == contents[1]


def test_metamorphic_quiesce_never_changes_visible_state():
    store, __ = make_store("miodb", SMALL)
    rng = XorShiftRng(31)
    model = {}
    for i in range(600):
        key = key_for(rng.next_below(120))
        if rng.next_below(6) == 0:
            store.delete(key)
            model.pop(key, None)
        else:
            store.put(key, SizedValue(i, 512))
            model[key] = i
    before = {key_for(i): store.get(key_for(i))[0] for i in range(120)}
    store.quiesce()
    after = {key_for(i): store.get(key_for(i))[0] for i in range(120)}
    assert before == after
    for key, tag in model.items():
        assert after[key].tag == tag
