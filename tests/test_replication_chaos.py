"""Seeded chaos scenarios: kill/restart replicas mid-workload and check
flat-store oracle equivalence plus zero acked-write loss."""

import pytest

from repro.bench.config import BenchScale
from repro.replication import (
    ACK_QUORUM,
    READ_FOLLOWER_EVENTUAL,
    READ_FOLLOWER_RYW,
    ChaosSchedule,
    chaos_report_json,
    run_chaos,
)

pytestmark = pytest.mark.chaos_smoke

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def run(store_name, seed, **kwargs):
    kwargs.setdefault("ops", 300)
    kwargs.setdefault("kills", 3)
    return run_chaos(store_name, seed=seed, scale=SCALE, **kwargs)


@pytest.mark.parametrize("store_name", ["miodb", "leveldb"])
@pytest.mark.parametrize("seed", [3, 7, 42])
def test_chaos_oracle_equivalence(store_name, seed):
    report = run(store_name, seed)
    assert report["checks"]["no_acked_loss"], report["checks"]
    assert report["checks"]["oracle_match"], report["checks"]
    assert report["checks"]["followers_match"], report["checks"]
    assert report["ok"]
    assert len(report["fired"]) >= 1  # the schedule actually killed something
    dropped = sum(report["drops"].values())
    assert report["completed"] + dropped == report["offered"]


@pytest.mark.parametrize(
    "read_policy", [READ_FOLLOWER_EVENTUAL, READ_FOLLOWER_RYW]
)
def test_chaos_with_follower_reads(read_policy):
    report = run("miodb", 11, read_policy=read_policy)
    assert report["ok"], report["checks"]


def test_chaos_reports_are_byte_identical_across_runs():
    first = chaos_report_json(run("miodb", 7))
    second = chaos_report_json(run("miodb", 7))
    assert first == second


def test_chaos_reports_differ_across_seeds():
    assert chaos_report_json(run("miodb", 3)) != chaos_report_json(run("miodb", 7))


def test_chaos_schedule_generation_is_deterministic():
    sched_a = ChaosSchedule.generate(seed=5, n_groups=2, kills=4)
    sched_b = ChaosSchedule.generate(seed=5, n_groups=2, kills=4)
    assert [
        (e.at, e.group, e.target) for e in sched_a.events
    ] == [(e.at, e.group, e.target) for e in sched_b.events]
    assert len({e.at for e in sched_a.events}) == 4  # distinct kill points


def test_quorum_acks_survive_every_fired_kill():
    report = run("matrixkv", 13, ack_policy=ACK_QUORUM, kills=4, ops=400)
    assert report["acked_lost"] == 0
    assert report["ok"], report["checks"]


# ------------------------------------------------------------ traced chaos


def test_traced_chaos_report_matches_untraced_modulo_timelines(tmp_path):
    plain = run("miodb", 7)
    traced = run("miodb", 7, trace=str(tmp_path / "chaos.json"))
    assert (tmp_path / "chaos.json").exists()
    for doc in traced["groups"]:
        assert "failover_timeline" in doc
        doc.pop("failover_timeline")
    assert chaos_report_json(traced) == chaos_report_json(plain)


def test_traced_chaos_is_byte_identical_across_runs(tmp_path):
    first = run("miodb", 7, trace=str(tmp_path / "a.json"))
    second = run("miodb", 7, trace=str(tmp_path / "b.json"))
    assert chaos_report_json(first) == chaos_report_json(second)
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()


def test_traced_chaos_timelines_resolve_leader_kills(tmp_path):
    report = run("miodb", 7, trace=str(tmp_path / "chaos.json"))
    leader_kills = [f for f in report["fired"] if f["target"] == "leader"]
    timelines = [
        tl for doc in report["groups"]
        for tl in doc["failover_timeline"]
        if tl["role"] == "leader"
    ]
    assert len(timelines) >= len(leader_kills)
    for tl in timelines:
        if tl["repoint_t_s"] is not None:
            assert tl["winner"] is not None
            assert tl["duration_s"] > 0.0
