"""Behavioural tests for MioDB's core mechanisms."""

import pytest

from repro.core import MioDB, MioOptions
from repro.kvstore.values import SizedValue
from repro.skiplist.node import TOMBSTONE

KB = 1 << 10


def fill(store, n, value_size=256, key_space=None):
    space = key_space or n
    for i in range(n):
        store.put(b"key%06d" % ((i * 7919) % space), SizedValue(i, value_size))


# ------------------------------------------------------------ one-piece flush


def test_flush_creates_pmtable_in_l0(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 80)
    store.quiesce()
    assert system.stats.get("flush.count") >= 1
    assert sum(store.level_table_counts()) >= 1


def test_put_path_never_rotates_an_empty_memtable(system, tiny_mio_options):
    from repro.kvstore.memtable import MemTable

    store = MioDB(system, tiny_mio_options)
    # Rotation only triggers on a *full* MemTable; an empty table is
    # never full (its footprint is zero and capacities are positive, a
    # constraint the MemTable constructor enforces), so the put path can
    # never rotate an empty one.
    assert not store.memtable.is_full
    with pytest.raises(ValueError):
        MemTable(system, 0)


def test_empty_memtable_rotate_is_handled(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    assert len(store.memtable) == 0
    # Unreachable from the put path (see above), but direct rotation of
    # an empty table must degenerate gracefully: last_seq falls back to
    # store.seq so WAL truncation never goes backwards, and the flush
    # schedules zero pointer-swizzle work instead of crashing.
    store._rotate_memtable()
    store.quiesce()
    assert store.seq == 0
    assert store.immutable is None
    # The store keeps working normally afterwards.
    store.put(b"after", SizedValue(1, 64))
    value, __ = store.get(b"after")
    assert value is not None


def test_immutable_serves_reads_during_flush(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    i = 0
    while store.immutable is None:
        store.put(b"key%06d" % i, SizedValue(i, 256))
        i += 1
    # flush + swizzle are still in flight; every written key must be
    # readable right now
    assert store._flush_tail is not None and not store._flush_tail.done
    for j in range(i):
        value, __ = store.get(b"key%06d" % j)
        assert value is not None


def test_one_piece_flush_much_faster_than_per_kv(tiny_mio_options):
    from repro.mem.system import HybridMemorySystem

    durations = {}
    for one_piece in (True, False):
        system = HybridMemorySystem()
        options = MioOptions(
            memtable_bytes=tiny_mio_options.memtable_bytes,
            num_levels=4,
            one_piece_flush=one_piece,
        )
        store = MioDB(system, options)
        fill(store, 400)
        store.quiesce()
        durations[one_piece] = system.stats.get("flush.time_s")
    assert durations[True] < durations[False]


def test_wal_truncated_after_swizzle(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 200)
    store.quiesce()
    assert store.wal.record_count <= 40  # only live-MemTable records remain


def test_swizzle_time_recorded(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 100)
    store.quiesce()
    assert system.stats.get("swizzle.time_s") > 0


# ----------------------------------------------------------- elastic buffer


def test_no_write_stalls_even_under_burst(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 3000)
    assert system.stats.get("stall.interval_s") == pytest.approx(0.0, abs=1e-6)
    assert system.stats.get("stall.cumulative_s") == 0.0


def test_zero_copy_merges_move_tables_down(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 600)
    store.quiesce()
    assert store.compactor.zero_copy_merges >= 1
    # quiesced buffer holds at most one table per level (paper Section 5.4)
    assert all(count <= 1 for count in store.level_table_counts())


def test_zero_copy_compaction_writes_almost_nothing(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 600, value_size=2048)  # paper-like value/key ratio
    store.quiesce()
    ptr_bytes = 8 * system.stats.get("compact.ptr_writes")
    user_bytes = system.stats.get("user.bytes_written")
    assert ptr_bytes < 0.02 * user_bytes


def test_lazy_copy_populates_repository(system):
    options = MioOptions(memtable_bytes=4 * KB, num_levels=3)
    store = MioDB(system, options)
    fill(store, 1200, key_space=400)
    store.quiesce()
    assert store.compactor.lazy_copies >= 1
    assert store.repository.entry_count > 0
    assert system.stats.get("gc.reclaimed_bytes") > 0


def test_repository_holds_unique_newest_versions(system):
    options = MioOptions(memtable_bytes=4 * KB, num_levels=2)
    store = MioDB(system, options)
    for round_ in range(6):
        for i in range(100):
            store.put(b"key%06d" % i, SizedValue((round_, i), 256))
    store.quiesce()
    repo = store.repository
    assert repo.entry_count <= 100
    seen = set()
    for node in repo.skiplist.nodes():
        assert node.key not in seen
        seen.add(node.key)


def test_tombstones_eliminated_at_repository(system):
    options = MioOptions(memtable_bytes=4 * KB, num_levels=2)
    store = MioDB(system, options)
    for i in range(150):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    for i in range(150):
        store.delete(b"key%06d" % i)
    for i in range(300, 500):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    store.quiesce()
    for node in store.repository.skiplist.nodes():
        assert node.value is not TOMBSTONE
    for i in range(150):
        value, __ = store.get(b"key%06d" % i)
        assert value is None


def test_parallel_compaction_uses_per_level_workers(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    names = {w.name for w in store.compactor.workers}
    assert len(names) == tiny_mio_options.num_levels


def test_serial_compaction_ablation(system):
    options = MioOptions(
        memtable_bytes=8 * KB, num_levels=4, parallel_compaction=False
    )
    store = MioDB(system, options)
    assert len({id(w) for w in store.compactor.workers}) == 1
    fill(store, 600)
    store.quiesce()
    for i in range(600):
        value, __ = store.get(b"key%06d" % i)
        assert value is not None


def test_copying_compaction_ablation_amplifies_writes():
    from repro.mem.system import HybridMemorySystem

    was = {}
    for zero_copy in (True, False):
        system = HybridMemorySystem()
        options = MioOptions(memtable_bytes=8 * KB, num_levels=4, zero_copy=zero_copy)
        store = MioDB(system, options)
        fill(store, 1200)
        store.quiesce()
        was[zero_copy] = system.write_amplification()
    assert was[False] > was[True]


# --------------------------------------------------------------- read path


def test_reads_find_newest_version_everywhere(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 900, key_space=300)
    for i in range(300):
        value, __ = store.get(b"key%06d" % i)
        assert value is not None


def test_bloom_filters_cut_read_cost(tiny_mio_options):
    from repro.mem.system import HybridMemorySystem

    costs = {}
    for use_blooms in (True, False):
        system = HybridMemorySystem()
        options = MioOptions(memtable_bytes=256 * KB, num_levels=6,
                             use_blooms=use_blooms)
        store = MioDB(system, options)
        fill(store, 2000, value_size=4096)
        # blooms pay off by excluding tables a key cannot be in, which
        # is most visible on lookups that miss every buffer table;
        # the absent keys sort inside the populated range so the
        # no-bloom path pays a real (non-trivial) search per table
        total = 0.0
        for i in range(500):
            __, lat = store.get(b"key%06dzz" % (i * 3))
            total += lat
        costs[use_blooms] = total
    assert costs[True] < costs[False]


def test_scan_across_buffer_and_repository(system):
    options = MioOptions(memtable_bytes=4 * KB, num_levels=2)
    store = MioDB(system, options)
    for i in range(400):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    pairs, __ = store.scan(b"key000100", 20)
    assert [k for k, __ in pairs] == [b"key%06d" % i for i in range(100, 120)]
    store.quiesce()
    pairs, __ = store.scan(b"key000100", 20)
    assert [k for k, __ in pairs] == [b"key%06d" % i for i in range(100, 120)]


def test_scan_skips_deleted_keys(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    for i in range(50):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    store.delete(b"key000002")
    pairs, __ = store.scan(b"key000000", 5)
    keys = [k for k, __ in pairs]
    assert b"key000002" not in keys
    assert len(keys) == 5


# ------------------------------------------------------------- buffer cap


def test_nvm_buffer_cap_forces_stalls(system):
    options = MioOptions(
        memtable_bytes=4 * KB, num_levels=3, max_nvm_buffer_bytes=24 * KB
    )
    store = MioDB(system, options)
    fill(store, 2000)
    assert system.stats.get("stall.interval_s") > 0


def test_elastic_buffer_usage_reported(system, tiny_mio_options):
    store = MioDB(system, tiny_mio_options)
    fill(store, 500)
    assert store.elastic_buffer_bytes() > 0
    assert system.nvm.peak_bytes_in_use >= store.elastic_buffer_bytes()
