"""Direct unit tests for PMTables (the elastic buffer's element)."""

import pytest

from repro.bloom.filter import BloomFilter
from repro.core.pmtable import PMTable
from repro.persist.arena import Arena
from repro.sim.rng import XorShiftRng
from repro.skiplist.skiplist import SkipList


def make(system, entries, bloom_capacity=64):
    sl = SkipList(XorShiftRng(9))
    for key, seq in entries:
        sl.insert(key, seq, b"v", 16)
    arena = Arena(system.nvm, 4096, system.now, "pmt")
    bloom = BloomFilter.for_capacity(bloom_capacity, 16)
    for key, __ in entries:
        bloom.add(key)
    return PMTable(system, sl, [arena], bloom, level=0)


def test_basic_properties(system):
    table = make(system, [(b"a", 1), (b"b", 2)])
    assert table.entries == 2
    assert table.data_bytes == table.skiplist.data_bytes
    assert table.footprint_bytes == 4096
    assert not table.swizzled and not table.busy and not table.reclaimable


def test_get_charges_nvm(system):
    table = make(system, [(b"a", 1)])
    before = system.nvm.bytes_read
    node, seconds = table.get(b"a")
    assert node is not None
    assert seconds > 0
    assert system.nvm.bytes_read > before


def test_may_contain_costs_and_filters(system):
    table = make(system, [(b"present", 1)])
    possible, cost = table.may_contain(b"present")
    assert possible and cost > 0
    possible, cost_miss = table.may_contain(b"definitely-absent-key")
    assert not possible
    assert cost_miss < cost  # short-circuited miss is cheaper


def test_may_contain_without_bloom_is_free(system):
    sl = SkipList(XorShiftRng(1))
    arena = Arena(system.nvm, 64, system.now)
    table = PMTable(system, sl, [arena], bloom=None)
    assert table.may_contain(b"x") == (True, 0.0)


def test_saturated_bloom_is_skipped(system):
    table = make(system, [(b"k%03d" % i, i + 1) for i in range(60)],
                 bloom_capacity=2)
    assert table.bloom.saturation > 0.9
    possible, cost = table.may_contain(b"whatever")
    assert possible
    assert cost == 0.0


def test_absorb_transfers_arenas(system):
    a = make(system, [(b"a", 1)])
    b = make(system, [(b"b", 2)])
    a.absorb(b)
    assert a.footprint_bytes == 8192
    assert b.arenas == []
    assert b.reclaimable


def test_merge_bloom_widens(system):
    a = make(system, [(b"a", 1)])
    b = make(system, [(b"b", 2)])
    assert not a.bloom.may_contain(b"b")
    a.merge_bloom_from(b)
    assert a.bloom.may_contain(b"b")


def test_reclaim_releases_all_arenas(system):
    a = make(system, [(b"a", 1)])
    b = make(system, [(b"b", 2)])
    a.absorb(b)
    in_use_before = system.nvm.bytes_in_use
    freed = a.reclaim(system.now)
    assert freed == 8192
    assert system.nvm.bytes_in_use == in_use_before - 8192
    assert a.reclaimable
    # idempotent
    assert a.reclaim(system.now) == 0
